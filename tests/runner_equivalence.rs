//! Golden-output equivalence: every ablation family must produce
//! byte-identical CSVs whether its cells run sequentially or fanned
//! across the thread pool, and whether underlay artifacts come from the
//! content-addressed cache or a fresh build.
//!
//! Each family runs at `Effort::Quick` on two fixed seeds; the
//! sequential path is the reference (it matches the pre-runner code's
//! loop nesting and seed schedule bit-for-bit), so these tests pin the
//! parallel runner's merge order and seed derivation. CI runs this
//! suite with `RAYON_NUM_THREADS=4` so the parallel path genuinely
//! interleaves.

use vdm_experiments::figures::{ablation, chaos, soak};
use vdm_experiments::runner::{with_mode, ExecMode};
use vdm_experiments::{Effort, Table};
use vdm_topology::cache;

const SEEDS: [u64; 2] = [11, 42];

fn assert_equivalent(name: &str, f: impl Fn(u64) -> Vec<Table>) {
    for seed in SEEDS {
        let seq = with_mode(ExecMode::Sequential, || f(seed));
        let par = with_mode(ExecMode::Parallel, || f(seed));
        assert_eq!(seq.len(), par.len(), "{name} seed {seed}: table count");
        for (a, b) in seq.iter().zip(&par) {
            assert!(!a.to_csv().is_empty(), "{name} produced an empty CSV");
            assert_eq!(
                a.to_csv(),
                b.to_csv(),
                "{name} seed {seed}: `{}` differs between sequential and parallel",
                a.figure
            );
        }
    }
}

#[test]
fn a1_slack_sweep_parallel_matches_sequential() {
    assert_equivalent("A1 slack", |s| ablation::slack_sweep(Effort::Quick, s));
}

#[test]
fn a2_reconnect_anchor_parallel_matches_sequential() {
    assert_equivalent("A2 anchor", |s| {
        ablation::reconnect_anchor(Effort::Quick, s)
    });
}

#[test]
fn a3_crash_churn_parallel_matches_sequential() {
    assert_equivalent("A3 crash", |s| ablation::crash_churn(Effort::Quick, s));
}

#[test]
fn a4_topology_sensitivity_parallel_matches_sequential() {
    assert_equivalent("A4 topology", |s| {
        ablation::topology_sensitivity(Effort::Quick, s)
    });
}

#[test]
fn a5_heterogeneity_parallel_matches_sequential() {
    assert_equivalent("A5 heterogeneity", |s| {
        ablation::heterogeneity(Effort::Quick, s)
    });
}

#[test]
fn a6_congestion_parallel_matches_sequential() {
    assert_equivalent("A6 congestion", |s| ablation::congestion(Effort::Quick, s));
}

#[test]
fn a7_chaos_parallel_matches_sequential() {
    assert_equivalent("A7 chaos", |s| chaos::chaos_recovery(Effort::Quick, s));
}

#[test]
fn a8_soak_parallel_matches_sequential() {
    assert_equivalent("A8 soak", |s| soak::soak_resilience(Effort::Quick, s));
}

/// Artifact-cache transparency: the same family produces the same CSVs
/// with no cache, a cold cache (computing and storing artifacts), and a
/// warm cache (decoding them back).
#[test]
fn csvs_identical_with_and_without_artifact_cache() {
    let fresh = chaos::chaos_recovery(Effort::Quick, 11);
    let dir = std::env::temp_dir().join(format!("vdm-equiv-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    cache::set_global(Some(cache::CacheStore::at(&dir)));
    let cold = chaos::chaos_recovery(Effort::Quick, 11);
    let warm = chaos::chaos_recovery(Effort::Quick, 11);
    cache::set_global(None);
    let _ = std::fs::remove_dir_all(&dir);
    for (label, run) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(fresh.len(), run.len());
        for (a, b) in fresh.iter().zip(run) {
            assert_eq!(
                a.to_csv(),
                b.to_csv(),
                "`{}` differs between fresh and {label}-cache runs",
                a.figure
            );
        }
    }
}
