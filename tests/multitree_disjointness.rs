//! Multi-tree decorrelation properties (ablation A10, satellite
//! checks): per-tree metric perturbation plus striped degree limits
//! must drive the trees' interior-node sets apart on realistic
//! underlays, and cross-tree repair must never request a chunk outside
//! the stripe that owns it — property-tested over seeds, with the
//! paper's fixed seeds 11 and 42 pinned explicitly.

mod common;

use common::staggered_joins;
use proptest::{prop_assert, prop_assert_eq, proptest};
use vdm_core::{perturb_vdist, VdmFactory, VdmPolicy};
use vdm_experiments::setup::{powerlaw_setup, waxman_setup, Ch3Setup};
use vdm_netsim::{HostId, SimTime, Underlay};
use vdm_overlay::agent::{AdmissionConfig, AgentConfig};
use vdm_overlay::driver::DriverConfig;
use vdm_overlay::repair::RepairConfig;
use vdm_overlay::scenario::{Action, Scenario};
use vdm_overlay::sync::SyncOverlay;
use vdm_overlay::tree::TreeSnapshot;
use vdm_overlay::{interior_overlap, interior_victim, striped_limits, walk::WalkConfig};
use vdm_overlay::{MultiTreeConfig, MultiTreeSession};

const AMP: f64 = 0.25;

/// The per-(session, tree) perturbation seed `VdmFactory::for_tree`
/// derives (tree 0 stays unperturbed).
fn tree_seed(tree: usize, session_seed: u64) -> Option<u64> {
    (tree > 0).then_some(session_seed ^ ((tree as u64) << 48) ^ 0x6d74_7265)
}

/// Build `k` trees over one underlay with `SyncOverlay` joins and
/// return their snapshots. `decorrelate` switches on both levers
/// (perturbed metrics + striped degree limits); off, every tree is
/// built identically.
fn build_trees(setup: &Ch3Setup, k: usize, seed: u64, decorrelate: bool) -> Vec<TreeSnapshot> {
    build_trees_mode(setup, k, seed, if decorrelate { 3 } else { 0 })
}
fn build_trees_mode(setup: &Ch3Setup, k: usize, seed: u64, mode: u8) -> Vec<TreeSnapshot> {
    let perturb = mode & 1 != 0;
    let stripe = mode & 2 != 0;
    let n = setup.candidates.len() + 1;
    let base: Vec<u32> = (0..n)
        .map(|h| 2 + ((seed ^ h as u64) % 4) as u32) // 2..=5, seed-mixed
        .collect();
    let limits = if stripe {
        striped_limits(&base, k, setup.source, 1)
    } else {
        striped_limits(&base, 1, setup.source, 1)
            .iter()
            .cycle()
            .take(k * n)
            .copied()
            .collect()
    };
    (0..k)
        .map(|t| {
            let u = setup.underlay.clone();
            // The sync walk probes virtual distances straight from this
            // closure (the async path routes measured RTT through
            // `WalkPolicy::vdist` instead), so the per-tree perturbation
            // composes here.
            let ts = if perturb { tree_seed(t, seed) } else { None };
            let dist = move |a: HostId, b: HostId| {
                let d = u.rtt_ms(a, b);
                ts.map_or(d, |ts| perturb_vdist(d, ts, AMP))
            };
            let tl = &limits[t * n..(t + 1) * n];
            let mut ov = SyncOverlay::new(n, setup.source, tl[setup.source.idx()], dist);
            let policy = VdmPolicy::delay_based();
            for &h in &setup.candidates {
                ov.join(h, tl[h.idx()], &policy);
            }
            ov.snapshot()
        })
        .collect()
}

fn overlap_on(setup: &Ch3Setup, k: usize, seed: u64) -> (f64, f64) {
    let same = build_trees(setup, k, seed, false);
    let decorrelated = build_trees(setup, k, seed, true);
    for snaps in [&same, &decorrelated] {
        for s in snaps.iter() {
            assert!(
                !s.interior_members().is_empty(),
                "degenerate tree (no interiors) at seed {seed}"
            );
        }
    }
    (interior_overlap(&same), interior_overlap(&decorrelated))
}

/// The paper's fixed seeds on both sensitivity underlays: identically
/// built trees are identical (overlap 1), each decorrelation lever
/// moves the interiors on its own, and both together keep the shared
/// fraction well below clone level (0.42–0.62 observed here).
#[test]
fn fixed_seeds_decorrelate_interiors_on_waxman_and_powerlaw() {
    for seed in [11u64, 42] {
        for (name, setup) in [
            ("waxman", waxman_setup(16, 40, seed)),
            ("powerlaw", powerlaw_setup(16, 40, seed)),
        ] {
            for k in [2usize, 3] {
                let clones = interior_overlap(&build_trees_mode(&setup, k, seed, 0));
                let perturb = interior_overlap(&build_trees_mode(&setup, k, seed, 1));
                let limits = interior_overlap(&build_trees_mode(&setup, k, seed, 2));
                let both = interior_overlap(&build_trees_mode(&setup, k, seed, 3));
                assert_eq!(clones, 1.0, "{name} k={k} seed={seed}: clones must overlap");
                assert!(
                    perturb < 1.0,
                    "{name} k={k} seed={seed}: metric perturbation alone changed nothing"
                );
                assert!(
                    limits < 1.0,
                    "{name} k={k} seed={seed}: striped limits alone changed nothing"
                );
                assert!(
                    both < 0.7,
                    "{name} k={k} seed={seed}: combined overlap {both} too high"
                );
            }
        }
    }
}

proptest! {
    /// Over arbitrary underlays: identically built trees always clone
    /// each other, and decorrelation keeps the *mean* interior overlap
    /// (across three sessions on the same underlay) well below clone
    /// level. A single tiny session may degenerate to identical
    /// interiors, which is why the property averages.
    #[test]
    fn decorrelation_lowers_interior_overlap(
        seed in 0u64..1u64 << 48,
        k in 2usize..=3,
        topo in 0u32..2,
    ) {
        let setup = if topo == 1 {
            powerlaw_setup(12, 30, seed)
        } else {
            waxman_setup(12, 30, seed)
        };
        let sessions = [seed, seed ^ 0xa5a5, seed.wrapping_add(77)];
        let mut dec_sum = 0.0;
        for s in sessions {
            let (same, dec) = overlap_on(&setup, k, s);
            prop_assert_eq!(same, 1.0);
            prop_assert!(dec <= same, "overlap {} above clone level (seed {})", dec, s);
            dec_sum += dec;
        }
        let mean = dec_sum / sessions.len() as f64;
        prop_assert!(mean <= 0.85, "mean overlap {} too high (seed {})", mean, seed);
    }
}

/// A full striped session with an interior crash: cross-tree repair
/// engages, and no receiver ever accepts (or requests) a chunk from
/// outside its stripe.
fn crash_session(k: usize, seed: u64) -> vdm_overlay::MultiTreeOutput {
    let members = 10usize;
    let setup = waxman_setup(members, 30, seed);
    let mut actions = staggered_joins(&setup.candidates, 2, 2);
    actions.push((SimTime::from_secs(120), Action::Measure));
    let scenario = Scenario::from_actions(actions, SimTime::from_secs(125));
    let base = vec![3u32; members + 1];
    let limits = striped_limits(&base, k, setup.source, 1);
    let factories: Vec<VdmFactory> = (0..k)
        .map(|t| {
            let mut f = VdmFactory::delay_based().for_tree(t, seed, AMP);
            f.agent = AgentConfig {
                walk: WalkConfig::hardened(),
                data_timeout: Some(SimTime::from_secs(15)),
                repair: Some(
                    RepairConfig {
                        window: 8,
                        ..RepairConfig::default()
                    }
                    .striped(k as u64, t as u64),
                ),
                cross_repair: Some(AdmissionConfig::default()),
                ..f.agent
            };
            f
        })
        .collect();
    let mut session = MultiTreeSession::new(
        setup.underlay.clone(),
        None,
        setup.source,
        factories,
        &scenario,
        limits,
        MultiTreeConfig {
            driver: DriverConfig::default(),
            ..MultiTreeConfig::new(k)
        },
        seed,
    );
    session.run_until(SimTime::from_secs(60));
    if let Some(victim) = interior_victim(&session.snapshots()) {
        session.crash_now(victim);
    }
    session.finish()
}

#[test]
fn fixed_seed_crash_engages_cross_repair_without_stripe_leaks() {
    for seed in [11u64, 42] {
        let out = crash_session(2, seed);
        let r = &out.stats.recovery;
        assert_eq!(
            r.cross_stripe_violations, 0,
            "seed {seed}: off-stripe retransmission accepted"
        );
        assert!(
            r.cross_nacks_sent > 0,
            "seed {seed}: interior crash never engaged cross-tree repair"
        );
    }
}

proptest! {
    /// Over arbitrary seeds and stripe counts, cross-tree repair may or
    /// may not fire (the victim's children sometimes rejoin first) but
    /// an off-stripe request/retransmission is never accepted.
    #[test]
    fn cross_repair_never_requests_off_stripe(
        seed in 0u64..1u64 << 48,
        k in 2usize..=4,
    ) {
        let out = crash_session(k, seed);
        prop_assert_eq!(
            out.stats.recovery.cross_stripe_violations,
            0,
            "seed {} k {}: off-stripe retransmission accepted",
            seed,
            k
        );
    }
}
