//! Shared integration-test harness: the chaos-grade agent preset, the
//! fixed-seed scenario builders the suites repeat, the golden-CSV diff
//! helper (goldens live in `tests/goldens/`, regenerated with
//! `UPDATE_GOLDENS=1`), and the smoke-gate JSON shape assertions.
//!
//! Every `[[test]]` target that declares `mod common;` compiles its own
//! copy, so helpers unused by one target are expected dead code there.
#![allow(dead_code)]

use std::path::PathBuf;
use vdm_core::VdmFactory;
use vdm_experiments::setup::Ch3Setup;
use vdm_netsim::HostId;
use vdm_netsim::SimTime;
use vdm_overlay::agent::{AdmissionConfig, AgentConfig, HeartbeatConfig, ResilienceConfig};
use vdm_overlay::driver::{Driver, DriverConfig, RunOutput};
use vdm_overlay::repair::RepairConfig;
use vdm_overlay::scenario::{Action, Scenario};
use vdm_overlay::walk::WalkConfig;

/// Chaos-grade control plane with every proactive-resilience mechanism
/// enabled (the A11 preset shared by the resilience and bootstrap
/// suites).
pub fn resilient() -> AgentConfig {
    AgentConfig {
        walk: WalkConfig::hardened(),
        retry_backoff: 2.0,
        data_timeout: Some(SimTime::from_secs(15)),
        heartbeat: Some(HeartbeatConfig {
            period: SimTime::from_secs(10),
            timeout: SimTime::from_secs(30),
        }),
        gap_threshold: Some(SimTime::from_secs(5)),
        resilience: Some(ResilienceConfig::default()),
        admission: Some(AdmissionConfig::default()),
        repair: Some(RepairConfig::default()),
        ..AgentConfig::default()
    }
}

/// VDM-D with the chaos-grade agent preset.
pub fn resilient_factory() -> VdmFactory {
    VdmFactory {
        agent: resilient(),
        ..VdmFactory::delay_based()
    }
}

/// One driver run over `setup` with uniform degree limits and the
/// default driver config — the shape every fixed-seed gate repeats.
pub fn run_driver(
    setup: &Ch3Setup,
    factory: VdmFactory,
    scenario: &Scenario,
    limits: Vec<u32>,
    seed: u64,
) -> RunOutput {
    Driver::new(
        setup.underlay.clone(),
        None,
        setup.source,
        factory,
        scenario,
        limits,
        DriverConfig::default(),
        seed,
    )
    .run()
}

/// Staggered joins: `candidates[i]` joins at `first_s + i * every_s`.
pub fn staggered_joins(
    candidates: &[HostId],
    first_s: u64,
    every_s: u64,
) -> Vec<(SimTime, Action)> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            (
                SimTime::from_secs(first_s + i as u64 * every_s),
                Action::Join(h),
            )
        })
        .collect()
}

/// The committed golden for `name` (`tests/goldens/<name>`).
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name)
}

/// Byte-diff `actual` against the committed golden. Set
/// `UPDATE_GOLDENS=1` to (re)write the golden instead of asserting —
/// review the diff before committing.
pub fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDENS=1)", name));
    assert!(
        golden == actual,
        "`{name}` diverged from its golden ({}); \
         first differing line: {:?} vs {:?} — if the change is intended, \
         regenerate with UPDATE_GOLDENS=1 and commit the diff",
        path.display(),
        golden
            .lines()
            .zip(actual.lines())
            .find(|(g, a)| g != a)
            .map(|(g, _)| g),
        golden
            .lines()
            .zip(actual.lines())
            .find(|(g, a)| g != a)
            .map(|(_, a)| a),
    );
}

/// Structural assertions every `BENCH_*.json` smoke document must pass:
/// right bench tag, smoke flag and seed stamped, at least one point,
/// braces/brackets balanced (the workspace has no JSON parser crate;
/// CI validates with `python3 -m json.tool` — this is the in-process
/// approximation).
pub fn assert_smoke_json(json: &str, bench: &str, seed: u64) {
    assert!(
        json.contains(&format!("\"bench\": \"{bench}\"")),
        "wrong bench tag in: {json}"
    );
    assert!(json.contains("\"smoke\": true"), "smoke flag not stamped");
    assert!(
        json.contains(&format!("\"seed\": {seed}")),
        "seed not stamped"
    );
    assert!(json.contains("{\"n\":"), "no data points");
    for (open, close) in [('{', '}'), ('[', ']')] {
        let o = json.matches(open).count();
        let c = json.matches(close).count();
        assert_eq!(o, c, "unbalanced {open}{close} in smoke JSON");
    }
    assert!(json.ends_with("}\n"), "document must end with a newline");
}
