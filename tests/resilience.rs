//! Proactive-resilience integration tests: backup-parent failover,
//! ancestor-list recovery, rejoin admission and NACK gap repair must
//! hold the tree together under crash-heavy churn — deterministically
//! per seed. Includes the `soak_smoke` CI gate (fixed seed, fails on
//! any tree-invariant violation).

mod common;

use common::{resilient_factory as factory, run_driver, staggered_joins};
use proptest::{prop_assert, prop_assert_eq, proptest};
use vdm_experiments::setup::ch3_setup;
use vdm_netsim::SimTime;
use vdm_overlay::driver::{Driver, DriverConfig};
use vdm_overlay::scenario::{Action, Scenario, SoakConfig};

/// Regression: a newcomer whose join walk is in flight *through* a node
/// that crashes (no Leave, no handover — `Action::Crash` just unplugs
/// it) must still complete the join. Swept over several crash offsets
/// so the walk is caught at different stages: probing the dead node,
/// waiting on its children, or already past it.
#[test]
fn newcomer_joins_through_a_crashing_node() {
    for (case, crash_offset_ms) in [50.0_f64, 150.0, 300.0, 600.0].into_iter().enumerate() {
        let setup = ch3_setup(6, 0.0, 33);
        // Degree 1 everywhere forces a chain src -> c0 -> c1 -> c2 -> c3,
        // so the newcomer's walk must descend through c1.
        let limits = vec![1u32; 7];
        let mut actions = staggered_joins(&setup.candidates[..4], 5, 5);
        let t_join = 60_000.0;
        actions.push((SimTime::from_ms(t_join), Action::Join(setup.candidates[4])));
        actions.push((
            SimTime::from_ms(t_join + crash_offset_ms),
            Action::Crash(setup.candidates[1]),
        ));
        actions.push((SimTime::from_secs(200), Action::Measure));
        let scenario = Scenario::from_actions(actions, SimTime::from_secs(205));
        let out = run_driver(&setup, factory(), &scenario, limits, 33);
        let last = out.stats.measurements.last().unwrap();
        assert_eq!(last.members, 4, "case {case}: 5 joined, 1 crashed");
        assert_eq!(
            last.connected, 4,
            "case {case} (crash {crash_offset_ms} ms after join): \
             newcomer or orphan left dark"
        );
        assert_eq!(last.tree_errors, 0, "case {case}: invariants broken");
    }
}

/// CI smoke gate: one fixed-seed soak run (Poisson churn + correlated
/// crash bursts + rejoin storms) with every mechanism on. Fails on any
/// tree-invariant violation at any measurement, on dark peers after the
/// quiet tail, and on the mechanisms not actually engaging.
#[test]
fn soak_smoke() {
    let members = 14;
    let setup = ch3_setup(members, 0.0, 4242);
    let scenario = Scenario::soak(
        &SoakConfig {
            members,
            warmup_s: 60.0,
            duration_s: 180.0,
            churn_rate_per_s: 0.03,
            burst_every_s: 60.0,
            burst_frac: 0.25,
            measure_every_s: 50.0,
            quiet_tail_s: 60.0,
        },
        &setup.candidates,
        4242,
    );
    let run = || {
        Driver::new(
            setup.underlay.clone(),
            None,
            setup.source,
            factory(),
            &scenario,
            vec![4; members + 1],
            DriverConfig {
                data_interval: Some(SimTime::from_secs(1)),
                ..DriverConfig::default()
            },
            4242,
        )
        .run()
    };
    let out = run();
    for m in &out.stats.measurements {
        assert_eq!(
            m.tree_errors, 0,
            "tree-invariant violation at t={}",
            m.time_s
        );
    }
    assert_eq!(out.stats.recovery.total_violations(), 0);
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.connected, last.members, "dark peers after quiet tail");
    // The soak actually exercised the mechanisms.
    assert!(
        out.stats.recovery.orphan_events >= 1,
        "no orphans — soak too tame"
    );
    assert!(
        out.stats.recovery.failover_attempts >= 1,
        "backup-parent failover never engaged"
    );
    // Byte-level determinism of the recovery numbers per seed.
    let again = run();
    assert_eq!(out.stats.recovery, again.stats.recovery);
}

proptest! {
    /// Under ANY generated soak schedule (churn rate, burst shape and
    /// seed all varied) with every mechanism on, no peer ever exceeds
    /// its degree limit and the tree invariants hold at the end of the
    /// quiet tail. Degree-limit violations would abort the run outright
    /// (`PeerState::add_child` panics past the limit); structural
    /// violations show up in `tree_errors`. Measurements taken *during*
    /// a burst may transiently observe a just-orphaned peer, so only
    /// the post-tail snapshot must be clean.
    #[test]
    fn soak_churn_preserves_tree_invariants(
        churn_cp in 0u32..8,       // churn_rate_per_s = cp / 100
        burst_frac_pct in 0u32..40,
        burst_every_s in 30.0f64..90.0,
        plan_seed in 0u64..1u64 << 48,
    ) {
        let members = 10usize;
        let setup = ch3_setup(members, 0.0, plan_seed ^ 0x5e11);
        let scenario = Scenario::soak(
            &SoakConfig {
                members,
                warmup_s: 40.0,
                duration_s: 120.0,
                churn_rate_per_s: churn_cp as f64 / 100.0,
                burst_every_s,
                burst_frac: burst_frac_pct as f64 / 100.0,
                measure_every_s: 60.0,
                quiet_tail_s: 60.0,
            },
            &setup.candidates,
            plan_seed,
        );
        let out = run_driver(&setup, factory(), &scenario, vec![3; members + 1], plan_seed);
        let last = out.stats.measurements.last().unwrap();
        prop_assert_eq!(last.tree_errors, 0, "errors after quiet tail (seed {})", plan_seed);
        prop_assert_eq!(
            last.connected,
            last.members,
            "dark peers after quiet tail (seed {})",
            plan_seed
        );
        prop_assert!(out.stats.source_chunks == 0 || out.stats.overall_loss() < 1.0);
    }
}
