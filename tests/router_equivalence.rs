//! Golden-output equivalence across routing oracles: the same families
//! must produce byte-identical CSVs whether their underlays route over
//! the dense `Apsp` matrix (the historical oracle behind the committed
//! A1–A8 CSVs) or the memory-bounded `OnDemandRouter`.
//!
//! Both oracles run the same Dijkstra with the same deterministic
//! tie-breaks and derive first hops by the same predecessor walk, so
//! distances and next hops are bit-identical by construction; these
//! tests pin that end-to-end, through setup, the sync executor, the
//! event-driven driver, and CSV rendering. Runs are sequential so the
//! thread-local router override covers every cell.

use vdm_experiments::figures::ablation;
use vdm_experiments::runner::{with_mode, ExecMode};
use vdm_experiments::setup::{with_router_choice, RouterChoice};
use vdm_experiments::{Effort, Table};

const SEEDS: [u64; 2] = [11, 42];

fn assert_router_equivalent(name: &str, f: impl Fn(u64) -> Vec<Table>) {
    for seed in SEEDS {
        let dense = with_mode(ExecMode::Sequential, || {
            with_router_choice(RouterChoice::Dense, || f(seed))
        });
        let on_demand = with_mode(ExecMode::Sequential, || {
            with_router_choice(RouterChoice::OnDemand, || f(seed))
        });
        assert_eq!(
            dense.len(),
            on_demand.len(),
            "{name} seed {seed}: table count"
        );
        for (a, b) in dense.iter().zip(&on_demand) {
            assert!(!a.to_csv().is_empty(), "{name} produced an empty CSV");
            assert_eq!(
                a.to_csv(),
                b.to_csv(),
                "{name} seed {seed}: `{}` differs between dense and on-demand routing",
                a.figure
            );
        }
    }
}

/// A1 exercises the transit-stub underlay through the slack ablation.
#[test]
fn a1_slack_sweep_identical_under_on_demand_router() {
    assert_router_equivalent("A1 slack", |s| ablation::slack_sweep(Effort::Quick, s));
}

/// A4 builds all three underlay families (transit-stub, Waxman,
/// power-law), so one golden run covers every setup builder.
#[test]
fn a4_topology_sensitivity_identical_under_on_demand_router() {
    assert_router_equivalent("A4 topology", |s| {
        ablation::topology_sensitivity(Effort::Quick, s)
    });
}

/// A2 reconnection drives the event-driven driver (leave/rejoin paths)
/// over routed underlays.
#[test]
fn a2_reconnect_anchor_identical_under_on_demand_router() {
    assert_router_equivalent("A2 anchor", |s| {
        ablation::reconnect_anchor(Effort::Quick, s)
    });
}
