//! Fault-injection integration tests: the hardened control plane must
//! ride out duplicated/reordered control traffic, heal partitions
//! within the watchdog-bounded recovery window, and survive
//! deep ungraceful crashes — all deterministically per seed.

use proptest::{prop_assert, prop_assert_eq, proptest};
use std::sync::Arc;
use vdm_core::VdmFactory;
use vdm_experiments::setup::ch3_setup;
use vdm_netsim::{ChaosSpec, FaultEvent, FaultPlan, HostId, LatencySpace, SimTime};
use vdm_overlay::agent::{AgentConfig, HeartbeatConfig};
use vdm_overlay::driver::{Driver, DriverConfig};
use vdm_overlay::scenario::{Action, ChurnConfig, Scenario};
use vdm_overlay::walk::WalkConfig;

/// Chaos-grade agent settings: walk/retry backoff with jitter, stream
/// watchdog, child heartbeats, delivery-gap recording.
fn hardened() -> AgentConfig {
    AgentConfig {
        walk: WalkConfig::hardened(),
        retry_backoff: 2.0,
        data_timeout: Some(SimTime::from_secs(15)),
        heartbeat: Some(HeartbeatConfig {
            period: SimTime::from_secs(10),
            timeout: SimTime::from_secs(30),
        }),
        gap_threshold: Some(SimTime::from_secs(5)),
        ..AgentConfig::default()
    }
}

fn factory() -> VdmFactory {
    VdmFactory {
        agent: hardened(),
        ..VdmFactory::delay_based()
    }
}

/// Under heavy duplication and bounded reordering of every message —
/// but no losses — the tree must never violate its invariants: the
/// generation-stamped `ParentChange` handling and nonce-tied walk
/// replies make duplicated/stale control messages harmless.
#[test]
fn dup_and_reorder_never_violate_tree_invariants() {
    let members = 16;
    let setup = ch3_setup(members, 0.0, 77);
    let scenario = Scenario::churn(
        &ChurnConfig {
            members,
            warmup_s: 60.0,
            slot_s: 60.0,
            slots: 3,
            churn_pct: 10.0,
        },
        &setup.candidates,
        77,
    );
    // One fault window covering the whole churn phase.
    let plan = FaultPlan::with_events(
        77,
        vec![FaultEvent::MsgFaults {
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(230),
            drop_p: 0.0,
            dup_p: 0.25,
            reorder_p: 0.25,
            reorder_max: SimTime::from_ms(300.0),
            spike_p: 0.0,
            spike: SimTime::ZERO,
        }],
    );
    let mut driver = Driver::new(
        setup.underlay.clone(),
        None,
        setup.source,
        factory(),
        &scenario,
        vec![4; members + 1],
        DriverConfig::default(),
        77,
    );
    driver.set_fault_plan(plan);
    let out = driver.run();
    for m in &out.stats.measurements {
        assert_eq!(m.tree_errors, 0, "invariant violation at t={}", m.time_s);
    }
    assert_eq!(out.stats.recovery.total_violations(), 0);
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.connected, last.members, "dark peers under dup+reorder");
    // Duplication really happened (the fault layer was live).
    assert!(out.counters.faults_duplicated > 0);
    assert!(out.counters.faults_delayed > 0);
}

/// A 30 s bisection partition: every alive node must be reconnected and
/// receiving data again within the watchdog-bounded recovery window
/// (partition end + data timeout + reconnect walks).
#[test]
fn partition_heals_within_watchdog_bound() {
    let members = 14;
    let setup = ch3_setup(members, 0.0, 31);
    let scenario = Scenario::churn(
        &ChurnConfig {
            members,
            warmup_s: 60.0,
            slot_s: 50.0,
            slots: 3,
            churn_pct: 0.0,
        },
        &setup.candidates,
        31,
    );
    // Cut the second half of the candidates off from the source side
    // for 30 s.
    let side: Vec<HostId> = setup.candidates[members / 2..].to_vec();
    let plan = FaultPlan::with_events(
        31,
        vec![FaultEvent::Partition {
            side,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(150),
        }],
    );
    let mut driver = Driver::new(
        setup.underlay.clone(),
        None,
        setup.source,
        factory(),
        &scenario,
        vec![4; members + 1],
        DriverConfig::default(),
        31,
    );
    driver.set_fault_plan(plan);
    let out = driver.run();
    // The partition actually bit: peers were orphaned and messages died.
    assert!(
        out.stats.recovery.orphan_events >= 1,
        "partition orphaned no one"
    );
    assert!(!out.stats.recovery.reconnections.is_empty());
    assert!(out.counters.faults_dropped > 0);
    // Watchdog-bounded recovery: partition end (150 s) + data timeout
    // (15 s) + backed-off reconnect walks. Nobody may still be
    // reconnecting past that bound.
    let bound = 150.0 + 15.0 + 30.0;
    for &(at, _) in &out.stats.recovery.reconnections {
        assert!(
            at <= bound,
            "reconnection at {at}s, after the {bound}s bound"
        );
    }
    // The final slot (160–210 s) is fault-free: everyone is back and
    // the stream flows loss-free again.
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.connected, last.members, "dark peers after the heal");
    assert_eq!(last.tree_errors, 0);
    assert!(
        last.loss_rate < 0.35,
        "stream never resumed: final-slot loss {}",
        last.loss_rate
    );
}

/// Parent AND grandparent crash in the same slot, ungracefully: the
/// §3.3 anchor is dead and nobody sent Leave, so the orphan must detect
/// the failure via the stream watchdog and still find its way back.
#[test]
fn parent_and_grandparent_crash_in_same_slot() {
    let setup = ch3_setup(6, 0.0, 21);
    // Degree 1 everywhere forces a chain: src -> c0 -> c1 -> c2 -> ...
    let limits = vec![1u32; 7];
    let mut actions = Vec::new();
    for (i, &h) in setup.candidates.iter().enumerate() {
        actions.push((SimTime::from_secs(5 + i as u64 * 5), Action::Join(h)));
    }
    // With degree 1 the chain is join-ordered: candidates[1] is the
    // grandparent of candidates[3], candidates[2] its parent. Crash
    // both at once — no Leave notifications, no handover.
    let t_kill = SimTime::from_secs(60);
    actions.push((t_kill, Action::Crash(setup.candidates[1])));
    actions.push((t_kill, Action::Crash(setup.candidates[2])));
    actions.push((SimTime::from_secs(150), Action::Measure));
    let scenario = Scenario::from_actions(actions, SimTime::from_secs(155));
    let driver = Driver::new(
        setup.underlay.clone(),
        None,
        setup.source,
        factory(),
        &scenario,
        limits,
        DriverConfig::default(),
        21,
    );
    let out = driver.run();
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.members, 4); // 6 joined, 2 crashed
    assert_eq!(
        last.connected, 4,
        "orphans with a crashed parent AND grandparent must still recover"
    );
    assert_eq!(last.tree_errors, 0);
    assert!(out.stats.recovery.orphan_events >= 1);
    assert!(!out.stats.recovery.reconnections.is_empty());
}

/// Cheap flat underlay for the property: hosts on a line, 5 ms apart
/// one way (same shape the driver unit tests use).
fn line_space(n: usize) -> Arc<LatencySpace> {
    let mut rtt = vec![vec![0.0; n]; n];
    for (i, row) in rtt.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = 10.0 * (i as f64 - j as f64).abs();
            }
        }
    }
    Arc::new(LatencySpace::from_rtt_matrix(&rtt))
}

proptest! {
    /// Convergence guarantee: after ANY generated fault plan, the tree
    /// invariants (single parent, acyclic, degree limits, connectivity)
    /// are restored within bounded sim-time of the last fault clearing.
    #[test]
    fn tree_invariants_restored_after_any_fault_plan(
        flaps in 0usize..4,
        partitions in 0usize..2,
        msg_windows in 0usize..3,
        slowdowns in 0usize..2,
        plan_seed in 0u64..1u64 << 48,
    ) {
        let members = 10usize;
        let space = line_space(members + 1);
        let hosts: Vec<HostId> = (0..=members as u32).map(HostId).collect();
        let scenario = Scenario::churn(
            &ChurnConfig {
                members,
                warmup_s: 40.0,
                slot_s: 110.0,
                slots: 2,
                churn_pct: 0.0,
            },
            &hosts[1..],
            plan_seed,
        );
        // Faults confined to [50 s, 160 s); the run measures last at
        // 260 s, a 100 s quiet tail for recovery.
        let spec = ChaosSpec {
            start: SimTime::from_secs(50),
            end: SimTime::from_secs(160),
            link_flaps: flaps,
            partitions,
            msg_windows,
            slowdowns,
            ..ChaosSpec::default()
        };
        let plan = FaultPlan::generate(&spec, &hosts, plan_seed);
        prop_assert!(plan.horizon() <= SimTime::from_secs(160));
        let mut driver = Driver::new(
            space,
            None,
            HostId(0),
            factory(),
            &scenario,
            vec![3; members + 1],
            DriverConfig::default(),
            plan_seed,
        );
        driver.set_fault_plan(plan);
        let out = driver.run();
        let last = out.stats.measurements.last().unwrap();
        prop_assert_eq!(last.tree_errors, 0, "errors after quiet tail (seed {})", plan_seed);
        prop_assert_eq!(
            last.connected,
            last.members,
            "dark peers after quiet tail (seed {})",
            plan_seed
        );
    }
}
