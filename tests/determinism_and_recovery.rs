//! Determinism of the whole stack and failure-recovery behaviour.

use vdm_core::VdmFactory;
use vdm_experiments::setup::{ch3_setup, degree_limits_range};
use vdm_experiments::Protocol;
use vdm_netsim::SimTime;
use vdm_overlay::agent::AgentConfig;
use vdm_overlay::driver::{Driver, DriverConfig};
use vdm_overlay::scenario::{Action, ChurnConfig, Scenario};
use vdm_planetlab::{SessionConfig, SessionRunner};

#[test]
fn identical_seeds_reproduce_full_runs_bit_for_bit() {
    let run = |seed: u64| {
        let setup = ch3_setup(18, 0.0, 99);
        let limits = degree_limits_range(19, 2, 5, 99);
        let scenario = Scenario::churn(
            &ChurnConfig {
                members: 18,
                warmup_s: 100.0,
                slot_s: 50.0,
                slots: 3,
                churn_pct: 15.0,
            },
            &setup.candidates,
            seed,
        );
        let out = Protocol::Vdm.run(
            setup.underlay.clone(),
            Some(setup.underlay.clone()),
            setup.source,
            &scenario,
            limits,
            DriverConfig {
                compute_stress: true,
                ..DriverConfig::default()
            },
            seed,
        );
        (
            out.stats.startup_s,
            out.stats.reconnection_s,
            out.stats.received,
            out.final_snapshot.parent,
            out.events,
        )
    };
    assert_eq!(run(4), run(4));
    assert_ne!(run(4).4, run(5).4, "different seeds should diverge");
}

#[test]
fn planetlab_sessions_are_deterministic_with_jitter() {
    // Jitter draws from the seeded engine RNG, so even noisy probes
    // replay exactly.
    let cfg = SessionConfig {
        nodes: 15,
        warmup_s: 90.0,
        slot_s: 60.0,
        slots: 2,
        churn_pct: 10.0,
        chunk_interval_ms: 1000.0,
        ..SessionConfig::default()
    };
    let runner = SessionRunner::prepare(&cfg, 8);
    let a = runner.run(VdmFactory::delay_based(), 8);
    let b = runner.run(VdmFactory::delay_based(), 8);
    assert_eq!(a.stats.startup_s, b.stats.startup_s);
    assert_eq!(a.stats.reconnection_s, b.stats.reconnection_s);
    assert_eq!(a.final_snapshot.parent, b.final_snapshot.parent);
    assert_eq!(a.events, b.events);
}

/// Hand-built scenario: parent AND grandparent leave in the same
/// instant, so the orphan's §3.3 anchor is dead and it must fall back
/// to the source via the walk timeout path.
#[test]
fn orphan_recovers_when_grandparent_died_too() {
    let setup = ch3_setup(6, 0.0, 21);
    // Degree 1 everywhere forces a chain: src -> a -> b -> c -> ...
    let limits = vec![1u32; 7];
    let mut actions = Vec::new();
    for (i, &h) in setup.candidates.iter().enumerate() {
        actions.push((SimTime::from_secs(5 + i as u64 * 5), Action::Join(h)));
    }
    // Find who is where after the joins by replaying: with degree 1 the
    // chain is join-ordered, so candidates[1] is the grandparent of
    // candidates[3] and candidates[2] its parent. Kill both at once.
    let t_kill = SimTime::from_secs(60);
    actions.push((t_kill, Action::Leave(setup.candidates[1])));
    actions.push((t_kill, Action::Leave(setup.candidates[2])));
    actions.push((SimTime::from_secs(120), Action::Measure));
    let scenario = Scenario::from_actions(actions, SimTime::from_secs(125));
    let driver = Driver::new(
        setup.underlay.clone(),
        None,
        setup.source,
        VdmFactory::delay_based(),
        &scenario,
        limits,
        DriverConfig::default(),
        21,
    );
    let out = driver.run();
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.members, 4); // 6 joined, 2 left
    assert_eq!(
        last.connected, 4,
        "orphans with dead grandparents must still recover"
    );
    assert_eq!(last.tree_errors, 0);
    // At least one reconnection was recorded and took longer than a
    // normal one (timeout to the dead anchor first).
    assert!(!out.stats.reconnection_s.is_empty());
}

/// The data-timeout watchdog must pull peers out of dark subtrees even
/// if no Leave notification ever reaches them (e.g. it was processed by
/// a stale incarnation). We force the situation by disabling the stream
/// for a while... instead, more directly: run with a watchdog shorter
/// than the slot and assert no peer stays dark across a measurement.
#[test]
fn data_watchdog_keeps_the_session_alive_under_heavy_churn() {
    let setup = ch3_setup(16, 0.0, 31);
    let limits = degree_limits_range(17, 2, 3, 31);
    let scenario = Scenario::churn(
        &ChurnConfig {
            members: 16,
            warmup_s: 60.0,
            slot_s: 60.0,
            slots: 5,
            churn_pct: 30.0,
        },
        &setup.candidates,
        31,
    );
    let factory = VdmFactory {
        agent: AgentConfig {
            data_timeout: Some(SimTime::from_secs(10)),
            ..AgentConfig::default()
        },
        ..VdmFactory::delay_based()
    };
    let driver = Driver::new(
        setup.underlay.clone(),
        None,
        setup.source,
        factory,
        &scenario,
        limits,
        DriverConfig {
            data_interval: Some(SimTime::from_secs(1)),
            ..DriverConfig::default()
        },
        31,
    );
    let out = driver.run();
    for m in &out.stats.measurements {
        assert_eq!(m.tree_errors, 0, "at t={}", m.time_s);
    }
    // Joins commanded moments before a measurement may still be in
    // flight; what must never happen is peers *staying* dark. The final
    // slot had a full 60 s of quiet, so everyone must be attached.
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.connected, last.members, "dark peers at session end");
    for m in &out.stats.measurements[1..] {
        assert!(
            m.connected + 2 >= m.members,
            "too many dark peers at t={}: {}/{}",
            m.time_s,
            m.connected,
            m.members
        );
    }
}

#[test]
fn graceful_leaves_reconnect_quickly() {
    // §3.3: reconnection at the grandparent should be fast — compare
    // with startup on the same run.
    let setup = ch3_setup(30, 0.0, 44);
    let limits = degree_limits_range(31, 2, 4, 44);
    let scenario = Scenario::churn(
        &ChurnConfig {
            members: 30,
            warmup_s: 150.0,
            slot_s: 100.0,
            slots: 4,
            churn_pct: 10.0,
        },
        &setup.candidates,
        44,
    );
    let out = Protocol::Vdm.run(
        setup.underlay.clone(),
        None,
        setup.source,
        &scenario,
        limits,
        DriverConfig::default(),
        44,
    );
    assert!(!out.stats.reconnection_s.is_empty());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let startup = avg(&out.stats.startup_s);
    let reconn = avg(&out.stats.reconnection_s);
    assert!(
        reconn <= startup * 1.5 + 0.5,
        "reconnection {reconn}s should not dwarf startup {startup}s"
    );
}
