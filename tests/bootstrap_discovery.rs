//! Decentralized-bootstrap integration tests: joiners that know only a
//! (partly stale) bootstrap set must converge onto the tree under seed
//! crashes mid-bootstrap — deterministically per seed — and the whole
//! discovery subsystem must be byte-invisible when switched off.
//! Includes the `bootstrap_smoke` CI gate (fixed seed, fails on any
//! tree-invariant violation).

mod common;

use common::{resilient_factory as factory, run_driver};
use proptest::{prop_assert, prop_assert_eq, proptest};
use vdm_core::VdmFactory;
use vdm_experiments::figures::bootstrap::bootstrap_family_smoke;
use vdm_experiments::setup::ch3_setup;
use vdm_overlay::coords::CoordsConfig;
use vdm_overlay::driver::RunOutput;
use vdm_overlay::scenario::{ChurnConfig, FlashCrowdConfig, Scenario};
use vdm_overlay::DiscoveryConfig;

fn run_flash_crowd(topo_seed: u64, fc: &FlashCrowdConfig, plan_seed: u64) -> RunOutput {
    run_flash_crowd_with(topo_seed, fc, plan_seed, factory())
}

fn run_flash_crowd_with(
    topo_seed: u64,
    fc: &FlashCrowdConfig,
    plan_seed: u64,
    factory: VdmFactory,
) -> RunOutput {
    let setup = ch3_setup(fc.seeds + fc.joiners, 0.0, topo_seed);
    let scenario = Scenario::flash_crowd(fc, &setup.candidates, plan_seed);
    let members = setup.candidates.len();
    run_driver(&setup, factory, &scenario, vec![4; members + 1], plan_seed)
}

/// The fixed-seed CI gate: the acceptance cell (k = 3, 30 % stale
/// entries, half the live seeds crashed mid-crowd) must leave zero
/// structural violations, anchor at least one joiner via discovery,
/// and reproduce byte-identically on a rerun.
#[test]
fn bootstrap_smoke() {
    let report = bootstrap_family_smoke(42);
    assert_eq!(report.total_violations, 0, "tree invariants broke");
    assert!(
        report.anchor_median_s.is_finite(),
        "no joiner ever anchored via discovery"
    );
    for p in &report.points {
        assert!(
            p.connected_frac >= 0.99,
            "{} trial {}: only {} of the members connected",
            p.proto,
            p.trial,
            p.connected_frac
        );
        assert!(p.contacts > 0, "discovery never probed the seeds");
    }
    let again = bootstrap_family_smoke(42);
    assert_eq!(report.to_json(true, 42), again.to_json(true, 42));
}

/// Discovery off means *off*: a run with `discovery: None` and a run
/// whose config carries an empty seed set (nothing to probe, so the
/// subsystem must fall through silently) are byte-identical — same
/// engine events, same stats, same final parents.
#[test]
fn empty_discovery_config_is_byte_identical_to_none() {
    let members = 12usize;
    let setup = ch3_setup(members, 0.0, 42);
    let churn = ChurnConfig {
        members,
        warmup_s: 40.0,
        slot_s: 60.0,
        slots: 3,
        churn_pct: 5.0,
    };
    let run = |discovery: Option<DiscoveryConfig>| -> RunOutput {
        let mut scenario = Scenario::churn(&churn, &setup.candidates, 42);
        scenario.discovery = discovery;
        run_driver(&setup, factory(), &scenario, vec![4; members + 1], 42)
    };
    let off = run(None);
    let empty = run(Some(DiscoveryConfig::default()));
    assert_eq!(off.events, empty.events, "engine event counts diverged");
    assert_eq!(off.counters, empty.counters, "traffic counters diverged");
    assert_eq!(
        format!("{:?}", off.stats.measurements),
        format!("{:?}", empty.stats.measurements)
    );
    assert_eq!(off.stats.recovery, empty.stats.recovery);
    assert_eq!(off.final_snapshot.parent, empty.final_snapshot.parent);
    assert_eq!(
        empty.stats.recovery.bootstrap_contacts, 0,
        "an empty seed set must never probe"
    );
}

/// Coordinate-guided entry composes with decentralized bootstrap: the
/// acceptance flash crowd re-run with the whole coordinate stack on
/// (Vivaldi piggyback on walk traffic, coordinate-ranked discovery
/// probing, damped restarts) must stay exactly as clean as discovery
/// alone — zero invariant violations, so guided never exceeds
/// unguided — with everyone connected, and must actually exercise the
/// coordinate machinery rather than silently disable itself.
#[test]
fn guided_entry_composes_with_discovery() {
    let fc = |coord_ranked: bool| FlashCrowdConfig {
        seeds: 3,
        stale_frac: 0.3,
        joiners: 8,
        warmup_s: 30.0,
        crowd_at_s: 60.0,
        spread_s: 4.0,
        seed_churn_frac: 0.5,
        churn_delay_s: 2.0,
        settle_s: 90.0,
        measure_every_s: 60.0,
        discovery: DiscoveryConfig {
            coord_ranked,
            ..DiscoveryConfig::default()
        },
    };
    let mut guided_factory = factory();
    guided_factory.agent.coords = Some(CoordsConfig::default());
    if let Some(r) = guided_factory.agent.resilience.as_mut() {
        r.coord_ranked = true;
    }
    let plain = run_flash_crowd(42, &fc(false), 42);
    let guided = run_flash_crowd_with(42, &fc(true), 42, guided_factory);
    assert_eq!(plain.stats.recovery.total_violations(), 0);
    assert!(
        guided.stats.recovery.total_violations() <= plain.stats.recovery.total_violations(),
        "coordinates introduced invariant violations: {} vs {}",
        guided.stats.recovery.total_violations(),
        plain.stats.recovery.total_violations()
    );
    let last = guided.stats.measurements.last().unwrap();
    assert_eq!(last.tree_errors, 0, "guided run broke tree invariants");
    assert_eq!(last.connected, last.members, "guided run left dark peers");
    assert!(
        guided.stats.recovery.coord_updates > 0,
        "coordinates never updated — the piggyback path is dead"
    );
}

proptest! {
    /// Convergence guarantee: under ANY flash-crowd schedule (stale
    /// fraction, seed-churn fraction, arrival spread and plan seed all
    /// varied) over the two pinned topologies, every joiner ends up
    /// connected — via a discovered anchor or the source fallback —
    /// and the settled tree is structurally clean. Every join episode
    /// must account for exactly one anchor or one fallback.
    #[test]
    fn flash_crowd_converges_under_random_seed_crash_schedules(
        stale_pct in 0u32..50,
        churn_pct in 0u32..=100,
        spread_s in 1.0f64..8.0,
        plan_seed in 0u64..1u64 << 48,
    ) {
        for topo_seed in [11u64, 42] {
            let fc = FlashCrowdConfig {
                seeds: 3,
                stale_frac: stale_pct as f64 / 100.0,
                joiners: 8,
                warmup_s: 30.0,
                crowd_at_s: 60.0,
                spread_s,
                seed_churn_frac: churn_pct as f64 / 100.0,
                churn_delay_s: 2.0,
                // Generous settle window: a late joiner that exhausts
                // all four discovery rounds (~30 s of backoff) before
                // falling back to the source still has time to land.
                settle_s: 90.0,
                measure_every_s: 60.0,
                discovery: DiscoveryConfig::default(),
            };
            let out = run_flash_crowd(topo_seed, &fc, plan_seed);
            let last = out.stats.measurements.last().unwrap();
            prop_assert_eq!(
                last.tree_errors, 0,
                "errors after settle (topo {}, plan {})", topo_seed, plan_seed
            );
            prop_assert_eq!(
                last.connected, last.members,
                "dark peers after settle (topo {}, plan {})", topo_seed, plan_seed
            );
            let r = &out.stats.recovery;
            let joins = out.stats.startup_s.len() as u64;
            prop_assert_eq!(
                r.discovery_anchors.len() as u64 + r.discovery_fallbacks,
                joins,
                "join episodes unaccounted for (topo {}, plan {})", topo_seed, plan_seed
            );
            prop_assert!(
                r.total_violations() == 0,
                "invariant violations mid-run (topo {}, plan {})", topo_seed, plan_seed
            );
        }
    }
}
