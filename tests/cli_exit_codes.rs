//! Exit-code contract of the `vdm-repro` binary: every error branch
//! must terminate with a non-zero status (2 for usage errors, 1 for
//! runtime/I-O failures) and say something on stderr, so scripted
//! reproduction pipelines fail loudly instead of producing partial
//! results with status 0.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_vdm-repro");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn vdm-repro")
}

fn assert_usage_error(args: &[&str]) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !out.stderr.is_empty(),
        "{args:?} exited 2 silently — usage errors must explain themselves"
    );
}

/// A scratch path that does not exist and is cleaned up on drop.
fn scratch(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("vdm-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn usage_errors_exit_2() {
    assert_usage_error(&[]); // no family at all
    assert_usage_error(&["no-such-family"]);
    assert_usage_error(&["soak", "--bogus-flag"]);
    assert_usage_error(&["soak", "--seed"]); // missing value
    assert_usage_error(&["soak", "--seed", "not-a-number"]);
    assert_usage_error(&["soak", "--csv"]); // missing value
    assert_usage_error(&["soak", "--cache", "/tmp/x", "--no-cache"]);
    assert_usage_error(&["soak", "--smoke"]); // bench-only flag
}

#[test]
fn trace_usage_errors_exit_2() {
    assert_usage_error(&["trace"]); // needs a family or inspect mode
    assert_usage_error(&["trace", "no-such-family"]);
    assert_usage_error(&["trace", "fig5-tree"]); // prose-only family
    assert_usage_error(&["trace", "soak", "--out"]); // missing value
    assert_usage_error(&["trace", "filter"]); // needs --input
    assert_usage_error(&["trace", "summarize"]);
    assert_usage_error(&["trace", "dump", "--input", "x", "--limit", "NaN"]);
    assert_usage_error(&["trace", "filter", "--input", "x", "--host", "-1"]);
}

#[test]
fn help_exits_0() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn unwritable_csv_dir_exits_1() {
    // A path that traverses a regular *file* cannot be created as a
    // directory (NotADirectory — robust even when running as root,
    // unlike permission-bit tricks).
    let blocker = scratch("csvblock");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let csv = blocker.join("sub");
    let out = run(&[
        "soak",
        "--quick",
        "--no-cache",
        "--csv",
        csv.to_str().unwrap(),
    ]);
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("creating CSV directory"),
        "error should name the failing operation, got: {err}"
    );
}

#[test]
fn unwritable_trace_out_dir_exits_1() {
    let blocker = scratch("traceblock");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let out_dir = blocker.join("sub");
    // Fails fast: the out dir is created before any simulation runs.
    let out = run(&[
        "trace",
        "soak",
        "--quick",
        "--no-cache",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn trace_inspect_io_and_parse_errors_exit_1() {
    // Nonexistent input file.
    let missing = scratch("missing");
    let out = run(&["trace", "summarize", "--input", missing.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Malformed JSONL must be a hard error, not a silent skip.
    let bad = scratch("badlog");
    std::fs::write(
        &bad,
        "{\"t_us\":1,\"kind\":\"orphaned\"}\nnot json at all\n",
    )
    .unwrap();
    let out = run(&["trace", "filter", "--input", bad.to_str().unwrap()]);
    let _ = std::fs::remove_file(&bad);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(":2:"),
        "parse error should cite the line number, got: {err}"
    );

    // An empty log is an error for every inspect mode (nothing to
    // filter/summarize means the traced run went wrong upstream).
    let empty = scratch("emptylog");
    std::fs::write(&empty, "").unwrap();
    let out = run(&["trace", "summarize", "--input", empty.to_str().unwrap()]);
    let _ = std::fs::remove_file(&empty);
    assert_eq!(out.status.code(), Some(1));
}
