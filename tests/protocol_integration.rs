//! Cross-crate integration: every protocol, both underlay models, full
//! message-driven sessions under churn.

use std::sync::Arc;
use vdm_experiments::setup::{ch3_setup, degree_limits_range};
use vdm_experiments::Protocol;
use vdm_netsim::Underlay;
use vdm_netsim::{HostId, SimTime};
use vdm_overlay::driver::{DriverConfig, RunOutput};
use vdm_overlay::scenario::{ChurnConfig, Scenario};
use vdm_planetlab::{SessionConfig, SessionRunner};

const ALL_PROTOCOLS: [Protocol; 6] = [
    Protocol::Vdm,
    Protocol::VdmL,
    Protocol::VdmR(120),
    Protocol::Hmtp(60),
    Protocol::Btp(60),
    Protocol::Star,
];

fn ch3_run(proto: Protocol, members: usize, churn: f64, seed: u64) -> RunOutput {
    let setup = ch3_setup(members, 0.0, seed);
    let mut limits = degree_limits_range(members + 1, 2, 5, seed);
    limits[0] = members as u32; // roomy source so Star stays a star
    let scenario = Scenario::churn(
        &ChurnConfig {
            members,
            warmup_s: 120.0,
            slot_s: 60.0,
            slots: 3,
            churn_pct: churn,
        },
        &setup.candidates,
        seed,
    );
    proto.run(
        setup.underlay.clone(),
        Some(setup.underlay.clone()),
        setup.source,
        &scenario,
        limits,
        DriverConfig {
            data_interval: Some(SimTime::from_secs(2)),
            compute_stress: true,
            compute_mst_ratio: false,
            loss_probe_noise: 0.002,
            data_plane: None,
        },
        seed,
    )
}

#[test]
fn every_protocol_survives_churn_on_the_routed_underlay() {
    for proto in ALL_PROTOCOLS {
        let out = ch3_run(proto, 24, 12.0, 11);
        let last = out.stats.measurements.last().expect("measurements");
        assert_eq!(last.members, 24, "{proto:?}");
        assert_eq!(
            last.connected, last.members,
            "{proto:?} left peers disconnected"
        );
        assert_eq!(last.tree_errors, 0, "{proto:?} corrupted the tree");
        assert!(last.stress.is_some(), "{proto:?} lost stress accounting");
        assert!(
            out.stats.startup_s.len() >= 24,
            "{proto:?} missed join completions"
        );
        // Every startup finished well under the walk-restart ceiling.
        for &s in &out.stats.startup_s {
            assert!(s < 30.0, "{proto:?} startup {s}s");
        }
    }
}

#[test]
fn every_protocol_survives_churn_on_the_latency_space() {
    let cfg = SessionConfig {
        nodes: 20,
        warmup_s: 120.0,
        slot_s: 60.0,
        slots: 3,
        churn_pct: 10.0,
        chunk_interval_ms: 1000.0,
        ..SessionConfig::default()
    };
    for proto in ALL_PROTOCOLS {
        let runner = SessionRunner::prepare(&cfg, 5);
        let scenario = runner.scenario(5);
        let out = proto.run(
            runner.space.clone(),
            None,
            runner.source,
            &scenario,
            // Roomy limits so the star can be a star on this testbed.
            vec![64; runner.space.num_hosts()],
            DriverConfig {
                data_interval: Some(SimTime::from_secs(1)),
                ..DriverConfig::default()
            },
            5,
        );
        let last = out.stats.measurements.last().expect("measurements");
        assert_eq!(last.connected, last.members, "{proto:?}");
        assert_eq!(last.tree_errors, 0, "{proto:?}");
        assert!(last.stress.is_none(), "no physical links here");
    }
}

#[test]
fn stream_actually_flows_end_to_end() {
    let out = ch3_run(Protocol::Vdm, 30, 0.0, 3);
    // With no churn and no link loss, every connected member receives
    // nearly every chunk after its join.
    let loss = out.stats.overall_loss();
    assert!(
        loss < 0.10,
        "lossless network lost {:.1}% of chunks",
        loss * 100.0
    );
    assert!(out.stats.source_chunks > 50);
    let received: u64 = out.stats.received.iter().sum();
    assert!(received > 0);
    // Data flowed along the tree: more per-hop sends than source chunks.
    let last = out.stats.measurements.last().unwrap();
    assert!(
        last.loss_rate < 0.02,
        "steady-state loss {}",
        last.loss_rate
    );
}

#[test]
fn rejoining_hosts_get_fresh_incarnations() {
    // High churn over few candidates forces the same hosts to leave and
    // re-join repeatedly; stale messages from old incarnations must not
    // corrupt the new ones.
    let out = ch3_run(Protocol::Vdm, 10, 40.0, 17);
    let last = out.stats.measurements.last().unwrap();
    assert_eq!(last.connected, last.members);
    assert_eq!(last.tree_errors, 0);
    // There were rejoins: more joins than distinct members.
    assert!(out.stats.startup_s.len() > 10);
}

#[test]
fn underlay_sharing_is_thread_safe() {
    // The same Arc'd underlay is used from parallel replicated runs in
    // the harness; simulate that here with two sequential drivers over
    // one Arc (the compile-time Send+Sync bound is the real check).
    let setup = ch3_setup(12, 0.0, 9);
    let underlay: Arc<dyn vdm_netsim::Underlay + Send + Sync> = setup.underlay.clone();
    let _hold: Arc<dyn vdm_netsim::Underlay + Send + Sync> = Arc::clone(&underlay);
    for seed in [1, 2] {
        let scenario = Scenario::churn(
            &ChurnConfig {
                members: 12,
                warmup_s: 60.0,
                slot_s: 30.0,
                slots: 1,
                churn_pct: 0.0,
            },
            &setup.candidates,
            seed,
        );
        let out = Protocol::Vdm.run(
            underlay.clone(),
            Some(setup.underlay.clone()),
            HostId(0),
            &scenario,
            vec![4; 13],
            DriverConfig::default(),
            seed,
        );
        assert_eq!(out.final_snapshot.connected_members().len(), 12);
    }
}
