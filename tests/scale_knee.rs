//! A9 scale-knee regression suite: coordinate-guided joins must keep
//! the mean contacts-per-join on the paper's `4·log₄N` curve where the
//! unguided walk develops its knee, the coordinate subsystem must be
//! byte-invisible when off (golden-CSV pins over the A1/A2/A4
//! families), and the Vivaldi update itself must be deterministic and
//! numerically bounded under arbitrary RTT streams.

mod common;

use common::{assert_matches_golden, assert_smoke_json};
use proptest::{prop_assert, prop_assert_eq, proptest};
use vdm_experiments::figures::{ablation, scale};
use vdm_experiments::Effort;
use vdm_netsim::HostId;
use vdm_overlay::coords::{pair_seed, CoordsConfig, VivaldiState};

/// The CI knee gate (heavy: a 10k-member triple sweep, so `#[ignore]`d
/// by default; CI runs it in release with `--include-ignored`). At the
/// size where the unguided walk's contact count leaves the log curve
/// (~14× the prediction at N=10k), the guided series must stay within
/// 3× of `4·log₄N`, beat the unguided mean outright, and pay at most
/// 2% stretch for it.
#[test]
#[ignore = "10k-member sweep; run in release (CI passes --include-ignored)"]
fn guided_joins_stay_on_the_log_curve_at_10k() {
    let r = scale::scale_family_with_sizes(&[10_000], 42);
    let (vdm, guided) = (&r.points[0], &r.points[1]);
    assert_eq!((vdm.protocol, guided.protocol), ("vdm", "vdm_guided"));
    assert!(
        guided.contacts_mean <= 3.0 * guided.predicted,
        "knee is back: guided mean contacts {:.1} vs 3x predicted {:.1}",
        guided.contacts_mean,
        3.0 * guided.predicted
    );
    assert!(
        guided.contacts_mean < vdm.contacts_mean,
        "guided joins ({:.1}) cost more contacts than unguided ({:.1})",
        guided.contacts_mean,
        vdm.contacts_mean
    );
    assert!(
        guided.stretch_mean <= vdm.stretch_mean * 1.02,
        "guided stretch {:.4} regressed past 2% of unguided {:.4}",
        guided.stretch_mean,
        vdm.stretch_mean
    );
}

/// A fast shadow of the knee gate at a size the default test job can
/// afford: guided entry must already undercut the unguided mean well
/// before the knee, on the same seed the CI smoke gate uses. (The
/// stretch bound is pinned only at the 10k knee above: at toy sizes
/// guided deliberately trades a small stretch premium for its contact
/// savings, and the async stack ships it default-off.)
#[test]
fn guided_joins_undercut_unguided_at_smoke_sizes() {
    let r = scale::scale_family_with_sizes(&[512], 42);
    let (vdm, guided) = (&r.points[0], &r.points[1]);
    assert_eq!((vdm.protocol, guided.protocol), ("vdm", "vdm_guided"));
    assert!(
        guided.contacts_mean < vdm.contacts_mean,
        "guided {:.1} >= unguided {:.1} at N=512",
        guided.contacts_mean,
        vdm.contacts_mean
    );
    assert_smoke_json(&r.to_json(true, 42), "scale", 42);
}

/// Byte-invisibility pin: with coordinates off (every default), the
/// A1/A2/A4 ablation families must reproduce their committed golden
/// CSVs byte-for-byte at the fixed seed. Any accidental RNG draw,
/// timer, or message added by the coordinate plumbing shifts these
/// CSVs and fails the diff.
#[test]
fn coords_off_ablation_csvs_match_goldens() {
    for (golden, tables) in [
        ("a1_slack_quick_seed42.csv", {
            ablation::slack_sweep(Effort::Quick, 42)
        }),
        ("a2_anchor_quick_seed42.csv", {
            ablation::reconnect_anchor(Effort::Quick, 42)
        }),
        ("a4_topology_quick_seed42.csv", {
            ablation::topology_sensitivity(Effort::Quick, 42)
        }),
    ] {
        let mut csv = String::new();
        for t in &tables {
            csv.push_str(&t.to_csv());
            csv.push('\n');
        }
        assert_matches_golden(golden, &csv);
    }
}

proptest! {
    /// The Vivaldi update is a pure function of (state, sample, rtt,
    /// config, pair seed): same inputs, bit-identical output — and no
    /// RTT stream, however adversarial (including zero and coincident
    /// coordinates), drives a coordinate or error estimate non-finite
    /// or past the configured clamps.
    #[test]
    fn vivaldi_update_is_deterministic_and_finite(
        seed in 0u64..1u64 << 48,
        rtts in proptest::collection::vec(0.0f64..2000.0, 1..64),
    ) {
        let cfg = CoordsConfig::default();
        let me = HostId((seed % 509) as u32);
        let mut a = VivaldiState::new(&cfg);
        let mut b = VivaldiState::new(&cfg);
        let mut remote = VivaldiState::new(&cfg);
        for (i, &rtt) in rtts.iter().enumerate() {
            let peer = HostId(((seed >> 8) % 521) as u32 + 1000 + (i % 7) as u32);
            let ps = pair_seed(me, peer);
            let sample = remote.sample();
            let step_a = a.update(sample, rtt, &cfg, ps);
            let step_b = b.update(sample, rtt, &cfg, ps);
            prop_assert_eq!(step_a.to_bits(), step_b.to_bits(), "step diverged at {}", i);
            prop_assert_eq!(a.coord.0, b.coord.0, "coords diverged at {}", i);
            prop_assert_eq!(a.err.to_bits(), b.err.to_bits(), "err diverged at {}", i);
            prop_assert!(a.coord.is_finite(), "coord went non-finite at {}", i);
            prop_assert!(
                a.coord.0.iter().all(|c| c.abs() <= cfg.max_coord),
                "coord escaped the clamp at {}", i
            );
            prop_assert!(
                a.err.is_finite() && a.err >= cfg.err_floor && a.err <= cfg.err_init,
                "err {} escaped [{}, {}] at {}", a.err, cfg.err_floor, cfg.err_init, i
            );
            // The remote evolves too, so later iterations see moving
            // coordinates (including exact-coincidence on step one).
            remote.update(a.sample(), rtt, &cfg, pair_seed(peer, me));
        }
    }
}
