//! Paper-shape assertions: the qualitative claims of the evaluation,
//! checked at reduced scale (exact magnitudes live in EXPERIMENTS.md).

use vdm_experiments::figures::{complexity, fig3, fig5};
use vdm_experiments::setup::{ch3_setup, degree_limits_range};
use vdm_experiments::{Effort, Protocol};
use vdm_netsim::SimTime;
use vdm_overlay::driver::DriverConfig;
use vdm_overlay::scenario::{ChurnConfig, Scenario};

fn ch3_metrics(proto: Protocol, seed: u64) -> vdm_experiments::extract::RunMetrics {
    let setup = ch3_setup(30, 0.0, seed);
    let mut limits = degree_limits_range(31, 2, 5, seed);
    limits[0] = 30;
    let scenario = Scenario::churn(
        &ChurnConfig {
            members: 30,
            warmup_s: 150.0,
            slot_s: 100.0,
            slots: 3,
            churn_pct: 5.0,
        },
        &setup.candidates,
        seed,
    );
    let out = proto.run(
        setup.underlay.clone(),
        Some(setup.underlay.clone()),
        setup.source,
        &scenario,
        limits,
        DriverConfig {
            data_interval: Some(SimTime::from_secs(2)),
            compute_stress: true,
            compute_mst_ratio: true,
            loss_probe_noise: 0.0,
            data_plane: None,
        },
        seed,
    );
    vdm_experiments::extract::run_metrics(&out, 2)
}

#[test]
fn unicast_star_is_the_stretch_optimum_and_stress_pessimum() {
    let star = ch3_metrics(Protocol::Star, 1);
    let vdm = ch3_metrics(Protocol::Vdm, 1);
    // §3.6.3: "Unicast is assumed to have optimal stretch" / "In IP
    // multicast, stress is always one" — the star bounds both sides.
    assert!(
        (star.stretch - 1.0).abs() < 1e-6,
        "star stretch {}",
        star.stretch
    );
    assert!(star.usage > 0.99 && star.usage < 1.01);
    assert!(vdm.stress >= 1.0);
    assert!(
        star.stress > vdm.stress,
        "star stress {} must exceed the tree's {}",
        star.stress,
        vdm.stress
    );
    assert!(vdm.usage < star.usage, "multicast must save resources");
}

#[test]
fn mst_ratio_bounds() {
    for seed in [1, 2, 3] {
        let vdm = ch3_metrics(Protocol::Vdm, seed);
        assert!(vdm.mst_ratio >= 1.0 - 1e-9, "ratio {}", vdm.mst_ratio);
        // §5.4.6: "still it is not very far from MST" — generous bound.
        assert!(vdm.mst_ratio < 5.0, "ratio {}", vdm.mst_ratio);
    }
}

#[test]
fn vdm_overhead_is_far_below_hmtp() {
    // §3.5: "VDM is very efficient in terms of overhead when compared
    // to HMTP" — HMTP pays for periodic refinement and root paths.
    let vdm = ch3_metrics(Protocol::Vdm, 5);
    let hmtp = ch3_metrics(Protocol::Hmtp(120), 5);
    assert!(
        hmtp.overhead > vdm.overhead * 2.0,
        "HMTP {} vs VDM {}",
        hmtp.overhead,
        vdm.overhead
    );
}

#[test]
fn vdm_loses_no_more_than_hmtp_under_churn() {
    // Figs. 3.27 / 5.12: VDM's loss sits at or below HMTP's.
    let mut vdm_sum = 0.0;
    let mut hmtp_sum = 0.0;
    for seed in [1, 2, 3, 4] {
        vdm_sum += ch3_metrics(Protocol::Vdm, seed).loss;
        hmtp_sum += ch3_metrics(Protocol::Hmtp(120), seed).loss;
    }
    assert!(
        vdm_sum <= hmtp_sum * 1.25 + 0.004,
        "VDM loss {vdm_sum} vs HMTP {hmtp_sum}"
    );
}

#[test]
fn join_complexity_is_logarithmic() {
    let t = &complexity::join_complexity(Effort::Quick, 3)[0];
    // Eq. 3.3: contacted ≈ n·log_n(N). Between N=32 and N=512 the
    // prediction grows by log ratio ~1.8x; measured growth must be of
    // that order, nowhere near the 16x of a linear scan.
    let first = t.rows.first().unwrap().1[0].mean;
    let last = t.rows.last().unwrap().1[0].mean;
    assert!(last / first < 5.0, "grew {first} -> {last}");
}

#[test]
fn figure_families_produce_full_tables() {
    // Smoke the two biggest runners end to end at quick effort and
    // check row/series arity for every figure they regenerate.
    let f3 = fig3::nodes_family(Effort::Quick, 7);
    assert_eq!(f3.len(), 4);
    for t in &f3 {
        assert_eq!(t.rows.len(), 3);
        assert!(t.figure.starts_with("Fig 3."));
    }
    let f5 = fig5::refine_family(Effort::Quick, 7);
    assert_eq!(f5.len(), 3);
    for t in &f5 {
        assert_eq!(t.series.len(), 2);
    }
}

#[test]
fn degree_sweep_shows_the_stretch_knee() {
    // Figs. 3.34 / 5.23: stretch falls sharply from starvation-level
    // degrees and then flattens.
    let tables = fig3::degree_family(Effort::Quick, 13);
    let stretch = &tables[1];
    let lo = stretch.rows.first().unwrap(); // avg degree 1.5
    let hi = stretch.rows.last().unwrap(); // avg degree 8
    assert!(
        lo.1[0].mean > hi.1[0].mean,
        "stretch at degree {} ({}) should exceed degree {} ({})",
        lo.0,
        lo.1[0].mean,
        hi.0,
        hi.1[0].mean
    );
}
