//! The observability layer is pure observation: enabling the tracer
//! must not change a single output byte, and the event log it produces
//! must be parseable, non-trivial structured data.
//!
//! Everything lives in one `#[test]` because the tracer is
//! process-global: a second test running concurrently in this binary
//! would bleed its engines' events into the shared sink mid-assertion.

use std::sync::{Arc, Mutex};
use vdm_experiments::figures::soak;
use vdm_experiments::runner::{with_mode, ExecMode};
use vdm_experiments::{Effort, Table};
use vdm_trace::json::{parse_flat_object, Value};
use vdm_trace::{record_touches_host, EventSink, JsonlSink, Tracer};

fn csv_blob(tables: &[Table]) -> String {
    tables
        .iter()
        .map(Table::to_csv)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn tracing_is_invisible_to_outputs_and_produces_a_parseable_log() {
    // Reference run, tracer disabled (the default).
    let baseline = with_mode(ExecMode::Sequential, || {
        soak::soak_resilience(Effort::Quick, 42)
    });

    // Same run with a JSONL tracer capturing into memory.
    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    let prev = vdm_trace::set_global(Tracer::with_sink(sink.clone() as Arc<Mutex<dyn EventSink>>));
    let traced = with_mode(ExecMode::Sequential, || {
        soak::soak_resilience(Effort::Quick, 42)
    });
    vdm_trace::set_global(prev);
    let log = {
        let mut s = sink.lock().unwrap();
        s.flush();
        String::from_utf8(std::mem::take(s.writer_mut())).expect("utf-8 log")
    };

    // 1. Bit-for-bit golden equivalence with tracing on.
    assert_eq!(baseline.len(), traced.len());
    assert_eq!(
        csv_blob(&baseline),
        csv_blob(&traced),
        "enabling the tracer changed simulation output"
    );

    // 2. The log is non-empty and every line is a flat JSON record
    //    with a timestamp and a kind.
    let recs: Vec<_> = log
        .lines()
        .map(|l| parse_flat_object(l).unwrap_or_else(|| panic!("malformed record: {l}")))
        .collect();
    assert!(
        recs.len() > 100,
        "a full soak family should emit thousands of events, got {}",
        recs.len()
    );
    for rec in &recs {
        assert!(rec.get("t_us").and_then(Value::as_num).is_some());
        assert!(rec.get("kind").and_then(Value::as_str).is_some());
    }

    // 3. The protocol's life-cycle events all show up: joins walk and
    //    connect, churn orphans hosts, resilience repairs chunks.
    let kinds: std::collections::BTreeSet<&str> = recs
        .iter()
        .filter_map(|r| r.get("kind").and_then(Value::as_str))
        .collect();
    for expected in [
        "walk_start",
        "walk_decision",
        "walk_connected",
        "parent_change",
        "orphaned",
        "failover_attempt",
        "nack_sent",
        "chunk_repaired",
    ] {
        assert!(kinds.contains(expected), "no `{expected}` event in log");
    }

    // 4. Timestamps are plausible simulation times (the soak scenario
    //    runs for minutes of simulated time) and host filtering finds
    //    the joining hosts.
    let t_max = recs
        .iter()
        .filter_map(|r| r.get("t_us").and_then(Value::as_num))
        .fold(0.0f64, f64::max);
    assert!(
        t_max > 60e6,
        "soak trace should span minutes, got {t_max}µs"
    );
    assert!(
        recs.iter().any(|r| record_touches_host(r, 1)),
        "host 1 never appears in the trace"
    );

    // 5. Determinism of the log itself: a sequential re-run with a
    //    fresh sink reproduces the identical byte stream.
    let sink2 = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    let prev = vdm_trace::set_global(Tracer::with_sink(sink2.clone() as Arc<Mutex<dyn EventSink>>));
    let again = with_mode(ExecMode::Sequential, || {
        soak::soak_resilience(Effort::Quick, 42)
    });
    vdm_trace::set_global(prev);
    let log2 = {
        let mut s = sink2.lock().unwrap();
        s.flush();
        String::from_utf8(std::mem::take(s.writer_mut())).unwrap()
    };
    assert_eq!(csv_blob(&traced), csv_blob(&again));
    assert_eq!(log, log2, "sequential trace logs differ between runs");
}
