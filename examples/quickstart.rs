//! Quickstart: build a VDM multicast tree and inspect it.
//!
//! Ten peers live on a synthetic "virtual line" (think: RTTs along a
//! transcontinental path). VDM connects peers that lie in the same
//! virtual direction, so the tree should follow the line instead of
//! starring everyone to the source.
//!
//! Run with: `cargo run --release --example quickstart`

use vdm_core::prelude::*;
use vdm_netsim::HostId;
use vdm_overlay::metrics::mst_ratio;
use vdm_overlay::sync::SyncOverlay;

fn main() {
    // Virtual positions of the peers (ms from the source).
    let positions: Vec<f64> = vec![0.0, 12.0, 25.0, 7.0, 40.0, 33.0, 18.0, 3.0, 48.0, 29.0];
    let n = positions.len();
    let pos = positions.clone();
    let dist = move |a: HostId, b: HostId| (pos[a.idx()] - pos[b.idx()]).abs().max(0.1);

    // The source is host 0; everyone may feed up to 3 children.
    let policy = VdmPolicy::delay_based();
    let mut overlay = SyncOverlay::new(n, HostId(0), 3, dist.clone());
    for h in 1..n as u32 {
        let trace = overlay.join(HostId(h), 3, &policy);
        println!(
            "peer h{h} (at {:>4.0} ms) joined under {} after contacting {} peers",
            positions[h as usize], trace.parent, trace.contacted
        );
    }

    let snapshot = overlay.snapshot();
    println!("\noverlay tree:\n{}", snapshot.to_ascii(|h| format!("{h}")));

    let errors = snapshot.validate(&overlay.limits());
    assert!(errors.is_empty(), "structural errors: {errors:?}");

    let ratio = mst_ratio(&snapshot, &dist).expect("enough members");
    println!("tree cost / MST cost = {ratio:.3} (1.0 would be the MST)");

    // A node leaves; its orphans reconnect at their grandparent (§3.3).
    println!("\npeer h1 leaves; orphans reconnect:");
    for (orphan, trace) in overlay.leave(HostId(1), &policy) {
        println!("  {orphan} reconnected under {}", trace.parent);
    }
    let snapshot = overlay.snapshot();
    println!(
        "\noverlay tree after the leave:\n{}",
        snapshot.to_ascii(|h| format!("{h}"))
    );
    assert!(snapshot.validate(&overlay.limits()).is_empty());
}
