//! Chapter 4 in one file: the same protocol, two virtual metrics, two
//! different trees.
//!
//! Delay and loss are uncorrelated on real paths ("a peer might
//! experience high loss rate on a good path in terms of delay", §4.1),
//! so VDM-D (RTT distances) and VDM-L (loss distances) build different
//! overlays on the same network — VDM-D minimizes stretch for
//! interactive video, VDM-L minimizes loss for loss-sensitive
//! streaming.
//!
//! Run with: `cargo run --release --example custom_metric_tree`

use vdm_experiments::setup::{ch3_setup, degree_limits_range};
use vdm_experiments::Protocol;
use vdm_netsim::SimTime;
use vdm_overlay::driver::DriverConfig;
use vdm_overlay::scenario::{ChurnConfig, Scenario};

fn main() {
    // 60 hosts on a transit-stub underlay where every physical link has
    // a random error rate in [0, 2%) — the §4.2 setup.
    let seed = 7;
    let setup = ch3_setup(60, 0.02, seed);
    let limits = degree_limits_range(61, 2, 5, seed);
    let scenario = Scenario::churn(
        &ChurnConfig {
            members: 60,
            warmup_s: 300.0,
            slot_s: 150.0,
            slots: 2,
            churn_pct: 0.0,
        },
        &setup.candidates,
        seed,
    );

    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>11}",
        "metric", "stress", "stretch", "loss(%)", "tree-edges"
    );
    let mut results = Vec::new();
    for proto in [Protocol::Vdm, Protocol::VdmL] {
        let out = proto.run(
            setup.underlay.clone(),
            Some(setup.underlay.clone()),
            setup.source,
            &scenario,
            limits.clone(),
            DriverConfig {
                data_interval: Some(SimTime::from_secs(1)),
                compute_stress: true,
                compute_mst_ratio: false,
                loss_probe_noise: 0.002,
                data_plane: None,
            },
            seed,
        );
        let m = out.stats.measurements.last().expect("measured").clone();
        println!(
            "{:>8} {:>9.3} {:>9.3} {:>9.3} {:>11}",
            proto.name(),
            m.stress.map_or(0.0, |s| s.mean),
            m.stretch.mean,
            m.loss_rate * 100.0,
            out.final_snapshot.edges().len(),
        );
        results.push((proto.name(), m, out.final_snapshot));
    }

    // The two trees must genuinely differ (Fig. 4.5: "Differently
    // formed overlay trees").
    let (_, _, ref tree_d) = results[0];
    let (_, _, ref tree_l) = results[1];
    let differing = tree_d
        .members
        .iter()
        .filter(|&&m| tree_d.parent_of(m) != tree_l.parent_of(m))
        .count();
    println!(
        "\npeers with a different parent under VDM-L: {differing}/{}",
        tree_d.members.len()
    );
    assert!(differing > 0, "the metrics should shape different trees");

    // And the trade-off should lean the right way: VDM-L no worse on
    // loss, VDM-D no worse on stretch (§4.2's conclusion).
    let (d, l) = (&results[0].1, &results[1].1);
    println!(
        "VDM-D stretch {:.3} vs VDM-L {:.3}; VDM-D loss {:.2}% vs VDM-L {:.2}%",
        d.stretch.mean,
        l.stretch.mean,
        d.loss_rate * 100.0,
        l.loss_rate * 100.0
    );
}
