//! Live streaming under churn — the paper's motivating workload
//! (Internet TV over a P2P overlay, Chapter 1).
//!
//! A 40-peer emulated-PlanetLab session streams 2 chunks/s while peers
//! join and leave every slot. We print the per-slot measurements the
//! paper's Chapter 5 figures are built from: who is connected, how
//! stretched the tree is, how much data the churn cost.
//!
//! Run with: `cargo run --release --example live_stream_session`

use vdm_core::VdmFactory;
use vdm_planetlab::{SessionConfig, SessionRunner};

fn main() {
    let cfg = SessionConfig {
        nodes: 40,
        warmup_s: 300.0,
        slot_s: 120.0,
        slots: 6,
        churn_pct: 8.0,
        chunk_interval_ms: 500.0,
        ..SessionConfig::default()
    };
    let seed = 2026;
    let runner = SessionRunner::prepare(&cfg, seed);
    println!(
        "pool: {} working sites; source: {}",
        runner.sites.len(),
        runner.label(runner.source)
    );

    let out = runner.run(VdmFactory::delay_based(), seed);

    println!(
        "\n{:>8} {:>8} {:>10} {:>9} {:>9} {:>9}",
        "time(s)", "members", "connected", "stretch", "loss(%)", "hopcount"
    );
    for m in &out.stats.measurements {
        println!(
            "{:>8.0} {:>8} {:>10} {:>9.2} {:>9.2} {:>9.2}",
            m.time_s,
            m.members,
            m.connected,
            m.stretch.mean,
            m.loss_rate * 100.0,
            m.hopcount.mean
        );
        assert_eq!(m.tree_errors, 0, "structural error at t={}", m.time_s);
    }

    let startup: f64 = out.stats.startup_s.iter().sum::<f64>() / out.stats.startup_s.len() as f64;
    println!(
        "\njoins: {} (avg startup {:.2}s)",
        out.stats.startup_s.len(),
        startup
    );
    if !out.stats.reconnection_s.is_empty() {
        let reconn: f64 =
            out.stats.reconnection_s.iter().sum::<f64>() / out.stats.reconnection_s.len() as f64;
        println!(
            "orphan recoveries: {} (avg reconnection {:.2}s — §3.3 grandparent anchoring)",
            out.stats.reconnection_s.len(),
            reconn
        );
    }
    println!(
        "stream: {} chunks emitted, whole-run loss {:.2}%",
        out.stats.source_chunks,
        out.stats.overall_loss() * 100.0
    );

    let last = out.stats.measurements.last().expect("measurements");
    assert_eq!(last.connected, last.members, "dark peers at session end");
}
