//! The emulated PlanetLab testbed end to end: pool generation, the
//! Fig. 5.2 filtering pipeline, and a sample tree (Figs. 5.5/5.6) that
//! shows the continent clustering the paper observed ("nodes in United
//! States are connected with each other as in Europe. There is a clear
//! clustering in continents", §5.4.1).
//!
//! Run with: `cargo run --release --example planetlab_emulation`

use vdm_core::VdmFactory;
use vdm_planetlab::{NodePool, PoolConfig, SessionConfig, SessionRunner};

fn main() {
    // Fig. 5.2: three filtering stages over the raw pool.
    let pool_cfg = PoolConfig::world(260);
    let pool = NodePool::generate(&pool_cfg, 11);
    let s1 = pool.filter_responding();
    let s2 = pool.filter_ping_out(&s1);
    let s3 = pool.filter_agent_runs(&s2);
    println!("raw pool: {} nodes", pool.raw().len());
    println!("  stage 1 (answer pings):        {} survive", s1.len());
    println!("  stage 2 (can ping out):        {} survive", s2.len());
    println!("  stage 3 (agent runs/declares): {} survive", s3.len());

    // A world-wide session; render the resulting overlay.
    let cfg = SessionConfig {
        pool: pool_cfg,
        nodes: 35,
        warmup_s: 300.0,
        slot_s: 120.0,
        slots: 1,
        churn_pct: 0.0,
        chunk_interval_ms: 1000.0,
        ..SessionConfig::default()
    };
    let runner = SessionRunner::prepare(&cfg, 11);
    let out = runner.run(VdmFactory::delay_based(), 11);
    let snap = &out.final_snapshot;

    println!("\nsample tree (source = {}):", runner.label(runner.source));
    print!("{}", snap.to_ascii(|h| runner.label(h)));

    // Quantify the continent clustering: how many tree edges stay
    // within one region?
    let edges = snap.edges();
    let same_region = edges
        .iter()
        .filter(|&&(p, c)| runner.region_names[p.idx()] == runner.region_names[c.idx()])
        .count();
    println!(
        "\n{}/{} overlay edges stay within one region",
        same_region,
        edges.len()
    );

    println!(
        "\nGraphviz DOT (pipe into `dot -Tsvg`):\n{}",
        snap.to_dot(|h| runner.label(h))
    );
}
