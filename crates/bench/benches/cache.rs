//! Microbenchmarks of the artifact-cache hot path: key hashing over
//! typical generator-parameter sets, artifact encode/decode for the
//! shortest-path matrices the experiment runner caches, and a full
//! store round trip (lookup hit including the disk read and decode).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vdm_topology::cache::{CacheStore, KeyHasher};
use vdm_topology::transit_stub::{attach_hosts, generate, TransitStubConfig};
use vdm_topology::waxman::{self, WaxmanConfig};
use vdm_topology::Apsp;

fn bench_key_hashing(c: &mut Criterion) {
    c.bench_function("cache_key/typical_params", |b| {
        b.iter(|| {
            let mut h = KeyHasher::new();
            h.feed_str(black_box("transit-stub"))
                .feed_usize(black_box(201))
                .feed_f64(black_box(0.02))
                .feed_u64(black_box(42))
                .feed_usize(black_box(792));
            black_box(h.key("ch3-underlay").file_name())
        })
    });
    c.bench_function("cache_key/1k_floats", |b| {
        let params: Vec<f64> = (0..1000).map(|i| i as f64 * 0.125).collect();
        b.iter(|| {
            let mut h = KeyHasher::new();
            for &p in &params {
                h.feed_f64(black_box(p));
            }
            black_box(h.key("bulk").hash)
        })
    });
}

fn apsp_of(nodes: usize) -> Apsp {
    let g = waxman::generate(
        &WaxmanConfig {
            nodes,
            ..WaxmanConfig::default()
        },
        7,
    )
    .graph;
    Apsp::build(&g)
}

fn bench_artifact_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_codec");
    group.sample_size(20);
    for nodes in [50usize, 200] {
        let apsp = apsp_of(nodes);
        let bytes = apsp.to_bytes();
        group.bench_with_input(BenchmarkId::new("encode", nodes), &apsp, |b, a| {
            b.iter(|| black_box(a.to_bytes()))
        });
        group.bench_with_input(BenchmarkId::new("decode", nodes), &bytes, |b, bs| {
            b.iter(|| black_box(Apsp::from_bytes(black_box(bs)).expect("valid artifact")))
        });
    }
    group.finish();
}

fn bench_store_lookup(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("vdm-bench-cache-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CacheStore::at(&dir);

    // A realistic artifact: the paper-scale transit-stub underlay's
    // routing table (this is what `ch3_setup` hits every run).
    let mut g = generate(&TransitStubConfig::paper_792(), 42);
    let _hosts = attach_hosts(&mut g, 41, 42, 0.0);
    let apsp = Apsp::build(&g);
    let key = {
        let mut h = KeyHasher::new();
        h.feed_str("bench").feed_u64(42);
        h.key("bench-apsp")
    };
    store.store(&key, &apsp.to_bytes());

    let mut group = c.benchmark_group("store_lookup");
    group.sample_size(10);
    group.bench_function("hit_read_and_decode", |b| {
        b.iter(|| {
            let bytes = store.load(black_box(&key)).expect("stored artifact");
            black_box(Apsp::from_bytes(&bytes).expect("valid artifact"))
        })
    });
    group.bench_function("miss_probe", |b| {
        let absent = KeyHasher::new().feed_u64(9999).key("bench-apsp");
        b.iter(|| black_box(store.load(black_box(&absent))))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_key_hashing,
    bench_artifact_codec,
    bench_store_lookup
);
criterion_main!(benches);
