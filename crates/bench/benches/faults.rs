//! Fault-injection hot path: the per-send cost of the chaos layer.
//!
//! The headline numbers are the `fate/*` benches — `Engine::send` calls
//! [`FaultPlan::fate`] once per message, so chaos-off runs must pay
//! ~zero overhead there (no plan: one `Option` check; empty plan: an
//! empty-slice scan, no RNG). The `sim/*` benches confirm the same at
//! whole-run scale: a run with no plan and a run with an empty plan
//! should be indistinguishable.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vdm_core::VdmFactory;
use vdm_netsim::{FaultEvent, FaultPlan, HostId, LatencySpace, SimTime};
use vdm_overlay::driver::{Driver, DriverConfig};
use vdm_overlay::scenario::{ChurnConfig, Scenario};

fn msg_window(from: u64, until: u64) -> FaultEvent {
    FaultEvent::MsgFaults {
        from: SimTime::from_secs(from),
        until: SimTime::from_secs(until),
        drop_p: 0.05,
        dup_p: 0.10,
        reorder_p: 0.10,
        reorder_max: SimTime::from_ms(200.0),
        spike_p: 0.02,
        spike: SimTime::from_ms(500.0),
    }
}

fn bench_fate(c: &mut Criterion) {
    let now = SimTime::from_secs(100);
    let (a, b) = (HostId(1), HostId(2));
    let mut group = c.benchmark_group("fate");
    let mut empty = FaultPlan::new(7);
    group.bench_function("empty_plan", |bch| {
        bch.iter(|| black_box(empty.fate(black_box(now), a, b)))
    });
    // Events exist but none is active at `now`: the scan cost chaos-on
    // runs pay outside fault windows.
    let mut idle = FaultPlan::with_events(
        7,
        (0..8)
            .map(|i| msg_window(200 + i * 20, 210 + i * 20))
            .collect(),
    );
    group.bench_function("idle_events", |bch| {
        bch.iter(|| black_box(idle.fate(black_box(now), a, b)))
    });
    // Inside an active message-fault window: full RNG draws per send.
    let mut active = FaultPlan::with_events(7, vec![msg_window(50, 150)]);
    group.bench_function("active_window", |bch| {
        bch.iter(|| black_box(active.fate(black_box(now), a, b)))
    });
    let slowdown = FaultPlan::with_events(
        7,
        vec![FaultEvent::Slowdown {
            host: b,
            factor: 3.0,
            from: SimTime::from_secs(50),
            until: SimTime::from_secs(150),
        }],
    );
    group.bench_function("slowdown_factor", |bch| {
        bch.iter(|| black_box(slowdown.slowdown_factor(black_box(now), b)))
    });
    group.finish();
}

fn line_space(n: usize) -> Arc<LatencySpace> {
    let mut rtt = vec![vec![0.0; n]; n];
    for (i, row) in rtt.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = 10.0 * (i as f64 - j as f64).abs();
            }
        }
    }
    Arc::new(LatencySpace::from_rtt_matrix(&rtt))
}

fn run_sim(space: &Arc<LatencySpace>, plan: Option<FaultPlan>) -> u64 {
    let members = 10usize;
    let hosts: Vec<HostId> = (1..=members as u32).map(HostId).collect();
    let scenario = Scenario::churn(
        &ChurnConfig {
            members,
            warmup_s: 30.0,
            slot_s: 60.0,
            slots: 2,
            churn_pct: 0.0,
        },
        &hosts,
        5,
    );
    let mut driver = Driver::new(
        space.clone(),
        None,
        HostId(0),
        VdmFactory::delay_based(),
        &scenario,
        vec![3; members + 1],
        DriverConfig::default(),
        5,
    );
    if let Some(plan) = plan {
        driver.set_fault_plan(plan);
    }
    driver.run().events
}

fn bench_sim(c: &mut Criterion) {
    let space = line_space(11);
    let mut group = c.benchmark_group("sim_150s");
    group.bench_function("no_plan", |b| b.iter(|| black_box(run_sim(&space, None))));
    group.bench_function("empty_plan", |b| {
        b.iter(|| black_box(run_sim(&space, Some(FaultPlan::new(5)))))
    });
    group.bench_function("chaos_plan", |b| {
        b.iter(|| {
            black_box(run_sim(
                &space,
                Some(FaultPlan::with_events(5, vec![msg_window(40, 120)])),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fate, bench_sim);
criterion_main!(benches);
