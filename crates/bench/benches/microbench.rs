//! Microbenchmarks of the protocol hot paths: the directionality
//! classifier (§3.1.2), the virtual metrics (Chapter 4), and the join
//! walk's per-node decision (Eq. 3.3's inner loop).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use vdm_core::{classify, VdmPolicy, VirtualMetric};
use vdm_netsim::HostId;
use vdm_overlay::walk::{ChildProbe, ProbeResult, WalkPolicy, WalkPurpose};

fn bench_classifier(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let triples: Vec<(f64, f64, f64)> = (0..1024)
        .map(|_| {
            (
                rng.gen_range(0.1..100.0),
                rng.gen_range(0.1..100.0),
                rng.gen_range(0.1..100.0),
            )
        })
        .collect();
    c.bench_function("classify_1024_triples", |b| {
        b.iter(|| {
            for &(a, p, n) in &triples {
                black_box(classify(black_box(a), black_box(p), black_box(n)));
            }
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdist");
    for (name, m) in [
        ("delay", VirtualMetric::Delay),
        ("loss", VirtualMetric::loss()),
        ("blend", VirtualMetric::balanced_blend()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(m.vdist(black_box(42.5), black_box(0.013))))
        });
    }
    group.finish();
}

fn bench_decide(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let policy = VdmPolicy::delay_based();
    let mut group = c.benchmark_group("vdm_decide");
    for fanout in [2usize, 8, 32] {
        let probe = ProbeResult {
            current: HostId(0),
            d_current: 50.0,
            children: (0..fanout)
                .map(|i| ChildProbe {
                    child: HostId(i as u32 + 1),
                    d_parent_child: rng.gen_range(1.0..100.0),
                    d_new_child: rng.gen_range(1.0..100.0),
                })
                .collect(),
            iteration: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &probe, |b, probe| {
            b.iter(|| black_box(policy.decide(black_box(probe), WalkPurpose::Join)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classifier, bench_metrics, bench_decide);
criterion_main!(benches);
