//! Cost of the observability layer, off and on.
//!
//! The headline numbers are the `emit/*` benches: every emission site
//! in the stack goes through [`Tracer::emit`], so with tracing off
//! (the default) a site must cost one `Option` branch — the
//! event-constructing closure must never run. `sim/*` confirms the
//! same at whole-run scale: a run against a disabled tracer should be
//! indistinguishable from the pre-observability baseline, and a
//! ring-buffer tracer shows what a fully-enabled run pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vdm_core::VdmFactory;
use vdm_netsim::{HostId, LatencySpace};
use vdm_overlay::driver::{Driver, DriverConfig};
use vdm_overlay::scenario::{ChurnConfig, Scenario};
use vdm_trace::{CaseClass, TraceEvent, Tracer};

fn decision_event() -> TraceEvent {
    TraceEvent::WalkDecision {
        host: 17,
        at: 3,
        cases: vdm_trace::encode_cases(&[(5, CaseClass::II), (9, CaseClass::III)]),
        action: "descend",
        next: 9,
        splice: None,
    }
}

fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("emit");
    let off = Tracer::disabled();
    group.bench_function("disabled", |b| {
        b.iter(|| off.emit(black_box(1_000_000), || black_box(decision_event())))
    });
    let (on, _ring) = Tracer::ring(1024);
    group.bench_function("ring", |b| {
        b.iter(|| on.emit(black_box(1_000_000), || black_box(decision_event())))
    });
    // The JSONL path adds serialization on top of the sink lock.
    let jsonl = Tracer::jsonl(std::io::sink());
    group.bench_function("jsonl", |b| {
        b.iter(|| jsonl.emit(black_box(1_000_000), || black_box(decision_event())))
    });
    group.finish();
}

fn line_space(n: usize) -> Arc<LatencySpace> {
    let mut rtt = vec![vec![0.0; n]; n];
    for (i, row) in rtt.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = 10.0 * (i as f64 - j as f64).abs();
            }
        }
    }
    Arc::new(LatencySpace::from_rtt_matrix(&rtt))
}

fn run_sim(space: &Arc<LatencySpace>) -> u64 {
    let members = 10usize;
    let hosts: Vec<HostId> = (1..=members as u32).map(HostId).collect();
    let scenario = Scenario::churn(
        &ChurnConfig {
            members,
            warmup_s: 30.0,
            slot_s: 60.0,
            slots: 2,
            churn_pct: 20.0,
        },
        &hosts,
        5,
    );
    let driver = Driver::new(
        space.clone(),
        None,
        HostId(0),
        VdmFactory::delay_based(),
        &scenario,
        vec![3; members + 1],
        DriverConfig::default(),
        5,
    );
    driver.run().events
}

fn bench_sim(c: &mut Criterion) {
    let space = line_space(11);
    let mut group = c.benchmark_group("sim_150s");
    group.bench_function("trace_off", |b| b.iter(|| black_box(run_sim(&space))));
    group.bench_function("trace_ring", |b| {
        // The driver's engine picks up the global tracer, so enable it
        // around the measured run and restore afterwards.
        b.iter(|| {
            let (t, _ring) = Tracer::ring(4096);
            let prev = vdm_trace::set_global(t);
            let ev = black_box(run_sim(&space));
            vdm_trace::set_global(prev);
            ev
        })
    });
    group.finish();
}

criterion_group!(benches, bench_emit, bench_sim);
criterion_main!(benches);
