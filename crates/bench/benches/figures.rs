//! One Criterion bench per paper table/figure family: each runs the
//! corresponding `vdm-experiments` runner at quick effort, so `cargo
//! bench` both times the reproduction pipeline and regenerates every
//! figure's data (the printed tables come from `vdm-repro`; these
//! benches guard the runners' cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdm_experiments::figures::{ablation, complexity, fig3, fig4, fig5};
use vdm_experiments::Effort;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    let e = Effort::Quick;
    group.bench_function("fig3_25_28_churn", |b| {
        b.iter(|| black_box(fig3::churn_family(e, 1)))
    });
    group.bench_function("fig3_29_32_nodes", |b| {
        b.iter(|| black_box(fig3::nodes_family(e, 1)))
    });
    group.bench_function("fig3_33_36_degree", |b| {
        b.iter(|| black_box(fig3::degree_family(e, 1)))
    });
    group.bench_function("fig4_6_9_metric", |b| {
        b.iter(|| black_box(fig4::metric_family(e, 1)))
    });
    group.bench_function("fig5_5_6_tree", |b| {
        b.iter(|| black_box(fig5::sample_trees(1)))
    });
    group.bench_function("fig5_7_13_churn", |b| {
        b.iter(|| black_box(fig5::churn_family(e, 1)))
    });
    group.bench_function("fig5_14_20_nodes", |b| {
        b.iter(|| black_box(fig5::nodes_family(e, 1)))
    });
    group.bench_function("fig5_21_27_degree", |b| {
        b.iter(|| black_box(fig5::degree_family(e, 1)))
    });
    group.bench_function("fig5_28_30_refine", |b| {
        b.iter(|| black_box(fig5::refine_family(e, 1)))
    });
    group.bench_function("fig5_31_mst", |b| {
        b.iter(|| black_box(fig5::mst_family(e, 1)))
    });
    group.bench_function("eq3_3_complexity", |b| {
        b.iter(|| black_box(complexity::join_complexity(e, 1)))
    });
    group.bench_function("ablation_slack", |b| {
        b.iter(|| black_box(ablation::slack_sweep(e, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
