//! Microbenchmarks of the gap-repair hot path: every forwarded stream
//! chunk records into the parent's retransmit ring, every received
//! chunk runs the receiver's gap classifier, and every NACK does a ring
//! lookup per requested sequence number. These run once per chunk per
//! peer, so they dominate the data-plane cost of the repair extension.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use vdm_netsim::SimTime;
use vdm_overlay::repair::{GapTracker, RepairConfig, RetransmitRing};

fn bench_ring_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_record");
    for cap in [16usize, 64, 256] {
        // In-order append + eviction: the steady-state path (the source
        // and every forwarding parent hit this once per chunk).
        group.bench_with_input(BenchmarkId::new("in_order", cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut ring = RetransmitRing::new(cap);
                for seq in 0..1024u64 {
                    ring.record(black_box(seq));
                }
                black_box(ring.len())
            })
        });
        // Out-of-order inserts (repaired chunks re-forwarded down the
        // tree): exercises the binary-search insert.
        group.bench_with_input(BenchmarkId::new("shuffled", cap), &cap, |b, &cap| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut seqs: Vec<u64> = (0..1024).collect();
            for i in (1..seqs.len()).rev() {
                let j = rng.gen_range(0..=i);
                seqs.swap(i, j);
            }
            b.iter(|| {
                let mut ring = RetransmitRing::new(cap);
                for &seq in &seqs {
                    ring.record(black_box(seq));
                }
                black_box(ring.len())
            })
        });
    }
    group.finish();
}

fn bench_ring_lookup(c: &mut Criterion) {
    let mut ring = RetransmitRing::new(256);
    for seq in 0..1024u64 {
        ring.record(seq);
    }
    c.bench_function("ring_contains_hit_and_miss", |b| {
        b.iter(|| {
            // One hit (in the last 256) and one miss (evicted).
            black_box(ring.contains(black_box(1000)));
            black_box(ring.contains(black_box(10)));
        })
    });
}

fn bench_gap_tracker(c: &mut Criterion) {
    let cfg = RepairConfig::default();
    let mut group = c.benchmark_group("gap_tracker");
    // Loss-free stream: the fast path every healthy receiver pays.
    group.bench_function("in_order_1024", |b| {
        b.iter(|| {
            let mut gaps = GapTracker::default();
            let mut last = None;
            for seq in 0..1024u64 {
                let class = gaps.on_chunk(black_box(seq), last, SimTime::from_secs(1), &cfg);
                black_box(class);
                last = Some(seq);
            }
            black_box(gaps.has_pending())
        })
    });
    // Lossy stream: every 8th chunk missing, then repaired — exercises
    // gap noting, NACK batching and the repaired-classification path.
    group.bench_function("lossy_with_repairs_1024", |b| {
        b.iter(|| {
            let mut gaps = GapTracker::default();
            let mut last = None;
            let mut now = SimTime::from_secs(1);
            for seq in 0..1024u64 {
                if seq % 8 == 7 {
                    continue; // dropped on the wire
                }
                gaps.on_chunk(black_box(seq), last, now, &cfg);
                last = Some(seq);
                if seq % 64 == 0 {
                    now += cfg.nack_delay;
                    let due = gaps.due_nacks(now, &cfg);
                    for miss in &due {
                        // Repair arrives: classify the retransmission.
                        gaps.on_chunk(black_box(*miss), last, now, &cfg);
                    }
                }
            }
            black_box(gaps.lost)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ring_record,
    bench_ring_lookup,
    bench_gap_tracker
);
criterion_main!(benches);
