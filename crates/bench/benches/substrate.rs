//! Substrate benchmarks: topology generation, all-pairs shortest
//! paths, MSTs, the event engine, and the synchronous join walk
//! (Eqs. 3.1–3.3: contacted peers — and hence join latency — should
//! grow logarithmically in the tree size).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use vdm_core::VdmPolicy;
use vdm_netsim::{Engine, HostId, LatencySpace, SendClass, SimTime, World};
use vdm_overlay::sync::SyncOverlay;
use vdm_topology::transit_stub::{generate, TransitStubConfig};
use vdm_topology::{mst, Apsp, NodeId, OnDemandRouter, RouteProvider, RouteRow};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("transit_stub");
    group.sample_size(10);
    group.bench_function("generate_792", |b| {
        b.iter(|| black_box(generate(&TransitStubConfig::paper_792(), 7)))
    });
    let g = generate(&TransitStubConfig::paper_792(), 7);
    group.bench_function("apsp_792", |b| b.iter(|| black_box(Apsp::build(&g))));
    group.finish();
}

/// On-demand router costs against the same 792-node transit-stub graph
/// the dense `apsp_792` bench uses: one row build (the per-miss cost at
/// any scale) and a warm query sweep (the steady-state cost once rows
/// are resident).
fn bench_on_demand_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_demand_router");
    let g = Arc::new(generate(&TransitStubConfig::paper_792(), 7));
    group.bench_function("row_build_792", |b| {
        b.iter(|| black_box(RouteRow::compute(&g, NodeId(0))))
    });
    let router = OnDemandRouter::new(Arc::clone(&g), Some(16));
    let sources: Vec<NodeId> = (0..16).map(NodeId).collect();
    for &s in &sources {
        router.row(s);
    }
    group.bench_function("warm_query_sweep_792", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &s in &sources {
                for t in g.nodes() {
                    acc += RouteProvider::dist_ms(&router, s, t);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_mst");
    for n in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                black_box(mst::prim(pts.len(), 0, |a, b| {
                    let (xa, ya) = pts[a];
                    let (xb, yb) = pts[b];
                    ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt()
                }))
            })
        });
    }
    group.finish();
}

struct Bouncer {
    left: u64,
}
impl World for Bouncer {
    type Msg = u64;
    fn on_deliver(&mut self, eng: &mut Engine<u64>, to: HostId, from: HostId, msg: u64) {
        if self.left > 0 {
            self.left -= 1;
            eng.send(to, from, msg + 1, SendClass::Control);
        }
    }
    fn on_timer(&mut self, _: &mut Engine<u64>, _: HostId, _: u64) {}
    fn on_external(&mut self, _: &mut Engine<u64>, _: u64) {}
}

fn bench_engine(c: &mut Criterion) {
    let rtt = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
    let space: Arc<LatencySpace> = Arc::new(LatencySpace::from_rtt_matrix(&rtt));
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(space.clone(), 1);
            let mut w = Bouncer { left: 100_000 };
            eng.send(HostId(0), HostId(1), 0, SendClass::Control);
            eng.run(&mut w, SimTime::MAX);
            black_box(eng.events_processed())
        })
    });
}

/// Eq. 3.3: join cost vs tree size. Criterion reports per-join wall
/// time; the logarithmic trend shows up as sub-linear growth across the
/// parameter points.
fn bench_join_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_complexity");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let pts: Vec<(f64, f64)> = (0..n + 1)
            .map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            let dist = |a: HostId, b: HostId| {
                let (xa, ya) = pts[a.idx()];
                let (xb, yb) = pts[b.idx()];
                (((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt()).max(1e-9)
            };
            let policy = VdmPolicy::delay_based();
            b.iter(|| {
                let mut ov = SyncOverlay::new(pts.len(), HostId(0), 4, dist);
                for h in 1..pts.len() as u32 {
                    ov.join(HostId(h), 4, &policy);
                }
                black_box(ov.snapshot().members.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_topology,
    bench_on_demand_router,
    bench_mst,
    bench_engine,
    bench_join_complexity
);
criterion_main!(benches);
