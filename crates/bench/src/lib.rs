//! Criterion benchmark crate; see the `benches/` directory.
