//! Simulator-vs-core equivalence: the [`Driver`] (engine-backed io) and
//! a hand-rolled event loop over [`ProtocolCore`]s (buffered io) run the
//! *same* factory-made agents over the *same* uniform lossless network
//! and must converge to the same tree and the same delivery counts.
//!
//! This is the load-bearing test for the sans-io extraction: the mini
//! loop below is a stand-in for any real runtime (the `vdm-node` daemon
//! included) — it owns the clock, the timer wheel, and the "network",
//! and touches the protocol only through `Input`/`Output` values. If it
//! diverges from the engine path, the seam leaks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use vdm_core::VdmFactory;
use vdm_netsim::{HostId, LatencySpace, SimTime};
use vdm_overlay::agent::AgentFactory;
use vdm_overlay::driver::{Driver, DriverConfig};
use vdm_overlay::msg::Msg;
use vdm_overlay::scenario::{Action, Scenario};
use vdm_overlay::{Input, Output, OverlayAgent, ProtocolCore};

const N: usize = 8;
const SOURCE: HostId = HostId(0);
const RTT_MS: f64 = 20.0;
const ONE_WAY: SimTime = SimTime(10_000); // rtt/2 in µs
const DATA_INTERVAL: SimTime = SimTime(500_000);
const END: SimTime = SimTime(30_000_000);
const DEGREE: u32 = 4;

fn join_time(h: usize) -> SimTime {
    // Staggered wider than a walk round-trip so join walks never
    // overlap; the outcome is then schedule-independent.
    SimTime::from_ms(1_000.0 + 500.0 * (h - 1) as f64)
}

fn uniform_space() -> LatencySpace {
    let rtt: Vec<Vec<f64>> = (0..N)
        .map(|i| (0..N).map(|j| if i == j { 0.0 } else { RTT_MS }).collect())
        .collect();
    LatencySpace::from_rtt_matrix(&rtt)
}

/// The engine-backed reference run.
fn driver_run() -> (Vec<Option<HostId>>, Vec<u64>, u64, u64) {
    let actions: Vec<(SimTime, Action)> = (1..N)
        .map(|h| (join_time(h), Action::Join(HostId(h as u32))))
        .collect();
    let scenario = Scenario::from_actions(actions, END);
    let out = Driver::new(
        Arc::new(uniform_space()),
        None,
        SOURCE,
        VdmFactory::delay_based(),
        &scenario,
        vec![DEGREE; N],
        DriverConfig {
            data_interval: Some(DATA_INTERVAL),
            ..DriverConfig::default()
        },
        7,
    )
    .run();
    (
        out.final_snapshot.parent,
        out.stats.received,
        out.stats.source_chunks,
        out.stats.join_completions,
    )
}

/// What the mini runtime's "network" is busy with.
#[derive(Debug)]
enum Ev {
    Join(HostId),
    Emit(u64),
    Deliver { to: HostId, from: HostId, msg: Msg },
    Timer { host: HostId, token: u64 },
}

/// The same session over sans-io cores: a discrete event loop that owns
/// delivery (fixed one-way delay), timers, and the emit schedule —
/// mirroring the engine's (time, insertion-order) tie-breaking.
fn core_run() -> (Vec<Option<HostId>>, Vec<u64>, u64, u64) {
    let factory = VdmFactory::delay_based();
    let mut cores: Vec<_> = (0..N)
        .map(|h| {
            let agent = factory.make(HostId(h as u32), SOURCE, DEGREE, 0);
            ProtocolCore::new(HostId(h as u32), agent, N, 7)
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
    let mut store: Vec<Option<Ev>> = Vec::new();
    let push = |heap: &mut BinaryHeap<_>, store: &mut Vec<Option<Ev>>, at: SimTime, ev: Ev| {
        let id = store.len() as u64;
        store.push(Some(ev));
        heap.push(Reverse((at, id)));
    };

    // Same schedule order as the driver: scenario actions, then the
    // first data tick (which reschedules itself).
    for h in 1..N {
        push(
            &mut heap,
            &mut store,
            join_time(h),
            Ev::Join(HostId(h as u32)),
        );
    }
    push(&mut heap, &mut store, SimTime::ZERO, Ev::Emit(1));

    let mut joined = [false; N];
    joined[SOURCE.idx()] = true;
    let mut source_chunks = 0u64;

    while let Some(Reverse((at, id))) = heap.pop() {
        if at > END {
            break;
        }
        let ev = store[id as usize].take().expect("event fired once");
        let (host, input) = match ev {
            Ev::Join(h) => {
                joined[h.idx()] = true;
                (h, Input::Join)
            }
            Ev::Emit(seq) => {
                source_chunks += 1;
                let next = at + DATA_INTERVAL;
                if next <= END {
                    push(&mut heap, &mut store, next, Ev::Emit(seq + 1));
                }
                (SOURCE, Input::EmitData { seq })
            }
            Ev::Deliver { to, from, msg } => {
                // The driver drops messages to hosts that have not
                // joined yet (no agent in the arena).
                if !joined[to.idx()] {
                    continue;
                }
                (to, Input::Packet { from, msg })
            }
            Ev::Timer { host, token } => (host, Input::Timer { token }),
        };
        let outputs: Vec<Output> = cores[host.idx()].handle(at, input).collect();
        for out in outputs {
            match out {
                Output::Send { to, msg, class: _ } => {
                    push(
                        &mut heap,
                        &mut store,
                        at + ONE_WAY,
                        Ev::Deliver {
                            to,
                            from: host,
                            msg,
                        },
                    );
                }
                Output::Timer { delay, token } => {
                    push(&mut heap, &mut store, at + delay, Ev::Timer { host, token });
                }
            }
        }
    }

    let parents = cores
        .iter()
        .map(|c| {
            if c.host() == SOURCE {
                None
            } else {
                c.agent().parent()
            }
        })
        .collect();
    let received = (0..N).map(|h| cores[h].stats().received[h]).collect();
    let joins = cores.iter().map(|c| c.stats().join_completions).sum();
    // EmitData inputs also count chunks core-side; both tallies must
    // agree with the loop's own count.
    let core_chunks = cores[SOURCE.idx()].stats().source_chunks;
    assert_eq!(core_chunks, source_chunks);
    (parents, received, source_chunks, joins)
}

#[test]
fn core_loop_matches_the_driver() {
    let (d_parents, d_received, d_chunks, d_joins) = driver_run();
    let (c_parents, c_received, c_chunks, c_joins) = core_run();

    assert_eq!(d_chunks, c_chunks, "source emitted chunk counts differ");
    assert_eq!(d_joins, c_joins, "join completion counts differ");
    assert_eq!(d_parents, c_parents, "final trees differ");
    assert_eq!(d_received, c_received, "per-host delivery counts differ");

    // And the run did something: everyone joined, everyone streamed.
    assert_eq!(c_joins, (N - 1) as u64);
    for h in 1..N {
        assert!(c_parents[h].is_some(), "host {h} never attached");
        assert!(c_received[h] > 0, "host {h} received nothing");
    }
}
