//! The VDM join policy (§3.2) and agent factory.
//!
//! Per walk iteration at node `P` with newcomer `N`:
//!
//! 1. classify every child `E` of `P` by [`classify_with_slack`];
//! 2. any Case III children → descend into the *closest* one (by the
//!    newcomer's measured distance) — this also wins when Case II and
//!    Case III coexist (§3.2, Scenario III);
//! 3. else any Case II children → attach at `P`, adopting the Case II
//!    children closest-first ("as long as the new node allows");
//! 4. else (all Case I, or no children) → attach at `P` (a full `P`
//!    redirects to its closest child, handled by the walk mechanics).

use crate::direction::{classify_with_slack, Case};
use crate::metric::VirtualMetric;
use rand::rngs::StdRng;
use vdm_netsim::HostId;
use vdm_overlay::agent::{AgentConfig, AgentFactory, ProtocolAgent};
use vdm_overlay::peer::PeerState;
use vdm_overlay::walk::{ProbeResult, WalkPolicy, WalkPurpose, WalkStep};
use vdm_overlay::VDist;

/// Deterministic per-tree jitter on a virtual distance (multi-tree
/// sessions, A10): hash the distance's bits with the tree's seed
/// (splitmix64 finalizer) into `h ∈ [-1, 1)` and scale by `1 + amp·h`.
/// Every agent of a tree perturbs a given distance identically (the
/// walk stays coherent), different trees rank candidate parents
/// differently (their interiors decorrelate), and per-session
/// determinism is preserved. Zero stays zero and the sign never flips.
pub fn perturb_vdist(d: VDist, tree_seed: u64, amp: f64) -> VDist {
    let mut z = d.to_bits() ^ tree_seed;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let h = (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0; // [-1, 1)
    d * (1.0 + amp * h)
}

/// The VDM protocol policy.
#[derive(Clone, Copy, Debug)]
pub struct VdmPolicy {
    metric: VirtualMetric,
    /// Directionality slack (0 = the paper's strict classifier).
    slack: f64,
    /// Per-tree `(seed, amplitude)` distance jitter (multi-tree
    /// sessions); `None` = the paper's unperturbed metric.
    perturb: Option<(u64, f64)>,
}

impl VdmPolicy {
    /// VDM with an explicit metric and slack.
    pub fn new(metric: VirtualMetric, slack: f64) -> Self {
        assert!(slack >= 0.0);
        Self {
            metric,
            slack,
            perturb: None,
        }
    }

    /// Jitter every virtual distance by up to `±amp` (relative),
    /// keyed on `tree_seed` — see [`perturb_vdist`].
    pub fn with_perturbation(mut self, tree_seed: u64, amp: f64) -> Self {
        assert!((0.0..1.0).contains(&amp));
        self.perturb = Some((tree_seed, amp));
        self
    }

    /// VDM-D (the paper's default): RTT virtual distances.
    pub fn delay_based() -> Self {
        Self::new(VirtualMetric::Delay, 0.0)
    }

    /// VDM-L: loss-based virtual distances (Chapter 4).
    pub fn loss_based() -> Self {
        Self::new(VirtualMetric::loss(), 0.0)
    }

    /// The configured metric.
    pub fn metric(&self) -> VirtualMetric {
        self.metric
    }
}

impl WalkPolicy for VdmPolicy {
    fn vdist(&self, rtt_ms: f64, loss_est: f64) -> VDist {
        let d = self.metric.vdist(rtt_ms, loss_est);
        match self.perturb {
            Some((seed, amp)) => perturb_vdist(d, seed, amp),
            None => d,
        }
    }

    fn needs_loss(&self) -> bool {
        self.metric.needs_loss()
    }

    fn decide(&self, p: &ProbeResult, _purpose: WalkPurpose) -> WalkStep {
        let mut best_case3: Option<(HostId, VDist)> = None;
        let mut case2: Vec<(HostId, VDist)> = Vec::new();
        for c in &p.children {
            match classify_with_slack(p.d_current, c.d_parent_child, c.d_new_child, self.slack) {
                Case::III => {
                    if best_case3.is_none_or(|(_, d)| {
                        c.d_new_child < d || (c.d_new_child == d && c.child < best_case3.unwrap().0)
                    }) {
                        best_case3 = Some((c.child, c.d_new_child));
                    }
                }
                Case::II => case2.push((c.child, c.d_new_child)),
                Case::I => {}
            }
        }
        if let Some((next, _)) = best_case3 {
            // "If we find CaseII and CaseIII together, we continue with
            // CaseIII by selecting the closest one" (§3.2).
            return WalkStep::Descend(next);
        }
        if !case2.is_empty() {
            // Adopt closest-first; the walk trims to the joiner's free
            // degree.
            case2.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            return WalkStep::Attach {
                splice: case2.into_iter().map(|(h, _)| h).collect(),
            };
        }
        WalkStep::Attach { splice: Vec::new() }
    }

    fn refine_start(&self, _state: &PeerState, source: HostId, _rng: &mut StdRng) -> HostId {
        // §3.4: "An existing node repeats the join process [at the
        // source]".
        source
    }

    fn restart_anchor(
        &self,
        visited: &[HostId],
        coord_dist: Option<&[VDist]>,
        fallback: HostId,
    ) -> HostId {
        // Coordinate damping: a Case-III restart resumes from the
        // visited ancestor whose virtual coordinate is nearest the
        // joiner, deepest on ties, instead of unconditionally backing
        // up to the deepest one. Without coordinates (or with none
        // finite) this is exactly the deepest-visited default.
        let Some(dists) = coord_dist else {
            return visited.last().copied().unwrap_or(fallback);
        };
        let mut best: Option<(VDist, usize)> = None;
        for (i, &d) in dists.iter().enumerate().take(visited.len()) {
            if d.is_finite() && best.is_none_or(|(bd, _)| d <= bd) {
                best = Some((d, i));
            }
        }
        match best {
            Some((_, i)) => visited[i],
            None => visited.last().copied().unwrap_or(fallback),
        }
    }

    fn classify_for_trace(&self, p: &ProbeResult) -> Vec<(HostId, vdm_trace::CaseClass)> {
        p.children
            .iter()
            .map(|c| {
                let case = match classify_with_slack(
                    p.d_current,
                    c.d_parent_child,
                    c.d_new_child,
                    self.slack,
                ) {
                    Case::I => vdm_trace::CaseClass::I,
                    Case::II => vdm_trace::CaseClass::II,
                    Case::III => vdm_trace::CaseClass::III,
                };
                (c.child, case)
            })
            .collect()
    }
}

/// Builds VDM agents for the simulation driver.
///
/// `agent` controls reconnection/refinement behaviour: the paper's plain
/// VDM uses `refine_period: None`; VDM-R (§5.4.5) sets it to 5 minutes.
#[derive(Clone, Copy, Debug)]
pub struct VdmFactory {
    /// Agent mechanics (timeouts, refinement, watchdog).
    pub agent: AgentConfig,
    /// The virtual-distance metric.
    pub metric: VirtualMetric,
    /// Directionality slack.
    pub slack: f64,
    /// Per-tree distance jitter for multi-tree sessions (see
    /// [`VdmPolicy::with_perturbation`]); `None` = plain VDM.
    pub perturb: Option<(u64, f64)>,
}

impl VdmFactory {
    /// Plain VDM-D with default agent mechanics.
    pub fn delay_based() -> Self {
        Self {
            agent: AgentConfig::default(),
            metric: VirtualMetric::Delay,
            slack: 0.0,
            perturb: None,
        }
    }

    /// VDM-L with default agent mechanics.
    pub fn loss_based() -> Self {
        Self {
            agent: AgentConfig::default(),
            metric: VirtualMetric::loss(),
            slack: 0.0,
            perturb: None,
        }
    }

    /// This factory serving tree `tree` of a `session_seed`-keyed
    /// multi-tree session: tree 0 keeps the unperturbed metric (the
    /// backbone tree is exactly the single-tree overlay), sibling trees
    /// jitter distances by up to `±amp` under distinct seeds so their
    /// interiors decorrelate.
    pub fn for_tree(mut self, tree: usize, session_seed: u64, amp: f64) -> Self {
        self.perturb = if tree == 0 {
            None
        } else {
            Some((session_seed ^ ((tree as u64) << 48) ^ 0x6d74_7265, amp))
        };
        self
    }

    /// VDM-R: VDM-D plus periodic refinement (period in seconds;
    /// §5.4.5 uses 300 s).
    pub fn with_refinement(period_s: u64) -> Self {
        let mut f = Self::delay_based();
        f.agent.refine_period = Some(vdm_netsim::SimTime::from_secs(period_s));
        f
    }
}

impl AgentFactory for VdmFactory {
    type Agent = ProtocolAgent<VdmPolicy>;

    fn make(
        &self,
        host: HostId,
        source: HostId,
        degree_limit: u32,
        incarnation: u32,
    ) -> Self::Agent {
        let mut policy = VdmPolicy::new(self.metric, self.slack);
        if let Some((seed, amp)) = self.perturb {
            policy = policy.with_perturbation(seed, amp);
        }
        ProtocolAgent::new(host, source, degree_limit, incarnation, self.agent, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vdm_overlay::sync::SyncOverlay;
    use vdm_overlay::walk::ChildProbe;

    /// Virtual line: distance = |position difference|.
    fn line(positions: &'static [f64]) -> impl Fn(HostId, HostId) -> f64 {
        move |a: HostId, b: HostId| (positions[a.idx()] - positions[b.idx()]).abs()
    }

    trait DecideT {
        fn decide_t(&self, p: &ProbeResult) -> WalkStep;
    }
    impl DecideT for VdmPolicy {
        fn decide_t(&self, p: &ProbeResult) -> WalkStep {
            self.decide(p, WalkPurpose::Join)
        }
    }

    fn probe(d_current: f64, children: &[(u32, f64, f64)]) -> ProbeResult {
        ProbeResult {
            current: HostId(0),
            d_current,
            children: children
                .iter()
                .map(|&(c, d_pc, d_nc)| ChildProbe {
                    child: HostId(c),
                    d_parent_child: d_pc,
                    d_new_child: d_nc,
                })
                .collect(),
            iteration: 0,
        }
    }

    #[test]
    fn empty_children_attach() {
        let p = VdmPolicy::delay_based();
        assert_eq!(
            p.decide_t(&probe(5.0, &[])),
            WalkStep::Attach { splice: vec![] }
        );
    }

    #[test]
    fn case3_beats_case2_and_picks_closest() {
        let p = VdmPolicy::delay_based();
        // Child 1: Case III (d_pn=10 dominates). Child 2: Case II.
        // Child 3: Case III but farther from N than child 1.
        let step = p.decide_t(&probe(
            10.0,
            &[(1, 6.0, 4.0), (2, 12.0, 3.0), (3, 5.0, 5.5)],
        ));
        assert_eq!(step, WalkStep::Descend(HostId(1)));
    }

    #[test]
    fn case2_adopts_closest_first() {
        let p = VdmPolicy::delay_based();
        // Both children are Case II (d_pe dominates).
        let step = p.decide_t(&probe(2.0, &[(1, 9.0, 7.0), (2, 8.0, 6.0)]));
        assert_eq!(
            step,
            WalkStep::Attach {
                splice: vec![HostId(2), HostId(1)]
            }
        );
    }

    #[test]
    fn equal_distance_candidates_resolve_by_host_id_regardless_of_order() {
        let p = VdmPolicy::delay_based();
        // Two Case III children at identical distance from N: the
        // lower host id must win in both probe arrival orders.
        let fwd = probe(10.0, &[(5, 4.0, 6.0), (2, 4.0, 6.0)]);
        let rev = probe(10.0, &[(2, 4.0, 6.0), (5, 4.0, 6.0)]);
        assert_eq!(p.decide_t(&fwd), p.decide_t(&rev));
        assert_eq!(p.decide_t(&fwd), WalkStep::Descend(HostId(2)));
        // Two equal Case II children: the splice (adoption) order is
        // host-id stable too.
        let fwd = probe(2.0, &[(7, 9.0, 6.0), (3, 9.0, 6.0)]);
        let rev = probe(2.0, &[(3, 9.0, 6.0), (7, 9.0, 6.0)]);
        assert_eq!(p.decide_t(&fwd), p.decide_t(&rev));
        assert_eq!(
            p.decide_t(&fwd),
            WalkStep::Attach {
                splice: vec![HostId(3), HostId(7)]
            }
        );
    }

    #[test]
    fn classify_for_trace_matches_decide() {
        let p = VdmPolicy::delay_based();
        // Child 1 Case III, child 2 Case II, child 3 Case I.
        let pr = probe(10.0, &[(1, 6.0, 4.0), (2, 12.0, 3.0), (3, 5.0, 12.0)]);
        let cases = p.classify_for_trace(&pr);
        assert_eq!(
            cases,
            vec![
                (HostId(1), vdm_trace::CaseClass::III),
                (HostId(2), vdm_trace::CaseClass::II),
                (HostId(3), vdm_trace::CaseClass::I),
            ]
        );
        assert_eq!(p.decide_t(&pr), WalkStep::Descend(HostId(1)));
    }

    #[test]
    fn restart_anchor_picks_coord_nearest_deepest_on_ties() {
        let p = VdmPolicy::delay_based();
        let visited = [HostId(1), HostId(2), HostId(3), HostId(4)];
        // No coordinates: deepest visited (pre-coordinate behavior).
        assert_eq!(p.restart_anchor(&visited, None, HostId(0)), HostId(4));
        // Nearest-by-coordinate wins over deepest.
        let d = [3.0, 1.0, 9.0, 2.0];
        assert_eq!(p.restart_anchor(&visited, Some(&d), HostId(0)), HostId(2));
        // Tie on distance: the deeper (later-visited) ancestor wins.
        let d = [3.0, 1.0, 9.0, 1.0];
        assert_eq!(p.restart_anchor(&visited, Some(&d), HostId(0)), HostId(4));
        // All-unknown distances fall back to deepest visited.
        let d = [f64::INFINITY; 4];
        assert_eq!(p.restart_anchor(&visited, Some(&d), HostId(0)), HostId(4));
        // Empty history falls back to the supplied anchor.
        assert_eq!(p.restart_anchor(&[], Some(&[]), HostId(7)), HostId(7));
    }

    // ------------------------------------------------------------------
    // The paper's worked join examples, §3.2.1 / §3.2.2, replayed on a
    // virtual line through the synchronous executor.
    // ------------------------------------------------------------------

    #[test]
    fn example_1_fig_3_8_case_i() {
        // S at 0 with children C1 at +6 and C2 at -5; N at... a point
        // not "in the same direction" as either child: a position
        // whose distances make every triple Case I is impossible on a
        // pure line, so use a star-ish metric: N equidistant-ish.
        // Simplest faithful rendering: N at 3 with C1 at 6 gives Case
        // II; instead place children at +6, -6 and N at tiny offset 1
        // toward neither: use explicit distances.
        let p = VdmPolicy::delay_based();
        // d(S,N)=4; child C1: d(S,C1)=5, d(N,C1)=9 (opposite side);
        // child C2: d(S,C2)=6, d(N,C2)=10 (opposite side).
        let step = p.decide_t(&probe(4.0, &[(1, 5.0, 9.0), (2, 6.0, 10.0)]));
        assert_eq!(step, WalkStep::Attach { splice: vec![] });
    }

    #[test]
    fn example_2_fig_3_9_case_iii_then_case_i() {
        // Line: S=0, C1=5; N=8. N detects C1 in its direction,
        // descends, and attaches to the childless C1.
        static POS: [f64; 3] = [0.0, 5.0, 8.0];
        let policy = VdmPolicy::delay_based();
        let mut ov = SyncOverlay::new(3, HostId(0), 4, line(&POS));
        ov.join(HostId(1), 4, &policy);
        let tr = ov.join(HostId(2), 4, &policy);
        assert_eq!(tr.parent, HostId(1));
        assert_eq!(tr.iterations, 2); // S then C1
        assert_eq!(ov.peer(HostId(2)).grandparent, Some(HostId(0)));
    }

    #[test]
    fn example_3_figs_3_10_3_11_case_iii_then_case_ii() {
        // Line: S=0, C1=5 (child of S), C2=9 (child of C1); N=7.
        // At S: C1 is Case III -> descend. At C1: N lies between C1
        // and C2 -> Case II: N attaches to C1 and adopts C2.
        static POS: [f64; 4] = [0.0, 5.0, 9.0, 7.0];
        let policy = VdmPolicy::delay_based();
        let mut ov = SyncOverlay::new(4, HostId(0), 4, line(&POS));
        ov.join(HostId(1), 4, &policy);
        let t2 = ov.join(HostId(2), 4, &policy);
        assert_eq!(t2.parent, HostId(1));
        let t3 = ov.join(HostId(3), 4, &policy);
        assert_eq!(t3.parent, HostId(1));
        // C2's parent changed from C1 to N; grandparent updated.
        assert_eq!(ov.peer(HostId(2)).parent, Some(HostId(3)));
        assert_eq!(ov.peer(HostId(2)).grandparent, Some(HostId(1)));
        assert!(ov.peer(HostId(1)).has_child(HostId(3)));
        assert!(!ov.peer(HostId(1)).has_child(HostId(2)));
    }

    #[test]
    fn scenario_i_fig_3_13_double_case_ii() {
        // P=0 with children C1=+8 and C2=-7... on a line both children
        // cannot be Case II for one N; the paper's Scenario I uses a
        // 2-D layout where N sits between P and both children. Encode
        // with explicit distances: d(P,N)=2, d(P,C1)=8 > max(2, d(N,C1)=6),
        // d(P,C2)=7 > max(2, d(N,C2)=5.5).
        let p = VdmPolicy::delay_based();
        let step = p.decide_t(&probe(2.0, &[(1, 8.0, 6.0), (2, 7.0, 5.5)]));
        // Adopt both, closest (C2) first.
        assert_eq!(
            step,
            WalkStep::Attach {
                splice: vec![HostId(2), HostId(1)]
            }
        );
    }

    #[test]
    fn scenario_ii_fig_3_14_double_case_iii_takes_closest() {
        let p = VdmPolicy::delay_based();
        // d(P,N)=10 dominates both triples; child 2 is closer to N.
        let step = p.decide_t(&probe(10.0, &[(1, 4.0, 7.0), (2, 5.0, 6.0)]));
        assert_eq!(step, WalkStep::Descend(HostId(2)));
    }

    #[test]
    fn scenario_iii_fig_3_15_case_iii_preferred_over_case_ii() {
        let p = VdmPolicy::delay_based();
        // Child 1: Case III (10 > 6, 10 > 5). Child 2: Case II (11 > 10).
        let step = p.decide_t(&probe(10.0, &[(1, 6.0, 5.0), (2, 11.0, 3.0)]));
        assert_eq!(step, WalkStep::Descend(HostId(1)));
    }

    #[test]
    fn degree_constrained_join_goes_to_closest_free_child() {
        // S=0 limit 1, child C1=5. N=-4 is Case I but S is full:
        // redirect to C1 (its only child).
        static POS: [f64; 3] = [0.0, 5.0, -4.0];
        let policy = VdmPolicy::delay_based();
        let mut ov = SyncOverlay::new(3, HostId(0), 1, line(&POS));
        ov.join(HostId(1), 4, &policy);
        let tr = ov.join(HostId(2), 4, &policy);
        assert_eq!(tr.parent, HostId(1));
    }

    #[test]
    fn splice_respects_newcomer_degree() {
        // N with degree limit 1 can adopt only the closest Case II
        // child; the other stays with P.
        let policy = VdmPolicy::delay_based();
        // P=0, C1=8, C2=10 (both children of P, same side); N=6.
        // d(P,C1)=8 > d(P,N)=6, d(N,C1)=2 -> Case II.
        // d(P,C2)=10 > 6, d(N,C2)=4 -> Case II.
        static POS: [f64; 4] = [0.0, 8.0, 10.0, 6.0];
        let dist = line(&POS);
        let mut ov = SyncOverlay::new(4, HostId(0), 4, dist);
        ov.join(HostId(1), 4, &policy);
        // Make C2 a direct child of P too: joining C2=10 normally gives
        // Case III via C1; instead force the shape by joining C2 first.
        let mut ov = SyncOverlay::new(4, HostId(0), 4, line(&POS));
        ov.join(HostId(2), 4, &policy); // C2 under S
        ov.join(HostId(1), 4, &policy); // C1: between S and C2 -> adopts C2
                                        // Tree: S -> C1 -> C2. Now N=6 with limit 1:
        let tr = ov.join(HostId(3), 1, &policy);
        // At S: C1 Case II (8 > 6 > 2). N attaches to S adopting C1.
        assert_eq!(tr.parent, HostId(0));
        assert_eq!(ov.peer(HostId(3)).children.len(), 1);
        assert_eq!(ov.peer(HostId(1)).parent, Some(HostId(3)));
        let snap = ov.snapshot();
        assert!(snap.validate(&ov.limits()).is_empty());
    }

    proptest! {
        /// Joining any permutation of points on a random virtual line
        /// yields a structurally valid tree with every member
        /// connected.
        #[test]
        fn random_line_joins_build_valid_trees(
            mut points in proptest::collection::vec(-1e3..1e3f64, 2..24),
            limit in 1u32..5,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            points.insert(0, 0.0); // source position
            let pts = points.clone();
            let n = pts.len();
            let dist = move |a: HostId, b: HostId| (pts[a.idx()] - pts[b.idx()]).abs().max(1e-9);
            let policy = VdmPolicy::delay_based();
            let mut ov = SyncOverlay::new(n, HostId(0), limit, dist);
            let mut order: Vec<u32> = (1..n as u32).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for h in order {
                ov.join(HostId(h), limit, &policy);
            }
            let snap = ov.snapshot();
            prop_assert!(snap.validate(&ov.limits()).is_empty());
            prop_assert_eq!(snap.connected_members().len(), n - 1);
        }

        /// With churn (random leaves) the tree stays valid and fully
        /// connected after each operation.
        #[test]
        fn random_churn_keeps_tree_valid(
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = 20;
            let positions: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let pts = positions.clone();
            let dist = move |a: HostId, b: HostId| (pts[a.idx()] - pts[b.idx()]).abs().max(1e-9);
            let policy = VdmPolicy::delay_based();
            let mut ov = SyncOverlay::new(n, HostId(0), 3, dist);
            let mut inside: Vec<u32> = Vec::new();
            for _ in 0..60 {
                let join = inside.len() < 3 || (rng.gen_bool(0.6) && inside.len() < n - 1);
                if join {
                    let candidates: Vec<u32> =
                        (1..n as u32).filter(|h| !inside.contains(h)).collect();
                    if candidates.is_empty() { continue; }
                    let h = candidates[rng.gen_range(0..candidates.len())];
                    ov.join(HostId(h), 3, &policy);
                    inside.push(h);
                } else {
                    let i = rng.gen_range(0..inside.len());
                    let h = inside.swap_remove(i);
                    ov.leave(HostId(h), &policy);
                }
                let snap = ov.snapshot();
                let errors = snap.validate(&ov.limits());
                prop_assert!(errors.is_empty(), "errors {errors:?}");
                prop_assert_eq!(snap.connected_members().len(), inside.len());
            }
        }
    }
}

/// The paper's *known* limitations (§3.2.2 Scenarios III & IV): cases
/// where VDM intentionally misses the locally optimal tree. These tests
/// document the misses so a future "fix" cannot silently change the
/// protocol semantics.
#[cfg(test)]
mod paper_limitations {
    use super::*;
    use vdm_overlay::sync::SyncOverlay;
    use vdm_overlay::walk::WalkPurpose;

    /// §3.2.2 Scenario III (Figs. 3.15/3.16): when Case III and Case II
    /// coexist, VDM prefers Case III even though splicing (Case II)
    /// would give the better local MST. "We intentionally leave
    /// Scenario III as it is."
    #[test]
    fn scenario_iii_prefers_descent_over_better_splice() {
        let p = VdmPolicy::delay_based();
        let probe = ProbeResult {
            current: vdm_netsim::HostId(0),
            d_current: 10.0,
            children: vec![
                // C1: Case III (d_pn = 10 dominates its triple).
                vdm_overlay::walk::ChildProbe {
                    child: vdm_netsim::HostId(1),
                    d_parent_child: 6.0,
                    d_new_child: 5.0,
                },
                // C2: Case II with a *very* close newcomer — the
                // locally optimal move would be to splice here.
                vdm_overlay::walk::ChildProbe {
                    child: vdm_netsim::HostId(2),
                    d_parent_child: 11.0,
                    d_new_child: 0.5,
                },
            ],
            iteration: 0,
        };
        // VDM still descends into C1, forgoing the cheap C2 splice.
        assert_eq!(
            p.decide(&probe, WalkPurpose::Join),
            WalkStep::Descend(vdm_netsim::HostId(1))
        );
    }

    /// §3.2.2 Scenario IV (Fig. 3.17): the best potential parent can be
    /// a *grandchild* of the current node; the walk only inspects
    /// children, so it misses it. "This situation can be prevented only
    /// by contacting grandchildren of P which increases the overhead."
    #[test]
    fn scenario_iv_misses_grandchild_parent() {
        // Line: P = 0, C3 = -6 (child of P), C2 = -3 (child of C3);
        // N = -2. N's best parent is C2 (distance 1), but at P the
        // triple with C3 is Case II-ish/Case I and the walk never sees
        // C2.
        static POS: [f64; 4] = [0.0, -6.0, -3.0, -2.0];
        let dist =
            |a: vdm_netsim::HostId, b: vdm_netsim::HostId| (POS[a.idx()] - POS[b.idx()]).abs();
        let policy = VdmPolicy::delay_based();
        let mut ov = SyncOverlay::new(4, vdm_netsim::HostId(0), 4, dist);
        ov.join(vdm_netsim::HostId(1), 4, &policy); // C3 under P
        ov.join(vdm_netsim::HostId(2), 4, &policy); // C2 spliced between P and C3
                                                    // Sanity: P -> C2 -> C3 after the splice.
        assert_eq!(
            ov.peer(vdm_netsim::HostId(2)).parent,
            Some(vdm_netsim::HostId(0))
        );
        assert_eq!(
            ov.peer(vdm_netsim::HostId(1)).parent,
            Some(vdm_netsim::HostId(2))
        );
        // N at -2: at P, the C2 triple is Case II (d(P,C2)=3 > d(P,N)=2
        // > d(N,C2)=1): N splices at P adopting C2 — which here IS the
        // good outcome. To expose the Scenario-IV miss we need C2 deeper:
        // rebuild with C2 as grandchild whose parent triple hides it.
        static POS2: [f64; 4] = [0.0, 8.0, 5.0, 4.9];
        let dist2 =
            |a: vdm_netsim::HostId, b: vdm_netsim::HostId| (POS2[a.idx()] - POS2[b.idx()]).abs();
        let mut ov = SyncOverlay::new(4, vdm_netsim::HostId(0), 4, dist2);
        ov.join(vdm_netsim::HostId(1), 4, &policy); // C at 8 under P
        ov.join(vdm_netsim::HostId(2), 4, &policy); // C2 at 5: between P and C -> splice
        assert_eq!(
            ov.peer(vdm_netsim::HostId(2)).parent,
            Some(vdm_netsim::HostId(0))
        );
        // N at 4.9 joins: at P, C2's triple (d_pn=4.9, d_pc=5, d_nc=0.1)
        // -> Case II; N adopts C2 instead of becoming its child. The
        // edge P->N costs 4.9 whereas the optimal C2->N edge costs 0.1.
        let tr = ov.join(vdm_netsim::HostId(3), 4, &policy);
        assert_eq!(tr.parent, vdm_netsim::HostId(0));
        assert_eq!(
            ov.peer(vdm_netsim::HostId(2)).parent,
            Some(vdm_netsim::HostId(3))
        );
        // The tree is valid regardless — the miss is a quality issue,
        // not a correctness one.
        assert!(ov.snapshot().validate(&ov.limits()).is_empty());
    }
}

/// VDM on *non-metric* spaces: the PlanetLab chapter's RTTs violate the
/// triangle inequality, so the 1-D line abstraction is knowingly wrong
/// sometimes — the protocol must stay structurally correct anyway.
#[cfg(test)]
mod non_metric_proptests {
    use super::*;
    use proptest::prelude::*;
    use vdm_overlay::sync::SyncOverlay;

    proptest! {
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn arbitrary_symmetric_distances_build_valid_trees(seed in 0u64..400) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..20usize);
            // Completely random symmetric positive "distances": no
            // triangle inequality whatsoever.
            let mut m = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let w = rng.gen_range(0.1..100.0);
                    m[i][j] = w;
                    m[j][i] = w;
                }
            }
            let dist = move |a: HostId, b: HostId| m[a.idx()][b.idx()];
            let policy = VdmPolicy::delay_based();
            let limit = rng.gen_range(1..4u32);
            let mut ov = SyncOverlay::new(n, HostId(0), limit.max(2), dist);
            for h in 1..n as u32 {
                ov.join(HostId(h), limit, &policy);
            }
            let snap = ov.snapshot();
            prop_assert!(snap.validate(&ov.limits()).is_empty());
            prop_assert_eq!(snap.connected_members().len(), n - 1);
            // And random leaves keep it valid.
            for h in (1..n as u32).step_by(3) {
                if ov.in_tree(HostId(h)) {
                    ov.leave(HostId(h), &policy);
                    let snap = ov.snapshot();
                    prop_assert!(snap.validate(&ov.limits()).is_empty());
                }
            }
        }
    }
}
