//! Virtual Direction Multicast (VDM).
//!
//! The paper's contribution: an overlay multicast protocol that builds
//! its tree by estimating which peers lie "in the same virtual
//! direction" on a 1-D abstraction of the network (Chapter 3), with a
//! pluggable *virtual distance* so the same protocol optimizes delay,
//! loss, or blends of both (Chapter 4).
//!
//! * [`direction`] — the three-case classifier over peer triples
//!   (§3.1.2, Figs. 3.1–3.5);
//! * [`metric`] — the generalized virtual distances: VDM-D (delay),
//!   VDM-L (loss), and composites (§4.1);
//! * [`policy`] — the join policy (§3.2's pseudo-code) plugged into the
//!   shared walk machinery of `vdm-overlay`, plus the
//!   [`VdmFactory`] that builds full agents with
//!   reconnection (§3.3) and optional refinement (§3.4).
//!
//! # Quick start
//!
//! ```
//! use vdm_core::prelude::*;
//! use vdm_netsim::HostId;
//! use vdm_overlay::sync::SyncOverlay;
//!
//! // Five hosts on a virtual line at positions 0, 1, 2, 3, 4.
//! let dist = |a: HostId, b: HostId| (a.0 as f64 - b.0 as f64).abs();
//! let policy = VdmPolicy::delay_based();
//! let mut overlay = SyncOverlay::new(5, HostId(0), 4, dist);
//! for h in 1..5 {
//!     overlay.join(HostId(h), 4, &policy);
//! }
//! // VDM chains hosts that lie in the same direction.
//! let snapshot = overlay.snapshot();
//! assert_eq!(snapshot.depths()[4], Some(4));
//! ```

pub mod direction;
pub mod metric;
pub mod policy;

pub use direction::{classify, classify_with_slack, Case};
pub use metric::VirtualMetric;
pub use policy::{perturb_vdist, VdmFactory, VdmPolicy};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::direction::{classify, Case};
    pub use crate::metric::VirtualMetric;
    pub use crate::policy::{VdmFactory, VdmPolicy};
}
