//! Virtual directionality on a line (§3.1.2).
//!
//! Take a triple: the current node `P` (source or descendant), one of
//! its existing children `E`, and the newcomer `N`, with pairwise
//! virtual distances `d(P,N)`, `d(P,E)`, `d(N,E)`. Projected onto a
//! line, whichever distance is *largest* tells us who sits in the
//! middle:
//!
//! * `d(N,E)` largest → `P` between `N` and `E` → **Case I**: `N`
//!   should connect to `P` (Fig. 3.2);
//! * `d(P,E)` largest → `N` between `P` and `E` → **Case II**: `N`
//!   splices in, becoming `P`'s child and `E`'s parent (Fig. 3.3);
//! * `d(P,N)` largest → `E` between `P` and `N` → **Case III**: the
//!   walk continues from `E` (Figs. 3.4, 3.5).

use vdm_overlay::VDist;

/// The three directionality cases of §3.1.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Case {
    /// `P` between `N` and `E`: attach at `P`.
    I,
    /// `N` between `P` and `E`: splice `N` in.
    II,
    /// `E` between `P` and `N`: continue at `E`.
    III,
}

/// Classify a (current node, existing child, newcomer) triple.
///
/// * `d_pn` — distance current node ↔ newcomer;
/// * `d_pe` — distance current node ↔ existing child (stored);
/// * `d_ne` — distance newcomer ↔ existing child (probed).
///
/// Exact ties (measure-zero with real measurements) resolve
/// conservatively: Case I over Case II over Case III, so a degenerate
/// geometry attaches rather than descending forever.
#[inline]
pub fn classify(d_pn: VDist, d_pe: VDist, d_ne: VDist) -> Case {
    classify_with_slack(d_pn, d_pe, d_ne, 0.0)
}

/// [`classify`] with a *directionality slack*: the winning distance
/// must exceed the runner-up by the relative margin `slack` (e.g. 0.05
/// = 5 %), otherwise the triple is treated as non-directional
/// (Case I). `slack = 0` is the paper's behaviour; positive slack is an
/// ablation knob for noisy RTTs.
#[inline]
pub fn classify_with_slack(d_pn: VDist, d_pe: VDist, d_ne: VDist, slack: f64) -> Case {
    debug_assert!(
        d_pn >= 0.0 && d_pe >= 0.0 && d_ne >= 0.0,
        "virtual distances must be non-negative"
    );
    let margin = 1.0 + slack;
    if d_ne >= d_pn && d_ne >= d_pe {
        Case::I
    } else if d_pe >= d_pn && d_pe >= d_ne {
        if d_pe >= margin * d_pn.max(d_ne) {
            Case::II
        } else {
            Case::I
        }
    } else if d_pn >= margin * d_pe.max(d_ne) {
        Case::III
    } else {
        Case::I
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn line_geometry_cases() {
        // P at 0, E at 5.
        // N at -3: P in the middle.
        assert_eq!(classify(3.0, 5.0, 8.0), Case::I);
        // N at 2: N in the middle.
        assert_eq!(classify(2.0, 5.0, 3.0), Case::II);
        // N at 9: E in the middle.
        assert_eq!(classify(9.0, 5.0, 4.0), Case::III);
    }

    #[test]
    fn paper_fig_3_2_to_3_4() {
        // Fig 3.2 (Case I): router-level delays give N-S=4, S-E=5, N-E=9.
        assert_eq!(classify(4.0, 5.0, 9.0), Case::I);
        // Fig 3.3 (Case II): S-N=6, S-E=10, N-E=4.
        assert_eq!(classify(6.0, 10.0, 4.0), Case::II);
        // Fig 3.4 (Case III): S-N=9, S-E=5, N-E=4.
        assert_eq!(classify(9.0, 5.0, 4.0), Case::III);
    }

    #[test]
    fn ties_prefer_attaching() {
        // Equilateral: everything ties -> Case I.
        assert_eq!(classify(5.0, 5.0, 5.0), Case::I);
        // d_ne ties with d_pe for the max -> Case I.
        assert_eq!(classify(3.0, 5.0, 5.0), Case::I);
        // d_pe ties with d_pn for the max (above d_ne) -> Case II.
        assert_eq!(classify(5.0, 5.0, 3.0), Case::II);
        // Degenerate zeros.
        assert_eq!(classify(0.0, 0.0, 0.0), Case::I);
    }

    #[test]
    fn slack_suppresses_marginal_directions() {
        // d_pn barely dominates: Case III without slack, Case I with.
        assert_eq!(classify_with_slack(5.1, 5.0, 4.0, 0.0), Case::III);
        assert_eq!(classify_with_slack(5.1, 5.0, 4.0, 0.05), Case::I);
        // Clear dominance survives slack.
        assert_eq!(classify_with_slack(9.0, 5.0, 4.0, 0.05), Case::III);
        assert_eq!(classify_with_slack(2.0, 9.0, 3.0, 0.05), Case::II);
    }

    proptest! {
        /// The classifier is total and the case always matches the
        /// true maximum (modulo the tie preference).
        #[test]
        fn classifier_matches_maximum(
            d_pn in 0.0..1e6f64,
            d_pe in 0.0..1e6f64,
            d_ne in 0.0..1e6f64,
        ) {
            let case = classify(d_pn, d_pe, d_ne);
            match case {
                Case::I => prop_assert!(d_ne >= d_pn && d_ne >= d_pe),
                Case::II => prop_assert!(d_pe >= d_pn && d_pe >= d_ne),
                Case::III => prop_assert!(d_pn >= d_pe && d_pn >= d_ne),
            }
        }

        /// On an actual line, the classifier recovers the true middle
        /// point.
        #[test]
        fn line_positions_recover_order(p in -1e3..1e3f64, e in -1e3..1e3f64, n in -1e3..1e3f64) {
            prop_assume!((p - e).abs() > 1e-9 && (p - n).abs() > 1e-9 && (e - n).abs() > 1e-9);
            let case = classify((p - n).abs(), (p - e).abs(), (n - e).abs());
            let expected = if (p - e).signum() != (p - n).signum() {
                Case::I // p in the middle
            } else if (n - p).signum() != (n - e).signum() {
                Case::II // n in the middle
            } else {
                Case::III // e in the middle
            };
            prop_assert_eq!(case, expected);
        }

        /// Slack only ever converts decisions toward Case I.
        #[test]
        fn slack_is_conservative(
            d_pn in 0.0..1e3f64,
            d_pe in 0.0..1e3f64,
            d_ne in 0.0..1e3f64,
            slack in 0.0..0.5f64,
        ) {
            let strict = classify(d_pn, d_pe, d_ne);
            let slacked = classify_with_slack(d_pn, d_pe, d_ne, slack);
            if slacked != strict {
                prop_assert_eq!(slacked, Case::I);
            }
        }
    }
}
