//! Generalized virtual distances (Chapter 4).
//!
//! "A key property of VDM is the capability of virtualizing the
//! underlying network in different ways. [...] Different values of
//! these metrics may produce different virtual distances and thus
//! different overlay tree" (§4.1). The protocol never changes — only
//! how a measured (RTT, loss) pair becomes a scalar distance:
//!
//! * **VDM-D** ([`VirtualMetric::Delay`]): the RTT in milliseconds.
//! * **VDM-L** ([`VirtualMetric::Loss`]): `-ln(1 - p)` of the estimated
//!   path loss probability `p`. This transform is *additive over
//!   concatenated independent paths* (success probabilities multiply),
//!   which is exactly the property the 1-D line abstraction needs — it
//!   plays the role path delay plays for VDM-D. A tiny RTT tie-breaker
//!   keeps triples non-degenerate where loss is identical (e.g. two
//!   loss-free paths).
//! * **Blend** ([`VirtualMetric::Blend`]): a weighted sum of both,
//!   normalized so the weights are unit-comparable.

use vdm_overlay::VDist;

/// How measurements become virtual distances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VirtualMetric {
    /// VDM-D: virtual distance = RTT (ms).
    Delay,
    /// VDM-L: virtual distance = `-ln(1 - loss)`, with a small RTT
    /// tie-breaker (`rtt_tiebreak` per ms of RTT, default `1e-6`).
    Loss {
        /// Weight of the RTT tie-breaker term.
        rtt_tiebreak: f64,
    },
    /// Weighted blend: `w_delay * rtt/rtt_scale + w_loss *
    /// (-ln(1-p))/loss_scale`.
    Blend {
        /// Weight of the delay term.
        w_delay: f64,
        /// Weight of the loss term.
        w_loss: f64,
        /// RTT normalizer, ms (e.g. 100.0 = "one unit per 100 ms").
        rtt_scale: f64,
        /// Loss-distance normalizer (e.g. 0.01 ≈ "one unit per 1 %
        /// loss").
        loss_scale: f64,
    },
}

impl VirtualMetric {
    /// VDM-L with the default tie-breaker.
    pub fn loss() -> Self {
        VirtualMetric::Loss { rtt_tiebreak: 1e-6 }
    }

    /// An even delay/loss blend on typical Internet scales.
    pub fn balanced_blend() -> Self {
        VirtualMetric::Blend {
            w_delay: 0.5,
            w_loss: 0.5,
            rtt_scale: 100.0,
            loss_scale: 0.01,
        }
    }

    /// Loss probability → additive loss distance.
    #[inline]
    pub fn loss_distance(p: f64) -> VDist {
        -(1.0 - p.clamp(0.0, 0.999_999)).ln()
    }

    /// Convert a measurement into a virtual distance.
    #[inline]
    pub fn vdist(&self, rtt_ms: f64, loss_est: f64) -> VDist {
        match *self {
            VirtualMetric::Delay => rtt_ms,
            VirtualMetric::Loss { rtt_tiebreak } => {
                Self::loss_distance(loss_est) + rtt_tiebreak * rtt_ms
            }
            VirtualMetric::Blend {
                w_delay,
                w_loss,
                rtt_scale,
                loss_scale,
            } => w_delay * rtt_ms / rtt_scale + w_loss * Self::loss_distance(loss_est) / loss_scale,
        }
    }

    /// Whether the walk must estimate path loss for this metric.
    pub fn needs_loss(&self) -> bool {
        !matches!(self, VirtualMetric::Delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delay_is_identity_on_rtt() {
        let m = VirtualMetric::Delay;
        assert_eq!(m.vdist(42.0, 0.9), 42.0);
        assert!(!m.needs_loss());
    }

    #[test]
    fn loss_distance_is_additive_over_concatenation() {
        // Two independent hops with losses p1, p2: end-to-end success
        // is (1-p1)(1-p2), so distances must add.
        let (p1, p2) = (0.03, 0.08);
        let combined = 1.0 - (1.0 - p1) * (1.0 - p2);
        let d = VirtualMetric::loss_distance(combined);
        let d12 = VirtualMetric::loss_distance(p1) + VirtualMetric::loss_distance(p2);
        assert!((d - d12).abs() < 1e-12);
    }

    #[test]
    fn loss_metric_orders_by_loss_first() {
        let m = VirtualMetric::loss();
        assert!(m.needs_loss());
        // Lossier path is farther even if its RTT is much smaller.
        let near_lossy = m.vdist(5.0, 0.10);
        let far_clean = m.vdist(500.0, 0.01);
        assert!(near_lossy > far_clean);
        // RTT breaks exact loss ties.
        assert!(m.vdist(10.0, 0.05) < m.vdist(20.0, 0.05));
    }

    #[test]
    fn blend_mixes_scales() {
        let m = VirtualMetric::balanced_blend();
        // 100 ms, 1% loss ≈ 0.5 + 0.5 ≈ 1.0.
        let v = m.vdist(100.0, 0.01);
        assert!((v - 1.0).abs() < 0.01, "got {v}");
        assert!(m.needs_loss());
    }

    #[test]
    fn extreme_loss_is_finite() {
        assert!(VirtualMetric::loss_distance(1.0).is_finite());
        assert!(VirtualMetric::loss_distance(0.0) == 0.0);
    }

    proptest! {
        /// Distances are non-negative and monotone in each input.
        #[test]
        fn monotone_nonnegative(rtt in 0.0..5e3f64, p in 0.0..0.9f64) {
            for m in [VirtualMetric::Delay, VirtualMetric::loss(), VirtualMetric::balanced_blend()] {
                let v = m.vdist(rtt, p);
                prop_assert!(v >= 0.0);
                prop_assert!(m.vdist(rtt + 1.0, p) >= v - 1e-12);
                prop_assert!(m.vdist(rtt, (p + 0.05).min(0.95)) >= v - 1e-9);
            }
        }
    }
}
