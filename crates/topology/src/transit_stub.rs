//! GT-ITM-style transit–stub topology generator.
//!
//! The paper's NS-2 experiments run on a 792-node transit-stub topology
//! produced by GT-ITM (§3.6.2). This module reproduces the transit-stub
//! *model*: a small backbone of transit domains, each transit router
//! hanging several stub domains, with delay ranges stratified by link
//! class (intra-stub < stub-transit < intra-transit < inter-transit).
//!
//! Overlay end hosts are attached to random stub routers afterwards with
//! [`attach_hosts`], mirroring how the paper picks "randomly selected 200
//! of nodes" to join the overlay.

use crate::graph::{Graph, LinkAttrs, NodeId, NodeKind};
use crate::Millis;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Delay range (ms) for one class of links; delays are drawn uniformly.
#[derive(Clone, Copy, Debug)]
pub struct DelayRange {
    /// Inclusive lower bound, ms.
    pub lo: Millis,
    /// Exclusive upper bound, ms.
    pub hi: Millis,
}

impl DelayRange {
    fn sample(&self, rng: &mut StdRng) -> Millis {
        if self.hi > self.lo {
            rng.gen_range(self.lo..self.hi)
        } else {
            self.lo
        }
    }
}

/// Parameters of the transit-stub generator.
#[derive(Clone, Debug)]
pub struct TransitStubConfig {
    /// Number of transit domains (backbone ASes).
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_nodes: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit_node: usize,
    /// Routers per stub domain.
    pub stub_nodes: usize,
    /// Probability of an extra edge between two routers of the same domain
    /// (on top of the random spanning tree that guarantees connectivity).
    pub intra_extra_edge_prob: f64,
    /// Delay ranges by link class.
    pub inter_transit_delay: DelayRange,
    /// Delay range of links between routers of one transit domain.
    pub intra_transit_delay: DelayRange,
    /// Delay range of stub-domain-to-transit-router access links.
    pub stub_transit_delay: DelayRange,
    /// Delay range of links inside a stub domain.
    pub intra_stub_delay: DelayRange,
}

impl TransitStubConfig {
    /// The paper's scale: 4 transit domains x 6 routers = 24 transit
    /// routers; 4 stub domains x 8 routers per transit router = 768 stub
    /// routers; 792 routers total, matching §3.6.2.
    pub fn paper_792() -> Self {
        Self {
            transit_domains: 4,
            transit_nodes: 6,
            stubs_per_transit_node: 4,
            stub_nodes: 8,
            intra_extra_edge_prob: 0.25,
            inter_transit_delay: DelayRange { lo: 20.0, hi: 60.0 },
            intra_transit_delay: DelayRange { lo: 8.0, hi: 25.0 },
            stub_transit_delay: DelayRange { lo: 4.0, hi: 12.0 },
            intra_stub_delay: DelayRange { lo: 1.0, hi: 4.0 },
        }
    }

    /// A smaller/larger topology with roughly `routers` routers, keeping
    /// the paper's shape (1 transit router : 32 stub routers).
    pub fn sized(routers: usize) -> Self {
        let mut cfg = Self::paper_792();
        // paper_792 yields 792 with (4,6,4,8); scale stub domain count.
        let per_transit = (routers / 24).max(2); // stub routers per transit router
        let stub_nodes = 8.min(per_transit);
        cfg.stubs_per_transit_node = (per_transit / stub_nodes).max(1);
        cfg.stub_nodes = stub_nodes;
        cfg
    }

    /// Total router count this config will generate.
    pub fn total_routers(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes;
        transit + transit * self.stubs_per_transit_node * self.stub_nodes
    }
}

/// Generate a connected domain: random spanning tree over `members` plus
/// extra random edges with probability `extra_prob`.
fn connect_domain(
    g: &mut Graph,
    members: &[NodeId],
    delay: DelayRange,
    extra_prob: f64,
    rng: &mut StdRng,
) {
    for (i, &v) in members.iter().enumerate().skip(1) {
        let u = members[rng.gen_range(0..i)];
        g.add_edge(u, v, LinkAttrs::delay(delay.sample(rng)));
    }
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if g.find_edge(members[i], members[j]).is_none() && rng.gen_bool(extra_prob) {
                g.add_edge(members[i], members[j], LinkAttrs::delay(delay.sample(rng)));
            }
        }
    }
}

/// Generate a transit-stub router topology.
///
/// The result is always connected. Stub routers are `NodeKind::Stub`,
/// transit routers `NodeKind::Transit`.
pub fn generate(cfg: &TransitStubConfig, seed: u64) -> Graph {
    assert!(cfg.transit_domains >= 1 && cfg.transit_nodes >= 1);
    assert!(cfg.stub_nodes >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0074_7261_6e73_6974);
    let mut g = Graph::new();

    // Transit domains.
    let mut domains: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.transit_domains);
    for _ in 0..cfg.transit_domains {
        let members: Vec<NodeId> = (0..cfg.transit_nodes)
            .map(|_| g.add_node(NodeKind::Transit))
            .collect();
        connect_domain(
            &mut g,
            &members,
            cfg.intra_transit_delay,
            cfg.intra_extra_edge_prob,
            &mut rng,
        );
        domains.push(members);
    }

    // Inter-domain backbone: ring over domains plus one random chord per
    // domain, each realized between random routers of the two domains.
    let d = domains.len();
    if d > 1 {
        for i in 0..d {
            let j = (i + 1) % d;
            let a = domains[i][rng.gen_range(0..domains[i].len())];
            let b = domains[j][rng.gen_range(0..domains[j].len())];
            if g.find_edge(a, b).is_none() {
                g.add_edge(
                    a,
                    b,
                    LinkAttrs::delay(cfg.inter_transit_delay.sample(&mut rng))
                        .with_bandwidth(1_000.0),
                );
            }
        }
        if d > 2 {
            for i in 0..d {
                let j = rng.gen_range(0..d);
                if j == i || (j + 1) % d == i || (i + 1) % d == j {
                    continue;
                }
                let a = domains[i][rng.gen_range(0..domains[i].len())];
                let b = domains[j][rng.gen_range(0..domains[j].len())];
                if g.find_edge(a, b).is_none() {
                    g.add_edge(
                        a,
                        b,
                        LinkAttrs::delay(cfg.inter_transit_delay.sample(&mut rng))
                            .with_bandwidth(1_000.0),
                    );
                }
            }
        }
    }

    // Stub domains.
    for domain in &domains {
        for &tr in domain {
            for _ in 0..cfg.stubs_per_transit_node {
                let members: Vec<NodeId> = (0..cfg.stub_nodes)
                    .map(|_| g.add_node(NodeKind::Stub))
                    .collect();
                connect_domain(
                    &mut g,
                    &members,
                    cfg.intra_stub_delay,
                    cfg.intra_extra_edge_prob,
                    &mut rng,
                );
                // Gateway link from a random stub router to the transit router.
                let gw = members[rng.gen_range(0..members.len())];
                g.add_edge(
                    gw,
                    tr,
                    LinkAttrs::delay(cfg.stub_transit_delay.sample(&mut rng)).with_bandwidth(155.0),
                );
            }
        }
    }

    debug_assert!(g.is_connected());
    g
}

/// Access-link capacity for attached hosts, Mbit/s (broadband-ish; the
/// congestion experiments push multiple 500 kbps streams through it).
pub const HOST_ACCESS_MBPS: f64 = 10.0;

/// Attach `count` end hosts to distinct random stub routers via short
/// access links; returns the host node ids.
///
/// Hosts get 1 ms lossless access links by default; pass `loss` to model
/// lossy last miles (used by the Chapter 4 VDM-L experiments, which assign
/// each physical link a random error rate).
pub fn attach_hosts(g: &mut Graph, count: usize, seed: u64, loss: f64) -> Vec<NodeId> {
    let access_mbps = HOST_ACCESS_MBPS;
    let stubs = g.nodes_of_kind(NodeKind::Stub);
    assert!(
        count <= stubs.len(),
        "cannot attach {count} hosts to {} stub routers",
        stubs.len()
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x686f_7374);
    // Sample `count` distinct stub routers (partial Fisher-Yates).
    let mut pool = stubs;
    let mut hosts = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
        let router = pool[i];
        let h = g.add_node(NodeKind::Host);
        g.add_edge(
            h,
            router,
            LinkAttrs {
                delay_ms: rng.gen_range(0.5..2.0),
                loss,
                bandwidth_mbps: access_mbps,
            },
        );
        hosts.push(h);
    }
    hosts
}

/// Assign every edge of `g` an independent random loss rate in
/// `[0, max_loss)`, as the Chapter 4 experiments do ("each physical link
/// in topology is assigned a random error rate between 0% and 2%").
pub fn randomize_losses(g: &mut Graph, max_loss: f64, seed: u64) {
    assert!((0.0..1.0).contains(&max_loss));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6c6f_7373);
    let edges: Vec<_> = g.edges().map(|(id, e)| (id, *e)).collect();
    // Graph has no in-place attribute setter (attributes are generator
    // facts), so rebuild with the same nodes and randomized losses.
    let mut rebuilt = Graph::new();
    for n in g.nodes() {
        rebuilt.add_node(g.kind(n));
    }
    for (_, e) in edges {
        rebuilt.add_edge(
            e.a,
            e.b,
            LinkAttrs {
                delay_ms: e.attrs.delay_ms,
                loss: if max_loss > 0.0 {
                    rng.gen_range(0.0..max_loss)
                } else {
                    0.0
                },
                bandwidth_mbps: e.attrs.bandwidth_mbps,
            },
        );
    }
    *g = rebuilt;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_792_routers() {
        let cfg = TransitStubConfig::paper_792();
        assert_eq!(cfg.total_routers(), 792);
        let g = generate(&cfg, 42);
        assert_eq!(g.num_nodes(), 792);
        assert!(g.is_connected());
        assert_eq!(g.nodes_of_kind(NodeKind::Transit).len(), 24);
        assert_eq!(g.nodes_of_kind(NodeKind::Stub).len(), 768);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TransitStubConfig::paper_792();
        let g1 = generate(&cfg, 7);
        let g2 = generate(&cfg, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for ((_, e1), (_, e2)) in g1.edges().zip(g2.edges()) {
            assert_eq!(e1.a, e2.a);
            assert_eq!(e1.b, e2.b);
            assert_eq!(e1.attrs.delay_ms, e2.attrs.delay_ms);
        }
        let g3 = generate(&cfg, 8);
        let same = g1.num_edges() == g3.num_edges()
            && g1
                .edges()
                .zip(g3.edges())
                .all(|((_, a), (_, b))| a.a == b.a && a.b == b.b && a.attrs == b.attrs);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn hosts_attach_to_distinct_stub_routers() {
        let cfg = TransitStubConfig::paper_792();
        let mut g = generate(&cfg, 1);
        let hosts = attach_hosts(&mut g, 200, 1, 0.0);
        assert_eq!(hosts.len(), 200);
        assert!(g.is_connected());
        for &h in &hosts {
            assert_eq!(g.kind(h), NodeKind::Host);
            assert_eq!(g.degree(h), 1);
            let adj = g.neighbors(h)[0];
            assert_eq!(g.kind(adj.to), NodeKind::Stub);
        }
        // Distinct routers.
        let mut routers: Vec<_> = hosts.iter().map(|&h| g.neighbors(h)[0].to).collect();
        routers.sort();
        routers.dedup();
        assert_eq!(routers.len(), 200);
    }

    #[test]
    fn sized_configs_are_reasonable() {
        for target in [100, 400, 1200, 3000] {
            let cfg = TransitStubConfig::sized(target);
            let total = cfg.total_routers();
            assert!(
                total >= target / 2 && total <= target * 2,
                "target {target} produced {total}"
            );
            let g = generate(&cfg, 3);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn randomize_losses_bounds() {
        let cfg = TransitStubConfig::sized(100);
        let mut g = generate(&cfg, 5);
        randomize_losses(&mut g, 0.02, 5);
        let mut any_positive = false;
        for (_, e) in g.edges() {
            assert!(e.attrs.loss >= 0.0 && e.attrs.loss < 0.02);
            any_positive |= e.attrs.loss > 0.0;
        }
        assert!(any_positive);
        assert!(g.is_connected());
    }
}
