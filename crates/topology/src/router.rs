//! Scale-out routing: the [`RouteProvider`] abstraction and the
//! memory-bounded [`OnDemandRouter`].
//!
//! The dense [`Apsp`] table is `O(n^2)` in both its distance and
//! next-hop planes — at 10k routers that is ~1.6 GB, and at 20k it is
//! unbuildable. [`RouteProvider`] abstracts "answer routing queries
//! about the underlay" so consumers ([`RoutedUnderlay`] in `vdm-netsim`,
//! scenario setup in `vdm-experiments`) can pick either:
//!
//! * [`Apsp`] — the exact dense oracle, kept for N ≤ ~2k where the
//!   matrices are cheap and cache artifacts already exist; or
//! * [`OnDemandRouter`] — per-source Dijkstra run lazily, with the
//!   resulting [`RouteRow`]s held in a bounded LRU. Memory is
//!   `O(capacity · n)` instead of `O(n^2)`, and rows are shared
//!   read-only (`Arc`) across runner threads.
//!
//! Both implementations answer `dist_ms` and `next_hop` **bit-for-bit
//! identically**: they run the same [`dijkstra`] (deterministic heap
//! tie-breaks) and derive first hops by the same predecessor walk, so
//! switching providers cannot perturb closest-child selection anywhere.
//!
//! [`RoutedUnderlay`]: ../../vdm_netsim/underlay/struct.RoutedUnderlay.html

use crate::cache::{self, codec, KeyHasher};
use crate::graph::{EdgeId, Graph, NodeId};
use crate::spath::{dijkstra, Apsp};
use crate::Millis;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Answer routing queries over an underlay graph.
///
/// Implementations must agree exactly (bitwise on distances) so that
/// experiment output is independent of the provider chosen; see the
/// module docs and the `router_props` property tests.
pub trait RouteProvider: Send + Sync {
    /// Number of nodes routing tables cover.
    fn num_nodes(&self) -> usize;

    /// Shortest one-way delay (ms) from `a` to `b`; `INFINITY` when
    /// unreachable. Always derived from `a`'s shortest-path tree.
    fn dist_ms(&self, a: NodeId, b: NodeId) -> Millis;

    /// Next hop from `a` toward `b`; `None` if unreachable or `a == b`.
    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId>;

    /// Node sequence of the route `a -> b` (inclusive). Empty when
    /// unreachable; `[a]` when `a == b`.
    fn path_nodes(&self, a: NodeId, b: NodeId) -> Vec<NodeId>;

    /// Edge sequence of the route `a -> b`, for per-link accounting.
    fn path_edges(&self, g: &Graph, a: NodeId, b: NodeId) -> Vec<EdgeId> {
        self.path_nodes(a, b)
            .windows(2)
            .map(|w| {
                g.find_edge(w[0], w[1])
                    .expect("route references a missing edge")
            })
            .collect()
    }

    /// Number of hops on the route `a -> b` (`0` if `a == b` or
    /// unreachable).
    fn hop_count(&self, a: NodeId, b: NodeId) -> usize {
        self.path_nodes(a, b).len().saturating_sub(1)
    }
}

impl RouteProvider for Apsp {
    fn num_nodes(&self) -> usize {
        Apsp::num_nodes(self)
    }

    fn dist_ms(&self, a: NodeId, b: NodeId) -> Millis {
        Apsp::dist_ms(self, a, b)
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        Apsp::next_hop(self, a, b)
    }

    fn path_nodes(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        Apsp::path_nodes(self, a, b)
    }

    fn path_edges(&self, g: &Graph, a: NodeId, b: NodeId) -> Vec<EdgeId> {
        Apsp::path_edges(self, g, a, b)
    }

    fn hop_count(&self, a: NodeId, b: NodeId) -> usize {
        Apsp::hop_count(self, a, b)
    }
}

/// One source's routing row: distances, predecessors, and first hops
/// toward every node — `O(n)` memory (16 bytes/node), the unit the
/// [`OnDemandRouter`] caches and (optionally) persists.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteRow {
    /// Source node this row was computed from.
    pub source: NodeId,
    /// `dist[v]` = shortest delay (ms) source → `v`; `INFINITY` when
    /// unreachable.
    dist: Vec<Millis>,
    /// `prev[v]` = predecessor of `v` on the shortest path from the
    /// source; `u32::MAX` for the source itself and unreachable nodes.
    prev: Vec<u32>,
    /// `first[v]` = first hop from the source toward `v`; `u32::MAX`
    /// sentinel as in [`Apsp`].
    first: Vec<u32>,
}

impl RouteRow {
    /// Run Dijkstra from `source` and derive first hops exactly as
    /// [`Apsp::build`] does (walk `prev` back from each target).
    pub fn compute(g: &Graph, source: NodeId) -> Self {
        let sp = dijkstra(g, source);
        let n = g.num_nodes();
        let mut prev = vec![u32::MAX; n];
        let mut first = vec![u32::MAX; n];
        for v in g.nodes() {
            if let Some(p) = sp.prev[v.idx()] {
                prev[v.idx()] = p.0;
            }
            if v != source && sp.dist[v.idx()].is_finite() {
                let mut cur = v;
                while let Some(p) = sp.prev[cur.idx()] {
                    if p == source {
                        break;
                    }
                    cur = p;
                }
                first[v.idx()] = cur.0;
            }
        }
        Self {
            source,
            dist: sp.dist,
            prev,
            first,
        }
    }

    /// Shortest delay (ms) from this row's source to `v`.
    #[inline]
    pub fn dist_ms(&self, v: NodeId) -> Millis {
        self.dist[v.idx()]
    }

    /// First hop from the source toward `v`; `None` if unreachable or
    /// `v` is the source.
    #[inline]
    pub fn first_hop(&self, v: NodeId) -> Option<NodeId> {
        let h = self.first[v.idx()];
        (h != u32::MAX).then_some(NodeId(h))
    }

    /// Node sequence source → `v` (inclusive), reconstructed by the
    /// predecessor walk. Empty when unreachable; `[source]` when `v`
    /// is the source.
    pub fn path_nodes(&self, v: NodeId) -> Vec<NodeId> {
        if v == self.source {
            return vec![v];
        }
        if self.dist[v.idx()].is_infinite() {
            return Vec::new();
        }
        let mut path = vec![v];
        let mut cur = v;
        while self.prev[cur.idx()] != u32::MAX {
            cur = NodeId(self.prev[cur.idx()]);
            path.push(cur);
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        path
    }

    /// Serialize for the artifact cache (domain `route-row`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = codec::ByteWriter::with_capacity(32 + self.dist.len() * 16);
        w.put_u32(self.source.0);
        w.put_f64s(&self.dist);
        w.put_u32s(&self.prev);
        w.put_u32s(&self.first);
        w.into_bytes()
    }

    /// Decode a [`RouteRow::to_bytes`] artifact; `None` on corruption or
    /// a dimension mismatch with `expect_nodes` (treated as a cache
    /// miss).
    pub fn from_bytes(bytes: &[u8], expect_nodes: usize) -> Option<Self> {
        let mut r = codec::ByteReader::new(bytes);
        let source = NodeId(r.get_u32()?);
        let dist = r.get_f64s()?;
        let prev = r.get_u32s()?;
        let first = r.get_u32s()?;
        if !r.at_end()
            || dist.len() != expect_nodes
            || prev.len() != expect_nodes
            || first.len() != expect_nodes
            || source.idx() >= expect_nodes
        {
            return None;
        }
        Some(Self {
            source,
            dist,
            prev,
            first,
        })
    }
}

/// Per-instance counters for one [`OnDemandRouter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Row lookups served from the LRU.
    pub hits: u64,
    /// Row lookups that ran (or loaded) a fresh Dijkstra.
    pub misses: u64,
    /// Rows dropped to stay within `capacity`.
    pub evictions: u64,
    /// Rows currently resident.
    pub resident: usize,
    /// High-water mark of resident rows — the peak-RSS proxy the A9
    /// scale family reports.
    pub peak_resident: usize,
    /// Configured row capacity.
    pub capacity: usize,
}

static ROW_HITS: AtomicU64 = AtomicU64::new(0);
static ROW_MISSES: AtomicU64 = AtomicU64::new(0);
static ROW_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Export the process-global router counters into the unified metrics
/// registry under the `router.*` namespace (mirrors
/// [`cache::export_metrics`]).
pub fn export_metrics(m: &mut vdm_trace::MetricsRegistry) {
    m.counter_add("router.row_hits", ROW_HITS.load(Ordering::Relaxed));
    m.counter_add("router.row_misses", ROW_MISSES.load(Ordering::Relaxed));
    m.counter_add(
        "router.row_evictions",
        ROW_EVICTIONS.load(Ordering::Relaxed),
    );
}

struct LruEntry {
    row: Arc<RouteRow>,
    last_used: u64,
}

#[derive(Default)]
struct RowLru {
    rows: HashMap<u32, LruEntry>,
    tick: u64,
    peak: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Memory-bounded routing oracle: per-source Dijkstra on demand, rows
/// kept in an LRU of at most `capacity` [`RouteRow`]s.
///
/// Rows are handed out as `Arc<RouteRow>`, so concurrent runner threads
/// share them read-only; the internal lock is held only for the LRU
/// bookkeeping, never across a Dijkstra run. With `persist` enabled,
/// rows additionally round-trip through the global artifact cache
/// ([`cache::get_or_compute_global`], domain `route-row`) keyed by a
/// caller-supplied [`KeyHasher`] identifying the graph.
pub struct OnDemandRouter {
    graph: Arc<Graph>,
    capacity: usize,
    /// Pre-fed hasher identifying the underlay (generator params +
    /// seed); present iff rows should persist to the artifact cache.
    persist_key: Option<KeyHasher>,
    lru: Mutex<RowLru>,
}

impl std::fmt::Debug for OnDemandRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("OnDemandRouter")
            .field("nodes", &self.graph.num_nodes())
            .field("capacity", &self.capacity)
            .field("resident", &s.resident)
            .field("persist", &self.persist_key.is_some())
            .finish()
    }
}

/// Row-cache memory budget used by [`OnDemandRouter::default_capacity`].
const ROW_BUDGET_BYTES: usize = 64 << 20;

impl OnDemandRouter {
    /// Router over `graph` holding at most `capacity` rows; pass `None`
    /// for [`Self::default_capacity`]. Rows are not persisted to disk.
    pub fn new(graph: Arc<Graph>, capacity: Option<usize>) -> Self {
        let capacity = capacity
            .unwrap_or_else(|| Self::default_capacity(graph.num_nodes()))
            .max(1);
        Self {
            graph,
            capacity,
            persist_key: None,
            lru: Mutex::new(RowLru::default()),
        }
    }

    /// Rows-in-memory bound for an `n`-node graph under a fixed
    /// ~64 MiB budget (a row costs 16 bytes/node), clamped to
    /// `[8, n]`. At 1k nodes that is every row (the dense regime); at
    /// 20k nodes it is ~200 rows — memory stays `O(capacity · n)`, not
    /// `O(n^2)`.
    pub fn default_capacity(n: usize) -> usize {
        let row_bytes = n.max(1) * 16;
        (ROW_BUDGET_BYTES / row_bytes).clamp(8, n.max(8))
    }

    /// Enable row persistence through the global artifact cache. `key`
    /// must uniquely identify the graph (generator parameters + seed);
    /// per-row keys additionally mix the source id. Only worth it for
    /// graphs small enough that a row set on disk is acceptable —
    /// callers gate this on node count.
    pub fn with_row_persistence(mut self, key: KeyHasher) -> Self {
        self.persist_key = Some(key);
        self
    }

    /// The underlay graph this router answers for.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Configured row capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot this instance's hit/miss/eviction/residency counters.
    pub fn stats(&self) -> RouterStats {
        let lru = self.lru.lock().expect("router lru lock");
        RouterStats {
            hits: lru.hits,
            misses: lru.misses,
            evictions: lru.evictions,
            resident: lru.rows.len(),
            peak_resident: lru.peak,
            capacity: self.capacity,
        }
    }

    /// The routing row for `source`: from the LRU when resident, else
    /// computed (and optionally loaded from / stored to the artifact
    /// cache) outside the lock.
    pub fn row(&self, source: NodeId) -> Arc<RouteRow> {
        {
            let mut lru = self.lru.lock().expect("router lru lock");
            lru.tick += 1;
            let tick = lru.tick;
            if let Some(e) = lru.rows.get_mut(&source.0) {
                e.last_used = tick;
                let row = Arc::clone(&e.row);
                lru.hits += 1;
                ROW_HITS.fetch_add(1, Ordering::Relaxed);
                return row;
            }
            lru.misses += 1;
            ROW_MISSES.fetch_add(1, Ordering::Relaxed);
        }
        // Compute (or load) without holding the lock: other threads can
        // keep hitting resident rows during this Dijkstra.
        let row = Arc::new(self.compute_row(source));
        let mut lru = self.lru.lock().expect("router lru lock");
        lru.tick += 1;
        let tick = lru.tick;
        if let Some(e) = lru.rows.get_mut(&source.0) {
            // Another thread raced us to the same row; share theirs.
            e.last_used = tick;
            return Arc::clone(&e.row);
        }
        if lru.rows.len() >= self.capacity {
            // Scan-min eviction: capacity is small (hundreds), and the
            // scan is far cheaper than the Dijkstra that preceded it.
            if let Some(&victim) = lru
                .rows
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                lru.rows.remove(&victim);
                lru.evictions += 1;
                ROW_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
        }
        lru.rows.insert(
            source.0,
            LruEntry {
                row: Arc::clone(&row),
                last_used: tick,
            },
        );
        lru.peak = lru.peak.max(lru.rows.len());
        row
    }

    fn compute_row(&self, source: NodeId) -> RouteRow {
        match &self.persist_key {
            Some(base) => {
                let mut h = base.clone();
                h.feed_u64(u64::from(source.0));
                let key = h.key("route-row");
                let n = self.graph.num_nodes();
                cache::get_or_compute_global(
                    &key,
                    || RouteRow::compute(&self.graph, source),
                    RouteRow::to_bytes,
                    |bytes| RouteRow::from_bytes(bytes, n).filter(|r| r.source == source),
                )
            }
            None => RouteRow::compute(&self.graph, source),
        }
    }
}

impl RouteProvider for OnDemandRouter {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn dist_ms(&self, a: NodeId, b: NodeId) -> Millis {
        // Always a's row, matching the dense matrix's row orientation, so
        // answers are bit-identical to `Apsp::dist_ms` even when summing
        // the reverse path would differ in the last ulp.
        self.row(a).dist_ms(b)
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        self.row(a).first_hop(b)
    }

    fn path_nodes(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        self.row(a).path_nodes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkAttrs, NodeKind};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(seed: u64, n: usize) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::with_nodes(n, NodeKind::Stub);
        for v in 1..n {
            let u = rng.gen_range(0..v);
            g.add_edge(
                NodeId(u as u32),
                NodeId(v as u32),
                LinkAttrs::delay(rng.gen_range(1.0..20.0)),
            );
        }
        for _ in 0..n {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && g.find_edge(NodeId(a as u32), NodeId(b as u32)).is_none() {
                g.add_edge(
                    NodeId(a as u32),
                    NodeId(b as u32),
                    LinkAttrs::delay(rng.gen_range(1.0..20.0)),
                );
            }
        }
        g
    }

    /// Bitwise equality of both providers on every (a, b) query.
    fn assert_providers_agree(g: &Graph) {
        let apsp = Apsp::build(g);
        let router = OnDemandRouter::new(Arc::new(g.clone()), None);
        for a in g.nodes() {
            for b in g.nodes() {
                let (d1, d2) = (
                    RouteProvider::dist_ms(&apsp, a, b),
                    RouteProvider::dist_ms(&router, a, b),
                );
                assert!(
                    d1.to_bits() == d2.to_bits() || (d1.is_infinite() && d2.is_infinite()),
                    "dist {a}->{b}: {d1} vs {d2}"
                );
                assert_eq!(
                    RouteProvider::next_hop(&apsp, a, b),
                    RouteProvider::next_hop(&router, a, b),
                    "next hop {a}->{b}"
                );
                assert_eq!(
                    RouteProvider::path_nodes(&apsp, a, b),
                    RouteProvider::path_nodes(&router, a, b),
                    "path {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn on_demand_matches_dense_on_random_graphs() {
        for seed in [3u64, 17] {
            assert_providers_agree(&random_graph(seed, 24));
        }
    }

    /// The headline-bugfix companion: delays split below f32 resolution
    /// must agree bitwise between the dense (now f64) oracle and the
    /// on-demand rows.
    #[test]
    fn on_demand_matches_dense_below_f32_resolution() {
        let mut g = Graph::with_nodes(3, NodeKind::Stub);
        g.add_edge(NodeId(0), NodeId(1), LinkAttrs::delay(1000.0 + 1e-5));
        g.add_edge(NodeId(0), NodeId(2), LinkAttrs::delay(1000.0));
        assert_providers_agree(&g);
        let router = OnDemandRouter::new(Arc::new(g), None);
        let d1 = RouteProvider::dist_ms(&router, NodeId(0), NodeId(1));
        let d2 = RouteProvider::dist_ms(&router, NodeId(0), NodeId(2));
        assert!(d2 < d1, "sub-f32 delay difference must survive: {d2} {d1}");
    }

    #[test]
    fn lru_eviction_requery_equals_fresh() {
        let g = random_graph(5, 16);
        let router = OnDemandRouter::new(Arc::new(g.clone()), Some(2));
        let before = RouteRow::clone(&router.row(NodeId(0)));
        router.row(NodeId(1));
        router.row(NodeId(2)); // evicts node 0's row (LRU)
        let s = router.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 2);
        assert_eq!(s.peak_resident, 2);
        let again = router.row(NodeId(0)); // recomputed
        assert_eq!(*again, before, "evicted + re-queried row must equal fresh");
        assert_eq!(*again, RouteRow::compute(&g, NodeId(0)));
        assert_eq!(router.stats().misses, 4);
    }

    #[test]
    fn lru_hits_and_recency() {
        let g = random_graph(9, 12);
        let router = OnDemandRouter::new(Arc::new(g), Some(2));
        router.row(NodeId(0));
        router.row(NodeId(1));
        router.row(NodeId(0)); // refresh 0's recency
        router.row(NodeId(2)); // must evict 1, not 0
        let s = router.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        router.row(NodeId(0)); // still resident
        assert_eq!(router.stats().hits, 2);
    }

    #[test]
    fn route_row_codec_roundtrip() {
        let g = random_graph(11, 10);
        let row = RouteRow::compute(&g, NodeId(3));
        let bytes = row.to_bytes();
        assert_eq!(RouteRow::from_bytes(&bytes, 10), Some(row.clone()));
        // Wrong dimension or truncation decodes as a miss.
        assert_eq!(RouteRow::from_bytes(&bytes, 11), None);
        assert_eq!(RouteRow::from_bytes(&bytes[..bytes.len() - 1], 10), None);
    }

    #[test]
    fn default_capacity_is_bounded() {
        assert_eq!(OnDemandRouter::default_capacity(10), 10);
        assert_eq!(OnDemandRouter::default_capacity(1000), 1000);
        let c20k = OnDemandRouter::default_capacity(20_000);
        assert!((8..=1000).contains(&c20k), "20k-node capacity {c20k}");
        assert_eq!(OnDemandRouter::default_capacity(0), 8);
    }

    #[test]
    fn rows_shared_across_threads() {
        let g = random_graph(21, 32);
        let apsp = Apsp::build(&g);
        let router = Arc::new(OnDemandRouter::new(Arc::new(g.clone()), Some(8)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&router);
                let gc = g.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for _ in 0..200 {
                        let a = NodeId(rng.gen_range(0..32u32));
                        let b = NodeId(rng.gen_range(0..32u32));
                        let d = RouteProvider::dist_ms(&*r, a, b);
                        assert_eq!(d.to_bits(), Apsp::build(&gc).dist_ms(a, b).to_bits());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = router.stats();
        assert!(s.resident <= 8);
        assert_eq!(
            RouteProvider::dist_ms(&*router, NodeId(0), NodeId(31)).to_bits(),
            apsp.dist_ms(NodeId(0), NodeId(31)).to_bits()
        );
    }
}
