//! Graph models and generators for the VDM overlay-multicast reproduction.
//!
//! This crate provides the *underlay* building blocks the paper's evaluation
//! rests on:
//!
//! * [`graph`] — a compact undirected weighted graph with stable edge ids
//!   (needed for per-link *stress* accounting, Eq. 3.4 of the paper);
//! * [`transit_stub`] — a GT-ITM-style transit–stub topology generator
//!   (the paper's NS-2 experiments use a 792-node transit-stub graph);
//! * [`waxman`] — Waxman / Euclidean random graphs used for sensitivity
//!   studies;
//! * [`powerlaw`] — Barabási–Albert preferential-attachment graphs
//!   (AS-level-Internet-like degree distributions);
//! * [`shard`] — shard-aware power-law underlays (per-shard clusters
//!   joined by gateway links) with the `min_cross_shard_delay` lookahead
//!   oracle the sharded engine synchronizes on;
//! * [`geo`] — geographic site pools (continent clusters, great-circle
//!   latency) that back the emulated-PlanetLab substrate;
//! * [`spath`] — Dijkstra single-source and all-pairs shortest paths with
//!   next-hop tables (the simulator routes packets over these, as NS-2 does);
//! * [`router`] — the [`RouteProvider`] abstraction over routing oracles,
//!   plus the memory-bounded [`OnDemandRouter`] (LRU-cached per-source
//!   rows) that scales past the dense matrix's `O(n^2)` ceiling;
//! * [`mst`] — Prim minimum spanning trees over arbitrary metrics (the
//!   paper's §5.4.6 MST-ratio comparison);
//! * [`cache`] — a content-addressed on-disk artifact cache for the
//!   expensive pure outputs above (generated graphs, APSP tables),
//!   keyed by generator parameters + seed + code-version salt.
//!
//! All generators are deterministic given a seed.

pub mod cache;
pub mod geo;
pub mod graph;
pub mod mst;
pub mod powerlaw;
pub mod router;
pub mod shard;
pub mod spath;
pub mod transit_stub;
pub mod waxman;

pub use graph::{EdgeId, Graph, LinkAttrs, NodeId, NodeKind};
pub use router::{OnDemandRouter, RouteProvider, RouteRow, RouterStats};
pub use spath::{Apsp, ShortestPaths};

/// Convenience alias: latency in milliseconds.
///
/// All distance-like quantities in this workspace are carried as `f64`
/// milliseconds; the discrete-event simulator converts to integer
/// microseconds at its boundary.
pub type Millis = f64;
