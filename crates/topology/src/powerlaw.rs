//! Barabási–Albert preferential-attachment graphs.
//!
//! Power-law degree distributions are the classic model of AS-level
//! Internet topology (the third common choice next to transit-stub and
//! Waxman). Each new node attaches to `m` existing nodes chosen with
//! probability proportional to their current degree, producing a few
//! high-degree hubs and many low-degree leaves — a shape that stresses
//! overlay protocols differently from both the transit-stub hierarchy
//! (structured) and Waxman (flat, geometric).

use crate::graph::{Graph, LinkAttrs, NodeId, NodeKind};
use crate::Millis;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Parameters of the Barabási–Albert generator.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawConfig {
    /// Number of nodes (≥ `m + 1`).
    pub nodes: usize,
    /// Edges added per new node (attachment count).
    pub m: usize,
    /// Link delay range, ms (uniform; hub links tend to be backbone-ish
    /// so the default range is wide).
    pub delay_range: (Millis, Millis),
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        Self {
            nodes: 100,
            m: 2,
            delay_range: (2.0, 30.0),
        }
    }
}

/// Generate a connected Barabási–Albert graph.
///
/// Implementation note: preferential attachment samples uniformly from
/// the *edge-endpoint multiset* (each edge contributes both endpoints),
/// which weights nodes by degree without bookkeeping.
pub fn generate(cfg: &PowerLawConfig, seed: u64) -> Graph {
    assert!(cfg.m >= 1, "need at least one edge per node");
    assert!(
        cfg.nodes > cfg.m,
        "need more nodes ({}) than the attachment count ({})",
        cfg.nodes,
        cfg.m
    );
    assert!(cfg.delay_range.0 > 0.0 && cfg.delay_range.1 >= cfg.delay_range.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0070_6f77_6572);
    let mut g = Graph::with_nodes(cfg.nodes, NodeKind::Stub);
    let sample_delay = {
        let (lo, hi) = cfg.delay_range;
        move |rng: &mut StdRng| {
            if hi > lo {
                rng.gen_range(lo..hi)
            } else {
                lo
            }
        }
    };

    // Seed clique over the first m+1 nodes.
    let seed_n = cfg.m + 1;
    let mut endpoints: Vec<u32> = Vec::with_capacity(cfg.nodes * cfg.m * 2);
    for i in 0..seed_n {
        for j in (i + 1)..seed_n {
            let d = sample_delay(&mut rng);
            g.add_edge(NodeId(i as u32), NodeId(j as u32), LinkAttrs::delay(d));
            endpoints.push(i as u32);
            endpoints.push(j as u32);
        }
    }

    // Preferential attachment for the rest.
    for v in seed_n..cfg.nodes {
        let mut targets = Vec::with_capacity(cfg.m);
        let mut guard = 0;
        while targets.len() < cfg.m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t as usize != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            assert!(guard < 10_000, "attachment sampling stuck");
        }
        for t in targets {
            let d = sample_delay(&mut rng);
            g.add_edge(NodeId(v as u32), NodeId(t), LinkAttrs::delay(d));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    debug_assert!(g.is_connected());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_connected_with_expected_edge_count() {
        let cfg = PowerLawConfig {
            nodes: 200,
            m: 2,
            ..PowerLawConfig::default()
        };
        let g = generate(&cfg, 3);
        assert_eq!(g.num_nodes(), 200);
        assert!(g.is_connected());
        // Seed clique C(3,2)=3 edges + (200-3)*2.
        assert_eq!(g.num_edges(), 3 + 197 * 2);
    }

    #[test]
    fn degree_distribution_has_hubs_and_leaves() {
        let g = generate(
            &PowerLawConfig {
                nodes: 500,
                m: 2,
                ..PowerLawConfig::default()
            },
            7,
        );
        let degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        let max = *degrees.iter().max().unwrap();
        let min_count = degrees.iter().filter(|&&d| d == 2).count();
        // Hubs: the busiest node should dwarf the attachment count.
        assert!(max >= 20, "max degree {max} — no hubs formed");
        // Leaves: a large share stays at the minimum degree.
        assert!(
            min_count > 150,
            "only {min_count} minimum-degree nodes — not heavy-tailed"
        );
        // Mean degree ≈ 2m.
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!((mean - 4.0).abs() < 0.5, "mean degree {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&PowerLawConfig::default(), 5);
        let b = generate(&PowerLawConfig::default(), 5);
        assert_eq!(a.num_edges(), b.num_edges());
        for ((_, ea), (_, eb)) in a.edges().zip(b.edges()) {
            assert_eq!((ea.a, ea.b), (eb.a, eb.b));
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_degenerate_sizes() {
        generate(
            &PowerLawConfig {
                nodes: 2,
                m: 2,
                ..PowerLawConfig::default()
            },
            0,
        );
    }
}
