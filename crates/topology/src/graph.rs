//! Compact undirected weighted graph with stable edge identifiers.
//!
//! The overlay metrics need to attribute traffic to individual *physical*
//! links (stress, Eq. 3.4), so every undirected edge gets a stable
//! [`EdgeId`] that routing and accounting code can index with.

use crate::Millis;

/// Index of a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an undirected edge in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Role of a node inside a generated topology.
///
/// The transit-stub generator marks routers as [`NodeKind::Transit`] or
/// [`NodeKind::Stub`]; end hosts attached afterwards are
/// [`NodeKind::Host`]. Flat generators mark everything `Stub`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NodeKind {
    /// Backbone router inside a transit domain.
    Transit,
    /// Edge router inside a stub domain.
    #[default]
    Stub,
    /// End host (overlay-capable).
    Host,
}

/// Physical attributes of a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkAttrs {
    /// One-way propagation delay in milliseconds.
    pub delay_ms: Millis,
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss: f64,
    /// Transmission capacity, Mbit/s (used by the optional queueing
    /// data plane; ignored by the pure-latency model).
    pub bandwidth_mbps: f64,
}

impl LinkAttrs {
    /// Default link capacity when unspecified, Mbit/s.
    pub const DEFAULT_BANDWIDTH_MBPS: f64 = 100.0;

    /// Lossless link with the given one-way delay and default capacity.
    pub fn delay(delay_ms: Millis) -> Self {
        Self {
            delay_ms,
            loss: 0.0,
            bandwidth_mbps: Self::DEFAULT_BANDWIDTH_MBPS,
        }
    }

    /// Set the capacity.
    pub fn with_bandwidth(mut self, mbps: f64) -> Self {
        assert!(mbps > 0.0);
        self.bandwidth_mbps = mbps;
        self
    }
}

/// One stored undirected edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Physical attributes.
    pub attrs: LinkAttrs,
}

impl Edge {
    /// The endpoint opposite `from`, if `from` is one of the endpoints.
    pub fn other(&self, from: NodeId) -> Option<NodeId> {
        if self.a == from {
            Some(self.b)
        } else if self.b == from {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Adjacency entry: neighbour plus the id of the connecting edge.
#[derive(Clone, Copy, Debug)]
pub struct Adj {
    /// Neighbouring node.
    pub to: NodeId,
    /// Edge connecting to that neighbour.
    pub edge: EdgeId,
}

/// An undirected weighted graph.
///
/// Node and edge ids are dense indexes assigned in insertion order, which
/// makes it cheap to keep per-node and per-link side tables (routing,
/// stress counters) as plain vectors.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    kinds: Vec<NodeKind>,
    adj: Vec<Vec<Adj>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Graph with `n` isolated nodes of the given kind.
    ///
    /// # Panics
    /// Panics when `n` exceeds the `u32` id space (see
    /// [`Graph::add_node`]).
    pub fn with_nodes(n: usize, kind: NodeKind) -> Self {
        u32::try_from(n).expect("graph node count exceeds u32 id space; split the underlay");
        Self {
            kinds: vec![kind; n],
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Add a node and return its id.
    ///
    /// # Panics
    /// Panics with a clear message when the node count would exceed the
    /// `u32` id space (a silent `as u32` here would wrap and alias
    /// existing nodes on oversized underlays).
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(
            u32::try_from(self.kinds.len())
                .expect("graph node count exceeds u32 id space; split the underlay"),
        );
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected edge; returns its id.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or a duplicate edge
    /// between the same pair (parallel physical links would make stress
    /// attribution ambiguous).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, attrs: LinkAttrs) -> EdgeId {
        assert!(a != b, "self-loop {a}");
        assert!(a.idx() < self.kinds.len() && b.idx() < self.kinds.len());
        assert!(
            self.find_edge(a, b).is_none(),
            "duplicate edge {a}-{b}; parallel links are not supported"
        );
        assert!(attrs.delay_ms > 0.0, "link delay must be positive");
        assert!((0.0..1.0).contains(&attrs.loss), "loss must be in [0,1)");
        let id = EdgeId(
            u32::try_from(self.edges.len())
                .expect("graph edge count exceeds u32 id space; split the underlay"),
        );
        self.edges.push(Edge { a, b, attrs });
        self.adj[a.idx()].push(Adj { to: b, edge: id });
        self.adj[b.idx()].push(Adj { to: a, edge: id });
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Kind of node `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.idx()]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Ids of all nodes of the given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.kind(n) == kind).collect()
    }

    /// Adjacency list of `n`.
    pub fn neighbors(&self, n: NodeId) -> &[Adj] {
        &self.adj[n.idx()]
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.idx()].len()
    }

    /// Edge data for `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.idx()]
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Find the edge between `a` and `b`, if any.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        // Scan the smaller adjacency list.
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[from.idx()]
            .iter()
            .find(|adj| adj.to == to)
            .map(|adj| adj.edge)
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for adj in self.neighbors(v) {
                if !seen[adj.to.idx()] {
                    seen[adj.to.idx()] = true;
                    count += 1;
                    stack.push(adj.to);
                }
            }
        }
        count == n
    }

    /// Sum of one-way delays over all edges (a crude size measure used by
    /// normalized resource-usage metrics).
    pub fn total_delay_ms(&self) -> Millis {
        self.edges.iter().map(|e| e.attrs.delay_ms).sum()
    }

    /// Serialize for the artifact cache (see [`crate::cache`]). Node and
    /// edge ids are insertion-ordered, so a round trip preserves every
    /// `NodeId`/`EdgeId`.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::cache::codec::ByteWriter;
        let mut w = ByteWriter::with_capacity(16 + self.kinds.len() + self.edges.len() * 28);
        w.put_u64(self.kinds.len() as u64);
        for &k in &self.kinds {
            w.put_u8(match k {
                NodeKind::Transit => 0,
                NodeKind::Stub => 1,
                NodeKind::Host => 2,
            });
        }
        w.put_u64(self.edges.len() as u64);
        for e in &self.edges {
            w.put_u32(e.a.0);
            w.put_u32(e.b.0);
            w.put_f64(e.attrs.delay_ms);
            w.put_f64(e.attrs.loss);
            w.put_f64(e.attrs.bandwidth_mbps);
        }
        w.into_bytes()
    }

    /// Decode a [`Graph::to_bytes`] artifact; `None` on any corruption
    /// (treated as a cache miss). Edges are re-added through
    /// [`Graph::add_edge`], so a decoded graph passes the same
    /// invariants as a generated one.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        use crate::cache::codec::ByteReader;
        let mut r = ByteReader::new(bytes);
        let n = usize::try_from(r.get_u64()?).ok()?;
        if n > r.remaining() {
            return None;
        }
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node(match r.get_u8()? {
                0 => NodeKind::Transit,
                1 => NodeKind::Stub,
                2 => NodeKind::Host,
                _ => return None,
            });
        }
        let m = usize::try_from(r.get_u64()?).ok()?;
        if m > r.remaining() / 28 + 1 {
            return None;
        }
        for _ in 0..m {
            let a = NodeId(r.get_u32()?);
            let b = NodeId(r.get_u32()?);
            let attrs = LinkAttrs {
                delay_ms: r.get_f64()?,
                loss: r.get_f64()?,
                bandwidth_mbps: r.get_f64()?,
            };
            if a == b
                || a.idx() >= n
                || b.idx() >= n
                || !attrs.delay_ms.is_finite()
                || attrs.delay_ms <= 0.0
                || !(0.0..1.0).contains(&attrs.loss)
            {
                return None;
            }
            if g.find_edge(a, b).is_some() {
                return None;
            }
            g.add_edge(a, b, attrs);
        }
        r.at_end().then_some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Stub);
        let b = g.add_node(NodeKind::Stub);
        let c = g.add_node(NodeKind::Host);
        g.add_edge(a, b, LinkAttrs::delay(1.0));
        g.add_edge(b, c, LinkAttrs::delay(2.0));
        g.add_edge(a, c, LinkAttrs::delay(3.0));
        (g, [a, b, c])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c]) = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.kind(c), NodeKind::Host);
        assert_eq!(g.nodes_of_kind(NodeKind::Host), vec![c]);
        let e = g.find_edge(a, c).unwrap();
        assert_eq!(g.edge(e).attrs.delay_ms, 3.0);
        assert_eq!(g.edge(e).other(a), Some(c));
        assert_eq!(g.edge(e).other(b), None);
        assert!(g.find_edge(b, a).is_some());
        assert!((g.total_delay_ms() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity() {
        let (mut g, _) = triangle();
        assert!(g.is_connected());
        let d = g.add_node(NodeKind::Stub);
        assert!(!g.is_connected());
        g.add_edge(d, NodeId(0), LinkAttrs::delay(1.0));
        assert!(g.is_connected());
        assert!(Graph::new().is_connected());
        assert!(Graph::with_nodes(1, NodeKind::Stub).is_connected());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let (mut g, [a, b, _]) = triangle();
        g.add_edge(b, a, LinkAttrs::delay(1.0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let (mut g, [a, _, _]) = triangle();
        g.add_edge(a, a, LinkAttrs::delay(1.0));
    }

    #[test]
    #[should_panic(expected = "delay must be positive")]
    fn zero_delay_rejected() {
        let mut g = Graph::with_nodes(2, NodeKind::Stub);
        g.add_edge(NodeId(0), NodeId(1), LinkAttrs::delay(0.0));
    }
}
