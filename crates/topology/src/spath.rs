//! Shortest paths over the underlay graph.
//!
//! The discrete-event simulator forwards every packet along delay-shortest
//! routes, exactly as the paper's NS-2 setup does, and the stress metric
//! needs the *edge sequence* of each route. [`Apsp`] therefore precomputes
//! both a distance matrix and a next-hop matrix; [`Apsp::path_edges`] walks
//! the next-hop table to enumerate physical links on a route.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::Millis;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source Dijkstra run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Source node.
    pub source: NodeId,
    /// `dist[v]` = delay-shortest distance (ms) from the source to `v`;
    /// `INFINITY` if unreachable.
    pub dist: Vec<Millis>,
    /// `prev[v]` = predecessor of `v` on a shortest path, `None` for the
    /// source and unreachable nodes.
    pub prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Reconstruct the node path from the source to `to` (inclusive of both
    /// endpoints). Returns `None` if `to` is unreachable.
    pub fn path_to(&self, to: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[to.idx()].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = self.prev[cur.idx()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: Millis,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; tie-break on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Delay-weighted Dijkstra from `source`.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    let n = g.num_nodes();
    let mut dist = vec![Millis::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source.idx()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v.idx()] {
            continue; // stale entry
        }
        for adj in g.neighbors(v) {
            let nd = d + g.edge(adj.edge).attrs.delay_ms;
            if nd < dist[adj.to.idx()] {
                dist[adj.to.idx()] = nd;
                prev[adj.to.idx()] = Some(v);
                heap.push(HeapEntry {
                    dist: nd,
                    node: adj.to,
                });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// All-pairs shortest paths with next-hop routing tables.
///
/// Memory is `O(n^2)` for distances (f64) plus `O(n^2)` for next hops
/// (u32), which is fine at the paper's scales (≤ a few thousand
/// routers); larger underlays use [`crate::router::OnDemandRouter`].
///
/// Distances are kept at full `f64` precision: an earlier revision
/// downcast them to f32, which collapsed delays differing only below
/// f32 resolution and made closest-child selection fall back to the
/// node-id tie-break — an order-dependent artefact, not a topology
/// property.
#[derive(Clone, Debug)]
pub struct Apsp {
    n: usize,
    /// Flattened `n x n` distance matrix in ms.
    dist: Vec<Millis>,
    /// Flattened `n x n` next-hop matrix; `u32::MAX` when unreachable or
    /// on the diagonal.
    next: Vec<u32>,
}

impl Apsp {
    /// Run Dijkstra from every node of `g`.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut dist = vec![Millis::INFINITY; n * n];
        let mut next = vec![u32::MAX; n * n];
        for s in g.nodes() {
            let sp = dijkstra(g, s);
            let row = s.idx() * n;
            dist[row..row + n].copy_from_slice(&sp.dist);
            for v in g.nodes() {
                if v != s && sp.dist[v.idx()].is_finite() {
                    // First hop from s toward v: walk prev[] back from v.
                    let mut cur = v;
                    while let Some(p) = sp.prev[cur.idx()] {
                        if p == s {
                            break;
                        }
                        cur = p;
                    }
                    next[row + v.idx()] = cur.0;
                }
            }
        }
        Self { n, dist, next }
    }

    /// Number of nodes the table was built for.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Serialize for the artifact cache (see [`crate::cache`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::cache::codec::ByteWriter;
        let mut w = ByteWriter::with_capacity(24 + self.dist.len() * 8 + self.next.len() * 4);
        w.put_u64(self.n as u64);
        w.put_f64s(&self.dist);
        w.put_u32s(&self.next);
        w.into_bytes()
    }

    /// Decode an [`Apsp::to_bytes`] artifact; `None` on any corruption
    /// or dimension mismatch (treated as a cache miss).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        use crate::cache::codec::ByteReader;
        let mut r = ByteReader::new(bytes);
        let n = usize::try_from(r.get_u64()?).ok()?;
        let dist = r.get_f64s()?;
        let next = r.get_u32s()?;
        if !r.at_end() || dist.len() != n.checked_mul(n)? || next.len() != dist.len() {
            return None;
        }
        Some(Self { n, dist, next })
    }

    /// Shortest one-way delay (ms) from `a` to `b`, at full `f64`
    /// precision (bit-identical to a fresh [`dijkstra`] run from `a`).
    #[inline]
    pub fn dist_ms(&self, a: NodeId, b: NodeId) -> Millis {
        self.dist[a.idx() * self.n + b.idx()]
    }

    /// Next hop from `a` toward `b`; `None` if unreachable or `a == b`.
    #[inline]
    pub fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let h = self.next[a.idx() * self.n + b.idx()];
        (h != u32::MAX).then_some(NodeId(h))
    }

    /// Node sequence of the route `a -> b` (inclusive). Empty when
    /// unreachable; `[a]` when `a == b`.
    pub fn path_nodes(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        if a == b {
            return vec![a];
        }
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            match self.next_hop(cur, b) {
                Some(h) => {
                    cur = h;
                    path.push(cur);
                    debug_assert!(path.len() <= self.n, "routing loop {a}->{b}");
                }
                None => return Vec::new(),
            }
        }
        path
    }

    /// Edge sequence of the route `a -> b`, for per-link accounting.
    pub fn path_edges(&self, g: &Graph, a: NodeId, b: NodeId) -> Vec<EdgeId> {
        let nodes = self.path_nodes(a, b);
        nodes
            .windows(2)
            .map(|w| {
                g.find_edge(w[0], w[1])
                    .expect("next-hop table references a missing edge")
            })
            .collect()
    }

    /// Number of hops on the route `a -> b` (`0` if `a == b` or
    /// unreachable).
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> usize {
        self.path_nodes(a, b).len().saturating_sub(1)
    }
}

/// Reference Floyd–Warshall APSP distances, used to cross-check [`Apsp`]
/// in tests (kept in the library so property tests in dependent crates can
/// reuse it).
pub fn floyd_warshall(g: &Graph) -> Vec<Vec<Millis>> {
    let n = g.num_nodes();
    let mut d = vec![vec![Millis::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (_, e) in g.edges() {
        let w = e.attrs.delay_ms;
        if w < d[e.a.idx()][e.b.idx()] {
            d[e.a.idx()][e.b.idx()] = w;
            d[e.b.idx()][e.a.idx()] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if d[i][k].is_infinite() {
                continue;
            }
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkAttrs, NodeKind};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// 0 -1- 1 -1- 2, plus a slow direct 0-2 edge of weight 5.
    fn line_with_shortcut() -> Graph {
        let mut g = Graph::with_nodes(3, NodeKind::Stub);
        g.add_edge(NodeId(0), NodeId(1), LinkAttrs::delay(1.0));
        g.add_edge(NodeId(1), NodeId(2), LinkAttrs::delay(1.0));
        g.add_edge(NodeId(0), NodeId(2), LinkAttrs::delay(5.0));
        g
    }

    #[test]
    fn dijkstra_prefers_two_hop_path() {
        let g = line_with_shortcut();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist, vec![0.0, 1.0, 2.0]);
        assert_eq!(
            sp.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn apsp_matches_dijkstra_and_routes() {
        let g = line_with_shortcut();
        let apsp = Apsp::build(&g);
        assert_eq!(apsp.dist_ms(NodeId(0), NodeId(2)), 2.0);
        assert_eq!(apsp.dist_ms(NodeId(2), NodeId(0)), 2.0);
        assert_eq!(apsp.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
        assert_eq!(
            apsp.path_nodes(NodeId(0), NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(apsp.hop_count(NodeId(0), NodeId(2)), 2);
        assert_eq!(apsp.hop_count(NodeId(0), NodeId(0)), 0);
        let edges = apsp.path_edges(&g, NodeId(0), NodeId(2));
        assert_eq!(edges.len(), 2);
        assert_eq!(g.edge(edges[0]).attrs.delay_ms, 1.0);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = line_with_shortcut();
        let iso = g.add_node(NodeKind::Stub);
        let sp = dijkstra(&g, NodeId(0));
        assert!(sp.dist[iso.idx()].is_infinite());
        assert!(sp.path_to(iso).is_none());
        let apsp = Apsp::build(&g);
        assert!(apsp.dist_ms(NodeId(0), iso).is_infinite());
        assert!(apsp.next_hop(NodeId(0), iso).is_none());
        assert!(apsp.path_nodes(NodeId(0), iso).is_empty());
    }

    /// Regression: delays that differ only below f32 resolution must stay
    /// distinguishable. An earlier `Apsp` stored f32 distances, which
    /// collapsed such pairs to equal and let closest-child selection fall
    /// through to the node-id tie-break (picking the *farther*,
    /// smaller-id node here).
    #[test]
    fn sub_f32_delay_differences_survive() {
        let mut g = Graph::with_nodes(3, NodeKind::Stub);
        // Node 2 is genuinely closer to 0 than node 1, but only by 1e-5 ms
        // at a 1000 ms base — below the ~6.1e-5 f32 spacing at 1000.
        g.add_edge(NodeId(0), NodeId(1), LinkAttrs::delay(1000.0 + 1e-5));
        g.add_edge(NodeId(0), NodeId(2), LinkAttrs::delay(1000.0));
        let apsp = Apsp::build(&g);
        let d1 = apsp.dist_ms(NodeId(0), NodeId(1));
        let d2 = apsp.dist_ms(NodeId(0), NodeId(2));
        // The pair is indistinguishable in f32...
        assert_eq!(d1 as f32, d2 as f32, "test delays must straddle f32 ulp");
        // ...but the stored f64 distances keep the true ordering, so a
        // closest-child scan picks node 2 without needing the id tie-break.
        assert!(d2 < d1, "expected {d2} < {d1}");
        let closest = g
            .nodes()
            .filter(|&v| v != NodeId(0))
            .min_by(|&a, &b| {
                apsp.dist_ms(NodeId(0), a)
                    .partial_cmp(&apsp.dist_ms(NodeId(0), b))
                    .unwrap()
                    .then(a.cmp(&b))
            })
            .unwrap();
        assert_eq!(closest, NodeId(2));
    }

    #[test]
    fn apsp_matches_floyd_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(2..20);
            let mut g = Graph::with_nodes(n, NodeKind::Stub);
            // Random spanning structure plus extra edges.
            for v in 1..n {
                let u = rng.gen_range(0..v);
                g.add_edge(
                    NodeId(u as u32),
                    NodeId(v as u32),
                    LinkAttrs::delay(rng.gen_range(1.0..20.0)),
                );
            }
            for _ in 0..n {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && g.find_edge(NodeId(a as u32), NodeId(b as u32)).is_none() {
                    g.add_edge(
                        NodeId(a as u32),
                        NodeId(b as u32),
                        LinkAttrs::delay(rng.gen_range(1.0..20.0)),
                    );
                }
            }
            let apsp = Apsp::build(&g);
            let fw = floyd_warshall(&g);
            for a in g.nodes() {
                for b in g.nodes() {
                    let d1 = apsp.dist_ms(a, b);
                    let d2 = fw[a.idx()][b.idx()];
                    assert!(
                        (d1 - d2).abs() < 1e-3,
                        "dist mismatch {a}->{b}: {d1} vs {d2}"
                    );
                    // Route delay must equal the distance.
                    let path = apsp.path_nodes(a, b);
                    let total: Millis = path
                        .windows(2)
                        .map(|w| g.edge(g.find_edge(w[0], w[1]).unwrap()).attrs.delay_ms)
                        .sum();
                    assert!((total - d2).abs() < 1e-3);
                }
            }
        }
    }
}
