//! Prim minimum spanning trees over arbitrary metrics.
//!
//! §5.4.6 of the paper compares the VDM tree cost against the MST of the
//! same peer set ("we don't apply degree limitation" there). The metric is
//! whatever virtual distance the protocol uses, so the MST here runs over
//! a caller-supplied closure rather than a concrete graph.

use crate::Millis;

/// An MST over `n` points, rooted at point `root`.
#[derive(Clone, Debug)]
pub struct Mst {
    /// `parent[v]` = parent of point `v` in the tree; `None` for the root.
    pub parent: Vec<Option<usize>>,
    /// Index of the root point.
    pub root: usize,
    /// Sum of edge weights.
    pub cost: Millis,
}

impl Mst {
    /// Children lists derived from the parent array.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(v);
            }
        }
        ch
    }

    /// Depth of every node (root = 0).
    pub fn depths(&self) -> Vec<usize> {
        let n = self.parent.len();
        let mut depth = vec![usize::MAX; n];
        depth[self.root] = 0;
        // Parent pointers form a tree, so a simple iterative resolution
        // terminates in O(n * depth).
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if depth[v] == usize::MAX {
                    if let Some(p) = self.parent[v] {
                        if depth[p] != usize::MAX {
                            depth[v] = depth[p] + 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        depth
    }
}

/// Prim's algorithm over the complete graph on `n` points with edge
/// weights given by `metric` (assumed symmetric, non-negative).
///
/// `O(n^2)` time, which is the right choice for complete metric graphs.
///
/// # Panics
/// Panics if `n == 0` or `root >= n`.
pub fn prim(n: usize, root: usize, mut metric: impl FnMut(usize, usize) -> Millis) -> Mst {
    assert!(n > 0, "empty point set");
    assert!(root < n);
    let mut in_tree = vec![false; n];
    let mut best = vec![Millis::INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    let mut parent = vec![None; n];
    in_tree[root] = true;
    for v in 0..n {
        if v != root {
            best[v] = metric(root, v);
            best_from[v] = root;
        }
    }
    let mut cost = 0.0;
    for _ in 1..n {
        // Pick the cheapest frontier vertex (ties by index: deterministic).
        let mut pick = usize::MAX;
        let mut pick_w = Millis::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] < pick_w {
                pick = v;
                pick_w = best[v];
            }
        }
        assert!(pick != usize::MAX, "metric returned infinite distances");
        in_tree[pick] = true;
        parent[pick] = Some(best_from[pick]);
        cost += pick_w;
        for v in 0..n {
            if !in_tree[v] {
                let w = metric(pick, v);
                if w < best[v] {
                    best[v] = w;
                    best_from[v] = pick;
                }
            }
        }
    }
    Mst { parent, root, cost }
}

/// Total weight of an arbitrary spanning tree given as a parent array,
/// under the same metric (used for the §5.4.6 tree/MST ratio).
pub fn tree_cost(
    parent: &[Option<usize>],
    mut metric: impl FnMut(usize, usize) -> Millis,
) -> Millis {
    parent
        .iter()
        .enumerate()
        .filter_map(|(v, p)| p.map(|p| metric(p, v)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four points on a line at 0, 1, 2, 10.
    fn line_metric(a: usize, b: usize) -> Millis {
        let pos = [0.0_f64, 1.0, 2.0, 10.0];
        (pos[a] - pos[b]).abs()
    }

    #[test]
    fn line_mst() {
        let mst = prim(4, 0, line_metric);
        assert_eq!(mst.cost, 10.0); // 1 + 1 + 8
        assert_eq!(mst.parent[0], None);
        assert_eq!(mst.parent[1], Some(0));
        assert_eq!(mst.parent[2], Some(1));
        assert_eq!(mst.parent[3], Some(2));
        assert_eq!(mst.depths(), vec![0, 1, 2, 3]);
        assert_eq!(mst.children()[1], vec![2]);
    }

    #[test]
    fn single_point() {
        let mst = prim(1, 0, |_, _| unreachable!());
        assert_eq!(mst.cost, 0.0);
        assert_eq!(mst.parent, vec![None]);
    }

    #[test]
    fn root_choice_does_not_change_cost() {
        for root in 0..4 {
            assert_eq!(prim(4, root, line_metric).cost, 10.0);
        }
    }

    #[test]
    fn tree_cost_of_mst_equals_mst_cost() {
        let mst = prim(4, 2, line_metric);
        assert_eq!(tree_cost(&mst.parent, line_metric), mst.cost);
    }

    #[test]
    fn mst_not_worse_than_star() {
        // Random symmetric metric; MST must cost no more than the star
        // rooted anywhere.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 12;
        let mut m = vec![vec![0.0; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let w = rng.gen_range(1.0..100.0);
                m[i][j] = w;
                m[j][i] = w;
            }
        }
        let metric = |a: usize, b: usize| m[a][b];
        let mst = prim(n, 0, metric);
        #[allow(clippy::needless_range_loop)]
        for root in 0..n {
            let star: Millis = (0..n).filter(|&v| v != root).map(|v| m[root][v]).sum();
            assert!(mst.cost <= star + 1e-9);
        }
    }
}
