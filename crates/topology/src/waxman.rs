//! Waxman / Euclidean random graphs.
//!
//! These flat topologies complement the transit-stub model for sensitivity
//! studies: nodes are placed uniformly in a square and edges appear with
//! the classic Waxman probability `alpha * exp(-d / (beta * L))`, where `d`
//! is the Euclidean distance and `L` the plane diagonal. Link delays are
//! proportional to Euclidean distance, so the triangle inequality holds
//! exactly — a useful contrast to the geographic pool of [`crate::geo`],
//! which deliberately violates it.

use crate::graph::{Graph, LinkAttrs, NodeId, NodeKind};
use crate::Millis;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Parameters of the Waxman generator.
#[derive(Clone, Copy, Debug)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Waxman `alpha` (overall edge density), typically 0.1–0.4.
    pub alpha: f64,
    /// Waxman `beta` (long-edge affinity), typically 0.1–0.3.
    pub beta: f64,
    /// Side of the placement square; delays are `distance * delay_per_unit`.
    pub side: f64,
    /// Milliseconds of one-way delay per unit of Euclidean distance.
    pub delay_per_unit: Millis,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        Self {
            nodes: 100,
            alpha: 0.25,
            beta: 0.2,
            side: 100.0,
            delay_per_unit: 0.5,
        }
    }
}

/// A generated Waxman graph together with node coordinates.
#[derive(Clone, Debug)]
pub struct WaxmanGraph {
    /// The connected graph.
    pub graph: Graph,
    /// `(x, y)` placement of each node.
    pub coords: Vec<(f64, f64)>,
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Generate a connected Waxman graph.
///
/// Connectivity is guaranteed by overlaying a Euclidean-MST-like chain:
/// after the probabilistic pass, any disconnected component is linked to
/// the main component through its closest pair.
pub fn generate(cfg: &WaxmanConfig, seed: u64) -> WaxmanGraph {
    assert!(cfg.nodes >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7761_786d_616e);
    let coords: Vec<(f64, f64)> = (0..cfg.nodes)
        .map(|_| (rng.gen_range(0.0..cfg.side), rng.gen_range(0.0..cfg.side)))
        .collect();
    let diag = cfg.side * std::f64::consts::SQRT_2;
    let mut g = Graph::with_nodes(cfg.nodes, NodeKind::Stub);
    for i in 0..cfg.nodes {
        for j in (i + 1)..cfg.nodes {
            let d = dist(coords[i], coords[j]);
            let p = cfg.alpha * (-d / (cfg.beta * diag)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(
                    NodeId(i as u32),
                    NodeId(j as u32),
                    LinkAttrs::delay((d * cfg.delay_per_unit).max(0.01)),
                );
            }
        }
    }
    // Stitch components together with shortest candidate edges.
    loop {
        let comp = components(&g);
        if comp.num == 1 {
            break;
        }
        // Find the closest pair spanning component 0 and any other.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..cfg.nodes {
            if comp.of[i] != 0 {
                continue;
            }
            for j in 0..cfg.nodes {
                if comp.of[j] == 0 {
                    continue;
                }
                let d = dist(coords[i], coords[j]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, d) = best.expect("disconnected graph must have a spanning pair");
        g.add_edge(
            NodeId(i as u32),
            NodeId(j as u32),
            LinkAttrs::delay((d * cfg.delay_per_unit).max(0.01)),
        );
    }
    WaxmanGraph { graph: g, coords }
}

struct Components {
    of: Vec<usize>,
    num: usize,
}

fn components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut of = vec![usize::MAX; n];
    let mut num = 0;
    for start in 0..n {
        if of[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![NodeId(start as u32)];
        of[start] = num;
        while let Some(v) = stack.pop() {
            for adj in g.neighbors(v) {
                if of[adj.to.idx()] == usize::MAX {
                    of[adj.to.idx()] = num;
                    stack.push(adj.to);
                }
            }
        }
        num += 1;
    }
    Components { of, num }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_connected() {
        for seed in 0..5 {
            let wg = generate(&WaxmanConfig::default(), seed);
            assert!(wg.graph.is_connected());
            assert_eq!(wg.graph.num_nodes(), 100);
            assert_eq!(wg.coords.len(), 100);
        }
    }

    #[test]
    fn sparse_config_still_connects() {
        let cfg = WaxmanConfig {
            nodes: 40,
            alpha: 0.01,
            beta: 0.05,
            ..WaxmanConfig::default()
        };
        let wg = generate(&cfg, 3);
        assert!(wg.graph.is_connected());
    }

    #[test]
    fn single_node() {
        let cfg = WaxmanConfig {
            nodes: 1,
            ..WaxmanConfig::default()
        };
        let wg = generate(&cfg, 0);
        assert_eq!(wg.graph.num_nodes(), 1);
        assert_eq!(wg.graph.num_edges(), 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(&WaxmanConfig::default(), 11);
        let b = generate(&WaxmanConfig::default(), 11);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.coords, b.coords);
    }

    #[test]
    fn delays_respect_distance() {
        let wg = generate(&WaxmanConfig::default(), 2);
        for (_, e) in wg.graph.edges() {
            let d = dist(wg.coords[e.a.idx()], wg.coords[e.b.idx()]);
            assert!((e.attrs.delay_ms - (d * 0.5).max(0.01)).abs() < 1e-9);
        }
    }
}
