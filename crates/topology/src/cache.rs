//! Content-addressed artifact cache for expensive pure inputs.
//!
//! Experiment grids recompute the same topologies, all-pairs
//! shortest-path tables, and PlanetLab-like latency extracts for every
//! ablation cell. All of these are *pure* functions of (generator
//! parameters, seed), so they can be cached on disk keyed by a hash of
//! exactly those inputs plus a code-version salt ([`CODE_SALT`]) that is
//! bumped whenever a generator's output changes. Cache layout:
//!
//! ```text
//! results/cache/<domain>-<fnv64 hex>.bin
//! ```
//!
//! The cache is strictly an accelerator: a corrupt, truncated, or
//! missing artifact is a miss and the value is recomputed; a write
//! failure (read-only `results/`) degrades to uncached operation with
//! one clear warning instead of a panic. Hit/miss/write-error counters
//! are process-global so run summaries can report them.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Version salt mixed into every cache key. Bump when any cached
/// generator (topology synthesis, APSP, latency-space extract) changes
/// its output for identical parameters.
pub const CODE_SALT: u64 = 0x7664_6d63_6163_6802; // "vdmcach" + version 2 (APSP stores f64 distances)

/// FNV-1a 64-bit hasher over typed fields; the order and type of `feed`
/// calls is part of the key.
#[derive(Clone, Debug)]
pub struct KeyHasher {
    state: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// Fresh hasher already salted with [`CODE_SALT`].
    pub fn new() -> Self {
        let mut h = Self {
            state: 0xcbf2_9ce4_8422_2325,
        };
        h.feed_u64(CODE_SALT);
        h
    }

    /// Mix raw bytes.
    pub fn feed_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Mix a `u64` (little-endian).
    pub fn feed_u64(&mut self, v: u64) -> &mut Self {
        self.feed_bytes(&v.to_le_bytes())
    }

    /// Mix a `usize`.
    pub fn feed_usize(&mut self, v: usize) -> &mut Self {
        self.feed_u64(v as u64)
    }

    /// Mix an `f64` by bit pattern (`-0.0` normalized to `0.0` so equal
    /// parameters always hash equally).
    pub fn feed_f64(&mut self, v: f64) -> &mut Self {
        let v = if v == 0.0 { 0.0 } else { v };
        self.feed_u64(v.to_bits())
    }

    /// Mix a string (length-prefixed, so `("ab","c")` ≠ `("a","bc")`).
    pub fn feed_str(&mut self, s: &str) -> &mut Self {
        self.feed_usize(s.len());
        self.feed_bytes(s.as_bytes())
    }

    /// Finish into a key under `domain` (the filename prefix).
    pub fn key(&self, domain: &'static str) -> CacheKey {
        CacheKey {
            domain,
            hash: self.state,
        }
    }
}

/// Identity of one cached artifact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheKey {
    /// Artifact family, e.g. `"ch3-underlay"`; keeps the cache dir
    /// human-navigable.
    pub domain: &'static str,
    /// FNV-1a hash of the generator parameters + seed + salt.
    pub hash: u64,
}

impl CacheKey {
    /// File name of this artifact inside the cache dir.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.bin", self.domain, self.hash)
    }
}

/// Process-global cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifacts served from disk.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Failed artifact writes (cache degraded, values still computed).
    pub write_errors: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static WRITE_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-global hit/miss counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        write_errors: WRITE_ERRORS.load(Ordering::Relaxed),
    }
}

/// Export the process-global cache counters into the unified metrics
/// registry under the `cache.*` namespace.
pub fn export_metrics(m: &mut vdm_trace::MetricsRegistry) {
    let s = stats();
    m.counter_add("cache.hits", s.hits);
    m.counter_add("cache.misses", s.misses);
    m.counter_add("cache.write_errors", s.write_errors);
}

/// One on-disk artifact store.
#[derive(Clone, Debug)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// Store rooted at `dir` (created lazily on first write).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Load an artifact's bytes; `None` (a miss) when absent or
    /// unreadable.
    pub fn load(&self, key: &CacheKey) -> Option<Vec<u8>> {
        let out = match std::fs::read(self.dir.join(key.file_name())) {
            Ok(bytes) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Err(_) => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        // Cache lookups happen outside simulated time; records carry
        // t_us = 0 and are process-level observations.
        vdm_trace::global().emit(0, || vdm_trace::TraceEvent::CacheLookup {
            domain: key.domain.to_string(),
            hit: out.is_some(),
        });
        out
    }

    /// Persist an artifact atomically (temp file + rename, so concurrent
    /// writers of the same key are safe). Failures degrade to a counted
    /// warning: the cache never makes a run fail.
    pub fn store(&self, key: &CacheKey, bytes: &[u8]) {
        if let Err(e) = self.try_store(key, bytes) {
            WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eprintln!(
                    "warning: artifact cache at {} is not writable ({e}); \
                     continuing without caching",
                    self.dir.display()
                );
            });
        }
    }

    fn try_store(&self, key: &CacheKey, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let final_path = self.dir.join(key.file_name());
        let tmp_path = self
            .dir
            .join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Cache `compute` under `key` via the `encode`/`decode` pair. A
    /// decode failure of an on-disk artifact counts as a miss and is
    /// recomputed (and rewritten).
    pub fn get_or_compute<V>(
        &self,
        key: &CacheKey,
        compute: impl FnOnce() -> V,
        encode: impl FnOnce(&V) -> Vec<u8>,
        decode: impl FnOnce(&[u8]) -> Option<V>,
    ) -> V {
        if let Some(bytes) = self.load(key) {
            if let Some(v) = decode(&bytes) {
                return v;
            }
            // Corrupt artifact: demote the hit to a miss.
            HITS.fetch_sub(1, Ordering::Relaxed);
            MISSES.fetch_add(1, Ordering::Relaxed);
        }
        let v = compute();
        self.store(key, &encode(&v));
        v
    }
}

static GLOBAL: RwLock<Option<Arc<CacheStore>>> = RwLock::new(None);

/// Install (or with `None`, remove) the process-global store that
/// [`global`] hands out. Typically called once at binary startup.
pub fn set_global(store: Option<CacheStore>) {
    *GLOBAL.write().expect("cache global lock") = store.map(Arc::new);
}

/// The process-global store, if one is installed. Library code uses this
/// so caching stays a pure opt-in of the binary/test harness.
pub fn global() -> Option<Arc<CacheStore>> {
    GLOBAL.read().expect("cache global lock").clone()
}

/// Run `compute` through the global store when one is installed, else
/// directly.
pub fn get_or_compute_global<V>(
    key: &CacheKey,
    compute: impl FnOnce() -> V,
    encode: impl FnOnce(&V) -> Vec<u8>,
    decode: impl FnOnce(&[u8]) -> Option<V>,
) -> V {
    match global() {
        Some(store) => store.get_or_compute(key, compute, encode, decode),
        None => compute(),
    }
}

/// Little-endian binary codec helpers shared by cached artifact types.
pub mod codec {
    /// Append-only artifact writer.
    #[derive(Default)]
    pub struct ByteWriter {
        buf: Vec<u8>,
    }

    impl ByteWriter {
        /// Writer pre-sized for `cap` bytes.
        pub fn with_capacity(cap: usize) -> Self {
            Self {
                buf: Vec::with_capacity(cap),
            }
        }

        pub fn put_u8(&mut self, v: u8) {
            self.buf.push(v);
        }

        pub fn put_u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        pub fn put_u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        pub fn put_f32(&mut self, v: f32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        pub fn put_f64(&mut self, v: f64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        pub fn put_f32s(&mut self, vs: &[f32]) {
            self.put_u64(vs.len() as u64);
            for &v in vs {
                self.put_f32(v);
            }
        }

        pub fn put_f64s(&mut self, vs: &[f64]) {
            self.put_u64(vs.len() as u64);
            for &v in vs {
                self.put_f64(v);
            }
        }

        pub fn put_u32s(&mut self, vs: &[u32]) {
            self.put_u64(vs.len() as u64);
            for &v in vs {
                self.put_u32(v);
            }
        }

        /// Nest another artifact (length-prefixed raw bytes).
        pub fn put_blob(&mut self, bytes: &[u8]) {
            self.put_u64(bytes.len() as u64);
            self.buf.extend_from_slice(bytes);
        }

        /// Finish into the artifact bytes.
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    /// Cursor-based artifact reader; every getter returns `None` past
    /// the end, so truncated artifacts decode as cache misses.
    pub struct ByteReader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> ByteReader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Self { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            if end > self.buf.len() {
                return None;
            }
            let s = &self.buf[self.pos..end];
            self.pos = end;
            Some(s)
        }

        pub fn get_u8(&mut self) -> Option<u8> {
            Some(self.take(1)?[0])
        }

        pub fn get_u32(&mut self) -> Option<u32> {
            Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
        }

        pub fn get_u64(&mut self) -> Option<u64> {
            Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
        }

        pub fn get_f32(&mut self) -> Option<f32> {
            Some(f32::from_le_bytes(self.take(4)?.try_into().ok()?))
        }

        pub fn get_f64(&mut self) -> Option<f64> {
            Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
        }

        pub fn get_f32s(&mut self) -> Option<Vec<f32>> {
            let n = usize::try_from(self.get_u64()?).ok()?;
            if n > self.remaining() / 4 {
                return None; // length prefix beyond buffer: corrupt
            }
            (0..n).map(|_| self.get_f32()).collect()
        }

        pub fn get_f64s(&mut self) -> Option<Vec<f64>> {
            let n = usize::try_from(self.get_u64()?).ok()?;
            if n > self.remaining() / 8 {
                return None; // length prefix beyond buffer: corrupt
            }
            (0..n).map(|_| self.get_f64()).collect()
        }

        pub fn get_u32s(&mut self) -> Option<Vec<u32>> {
            let n = usize::try_from(self.get_u64()?).ok()?;
            if n > self.remaining() / 4 {
                return None;
            }
            (0..n).map(|_| self.get_u32()).collect()
        }

        /// Read a nested artifact written by [`ByteWriter::put_blob`].
        pub fn get_blob(&mut self) -> Option<&'a [u8]> {
            let n = usize::try_from(self.get_u64()?).ok()?;
            self.take(n)
        }

        /// Bytes left to read.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Whether the whole artifact was consumed (decoders should
        /// check this to reject trailing garbage).
        pub fn at_end(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::codec::{ByteReader, ByteWriter};
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vdm-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn key_is_sensitive_to_every_field() {
        let base = {
            let mut h = KeyHasher::new();
            h.feed_str("waxman")
                .feed_usize(40)
                .feed_f64(0.15)
                .feed_u64(7);
            h.key("topo")
        };
        let same = {
            let mut h = KeyHasher::new();
            h.feed_str("waxman")
                .feed_usize(40)
                .feed_f64(0.15)
                .feed_u64(7);
            h.key("topo")
        };
        assert_eq!(base, same);
        for (i, variant) in [
            {
                let mut h = KeyHasher::new();
                h.feed_str("waxmaN")
                    .feed_usize(40)
                    .feed_f64(0.15)
                    .feed_u64(7);
                h.key("topo")
            },
            {
                let mut h = KeyHasher::new();
                h.feed_str("waxman")
                    .feed_usize(41)
                    .feed_f64(0.15)
                    .feed_u64(7);
                h.key("topo")
            },
            {
                let mut h = KeyHasher::new();
                h.feed_str("waxman")
                    .feed_usize(40)
                    .feed_f64(0.151)
                    .feed_u64(7);
                h.key("topo")
            },
            {
                let mut h = KeyHasher::new();
                h.feed_str("waxman")
                    .feed_usize(40)
                    .feed_f64(0.15)
                    .feed_u64(8);
                h.key("topo")
            },
        ]
        .into_iter()
        .enumerate()
        {
            assert_ne!(base.hash, variant.hash, "variant {i} collided");
        }
    }

    #[test]
    fn negative_zero_normalizes() {
        let mut a = KeyHasher::new();
        a.feed_f64(0.0);
        let mut b = KeyHasher::new();
        b.feed_f64(-0.0);
        assert_eq!(a.key("x"), b.key("x"));
    }

    #[test]
    fn store_roundtrip_and_counters() {
        let dir = tmp_dir("roundtrip");
        let store = CacheStore::at(&dir);
        let key = KeyHasher::new().feed_u64(1).key("t");
        let before = stats();
        assert!(store.load(&key).is_none());
        store.store(&key, b"hello");
        assert_eq!(store.load(&key).as_deref(), Some(&b"hello"[..]));
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_or_compute_computes_once_then_hits() {
        let dir = tmp_dir("compute");
        let store = CacheStore::at(&dir);
        let key = KeyHasher::new().feed_u64(2).key("t");
        let mut calls = 0;
        let enc = |v: &u64| v.to_le_bytes().to_vec();
        let dec = |b: &[u8]| Some(u64::from_le_bytes(b.try_into().ok()?));
        let v1 = store.get_or_compute(
            &key,
            || {
                calls += 1;
                99u64
            },
            enc,
            dec,
        );
        let v2 = store.get_or_compute(
            &key,
            || {
                calls += 1;
                99u64
            },
            enc,
            dec,
        );
        assert_eq!((v1, v2), (99, 99));
        assert_eq!(calls, 1, "second lookup must be a hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_recomputed() {
        let dir = tmp_dir("corrupt");
        let store = CacheStore::at(&dir);
        let key = KeyHasher::new().feed_u64(3).key("t");
        store.store(&key, b"not a u64 at all");
        let dec = |b: &[u8]| -> Option<u64> { Some(u64::from_le_bytes(b.try_into().ok()?)) };
        let v = store.get_or_compute(&key, || 7u64, |v| v.to_le_bytes().to_vec(), dec);
        assert_eq!(v, 7);
        // And the rewrite repaired the artifact.
        let v2 = store.get_or_compute(&key, || unreachable!(), |v| v.to_le_bytes().to_vec(), dec);
        assert_eq!(v2, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_degrades_without_panicking() {
        // A path under a file can't be created: every store fails, every
        // load misses, values still compute.
        let dir = tmp_dir("blocked");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("occupied");
        std::fs::write(&file, b"x").unwrap();
        let store = CacheStore::at(file.join("sub"));
        let key = KeyHasher::new().feed_u64(4).key("t");
        let before = stats();
        let v = store.get_or_compute(&key, || 5u64, |v| v.to_le_bytes().to_vec(), |_| None);
        assert_eq!(v, 5);
        assert!(stats().write_errors > before.write_errors);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn codec_roundtrip_and_truncation() {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(3);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_f32s(&[1.0, 2.0]);
        w.put_f64s(&[0.5, -0.25]);
        w.put_u32s(&[9, 8, 7]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(3));
        assert_eq!(r.get_u32(), Some(70_000));
        assert_eq!(r.get_u64(), Some(1 << 40));
        assert_eq!(r.get_f32(), Some(1.5));
        assert_eq!(r.get_f64(), Some(-2.25));
        assert_eq!(r.get_f32s(), Some(vec![1.0, 2.0]));
        assert_eq!(r.get_f64s(), Some(vec![0.5, -0.25]));
        assert_eq!(r.get_u32s(), Some(vec![9, 8, 7]));
        assert!(r.at_end());
        // Truncated buffer: reads fail cleanly.
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.get_u8(), Some(3));
        assert_eq!(r.get_u32(), Some(70_000));
        assert_eq!(r.get_u64(), None);
        // Oversized length prefix rejected.
        let mut w = ByteWriter::default();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).get_f32s(), None);
    }

    #[test]
    fn global_store_install_and_remove() {
        // Serialize with other tests touching the global: use a unique dir
        // and restore None afterwards.
        let dir = tmp_dir("global");
        set_global(Some(CacheStore::at(&dir)));
        assert!(global().is_some());
        let key = KeyHasher::new().feed_u64(5).key("g");
        let v = get_or_compute_global(
            &key,
            || 11u64,
            |v| v.to_le_bytes().to_vec(),
            |b| Some(u64::from_le_bytes(b.try_into().ok()?)),
        );
        assert_eq!(v, 11);
        set_global(None);
        assert!(global().is_none());
        // Without a global store, compute runs directly.
        let v = get_or_compute_global(&key, || 12u64, |_| vec![], |_| None);
        assert_eq!(v, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
