//! Geographic site pools for the emulated-PlanetLab substrate.
//!
//! PlanetLab is unavailable, so Chapter 5 runs on a synthetic pool of
//! sites scattered over continent-shaped clusters. Latency between two
//! sites is great-circle distance at fiber speed plus a per-site access
//! delay; the PlanetLab crate layers lognormal inflation (routing detours
//! — this is what breaks the triangle inequality, like the real Internet)
//! and per-probe jitter on top.

use crate::Millis;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A point on the globe in degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude, degrees, positive north.
    pub lat: f64,
    /// Longitude, degrees, positive east.
    pub lon: f64,
}

/// Mean Earth radius in km.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal propagation speed in fiber, km per millisecond (about 2/3 c).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Great-circle distance between two points, km (haversine formula).
pub fn great_circle_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (la1, lo1) = (a.lat.to_radians(), a.lon.to_radians());
    let (la2, lo2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let h = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Minimum possible round-trip time between two points over fiber, ms.
pub fn base_rtt_ms(a: GeoPoint, b: GeoPoint) -> Millis {
    2.0 * great_circle_km(a, b) / FIBER_KM_PER_MS
}

/// A rectangular region sites can be drawn from, with a sampling weight.
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// Human-readable name ("US-East", "Europe", ...).
    pub name: &'static str,
    /// Latitude range, degrees.
    pub lat: (f64, f64),
    /// Longitude range, degrees.
    pub lon: (f64, f64),
    /// Relative share of sites placed in this region.
    pub weight: f64,
}

/// Continent presets resembling the PlanetLab footprint of Fig. 5.1
/// (North-America-heavy, then Europe, then Asia).
pub fn planetlab_regions() -> Vec<Region> {
    vec![
        Region {
            name: "US-East",
            lat: (32.0, 45.0),
            lon: (-85.0, -70.0),
            weight: 0.22,
        },
        Region {
            name: "US-Central",
            lat: (30.0, 45.0),
            lon: (-105.0, -88.0),
            weight: 0.14,
        },
        Region {
            name: "US-West",
            lat: (33.0, 48.0),
            lon: (-124.0, -110.0),
            weight: 0.16,
        },
        Region {
            name: "Europe",
            lat: (40.0, 58.0),
            lon: (-8.0, 22.0),
            weight: 0.26,
        },
        Region {
            name: "East-Asia",
            lat: (22.0, 42.0),
            lon: (110.0, 140.0),
            weight: 0.14,
        },
        Region {
            name: "South-America",
            lat: (-32.0, -5.0),
            lon: (-70.0, -40.0),
            weight: 0.04,
        },
        Region {
            name: "Oceania",
            lat: (-40.0, -28.0),
            lon: (142.0, 154.0),
            weight: 0.04,
        },
    ]
}

/// US-only regions (the paper's §5.4.2 comparison uses "nodes only in the
/// United States" drawn from a pool of about 140 working nodes).
pub fn us_regions() -> Vec<Region> {
    vec![
        Region {
            name: "US-East",
            lat: (32.0, 45.0),
            lon: (-85.0, -70.0),
            weight: 0.40,
        },
        Region {
            name: "US-Central",
            lat: (30.0, 45.0),
            lon: (-105.0, -88.0),
            weight: 0.28,
        },
        Region {
            name: "US-West",
            lat: (33.0, 48.0),
            lon: (-124.0, -110.0),
            weight: 0.32,
        },
    ]
}

/// A generated site.
#[derive(Clone, Debug, PartialEq)]
pub struct Site {
    /// Location on the globe.
    pub point: GeoPoint,
    /// Region the site was drawn from (index into the region list).
    pub region: usize,
    /// Extra fixed access delay of this site's uplink, ms (added to every
    /// RTT involving the site, once per endpoint).
    pub access_ms: Millis,
}

/// Deterministically draw `count` sites from weighted `regions`.
pub fn sample_sites(regions: &[Region], count: usize, seed: u64) -> Vec<Site> {
    assert!(!regions.is_empty());
    let total_w: f64 = regions.iter().map(|r| r.weight).sum();
    assert!(total_w > 0.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0067_656f);
    (0..count)
        .map(|_| {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut region = regions.len() - 1;
            for (i, r) in regions.iter().enumerate() {
                if pick < r.weight {
                    region = i;
                    break;
                }
                pick -= r.weight;
            }
            let r = &regions[region];
            Site {
                point: GeoPoint {
                    lat: rng.gen_range(r.lat.0..r.lat.1),
                    lon: rng.gen_range(r.lon.0..r.lon.1),
                },
                region,
                access_ms: rng.gen_range(0.5..6.0),
            }
        })
        .collect()
}

/// Baseline RTT between two sites: fiber-speed great circle plus both
/// access delays. Inflation/jitter are applied by the latency-space
/// underlay, not here.
pub fn site_rtt_ms(a: &Site, b: &Site) -> Millis {
    base_rtt_ms(a.point, b.point) + a.access_ms + b.access_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        // New York (40.71, -74.01) to Los Angeles (34.05, -118.24): ~3936 km.
        let ny = GeoPoint {
            lat: 40.71,
            lon: -74.01,
        };
        let la = GeoPoint {
            lat: 34.05,
            lon: -118.24,
        };
        let d = great_circle_km(ny, la);
        assert!((d - 3936.0).abs() < 50.0, "got {d}");
        // London to Tokyo: ~9560 km.
        let lon = GeoPoint {
            lat: 51.5,
            lon: -0.12,
        };
        let tok = GeoPoint {
            lat: 35.68,
            lon: 139.69,
        };
        let d2 = great_circle_km(lon, tok);
        assert!((d2 - 9560.0).abs() < 100.0, "got {d2}");
        // Symmetry and identity.
        assert_eq!(great_circle_km(ny, la), great_circle_km(la, ny));
        assert!(great_circle_km(ny, ny) < 1e-9);
    }

    #[test]
    fn base_rtt_scales_with_distance() {
        let ny = GeoPoint {
            lat: 40.71,
            lon: -74.01,
        };
        let la = GeoPoint {
            lat: 34.05,
            lon: -118.24,
        };
        let rtt = base_rtt_ms(ny, la);
        // ~3936 km -> ~39 ms RTT floor; real coast-to-coast RTTs are ~60-70 ms,
        // the inflation factor in the planetlab crate accounts for the rest.
        assert!(rtt > 35.0 && rtt < 45.0, "got {rtt}");
    }

    #[test]
    fn sites_fall_in_their_regions() {
        let regions = planetlab_regions();
        let sites = sample_sites(&regions, 300, 9);
        assert_eq!(sites.len(), 300);
        for s in &sites {
            let r = &regions[s.region];
            assert!(s.point.lat >= r.lat.0 && s.point.lat <= r.lat.1);
            assert!(s.point.lon >= r.lon.0 && s.point.lon <= r.lon.1);
            assert!(s.access_ms >= 0.5 && s.access_ms <= 6.0);
        }
        // Weighted sampling: Europe (w=0.26) should get more than Oceania (0.04).
        let count = |name: &str| {
            sites
                .iter()
                .filter(|s| regions[s.region].name == name)
                .count()
        };
        assert!(count("Europe") > count("Oceania"));
    }

    #[test]
    fn us_pool_rtts_are_continental() {
        let sites = sample_sites(&us_regions(), 140, 4);
        let mut max_rtt: f64 = 0.0;
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                max_rtt = max_rtt.max(site_rtt_ms(&sites[i], &sites[j]));
            }
        }
        // Coast-to-coast floor RTT plus access delays stays well under 80 ms.
        assert!(max_rtt < 80.0, "got {max_rtt}");
        assert!(max_rtt > 20.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_sites(&planetlab_regions(), 50, 77);
        let b = sample_sites(&planetlab_regions(), 50, 77);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.region, y.region);
        }
    }
}
