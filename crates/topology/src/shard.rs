//! Shard-aware power-law underlay generation.
//!
//! The sharded event engine (`vdm-netsim::shard`) partitions hosts into
//! contiguous id blocks — atm0s-sdn-style hierarchical node ids, where the
//! high bits of a host id name its shard the way `[Geo1][Geo2][Group]`
//! prefixes name a zone. This module generates an underlay with the same
//! structure: `S` independent Barabási–Albert router clusters (one per
//! shard), each with its own gateway hub, joined by long-haul gateway
//! links whose delays come from a separate, higher `cross_delay_range`.
//!
//! That range floor is the point: conservative parallel DES needs a
//! *lookahead* — a lower bound on how soon an event produced in one shard
//! can affect another — and here every cross-shard packet crosses at least
//! one gateway link, so
//! [`ShardedPowerLaw::min_cross_shard_delay_ms`] is a sound lookahead
//! oracle by construction.
//!
//! Routing is hierarchical (gateway routing, as atm0s-sdn routes between
//! geo zones): a packet climbs from its host to the shard gateway, rides
//! the gateway backbone, and descends to the destination host. Distances
//! therefore decompose as `up[a] + core[shard(a)][shard(b)] + up[b]`,
//! which the netsim-side `ShardedUnderlay` answers in O(1) per query with
//! O(hosts + S²) memory — no dense matrix and no per-source Dijkstra rows
//! at 100k+ hosts.

use crate::graph::{Graph, LinkAttrs, NodeId, NodeKind};
use crate::spath::dijkstra;
use crate::Millis;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Parameters of the sharded power-law generator.
#[derive(Clone, Copy, Debug)]
pub struct ShardedPowerLawConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Total hosts, distributed near-equally over shards in contiguous
    /// id blocks (shard of host `h` is a range lookup, never a hash).
    pub hosts: usize,
    /// Barabási–Albert attachment count within each shard cluster.
    pub m: usize,
    /// Intra-shard router link delay range, ms.
    pub intra_delay_range: (Millis, Millis),
    /// Gateway (cross-shard) link delay range, ms. The floor is the
    /// lookahead lower bound the sharded engine synchronizes on, so it
    /// must sit well above zero.
    pub cross_delay_range: (Millis, Millis),
    /// Extra random gateway chords on top of the gateway ring.
    pub cross_chords: usize,
}

impl Default for ShardedPowerLawConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            hosts: 1024,
            m: 2,
            intra_delay_range: (1.0, 12.0),
            cross_delay_range: (20.0, 60.0),
            cross_chords: 2,
        }
    }
}

/// A generated sharded underlay: the merged graph plus the hierarchical
/// distance decomposition the O(1) oracle needs.
pub struct ShardedPowerLaw {
    /// Merged router + host graph (per-shard clusters, gateway links,
    /// host access links) — for inspection and per-link experiments at
    /// moderate sizes; the distance oracle never routes over it.
    pub graph: Graph,
    /// Graph node of each host, in host-id (= shard-major) order.
    pub host_nodes: Vec<NodeId>,
    /// Host-id boundaries per shard: shard `s` owns hosts
    /// `host_bounds[s]..host_bounds[s + 1]`. Length `shards + 1`.
    pub host_bounds: Vec<u32>,
    /// Gateway router node of each shard.
    pub gateways: Vec<NodeId>,
    /// Per host: delay from the host to its shard gateway, ms (host
    /// access link + intra-shard shortest path).
    pub up_ms: Vec<Millis>,
    /// Flattened `shards × shards` gateway-to-gateway delay table, ms
    /// (all-pairs shortest paths over the gateway backbone; zero
    /// diagonal).
    pub core_ms: Vec<Millis>,
}

impl ShardedPowerLaw {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.host_bounds.len() - 1
    }

    /// Shard owning host id `h`.
    pub fn shard_of_host(&self, h: u32) -> u32 {
        debug_assert!(h < *self.host_bounds.last().unwrap());
        (self.host_bounds.partition_point(|&b| b <= h) - 1) as u32
    }

    /// Gateway-to-gateway backbone delay between two shards, ms.
    pub fn core(&self, a: usize, b: usize) -> Millis {
        self.core_ms[a * self.shards() + b]
    }

    /// Minimum delay any packet needs to cross from one shard into
    /// another, ms: the smallest off-diagonal backbone entry. Every
    /// cross-shard host pair pays at least this (plus both access
    /// climbs), so it lower-bounds cross-shard event latency — the
    /// conservative-DES lookahead. `INFINITY` for a single shard.
    pub fn min_cross_shard_delay_ms(&self) -> Millis {
        let s = self.shards();
        let mut min = f64::INFINITY;
        for a in 0..s {
            for b in 0..s {
                if a != b {
                    min = min.min(self.core(a, b));
                }
            }
        }
        min
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generate a sharded power-law underlay. Deterministic per
/// `(cfg, seed)`; each shard cluster draws from its own derived RNG
/// stream, so growing `hosts` leaves earlier shards' shapes unchanged
/// only per-shard, not globally (the contract is reproducibility, not
/// incremental stability).
pub fn generate_sharded(cfg: &ShardedPowerLawConfig, seed: u64) -> ShardedPowerLaw {
    assert!(cfg.shards >= 1, "need at least one shard");
    assert!(
        cfg.hosts >= cfg.shards,
        "need at least one host per shard ({} hosts, {} shards)",
        cfg.hosts,
        cfg.shards
    );
    assert!(
        cfg.cross_delay_range.0 > 0.0 && cfg.cross_delay_range.1 >= cfg.cross_delay_range.0,
        "cross-shard delay range must be positive (it is the lookahead floor)"
    );

    let s = cfg.shards;
    let mut g = Graph::new();
    let mut host_nodes = Vec::with_capacity(cfg.hosts);
    let mut host_bounds = Vec::with_capacity(s + 1);
    let mut gateways = Vec::with_capacity(s);
    let mut up_ms = Vec::with_capacity(cfg.hosts);
    host_bounds.push(0u32);

    let base_hosts = cfg.hosts / s;
    let extra = cfg.hosts % s;
    for shard in 0..s {
        let hosts_here = base_hosts + usize::from(shard < extra);
        // Router cluster sized like `scale_setup` does per shard, floored
        // so the BA seed clique always fits.
        let routers = (hosts_here + hosts_here / 8 + 8).max(cfg.m + 2);
        let shard_seed = splitmix64(seed ^ 0x0073_6861_7264 ^ (shard as u64).wrapping_mul(0xa5a5));
        let cluster = crate::powerlaw::generate(
            &crate::powerlaw::PowerLawConfig {
                nodes: routers,
                m: cfg.m,
                delay_range: cfg.intra_delay_range,
            },
            shard_seed,
        );

        // Merge the cluster; its node 0 (a seed-clique hub) becomes the
        // shard gateway.
        let mut local = Vec::with_capacity(routers);
        for i in 0..routers {
            let kind = if i == 0 {
                NodeKind::Transit
            } else {
                NodeKind::Stub
            };
            local.push(g.add_node(kind));
        }
        gateways.push(local[0]);
        for (_, e) in cluster.edges() {
            g.add_edge(local[e.a.idx()], local[e.b.idx()], e.attrs);
        }

        // Intra-shard distances from the gateway, computed on the
        // cluster before merging (cross links don't exist yet anyway,
        // so this is exactly the hierarchical "climb" cost).
        let sp = dijkstra(&cluster, NodeId(0));

        // Attach this shard's hosts to its routers.
        let mut rng = StdRng::seed_from_u64(shard_seed ^ 0x686f_7374);
        for _ in 0..hosts_here {
            let r = rng.gen_range(0..routers);
            let access: Millis = rng.gen_range(0.5..2.0);
            let hn = g.add_node(NodeKind::Host);
            g.add_edge(local[r], hn, LinkAttrs::delay(access));
            host_nodes.push(hn);
            up_ms.push(sp.dist[r] + access);
        }
        host_bounds.push(host_nodes.len() as u32);
    }

    // Gateway backbone: a ring plus random chords, each a long-haul link
    // drawn from the cross range. Its all-pairs shortest paths are the
    // core table.
    let mut cross = StdRng::seed_from_u64(seed ^ 0x0063_726f_7373);
    let mut core = vec![f64::INFINITY; s * s];
    for i in 0..s {
        core[i * s + i] = 0.0;
    }
    let add_gateway_link =
        |g: &mut Graph, core: &mut Vec<Millis>, a: usize, b: usize, d: Millis| {
            if g.find_edge(gateways[a], gateways[b]).is_none() {
                g.add_edge(gateways[a], gateways[b], LinkAttrs::delay(d));
            }
            core[a * s + b] = core[a * s + b].min(d);
            core[b * s + a] = core[b * s + a].min(d);
        };
    if s > 1 {
        for a in 0..s {
            let b = (a + 1) % s;
            if a < b || s == 2 {
                let d = cross.gen_range(cfg.cross_delay_range.0..=cfg.cross_delay_range.1);
                add_gateway_link(&mut g, &mut core, a, b, d);
            }
        }
        for _ in 0..cfg.cross_chords {
            let a = cross.gen_range(0..s);
            let b = cross.gen_range(0..s);
            let d = cross.gen_range(cfg.cross_delay_range.0..=cfg.cross_delay_range.1);
            if a != b {
                add_gateway_link(&mut g, &mut core, a, b, d);
            }
        }
        // Floyd–Warshall over the S-node backbone (S is small).
        for k in 0..s {
            for i in 0..s {
                for j in 0..s {
                    let via = core[i * s + k] + core[k * s + j];
                    if via < core[i * s + j] {
                        core[i * s + j] = via;
                    }
                }
            }
        }
    }

    debug_assert!(g.is_connected());
    ShardedPowerLaw {
        graph: g,
        host_nodes,
        host_bounds,
        gateways,
        up_ms,
        core_ms: core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, hosts: usize) -> ShardedPowerLawConfig {
        ShardedPowerLawConfig {
            shards,
            hosts,
            ..ShardedPowerLawConfig::default()
        }
    }

    #[test]
    fn shards_are_contiguous_and_cover_all_hosts() {
        let t = generate_sharded(&cfg(4, 103), 7);
        assert_eq!(t.shards(), 4);
        assert_eq!(t.host_nodes.len(), 103);
        assert_eq!(t.up_ms.len(), 103);
        assert_eq!(*t.host_bounds.last().unwrap(), 103);
        // Near-equal blocks, remainder spread over the first shards.
        let sizes: Vec<u32> = t.host_bounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
        assert_eq!(t.shard_of_host(0), 0);
        assert_eq!(t.shard_of_host(25), 0);
        assert_eq!(t.shard_of_host(26), 1);
        assert_eq!(t.shard_of_host(102), 3);
        assert!(t.graph.is_connected());
    }

    #[test]
    fn lookahead_oracle_lower_bounds_cross_core_delays() {
        let t = generate_sharded(&cfg(4, 128), 11);
        let min = t.min_cross_shard_delay_ms();
        assert!(min >= 20.0, "min cross delay {min} below the range floor");
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(t.core(a, b) >= min);
                    assert!(t.core(a, b).is_finite(), "backbone disconnected");
                    // Symmetric and triangle-closed (Floyd–Warshall).
                    assert_eq!(t.core(a, b), t.core(b, a));
                } else {
                    assert_eq!(t.core(a, b), 0.0);
                }
            }
        }
        // Up-costs are at least the host access link.
        assert!(t.up_ms.iter().all(|&u| u >= 0.5));
    }

    #[test]
    fn single_shard_has_no_cross_links() {
        let t = generate_sharded(&cfg(1, 64), 3);
        assert_eq!(t.shards(), 1);
        assert!(t.min_cross_shard_delay_ms().is_infinite());
        assert!(t.graph.is_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_sharded(&cfg(3, 97), 5);
        let b = generate_sharded(&cfg(3, 97), 5);
        assert_eq!(a.up_ms, b.up_ms);
        assert_eq!(a.core_ms, b.core_ms);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let c = generate_sharded(&cfg(3, 97), 6);
        assert_ne!(a.up_ms, c.up_ms);
    }
}
