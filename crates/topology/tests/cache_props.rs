//! Property tests for the content-addressed artifact cache: a cached
//! shortest-path/RTT artifact is bit-identical to a fresh build for
//! arbitrary generator parameters, and the cache key separates any two
//! parameter sets that differ.

use proptest::prelude::*;
use vdm_topology::cache::{CacheStore, KeyHasher};
use vdm_topology::waxman::{self, WaxmanConfig};
use vdm_topology::{Apsp, Graph, NodeId};

fn build(nodes: usize, alpha: f64, beta: f64, seed: u64) -> (Graph, Apsp) {
    let g = waxman::generate(
        &WaxmanConfig {
            nodes,
            alpha,
            beta,
            ..WaxmanConfig::default()
        },
        seed,
    )
    .graph;
    let apsp = Apsp::build(&g);
    (g, apsp)
}

fn key_of(nodes: usize, alpha: f64, beta: f64, seed: u64) -> KeyHasher {
    let mut h = KeyHasher::new();
    h.feed_str("waxman")
        .feed_usize(nodes)
        .feed_f64(alpha)
        .feed_f64(beta)
        .feed_u64(seed);
    h
}

proptest! {
    /// Storing an APSP artifact and loading it back yields exactly the
    /// fresh build: same distance matrix bits, same next-hop table, so
    /// every cached RTT equals the freshly computed one.
    #[test]
    fn cached_apsp_equals_fresh(
        nodes in 8usize..40,
        alpha in 0.15f64..0.5,
        beta in 0.1f64..0.4,
        seed in 0u64..1_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "vdm-cache-props-{}-{nodes}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CacheStore::at(&dir);
        let key = key_of(nodes, alpha, beta, seed).key("prop-apsp");

        let (g, fresh) = build(nodes, alpha, beta, seed);
        let cold = store.get_or_compute(
            &key,
            || fresh.clone(),
            Apsp::to_bytes,
            Apsp::from_bytes,
        );
        let warm = store.get_or_compute(
            &key,
            || panic!("second lookup must decode the stored artifact"),
            Apsp::to_bytes,
            Apsp::from_bytes,
        );
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(cold.to_bytes(), fresh.to_bytes());
        prop_assert_eq!(warm.to_bytes(), fresh.to_bytes());
        prop_assert_eq!(warm.num_nodes(), g.num_nodes());
        for a in 0..g.num_nodes().min(12) {
            for b in 0..g.num_nodes().min(12) {
                let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
                prop_assert_eq!(
                    warm.dist_ms(na, nb).to_bits(),
                    fresh.dist_ms(na, nb).to_bits()
                );
                prop_assert_eq!(warm.next_hop(na, nb), fresh.next_hop(na, nb));
            }
        }
    }

    /// Any difference in any generator parameter — node count, either
    /// shape parameter, or the seed — produces a different cache key,
    /// so stale artifacts can never be served for new parameters.
    #[test]
    fn key_differs_when_any_parameter_differs(
        nodes in 8usize..40,
        alpha in 0.15f64..0.5,
        beta in 0.1f64..0.4,
        seed in 0u64..1_000,
        d_nodes in 1usize..5,
        d_scale in 1u32..50,
        d_seed in 1u64..1_000,
    ) {
        let base = key_of(nodes, alpha, beta, seed).key("prop-key").hash;
        let bump = d_scale as f64 * 1e-3;
        let variants = [
            key_of(nodes + d_nodes, alpha, beta, seed),
            key_of(nodes, alpha + bump, beta, seed),
            key_of(nodes, alpha, beta + bump, seed),
            key_of(nodes, alpha, beta, seed.wrapping_add(d_seed)),
        ];
        for (i, v) in variants.iter().enumerate() {
            prop_assert_ne!(
                base,
                v.key("prop-key").hash,
                "variant {} collided with the base key",
                i
            );
        }
        // Same parameters, same key (the hasher is a pure function).
        prop_assert_eq!(base, key_of(nodes, alpha, beta, seed).key("prop-key").hash);
        // Same hash input under a different domain is a different
        // artifact file, so domains cannot alias either.
        let other_domain = key_of(nodes, alpha, beta, seed).key("prop-other");
        prop_assert_ne!(
            key_of(nodes, alpha, beta, seed).key("prop-key").file_name(),
            other_domain.file_name()
        );
    }
}
