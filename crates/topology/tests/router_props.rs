//! Property tests for the on-demand router: for arbitrary Waxman and
//! power-law underlays it must answer distance and next-hop queries
//! bit-identically to the dense `Apsp` oracle, and LRU eviction must be
//! invisible (an evicted, re-queried row equals a fresh computation).

use proptest::prelude::*;
use std::sync::Arc;
use vdm_topology::powerlaw::{self, PowerLawConfig};
use vdm_topology::waxman::{self, WaxmanConfig};
use vdm_topology::{Apsp, Graph, NodeId, OnDemandRouter, RouteProvider, RouteRow};

/// The two fixed seeds every graph family is checked on (plus the
/// proptest-driven parameter space around them).
const SEEDS: [u64; 2] = [11, 42];

fn waxman_graph(nodes: usize, alpha: f64, seed: u64) -> Graph {
    waxman::generate(
        &WaxmanConfig {
            nodes,
            alpha,
            ..WaxmanConfig::default()
        },
        seed,
    )
    .graph
}

fn powerlaw_graph(nodes: usize, seed: u64) -> Graph {
    powerlaw::generate(
        &PowerLawConfig {
            nodes,
            ..PowerLawConfig::default()
        },
        seed,
    )
}

/// Every (a, b) query must agree bitwise between the dense matrix and
/// the on-demand rows — including under a tiny LRU that forces
/// evictions mid-sweep.
fn check(g: &Graph, capacity: Option<usize>) -> Result<(), TestCaseError> {
    let apsp = Apsp::build(g);
    let router = OnDemandRouter::new(Arc::new(g.clone()), capacity);
    for a in g.nodes() {
        for b in g.nodes() {
            let (d1, d2) = (apsp.dist_ms(a, b), RouteProvider::dist_ms(&router, a, b));
            prop_assert!(
                d1.to_bits() == d2.to_bits() || (d1.is_infinite() && d2.is_infinite()),
                "dist {a}->{b}: {d1} vs {d2}"
            );
            prop_assert_eq!(
                apsp.next_hop(a, b),
                RouteProvider::next_hop(&router, a, b),
                "next hop {}->{}",
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn waxman_on_demand_matches_dense(
        nodes in 8usize..40,
        alpha in 0.15f64..0.5,
        seed_ix in 0usize..SEEDS.len(),
        extra_seed in 0u64..500,
    ) {
        let seed = SEEDS[seed_ix] ^ extra_seed;
        let g = waxman_graph(nodes, alpha, seed);
        check(&g, None)?;
        // Capacity 2 forces constant eviction during the full sweep.
        check(&g, Some(2))?;
    }

    #[test]
    fn powerlaw_on_demand_matches_dense(
        nodes in 8usize..40,
        seed_ix in 0usize..SEEDS.len(),
        extra_seed in 0u64..500,
    ) {
        let seed = SEEDS[seed_ix] ^ extra_seed;
        let g = powerlaw_graph(nodes, seed);
        check(&g, None)?;
        check(&g, Some(2))?;
    }

    /// Evict + re-query == fresh: after arbitrary interleaved queries
    /// through a tiny LRU, every row the router hands back equals a
    /// from-scratch `RouteRow::compute`.
    #[test]
    fn lru_eviction_is_invisible(
        nodes in 6usize..24,
        seed_ix in 0usize..SEEDS.len(),
        queries in proptest::collection::vec(0usize..24, 1..60),
    ) {
        let g = powerlaw_graph(nodes, SEEDS[seed_ix]);
        let router = OnDemandRouter::new(Arc::new(g.clone()), Some(2));
        for q in queries {
            let v = NodeId((q % nodes) as u32);
            let row = router.row(v);
            prop_assert_eq!(&*row, &RouteRow::compute(&g, v), "row {} diverged", v);
        }
        let s = router.stats();
        prop_assert!(s.resident <= 2, "LRU exceeded capacity: {}", s.resident);
    }
}

/// Fixed-seed anchors (the two seeds named by the acceptance criteria),
/// checked exhaustively without proptest shrinking in the way.
#[test]
fn fixed_seed_equivalence_both_families() {
    for seed in SEEDS {
        check(&waxman_graph(32, 0.25, seed), Some(3)).unwrap();
        check(&powerlaw_graph(32, seed), Some(3)).unwrap();
    }
}
