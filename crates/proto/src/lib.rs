//! Versioned, length-prefixed wire codec for [`vdm_overlay::Msg`].
//!
//! The deterministic simulator moves `Msg` values by ownership; the
//! `vdm-node` daemon moves them across real UDP sockets, which needs a
//! byte representation. The build environment has no crates.io access
//! (no serde), so the codec is hand-rolled — and deliberately boring:
//!
//! * **Frame** = `[u32 len LE] [payload]`, where `len` counts the
//!   payload bytes only. One UDP datagram carries exactly one frame;
//!   the redundant internal length lets a stream transport (or a
//!   capture file) delimit frames too, and gives datagram receivers a
//!   cheap truncation check.
//! * **Payload** = `[u8 version] [u32 from LE] [u8 tag] [fields]`.
//!   `from` is the sender's host id (UDP tells us the address, not the
//!   overlay identity). Tags and field order are fixed per variant.
//! * **Primitives**: `u32`/`u64` little-endian; `f64` as IEEE-754 bits
//!   little-endian (NaN payloads survive); `bool` as one byte 0/1;
//!   `Option<T>` as a 0/1 byte then the value; `Vec<T>` as a `u32`
//!   count then the elements, with the count checked against the
//!   remaining bytes *before* allocating.
//!
//! Decoding is strict: every error is a typed [`DecodeError`], never a
//! panic, and a frame must be consumed exactly — trailing bytes are an
//! error, because they mean the sender and receiver disagree about the
//! schema.

use vdm_netsim::HostId;
use vdm_overlay::coords::{Coord, CoordSample, DIM};
use vdm_overlay::msg::{ChildEntry, ConnKind, ConnResult, Msg, PeerEntry};

/// Wire-format version carried in every frame. Bump on any layout
/// change; decoders reject frames from other versions outright.
pub const WIRE_VERSION: u8 = 1;

/// Maximum payload accepted by the decoder (and produced by the
/// encoder): generously above any real message — the largest are
/// `PeerList`/`InfoResp` with a few dozen entries — but small enough
/// that a hostile length field cannot make the decoder allocate
/// gigabytes.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the field being read needed.
    Truncated {
        /// What was being read.
        field: &'static str,
    },
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version the frame carried.
        got: u8,
    },
    /// An unknown message/enum tag.
    BadTag {
        /// Which tag space.
        what: &'static str,
        /// The offending byte.
        got: u8,
    },
    /// A vector count larger than the bytes that follow could hold.
    BadCount {
        /// Which vector.
        field: &'static str,
        /// The claimed element count.
        got: u32,
    },
    /// The frame's length prefix disagrees with the bytes present, or
    /// exceeds [`MAX_PAYLOAD`].
    BadLength {
        /// The claimed payload length.
        got: u32,
        /// The bytes actually present after the prefix.
        have: usize,
    },
    /// Payload bytes left over after the message was fully read.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { field } => write!(f, "frame truncated reading {field}"),
            DecodeError::BadVersion { got } => {
                write!(f, "wire version {got} (expected {WIRE_VERSION})")
            }
            DecodeError::BadTag { what, got } => write!(f, "unknown {what} tag {got}"),
            DecodeError::BadCount { field, got } => {
                write!(f, "{field} count {got} exceeds frame size")
            }
            DecodeError::BadLength { got, have } => {
                write!(f, "length prefix {got} vs {have} bytes present")
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a message refused to encode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A vector is longer than the u32 count field (or the payload
    /// would exceed [`MAX_PAYLOAD`]).
    TooLarge {
        /// Which field overflowed.
        field: &'static str,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TooLarge { field } => write!(f, "{field} too large for the wire"),
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self {
            buf: Vec::with_capacity(64),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn host(&mut self, h: HostId) {
        self.u32(h.0);
    }

    fn opt_host(&mut self, h: Option<HostId>) {
        match h {
            None => self.u8(0),
            Some(h) => {
                self.u8(1);
                self.host(h);
            }
        }
    }

    fn count(&mut self, field: &'static str, n: usize) -> Result<(), EncodeError> {
        let n = u32::try_from(n).map_err(|_| EncodeError::TooLarge { field })?;
        self.u32(n);
        Ok(())
    }

    fn hosts(&mut self, field: &'static str, hs: &[HostId]) -> Result<(), EncodeError> {
        self.count(field, hs.len())?;
        for h in hs {
            self.host(*h);
        }
        Ok(())
    }

    fn seqs(&mut self, field: &'static str, seqs: &[u64]) -> Result<(), EncodeError> {
        self.count(field, seqs.len())?;
        for s in seqs {
            self.u64(*s);
        }
        Ok(())
    }

    fn coord_sample(&mut self, s: &CoordSample) {
        for d in 0..DIM {
            self.f64(s.coord.0[d]);
        }
        self.f64(s.err);
    }

    fn opt_coord(&mut self, c: &Option<CoordSample>) {
        match c {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.coord_sample(s);
            }
        }
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated { field });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    fn host(&mut self, field: &'static str) -> Result<HostId, DecodeError> {
        Ok(HostId(self.u32(field)?))
    }

    fn opt_host(&mut self, field: &'static str) -> Result<Option<HostId>, DecodeError> {
        match self.u8(field)? {
            0 => Ok(None),
            1 => Ok(Some(self.host(field)?)),
            got => Err(DecodeError::BadTag {
                what: "option",
                got,
            }),
        }
    }

    /// Read a vector count, pre-validated against the bytes remaining
    /// (`min_elem` = the smallest possible element encoding) so a
    /// hostile count cannot drive a huge allocation.
    fn count(&mut self, field: &'static str, min_elem: usize) -> Result<usize, DecodeError> {
        let n = self.u32(field)?;
        let need = (n as usize).checked_mul(min_elem);
        match need {
            Some(need) if need <= self.buf.len() => Ok(n as usize),
            _ => Err(DecodeError::BadCount { field, got: n }),
        }
    }

    fn hosts(&mut self, field: &'static str) -> Result<Vec<HostId>, DecodeError> {
        let n = self.count(field, 4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.host(field)?);
        }
        Ok(out)
    }

    fn seqs(&mut self, field: &'static str) -> Result<Vec<u64>, DecodeError> {
        let n = self.count(field, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(field)?);
        }
        Ok(out)
    }

    fn coord_sample(&mut self, field: &'static str) -> Result<CoordSample, DecodeError> {
        let mut coord = Coord([0.0; DIM]);
        for d in 0..DIM {
            coord.0[d] = self.f64(field)?;
        }
        let err = self.f64(field)?;
        Ok(CoordSample { coord, err })
    }

    fn opt_coord(&mut self, field: &'static str) -> Result<Option<CoordSample>, DecodeError> {
        match self.u8(field)? {
            0 => Ok(None),
            1 => Ok(Some(self.coord_sample(field)?)),
            got => Err(DecodeError::BadTag {
                what: "option",
                got,
            }),
        }
    }
}

// ------------------------------------------------------------- msg codec

const TAG_INFO_REQ: u8 = 0;
const TAG_INFO_RESP: u8 = 1;
const TAG_PING: u8 = 2;
const TAG_PONG: u8 = 3;
const TAG_CONN_REQ: u8 = 4;
const TAG_CONN_RESP: u8 = 5;
const TAG_PARENT_CHANGE: u8 = 6;
const TAG_GRANDPARENT_CHANGE: u8 = 7;
const TAG_ROOT_PATH: u8 = 8;
const TAG_HEARTBEAT: u8 = 9;
const TAG_LEAVE: u8 = 10;
const TAG_CHILD_LEAVE: u8 = 11;
const TAG_ANCESTOR_LIST: u8 = 12;
const TAG_NACK: u8 = 13;
const TAG_DATA: u8 = 14;
const TAG_CROSS_NACK: u8 = 15;
const TAG_CROSS_DATA: u8 = 16;
const TAG_PEER_REQ: u8 = 17;
const TAG_PEER_LIST: u8 = 18;

const KIND_CHILD: u8 = 0;
const KIND_SPLICE: u8 = 1;

const RESULT_ACCEPTED: u8 = 0;
const RESULT_REDIRECT: u8 = 1;
const RESULT_REJECTED: u8 = 2;

fn write_msg(w: &mut Writer, msg: &Msg) -> Result<(), EncodeError> {
    match msg {
        Msg::InfoReq { nonce } => {
            w.u8(TAG_INFO_REQ);
            w.u64(*nonce);
        }
        Msg::InfoResp {
            nonce,
            children,
            parent,
            coord,
        } => {
            w.u8(TAG_INFO_RESP);
            w.u64(*nonce);
            w.count("children", children.len())?;
            for c in children {
                w.host(c.child);
                w.f64(c.vdist);
            }
            w.opt_host(*parent);
            w.opt_coord(coord);
        }
        Msg::Ping { nonce } => {
            w.u8(TAG_PING);
            w.u64(*nonce);
        }
        Msg::Pong { nonce, coord } => {
            w.u8(TAG_PONG);
            w.u64(*nonce);
            w.opt_coord(coord);
        }
        Msg::ConnReq {
            nonce,
            kind,
            vdist,
            coord,
        } => {
            w.u8(TAG_CONN_REQ);
            w.u64(*nonce);
            match kind {
                ConnKind::Child => w.u8(KIND_CHILD),
                ConnKind::Splice { displace } => {
                    w.u8(KIND_SPLICE);
                    w.hosts("displace", displace)?;
                }
            }
            w.f64(*vdist);
            w.opt_coord(coord);
        }
        Msg::ConnResp { nonce, result } => {
            w.u8(TAG_CONN_RESP);
            w.u64(*nonce);
            match result {
                ConnResult::Accepted {
                    grandparent,
                    adopted,
                    root_path,
                } => {
                    w.u8(RESULT_ACCEPTED);
                    w.opt_host(*grandparent);
                    w.hosts("adopted", adopted)?;
                    w.hosts("root_path", root_path)?;
                }
                ConnResult::Redirect { next } => {
                    w.u8(RESULT_REDIRECT);
                    w.host(*next);
                }
                ConnResult::Rejected => w.u8(RESULT_REJECTED),
            }
        }
        Msg::ParentChange {
            new_grandparent,
            gen,
        } => {
            w.u8(TAG_PARENT_CHANGE);
            w.opt_host(*new_grandparent);
            w.u64(*gen);
        }
        Msg::GrandparentChange { new_grandparent } => {
            w.u8(TAG_GRANDPARENT_CHANGE);
            w.host(*new_grandparent);
        }
        Msg::RootPath { path } => {
            w.u8(TAG_ROOT_PATH);
            w.hosts("path", path)?;
        }
        Msg::Heartbeat => w.u8(TAG_HEARTBEAT),
        Msg::Leave => w.u8(TAG_LEAVE),
        Msg::ChildLeave => w.u8(TAG_CHILD_LEAVE),
        Msg::AncestorList { ancestors } => {
            w.u8(TAG_ANCESTOR_LIST);
            w.hosts("ancestors", ancestors)?;
        }
        Msg::Nack { seqs } => {
            w.u8(TAG_NACK);
            w.seqs("seqs", seqs)?;
        }
        Msg::Data { seq } => {
            w.u8(TAG_DATA);
            w.u64(*seq);
        }
        Msg::CrossNack { seqs } => {
            w.u8(TAG_CROSS_NACK);
            w.seqs("seqs", seqs)?;
        }
        Msg::CrossData { seq } => {
            w.u8(TAG_CROSS_DATA);
            w.u64(*seq);
        }
        Msg::PeerReq { nonce } => {
            w.u8(TAG_PEER_REQ);
            w.u64(*nonce);
        }
        Msg::PeerList { nonce, peers } => {
            w.u8(TAG_PEER_LIST);
            w.u64(*nonce);
            w.count("peers", peers.len())?;
            for p in peers {
                w.host(p.host);
                w.f64(p.age_s);
                w.opt_coord(&p.coord);
            }
        }
    }
    Ok(())
}

fn read_msg(r: &mut Reader<'_>) -> Result<Msg, DecodeError> {
    let tag = r.u8("msg tag")?;
    let msg = match tag {
        TAG_INFO_REQ => Msg::InfoReq {
            nonce: r.u64("nonce")?,
        },
        TAG_INFO_RESP => {
            let nonce = r.u64("nonce")?;
            let n = r.count("children", 12)?;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                let child = r.host("child")?;
                let vdist = r.f64("vdist")?;
                children.push(ChildEntry { child, vdist });
            }
            Msg::InfoResp {
                nonce,
                children,
                parent: r.opt_host("parent")?,
                coord: r.opt_coord("coord")?,
            }
        }
        TAG_PING => Msg::Ping {
            nonce: r.u64("nonce")?,
        },
        TAG_PONG => Msg::Pong {
            nonce: r.u64("nonce")?,
            coord: r.opt_coord("coord")?,
        },
        TAG_CONN_REQ => {
            let nonce = r.u64("nonce")?;
            let kind = match r.u8("conn kind")? {
                KIND_CHILD => ConnKind::Child,
                KIND_SPLICE => ConnKind::Splice {
                    displace: r.hosts("displace")?,
                },
                got => {
                    return Err(DecodeError::BadTag {
                        what: "conn kind",
                        got,
                    })
                }
            };
            Msg::ConnReq {
                nonce,
                kind,
                vdist: r.f64("vdist")?,
                coord: r.opt_coord("coord")?,
            }
        }
        TAG_CONN_RESP => {
            let nonce = r.u64("nonce")?;
            let result = match r.u8("conn result")? {
                RESULT_ACCEPTED => ConnResult::Accepted {
                    grandparent: r.opt_host("grandparent")?,
                    adopted: r.hosts("adopted")?,
                    root_path: r.hosts("root_path")?,
                },
                RESULT_REDIRECT => ConnResult::Redirect {
                    next: r.host("next")?,
                },
                RESULT_REJECTED => ConnResult::Rejected,
                got => {
                    return Err(DecodeError::BadTag {
                        what: "conn result",
                        got,
                    })
                }
            };
            Msg::ConnResp { nonce, result }
        }
        TAG_PARENT_CHANGE => Msg::ParentChange {
            new_grandparent: r.opt_host("new_grandparent")?,
            gen: r.u64("gen")?,
        },
        TAG_GRANDPARENT_CHANGE => Msg::GrandparentChange {
            new_grandparent: r.host("new_grandparent")?,
        },
        TAG_ROOT_PATH => Msg::RootPath {
            path: r.hosts("path")?,
        },
        TAG_HEARTBEAT => Msg::Heartbeat,
        TAG_LEAVE => Msg::Leave,
        TAG_CHILD_LEAVE => Msg::ChildLeave,
        TAG_ANCESTOR_LIST => Msg::AncestorList {
            ancestors: r.hosts("ancestors")?,
        },
        TAG_NACK => Msg::Nack {
            seqs: r.seqs("seqs")?,
        },
        TAG_DATA => Msg::Data { seq: r.u64("seq")? },
        TAG_CROSS_NACK => Msg::CrossNack {
            seqs: r.seqs("seqs")?,
        },
        TAG_CROSS_DATA => Msg::CrossData { seq: r.u64("seq")? },
        TAG_PEER_REQ => Msg::PeerReq {
            nonce: r.u64("nonce")?,
        },
        TAG_PEER_LIST => {
            let nonce = r.u64("nonce")?;
            let n = r.count("peers", 13)?;
            let mut peers = Vec::with_capacity(n);
            for _ in 0..n {
                let host = r.host("peer host")?;
                let age_s = r.f64("age_s")?;
                let coord = r.opt_coord("peer coord")?;
                peers.push(PeerEntry { host, age_s, coord });
            }
            Msg::PeerList { nonce, peers }
        }
        got => return Err(DecodeError::BadTag { what: "msg", got }),
    };
    Ok(msg)
}

// ---------------------------------------------------------------- frames

/// Encode one message from `from` as a full frame (length prefix
/// included), ready for one `sendto`.
pub fn encode_frame(from: HostId, msg: &Msg) -> Result<Vec<u8>, EncodeError> {
    let mut w = Writer::new();
    w.u8(WIRE_VERSION);
    w.host(from);
    write_msg(&mut w, msg)?;
    if w.buf.len() > MAX_PAYLOAD {
        return Err(EncodeError::TooLarge { field: "payload" });
    }
    let mut out = Vec::with_capacity(4 + w.buf.len());
    out.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
    out.extend_from_slice(&w.buf);
    Ok(out)
}

/// Decode one full frame (as produced by [`encode_frame`]); the frame
/// must contain exactly one message with no bytes left over.
pub fn decode_frame(frame: &[u8]) -> Result<(HostId, Msg), DecodeError> {
    let mut r = Reader { buf: frame };
    let len = r.u32("length prefix")?;
    if len as usize != r.buf.len() || len as usize > MAX_PAYLOAD {
        return Err(DecodeError::BadLength {
            got: len,
            have: r.buf.len(),
        });
    }
    let version = r.u8("version")?;
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion { got: version });
    }
    let from = r.host("from")?;
    let msg = read_msg(&mut r)?;
    if !r.buf.is_empty() {
        return Err(DecodeError::TrailingBytes { extra: r.buf.len() });
    }
    Ok((from, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vdm_overlay::agent::DISCOVERY_TOKEN_BIT;

    fn rt(msg: Msg) -> Msg {
        let from = HostId(7);
        let frame = encode_frame(from, &msg).expect("encode");
        let (got_from, got) = decode_frame(&frame).expect("decode");
        assert_eq!(got_from, from);
        got
    }

    fn sample_coord() -> CoordSample {
        CoordSample {
            coord: Coord([1.5, -2.25, 0.0, 1e9]),
            err: 0.125,
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let cs = sample_coord();
        let msgs = vec![
            Msg::InfoReq { nonce: 1 },
            Msg::InfoResp {
                nonce: 2,
                children: vec![
                    ChildEntry {
                        child: HostId(3),
                        vdist: 0.5,
                    },
                    ChildEntry {
                        child: HostId(u32::MAX),
                        vdist: f64::INFINITY,
                    },
                ],
                parent: Some(HostId(9)),
                coord: Some(cs),
            },
            Msg::InfoResp {
                nonce: 3,
                children: vec![],
                parent: None,
                coord: None,
            },
            Msg::Ping { nonce: 4 },
            Msg::Pong {
                nonce: 5,
                coord: Some(cs),
            },
            Msg::Pong {
                nonce: 6,
                coord: None,
            },
            Msg::ConnReq {
                nonce: 7,
                kind: ConnKind::Child,
                vdist: 1.0,
                coord: None,
            },
            Msg::ConnReq {
                nonce: 8,
                kind: ConnKind::Splice {
                    displace: vec![HostId(1), HostId(2)],
                },
                vdist: -0.0,
                coord: Some(cs),
            },
            Msg::ConnResp {
                nonce: 9,
                result: ConnResult::Accepted {
                    grandparent: None,
                    adopted: vec![HostId(4)],
                    root_path: vec![HostId(0), HostId(4), HostId(9)],
                },
            },
            Msg::ConnResp {
                nonce: 10,
                result: ConnResult::Accepted {
                    grandparent: Some(HostId(0)),
                    adopted: vec![],
                    root_path: vec![],
                },
            },
            Msg::ConnResp {
                nonce: 11,
                result: ConnResult::Redirect { next: HostId(12) },
            },
            Msg::ConnResp {
                nonce: 12,
                result: ConnResult::Rejected,
            },
            Msg::ParentChange {
                new_grandparent: Some(HostId(5)),
                gen: u64::MAX,
            },
            Msg::ParentChange {
                new_grandparent: None,
                gen: 0,
            },
            Msg::GrandparentChange {
                new_grandparent: HostId(6),
            },
            Msg::RootPath {
                path: vec![HostId(0), HostId(1)],
            },
            Msg::Heartbeat,
            Msg::Leave,
            Msg::ChildLeave,
            Msg::AncestorList {
                ancestors: vec![HostId(0); 5],
            },
            Msg::Nack {
                seqs: vec![0, 1, u64::MAX],
            },
            Msg::Data { seq: 42 },
            Msg::CrossNack { seqs: vec![9, 10] },
            Msg::CrossData { seq: 43 },
            Msg::PeerReq {
                nonce: 13 | DISCOVERY_TOKEN_BIT,
            },
            Msg::PeerList {
                nonce: 14 | DISCOVERY_TOKEN_BIT,
                peers: vec![
                    PeerEntry {
                        host: HostId(1),
                        age_s: 3.5,
                        coord: Some(cs),
                    },
                    PeerEntry {
                        host: HostId(2),
                        age_s: 0.0,
                        coord: None,
                    },
                ],
            },
        ];
        for msg in msgs {
            assert_eq!(rt(msg.clone()), msg, "round trip of {msg:?}");
        }
    }

    #[test]
    fn nan_payloads_survive_bitwise() {
        // A quiet NaN with a distinctive payload: PartialEq can't see
        // it (NaN != NaN), so check the decoded bits directly.
        let nan = f64::from_bits(0x7ff8_dead_beef_cafe);
        let frame = encode_frame(
            HostId(1),
            &Msg::ConnReq {
                nonce: 1,
                kind: ConnKind::Child,
                vdist: nan,
                coord: None,
            },
        )
        .unwrap();
        let (_, got) = decode_frame(&frame).unwrap();
        match got {
            Msg::ConnReq { vdist, .. } => assert_eq!(vdist.to_bits(), nan.to_bits()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let frame = encode_frame(
            HostId(3),
            &Msg::InfoResp {
                nonce: 99,
                children: vec![ChildEntry {
                    child: HostId(1),
                    vdist: 2.0,
                }],
                parent: Some(HostId(0)),
                coord: Some(sample_coord()),
            },
        )
        .unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut frame = encode_frame(HostId(1), &Msg::Heartbeat).unwrap();
        frame[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame(&frame),
            Err(DecodeError::BadVersion {
                got: WIRE_VERSION + 1
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_frame(HostId(1), &Msg::Heartbeat).unwrap();
        frame.push(0xAB);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn length_prefix_mismatch_is_rejected() {
        let mut frame = encode_frame(HostId(1), &Msg::Heartbeat).unwrap();
        frame[0] = frame[0].wrapping_add(1);
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A Nack claiming u32::MAX seqs in a tiny frame must be caught
        // by the pre-allocation count check.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        w.host(HostId(1));
        w.u8(TAG_NACK);
        w.u32(u32::MAX);
        let mut frame = (w.buf.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&w.buf);
        assert_eq!(
            decode_frame(&frame),
            Err(DecodeError::BadCount {
                field: "seqs",
                got: u32::MAX
            })
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        w.host(HostId(1));
        w.u8(200);
        let mut frame = (w.buf.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&w.buf);
        assert_eq!(
            decode_frame(&frame),
            Err(DecodeError::BadTag {
                what: "msg",
                got: 200
            })
        );
    }

    // ------------------------------------------------------ generators

    fn gen_opt_coord(rng: &mut StdRng) -> Option<CoordSample> {
        if rng.gen_range(0u32..2) == 0 {
            return None;
        }
        let mut coord = Coord([0.0; DIM]);
        for d in 0..DIM {
            coord.0[d] = rng.gen_range(-1e6..1e6);
        }
        Some(CoordSample {
            coord,
            err: rng.gen_range(0.0..10.0),
        })
    }

    fn gen_hosts(rng: &mut StdRng) -> Vec<HostId> {
        let n = rng.gen_range(0usize..6);
        (0..n)
            .map(|_| HostId(rng.gen_range(0u32..=u32::MAX)))
            .collect()
    }

    fn gen_seqs(rng: &mut StdRng) -> Vec<u64> {
        let n = rng.gen_range(0usize..6);
        (0..n).map(|_| rng.gen_range(0u64..=u64::MAX)).collect()
    }

    fn gen_nonce(rng: &mut StdRng) -> u64 {
        // Half the nonces carry the discovery namespace bit, like real
        // bootstrap traffic does.
        let base = rng.gen_range(0u64..(1 << 54));
        if rng.gen_range(0u32..2) == 1 {
            base | DISCOVERY_TOKEN_BIT
        } else {
            base
        }
    }

    fn gen_msg(rng: &mut StdRng) -> Msg {
        match rng.gen_range(0u32..19) {
            0 => Msg::InfoReq {
                nonce: gen_nonce(rng),
            },
            1 => {
                let n = rng.gen_range(0usize..5);
                Msg::InfoResp {
                    nonce: gen_nonce(rng),
                    children: (0..n)
                        .map(|_| ChildEntry {
                            child: HostId(rng.gen_range(0u32..=u32::MAX)),
                            vdist: rng.gen_range(0.0..1e3),
                        })
                        .collect(),
                    parent: if rng.gen_range(0u32..2) == 1 {
                        Some(HostId(rng.gen_range(0u32..=u32::MAX)))
                    } else {
                        None
                    },
                    coord: gen_opt_coord(rng),
                }
            }
            2 => Msg::Ping {
                nonce: gen_nonce(rng),
            },
            3 => Msg::Pong {
                nonce: gen_nonce(rng),
                coord: gen_opt_coord(rng),
            },
            4 => Msg::ConnReq {
                nonce: gen_nonce(rng),
                kind: if rng.gen_range(0u32..2) == 0 {
                    ConnKind::Child
                } else {
                    ConnKind::Splice {
                        displace: gen_hosts(rng),
                    }
                },
                vdist: rng.gen_range(-1e3..1e3),
                coord: gen_opt_coord(rng),
            },
            5 => Msg::ConnResp {
                nonce: gen_nonce(rng),
                result: match rng.gen_range(0u32..3) {
                    0 => ConnResult::Accepted {
                        grandparent: if rng.gen_range(0u32..2) == 1 {
                            Some(HostId(rng.gen_range(0u32..=u32::MAX)))
                        } else {
                            None
                        },
                        adopted: gen_hosts(rng),
                        root_path: gen_hosts(rng),
                    },
                    1 => ConnResult::Redirect {
                        next: HostId(rng.gen_range(0u32..=u32::MAX)),
                    },
                    _ => ConnResult::Rejected,
                },
            },
            6 => Msg::ParentChange {
                new_grandparent: if rng.gen_range(0u32..2) == 1 {
                    Some(HostId(rng.gen_range(0u32..=u32::MAX)))
                } else {
                    None
                },
                gen: rng.gen_range(0u64..=u64::MAX),
            },
            7 => Msg::GrandparentChange {
                new_grandparent: HostId(rng.gen_range(0u32..=u32::MAX)),
            },
            8 => Msg::RootPath {
                path: gen_hosts(rng),
            },
            9 => Msg::Heartbeat,
            10 => Msg::Leave,
            11 => Msg::ChildLeave,
            12 => Msg::AncestorList {
                ancestors: gen_hosts(rng),
            },
            13 => Msg::Nack {
                seqs: gen_seqs(rng),
            },
            14 => Msg::Data {
                seq: rng.gen_range(0u64..=u64::MAX),
            },
            15 => Msg::CrossNack {
                seqs: gen_seqs(rng),
            },
            16 => Msg::CrossData {
                seq: rng.gen_range(0u64..=u64::MAX),
            },
            17 => Msg::PeerReq {
                nonce: gen_nonce(rng),
            },
            _ => {
                let n = rng.gen_range(0usize..5);
                Msg::PeerList {
                    nonce: gen_nonce(rng),
                    peers: (0..n)
                        .map(|_| PeerEntry {
                            host: HostId(rng.gen_range(0u32..=u32::MAX)),
                            age_s: rng.gen_range(0.0..1e4),
                            coord: gen_opt_coord(rng),
                        })
                        .collect(),
                }
            }
        }
    }

    proptest! {
        #[test]
        fn random_messages_round_trip(seed in 0u64..1_000_000, from in 0u32..=u32::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let msg = gen_msg(&mut rng);
            let frame = encode_frame(HostId(from), &msg).expect("encode");
            let (got_from, got) = decode_frame(&frame).expect("decode");
            prop_assert_eq!(got_from, HostId(from));
            prop_assert_eq!(got, msg);
        }

        #[test]
        fn random_truncations_error(seed in 0u64..1_000_000, frac in 0.0..1.0f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let msg = gen_msg(&mut rng);
            let frame = encode_frame(HostId(1), &msg).expect("encode");
            let cut = ((frame.len() as f64) * frac) as usize;
            prop_assume!(cut < frame.len());
            prop_assert!(decode_frame(&frame[..cut]).is_err());
        }

        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(0u32..256, 0..64)) {
            let raw: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
            // Any result is fine — the property is "no panic"; but a
            // successful decode must re-encode to a valid frame.
            if let Ok((from, msg)) = decode_frame(&raw) {
                let re = encode_frame(from, &msg).expect("re-encode");
                prop_assert_eq!(decode_frame(&re).expect("re-decode").1, msg);
            }
        }

        #[test]
        fn bitflipped_frames_never_panic(seed in 0u64..1_000_000, flip in 0usize..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let msg = gen_msg(&mut rng);
            let mut frame = encode_frame(HostId(1), &msg).expect("encode");
            let at = flip % frame.len();
            frame[at] ^= 1 << (flip % 8);
            // Decoding a corrupted frame may fail or may yield some
            // other valid message; it must never panic.
            let _ = decode_frame(&frame);
        }
    }
}
