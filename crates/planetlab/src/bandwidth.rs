//! Uplink-capacity-derived degree limits (the paper's §6.2 future
//! work: "A system is required to measure and determine the degree of
//! each node in real implementation. This degree depends on outgoing
//! bandwidth of nodes").
//!
//! A node forwarding a `stream_kbps` stream to `d` children needs
//! `d × stream_kbps` of uplink, so its degree limit is
//! `floor(uplink / stream)`. Capacities are drawn from a weighted
//! bucket mix resembling 2011 broadband (the paper's intro: "Average
//! Internet download speed has jumped to 4.4 Mbps in 2010"; uplinks
//! lagged far behind).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Uplink capacity distribution and stream rate.
#[derive(Clone, Debug)]
pub struct UplinkModel {
    /// Stream bitrate, kbit/s (the paper's AOL example: 500 kbps).
    pub stream_kbps: f64,
    /// `(uplink_kbps, weight)` buckets; capacities are drawn from a
    /// bucket, then jittered ±20 %.
    pub buckets: Vec<(f64, f64)>,
    /// Hard cap on the derived degree (protects the simulation from a
    /// datacenter node fanning out to everyone).
    pub max_degree: u32,
}

impl UplinkModel {
    /// A 2011-flavoured residential mix around a 500 kbps stream:
    /// DSL-ish uplinks of 384 k–10 M.
    pub fn residential_2011() -> Self {
        Self {
            stream_kbps: 500.0,
            buckets: vec![
                (512.0, 0.25),   // ADSL: barely one child
                (1_000.0, 0.35), // ADSL2+: two children
                (2_000.0, 0.20),
                (5_000.0, 0.15), // FTTx
                (10_000.0, 0.05),
            ],
            max_degree: 12,
        }
    }

    /// Degree a given uplink supports (at least 1 — the paper assumes
    /// "degree limit of each node is at least one"; true free riders
    /// would need the incentive mechanisms of §2.4.3).
    pub fn degree_for(&self, uplink_kbps: f64) -> u32 {
        ((uplink_kbps / self.stream_kbps).floor() as u32).clamp(1, self.max_degree)
    }

    /// Draw one node's degree limit.
    pub fn sample_degree(&self, rng: &mut StdRng) -> u32 {
        let total: f64 = self.buckets.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut kbps = self.buckets.last().expect("non-empty buckets").0;
        for &(cap, w) in &self.buckets {
            if pick < w {
                kbps = cap;
                break;
            }
            pick -= w;
        }
        let jitter = rng.gen_range(0.8..1.2);
        self.degree_for(kbps * jitter)
    }

    /// Deterministic per-host degree limits for `n` hosts.
    pub fn degree_limits(&self, n: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7570_6c69_6e6b);
        (0..n).map(|_| self.sample_degree(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_follows_uplink() {
        let m = UplinkModel::residential_2011();
        assert_eq!(m.degree_for(100.0), 1); // can't even feed one; floor at 1
        assert_eq!(m.degree_for(512.0), 1);
        assert_eq!(m.degree_for(1_000.0), 2);
        assert_eq!(m.degree_for(5_200.0), 10);
        assert_eq!(m.degree_for(1e9), 12); // capped
    }

    #[test]
    fn sampled_limits_look_residential() {
        let m = UplinkModel::residential_2011();
        let limits = m.degree_limits(4000, 7);
        assert!(limits.iter().all(|&d| (1..=12).contains(&d)));
        let mean = limits.iter().sum::<u32>() as f64 / limits.len() as f64;
        // Mostly 1-4 children with a small high-capacity tail.
        assert!((1.2..4.5).contains(&mean), "mean degree {mean}");
        assert!(limits.iter().filter(|&&d| d == 1).count() > 500);
        assert!(limits.iter().any(|&d| d >= 8));
    }

    #[test]
    fn deterministic() {
        let m = UplinkModel::residential_2011();
        assert_eq!(m.degree_limits(100, 3), m.degree_limits(100, 3));
        assert_ne!(m.degree_limits(100, 3), m.degree_limits(100, 4));
    }
}
