//! The node pool and the Fig. 5.2 filtering pipeline.
//!
//! "On PlanetLab, some nodes aren't working. Some nodes block ping
//! messages. [...] We first get all the nodes, then send ping messages
//! to all nodes. Unresponding nodes are eliminated. Then, we try to
//! send ping messages from inside the node to others. Again, we
//! eliminate the nodes that don't allow pinging. Finally we run a small
//! program at every node [to make] sure that we can run our agent"
//! (§5.2.1). The pool synthesizes those defects and the pipeline
//! filters them out, yielding the "pool of working nodes that has
//! around 140 nodes" of §5.4.2.

use rand::{rngs::StdRng, Rng, SeedableRng};
use vdm_topology::geo::{sample_sites, Region, Site};

/// Health classification of a pool node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeHealth {
    /// Fully usable.
    Working,
    /// Does not respond to pings at all (filter stage 1).
    Dead,
    /// Responds, but blocks outbound pings from inside (stage 2).
    BlocksPing,
    /// Pingable both ways but the agent cannot run (stage 3).
    AgentBroken,
    /// Usable but slow to answer requests (kept; degrades tails).
    Lazy,
}

/// Pool generation parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Regions sites are drawn from.
    pub regions: Vec<Region>,
    /// Raw pool size before filtering.
    pub raw_nodes: usize,
    /// Fraction of dead nodes.
    pub dead_frac: f64,
    /// Fraction blocking pings.
    pub blocks_ping_frac: f64,
    /// Fraction with broken agents.
    pub agent_broken_frac: f64,
    /// Fraction of lazy (slow-responding) nodes among the survivors.
    pub lazy_frac: f64,
}

impl PoolConfig {
    /// A US-only pool sized like the paper's: roughly 200 raw nodes
    /// filtering down to ≈ 140 working ones (§5.4.2).
    pub fn us_paper() -> Self {
        Self {
            regions: vdm_topology::geo::us_regions(),
            raw_nodes: 200,
            dead_frac: 0.15,
            blocks_ping_frac: 0.08,
            agent_broken_frac: 0.07,
            lazy_frac: 0.10,
        }
    }

    /// A world-wide pool shaped like Fig. 5.1.
    pub fn world(raw_nodes: usize) -> Self {
        Self {
            regions: vdm_topology::geo::planetlab_regions(),
            raw_nodes,
            dead_frac: 0.15,
            blocks_ping_frac: 0.08,
            agent_broken_frac: 0.07,
            lazy_frac: 0.10,
        }
    }
}

/// One pool node.
#[derive(Clone, Debug)]
pub struct PoolNode {
    /// Geographic site.
    pub site: Site,
    /// Health class.
    pub health: NodeHealth,
}

/// The raw pool plus the filtering pipeline.
#[derive(Clone, Debug)]
pub struct NodePool {
    nodes: Vec<PoolNode>,
}

impl NodePool {
    /// Generate a pool deterministically.
    pub fn generate(cfg: &PoolConfig, seed: u64) -> Self {
        let sites = sample_sites(&cfg.regions, cfg.raw_nodes, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x706f_6f6c);
        let nodes = sites
            .into_iter()
            .map(|site| {
                let r: f64 = rng.gen();
                let health = if r < cfg.dead_frac {
                    NodeHealth::Dead
                } else if r < cfg.dead_frac + cfg.blocks_ping_frac {
                    NodeHealth::BlocksPing
                } else if r < cfg.dead_frac + cfg.blocks_ping_frac + cfg.agent_broken_frac {
                    NodeHealth::AgentBroken
                } else if r < cfg.dead_frac
                    + cfg.blocks_ping_frac
                    + cfg.agent_broken_frac
                    + cfg.lazy_frac
                {
                    NodeHealth::Lazy
                } else {
                    NodeHealth::Working
                };
                PoolNode { site, health }
            })
            .collect();
        Self { nodes }
    }

    /// All raw nodes.
    pub fn raw(&self) -> &[PoolNode] {
        &self.nodes
    }

    /// Stage 1: drop nodes that do not answer pings from the outside.
    pub fn filter_responding(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].health != NodeHealth::Dead)
            .collect()
    }

    /// Stage 2: of `survivors`, drop nodes that cannot ping out.
    pub fn filter_ping_out(&self, survivors: &[usize]) -> Vec<usize> {
        survivors
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].health != NodeHealth::BlocksPing)
            .collect()
    }

    /// Stage 3: of `survivors`, drop nodes where the agent does not
    /// come up (no declaration message back to the controller).
    pub fn filter_agent_runs(&self, survivors: &[usize]) -> Vec<usize> {
        survivors
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].health != NodeHealth::AgentBroken)
            .collect()
    }

    /// The full three-stage pipeline; returns indexes of working nodes
    /// (lazy nodes survive — they answer, just slowly).
    pub fn working(&self) -> Vec<usize> {
        let s1 = self.filter_responding();
        let s2 = self.filter_ping_out(&s1);
        self.filter_agent_runs(&s2)
    }

    /// Sites of the working set, plus which of them are lazy.
    pub fn working_sites(&self) -> (Vec<Site>, Vec<bool>) {
        let idx = self.working();
        let sites = idx.iter().map(|&i| self.nodes[i].site.clone()).collect();
        let lazy = idx
            .iter()
            .map(|&i| self.nodes[i].health == NodeHealth::Lazy)
            .collect();
        (sites, lazy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_filters_each_stage() {
        let pool = NodePool::generate(&PoolConfig::us_paper(), 1);
        assert_eq!(pool.raw().len(), 200);
        let s1 = pool.filter_responding();
        let s2 = pool.filter_ping_out(&s1);
        let s3 = pool.filter_agent_runs(&s2);
        assert!(s1.len() < 200, "stage 1 should drop dead nodes");
        assert!(s2.len() < s1.len(), "stage 2 should drop ping blockers");
        assert!(s3.len() < s2.len(), "stage 3 should drop broken agents");
        assert_eq!(pool.working(), s3);
        // The paper's working pool is "around 140 nodes".
        assert!(
            (120..=160).contains(&s3.len()),
            "working pool size {} out of the expected band",
            s3.len()
        );
    }

    #[test]
    fn working_sites_track_laziness() {
        let pool = NodePool::generate(&PoolConfig::us_paper(), 2);
        let (sites, lazy) = pool.working_sites();
        assert_eq!(sites.len(), lazy.len());
        assert!(lazy.iter().any(|&l| l), "some lazy nodes should survive");
        assert!(!lazy.iter().all(|&l| l));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NodePool::generate(&PoolConfig::us_paper(), 7);
        let b = NodePool::generate(&PoolConfig::us_paper(), 7);
        assert_eq!(a.working(), b.working());
        let c = NodePool::generate(&PoolConfig::us_paper(), 8);
        assert_ne!(a.working(), c.working());
    }

    #[test]
    fn world_pool_spans_regions() {
        let pool = NodePool::generate(&PoolConfig::world(300), 3);
        let (sites, _) = pool.working_sites();
        let mut regions: Vec<usize> = sites.iter().map(|s| s.region).collect();
        regions.sort_unstable();
        regions.dedup();
        assert!(regions.len() >= 5, "expected several continents");
    }
}
