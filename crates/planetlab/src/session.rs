//! Streaming sessions in the emulated testbed.
//!
//! Mirrors the paper's experiment shape (§5.2.2, §5.4.2): a *scenario*
//! determines when each node joins and leaves; the *main controller*
//! (our driver) executes it; every node runs a protocol agent
//! (*VDMAgent*); the source's *sender* streams 10 chunks per second and
//! every *transceiver* forwards to its children. "An experiment is
//! taking 5000 seconds [...] First 2000 seconds are spent for join
//! processes only. In the remaining 3000 seconds, churn takes place."

use crate::pool::{NodePool, PoolConfig};
use crate::space::{build_latency_space, SpaceConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use vdm_netsim::{HostId, LatencySpace, SimTime, Underlay};
use vdm_overlay::agent::AgentFactory;
use vdm_overlay::driver::{Driver, DriverConfig, RunOutput};
use vdm_overlay::scenario::{ChurnConfig, Scenario};
use vdm_topology::geo::Site;

/// Session parameters (defaults = the paper's §5.4.2 setup).
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Pool synthesis.
    pub pool: PoolConfig,
    /// Latency-space synthesis.
    pub space: SpaceConfig,
    /// Overlay population (paper: 100 out of ≈ 140 working nodes).
    pub nodes: usize,
    /// Per-node degree limit range, inclusive (paper: fixed 4).
    pub degree: (u32, u32),
    /// Derive degree limits from uplink capacities instead of `degree`
    /// (the §6.2 future-work extension); overrides `degree` when set.
    pub uplink: Option<crate::bandwidth::UplinkModel>,
    /// Join-only warmup, seconds (paper: 2000).
    pub warmup_s: f64,
    /// Churn slot length, seconds.
    pub slot_s: f64,
    /// Number of churn slots (paper: 3000 s of churn).
    pub slots: usize,
    /// Per-slot churn percentage.
    pub churn_pct: f64,
    /// Stream chunk interval, ms (paper: "sending 10 chunks in 1
    /// second" → 100 ms).
    pub chunk_interval_ms: f64,
    /// Compute the MST ratio at each measurement.
    pub compute_mst_ratio: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            pool: PoolConfig::us_paper(),
            space: SpaceConfig::default(),
            nodes: 100,
            degree: (4, 4),
            uplink: None,
            warmup_s: 2000.0,
            slot_s: 300.0,
            slots: 10,
            churn_pct: 5.0,
            chunk_interval_ms: 100.0,
            compute_mst_ratio: false,
        }
    }
}

/// A prepared testbed: filtered pool, latency space, selected nodes.
pub struct SessionRunner {
    /// The synthesized network.
    pub space: Arc<LatencySpace>,
    /// Sites of all working pool nodes (host id = index).
    pub sites: Vec<Site>,
    /// Region name per working node.
    pub region_names: Vec<&'static str>,
    /// The selected streaming source (most central selected node, the
    /// paper's "node in Colorado").
    pub source: HostId,
    /// Selected overlay candidates (source excluded).
    pub candidates: Vec<HostId>,
    /// Degree limit per host.
    pub limits: Vec<u32>,
    cfg: SessionConfig,
}

impl SessionRunner {
    /// Generate the pool, filter it (Fig. 5.2), synthesize the latency
    /// space, and select `cfg.nodes` experiment nodes.
    pub fn prepare(cfg: &SessionConfig, seed: u64) -> Self {
        let pool = NodePool::generate(&cfg.pool, seed);
        let (sites, lazy) = pool.working_sites();
        assert!(
            sites.len() > cfg.nodes,
            "working pool ({}) must exceed the experiment size ({})",
            sites.len(),
            cfg.nodes
        );
        let region_names = {
            let regions = &cfg.pool.regions;
            sites.iter().map(|s| regions[s.region].name).collect()
        };
        let space = Arc::new(build_latency_space(&sites, &lazy, &cfg.space, seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7373);

        // Select nodes+1 hosts; the most central becomes the source.
        let mut pool_idx: Vec<u32> = (0..sites.len() as u32).collect();
        for i in (1..pool_idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool_idx.swap(i, j);
        }
        let mut selected: Vec<HostId> = pool_idx[..cfg.nodes + 1]
            .iter()
            .map(|&i| HostId(i))
            .collect();
        let central = |h: HostId| -> f64 {
            selected
                .iter()
                .filter(|&&o| o != h)
                .map(|&o| space.rtt_ms(h, o))
                .sum()
        };
        let source = *selected
            .iter()
            .min_by(|&&a, &&b| central(a).total_cmp(&central(b)))
            .expect("non-empty selection");
        selected.retain(|&h| h != source);

        let limits = match &cfg.uplink {
            Some(model) => model.degree_limits(sites.len(), seed),
            None => (0..sites.len())
                .map(|_| rng.gen_range(cfg.degree.0..=cfg.degree.1))
                .collect(),
        };

        Self {
            space,
            sites,
            region_names,
            source,
            candidates: selected,
            limits,
            cfg: cfg.clone(),
        }
    }

    /// The churn scenario for this session.
    pub fn scenario(&self, seed: u64) -> Scenario {
        Scenario::churn(
            &ChurnConfig {
                members: self.cfg.nodes,
                warmup_s: self.cfg.warmup_s,
                slot_s: self.cfg.slot_s,
                slots: self.cfg.slots,
                churn_pct: self.cfg.churn_pct,
            },
            &self.candidates,
            seed,
        )
    }

    /// Run one session with the given protocol factory.
    pub fn run<F: AgentFactory>(&self, factory: F, seed: u64) -> RunOutput {
        let scenario = self.scenario(seed);
        let driver = Driver::new(
            self.space.clone(),
            None,
            self.source,
            factory,
            &scenario,
            self.limits.clone(),
            DriverConfig {
                data_interval: Some(SimTime::from_ms(self.cfg.chunk_interval_ms)),
                compute_stress: false,
                compute_mst_ratio: self.cfg.compute_mst_ratio,
                loss_probe_noise: 0.0,
                data_plane: None,
            },
            seed,
        );
        driver.run()
    }

    /// Human-readable label for tree renderings ("US-East:h12").
    pub fn label(&self, h: HostId) -> String {
        format!("{}:{}", self.region_names[h.idx()], h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_core::VdmFactory;

    fn tiny_cfg() -> SessionConfig {
        SessionConfig {
            nodes: 20,
            warmup_s: 60.0,
            slot_s: 60.0,
            slots: 2,
            churn_pct: 10.0,
            chunk_interval_ms: 500.0,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn prepare_selects_a_central_source() {
        let r = SessionRunner::prepare(&tiny_cfg(), 1);
        assert_eq!(r.candidates.len(), 20);
        assert!(!r.candidates.contains(&r.source));
        // The source minimizes total RTT among the selected set.
        let total = |h: HostId| -> f64 { r.candidates.iter().map(|&o| r.space.rtt_ms(h, o)).sum() };
        let src_total = total(r.source);
        for &c in &r.candidates {
            let mut t = total(c) - r.space.rtt_ms(c, r.source); // exclude self-pair asymmetry
            t += r.space.rtt_ms(c, r.source);
            assert!(src_total <= t + 1e-6 + 2.0 * r.space.rtt_ms(c, r.source));
        }
        assert!(r.label(r.source).contains("US"));
    }

    #[test]
    fn vdm_session_runs_and_connects() {
        let r = SessionRunner::prepare(&tiny_cfg(), 2);
        let out = r.run(VdmFactory::delay_based(), 2);
        let last = out.stats.measurements.last().expect("measurements");
        assert_eq!(last.members, 20);
        assert_eq!(last.connected, 20, "all members should reconnect");
        assert_eq!(last.tree_errors, 0);
        assert!(last.stretch.mean >= 1.0 || last.stretch.mean == 0.0);
        assert!(last.loss_rate < 0.30, "loss {}", last.loss_rate);
        assert!(!out.stats.startup_s.is_empty());
        // PlanetLab-style startup times: sub-second to a few seconds.
        let avg_startup =
            out.stats.startup_s.iter().sum::<f64>() / out.stats.startup_s.len() as f64;
        assert!(avg_startup < 5.0, "avg startup {avg_startup}");
    }

    #[test]
    fn uplink_model_drives_degrees() {
        let cfg = SessionConfig {
            uplink: Some(crate::bandwidth::UplinkModel::residential_2011()),
            ..tiny_cfg()
        };
        let r = SessionRunner::prepare(&cfg, 4);
        assert!(r.limits.contains(&1));
        assert!(r.limits.iter().any(|&d| d >= 4));
        // The heterogeneous session still connects everyone.
        let out = r.run(VdmFactory::delay_based(), 4);
        let last = out.stats.measurements.last().unwrap();
        assert_eq!(last.connected, last.members);
        assert_eq!(last.tree_errors, 0);
    }

    #[test]
    fn sessions_are_deterministic() {
        let r = SessionRunner::prepare(&tiny_cfg(), 3);
        let a = r.run(VdmFactory::delay_based(), 3);
        let b = r.run(VdmFactory::delay_based(), 3);
        assert_eq!(a.stats.startup_s, b.stats.startup_s);
        assert_eq!(a.final_snapshot.parent, b.final_snapshot.parent);
    }
}
