//! Streaming sessions in the emulated testbed.
//!
//! Mirrors the paper's experiment shape (§5.2.2, §5.4.2): a *scenario*
//! determines when each node joins and leaves; the *main controller*
//! (our driver) executes it; every node runs a protocol agent
//! (*VDMAgent*); the source's *sender* streams 10 chunks per second and
//! every *transceiver* forwards to its children. "An experiment is
//! taking 5000 seconds [...] First 2000 seconds are spent for join
//! processes only. In the remaining 3000 seconds, churn takes place."

use crate::pool::{NodePool, PoolConfig};
use crate::space::{build_latency_space, SpaceConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use vdm_netsim::{HostId, LatencySpace, SimTime, Underlay};
use vdm_overlay::agent::AgentFactory;
use vdm_overlay::driver::{Driver, DriverConfig, RunOutput};
use vdm_overlay::scenario::{ChurnConfig, Scenario};
use vdm_topology::cache::{self, codec, KeyHasher};
use vdm_topology::geo::{GeoPoint, Site};

/// Session parameters (defaults = the paper's §5.4.2 setup).
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Pool synthesis.
    pub pool: PoolConfig,
    /// Latency-space synthesis.
    pub space: SpaceConfig,
    /// Overlay population (paper: 100 out of ≈ 140 working nodes).
    pub nodes: usize,
    /// Per-node degree limit range, inclusive (paper: fixed 4).
    pub degree: (u32, u32),
    /// Derive degree limits from uplink capacities instead of `degree`
    /// (the §6.2 future-work extension); overrides `degree` when set.
    pub uplink: Option<crate::bandwidth::UplinkModel>,
    /// Join-only warmup, seconds (paper: 2000).
    pub warmup_s: f64,
    /// Churn slot length, seconds.
    pub slot_s: f64,
    /// Number of churn slots (paper: 3000 s of churn).
    pub slots: usize,
    /// Per-slot churn percentage.
    pub churn_pct: f64,
    /// Stream chunk interval, ms (paper: "sending 10 chunks in 1
    /// second" → 100 ms).
    pub chunk_interval_ms: f64,
    /// Compute the MST ratio at each measurement.
    pub compute_mst_ratio: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            pool: PoolConfig::us_paper(),
            space: SpaceConfig::default(),
            nodes: 100,
            degree: (4, 4),
            uplink: None,
            warmup_s: 2000.0,
            slot_s: 300.0,
            slots: 10,
            churn_pct: 5.0,
            chunk_interval_ms: 100.0,
            compute_mst_ratio: false,
        }
    }
}

/// The expensive pure extract of a session: working sites (post
/// filtering), their lazy flags, and the synthesized latency space.
/// Everything downstream (node selection, degree limits, scenarios) is
/// cheap and derived from independent RNG streams, so this is the unit
/// the artifact cache stores.
type SessionExtract = (Vec<Site>, Vec<bool>, LatencySpace);

fn encode_extract((sites, lazy, space): &SessionExtract) -> Vec<u8> {
    let space_bytes = space.to_bytes();
    let mut w = codec::ByteWriter::with_capacity(sites.len() * 32 + space_bytes.len() + 64);
    w.put_u32(sites.len() as u32);
    for s in sites {
        w.put_f64(s.point.lat);
        w.put_f64(s.point.lon);
        w.put_u32(s.region as u32);
        w.put_f64(s.access_ms);
    }
    for &l in lazy {
        w.put_u8(l as u8);
    }
    w.put_blob(&space_bytes);
    w.into_bytes()
}

/// Decode [`encode_extract`] output; `None` (a cache miss, triggering a
/// fresh build) on any corruption or dimension mismatch.
fn decode_extract(bytes: &[u8], num_regions: usize) -> Option<SessionExtract> {
    let mut r = codec::ByteReader::new(bytes);
    let n = r.get_u32()? as usize;
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        let lat = r.get_f64()?;
        let lon = r.get_f64()?;
        let region = r.get_u32()? as usize;
        let access_ms = r.get_f64()?;
        if region >= num_regions || !lat.is_finite() || !lon.is_finite() || !access_ms.is_finite() {
            return None;
        }
        sites.push(Site {
            point: GeoPoint { lat, lon },
            region,
            access_ms,
        });
    }
    let mut lazy = Vec::with_capacity(n);
    for _ in 0..n {
        lazy.push(r.get_u8()? != 0);
    }
    let space = LatencySpace::from_bytes(r.get_blob()?)?;
    if !r.at_end() || space.num_hosts() != n {
        return None;
    }
    Some((sites, lazy, space))
}

/// Pool + space synthesis through the global artifact cache. The key
/// covers every pool and space parameter plus the seed, so a hit is
/// bit-identical to a fresh extract.
fn cached_extract(cfg: &SessionConfig, seed: u64) -> SessionExtract {
    let mut h = KeyHasher::new();
    h.feed_usize(cfg.pool.regions.len());
    for r in &cfg.pool.regions {
        h.feed_str(r.name)
            .feed_f64(r.lat.0)
            .feed_f64(r.lat.1)
            .feed_f64(r.lon.0)
            .feed_f64(r.lon.1)
            .feed_f64(r.weight);
    }
    h.feed_usize(cfg.pool.raw_nodes)
        .feed_f64(cfg.pool.dead_frac)
        .feed_f64(cfg.pool.blocks_ping_frac)
        .feed_f64(cfg.pool.agent_broken_frac)
        .feed_f64(cfg.pool.lazy_frac);
    h.feed_f64(cfg.space.inflation_mu)
        .feed_f64(cfg.space.inflation_sigma)
        .feed_f64(cfg.space.jitter_frac)
        .feed_f64(cfg.space.base_loss)
        .feed_f64(cfg.space.lossy_path_frac)
        .feed_f64(cfg.space.lossy_path_extra)
        .feed_f64(cfg.space.lazy_extra_ms)
        .feed_f64(cfg.space.lazy_prob);
    h.feed_u64(seed);
    let num_regions = cfg.pool.regions.len();
    cache::get_or_compute_global(
        &h.key("planetlab-extract"),
        || {
            let pool = NodePool::generate(&cfg.pool, seed);
            let (sites, lazy) = pool.working_sites();
            let space = build_latency_space(&sites, &lazy, &cfg.space, seed);
            (sites, lazy, space)
        },
        encode_extract,
        |bytes| decode_extract(bytes, num_regions),
    )
}

/// A prepared testbed: filtered pool, latency space, selected nodes.
pub struct SessionRunner {
    /// The synthesized network.
    pub space: Arc<LatencySpace>,
    /// Sites of all working pool nodes (host id = index).
    pub sites: Vec<Site>,
    /// Region name per working node.
    pub region_names: Vec<&'static str>,
    /// The selected streaming source (most central selected node, the
    /// paper's "node in Colorado").
    pub source: HostId,
    /// Selected overlay candidates (source excluded).
    pub candidates: Vec<HostId>,
    /// Degree limit per host.
    pub limits: Vec<u32>,
    cfg: SessionConfig,
}

impl SessionRunner {
    /// Generate the pool, filter it (Fig. 5.2), synthesize the latency
    /// space, and select `cfg.nodes` experiment nodes.
    pub fn prepare(cfg: &SessionConfig, seed: u64) -> Self {
        let (sites, _lazy, space) = cached_extract(cfg, seed);
        assert!(
            sites.len() > cfg.nodes,
            "working pool ({}) must exceed the experiment size ({})",
            sites.len(),
            cfg.nodes
        );
        let region_names = {
            let regions = &cfg.pool.regions;
            sites.iter().map(|s| regions[s.region].name).collect()
        };
        let space = Arc::new(space);
        // Selection and degree draws use an RNG stream independent of
        // pool/space synthesis, so cache hits change nothing downstream.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7373);

        // Select nodes+1 hosts; the most central becomes the source.
        let mut pool_idx: Vec<u32> = (0..sites.len() as u32).collect();
        for i in (1..pool_idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool_idx.swap(i, j);
        }
        let mut selected: Vec<HostId> = pool_idx[..cfg.nodes + 1]
            .iter()
            .map(|&i| HostId(i))
            .collect();
        let central = |h: HostId| -> f64 {
            selected
                .iter()
                .filter(|&&o| o != h)
                .map(|&o| space.rtt_ms(h, o))
                .sum()
        };
        // Host-id tie-break: `selected` is freshly shuffled, so without
        // it two equally-central hosts would resolve by shuffle order.
        let source = *selected
            .iter()
            .min_by(|&&a, &&b| central(a).total_cmp(&central(b)).then(a.0.cmp(&b.0)))
            .expect("non-empty selection");
        selected.retain(|&h| h != source);

        let limits = match &cfg.uplink {
            Some(model) => model.degree_limits(sites.len(), seed),
            None => (0..sites.len())
                .map(|_| rng.gen_range(cfg.degree.0..=cfg.degree.1))
                .collect(),
        };

        Self {
            space,
            sites,
            region_names,
            source,
            candidates: selected,
            limits,
            cfg: cfg.clone(),
        }
    }

    /// The churn scenario for this session.
    pub fn scenario(&self, seed: u64) -> Scenario {
        Scenario::churn(
            &ChurnConfig {
                members: self.cfg.nodes,
                warmup_s: self.cfg.warmup_s,
                slot_s: self.cfg.slot_s,
                slots: self.cfg.slots,
                churn_pct: self.cfg.churn_pct,
            },
            &self.candidates,
            seed,
        )
    }

    /// Run one session with the given protocol factory.
    pub fn run<F: AgentFactory>(&self, factory: F, seed: u64) -> RunOutput {
        let scenario = self.scenario(seed);
        let driver = Driver::new(
            self.space.clone(),
            None,
            self.source,
            factory,
            &scenario,
            self.limits.clone(),
            DriverConfig {
                data_interval: Some(SimTime::from_ms(self.cfg.chunk_interval_ms)),
                compute_stress: false,
                compute_mst_ratio: self.cfg.compute_mst_ratio,
                loss_probe_noise: 0.0,
                data_plane: None,
            },
            seed,
        );
        driver.run()
    }

    /// Human-readable label for tree renderings ("US-East:h12").
    pub fn label(&self, h: HostId) -> String {
        format!("{}:{}", self.region_names[h.idx()], h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_core::VdmFactory;

    fn tiny_cfg() -> SessionConfig {
        SessionConfig {
            nodes: 20,
            warmup_s: 60.0,
            slot_s: 60.0,
            slots: 2,
            churn_pct: 10.0,
            chunk_interval_ms: 500.0,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn prepare_selects_a_central_source() {
        let r = SessionRunner::prepare(&tiny_cfg(), 1);
        assert_eq!(r.candidates.len(), 20);
        assert!(!r.candidates.contains(&r.source));
        // The source minimizes total RTT among the selected set.
        let total = |h: HostId| -> f64 { r.candidates.iter().map(|&o| r.space.rtt_ms(h, o)).sum() };
        let src_total = total(r.source);
        for &c in &r.candidates {
            let mut t = total(c) - r.space.rtt_ms(c, r.source); // exclude self-pair asymmetry
            t += r.space.rtt_ms(c, r.source);
            assert!(src_total <= t + 1e-6 + 2.0 * r.space.rtt_ms(c, r.source));
        }
        assert!(r.label(r.source).contains("US"));
    }

    #[test]
    fn vdm_session_runs_and_connects() {
        let r = SessionRunner::prepare(&tiny_cfg(), 2);
        let out = r.run(VdmFactory::delay_based(), 2);
        let last = out.stats.measurements.last().expect("measurements");
        assert_eq!(last.members, 20);
        assert_eq!(last.connected, 20, "all members should reconnect");
        assert_eq!(last.tree_errors, 0);
        assert!(last.stretch.mean >= 1.0 || last.stretch.mean == 0.0);
        assert!(last.loss_rate < 0.30, "loss {}", last.loss_rate);
        assert!(!out.stats.startup_s.is_empty());
        // PlanetLab-style startup times: sub-second to a few seconds.
        let avg_startup =
            out.stats.startup_s.iter().sum::<f64>() / out.stats.startup_s.len() as f64;
        assert!(avg_startup < 5.0, "avg startup {avg_startup}");
    }

    #[test]
    fn uplink_model_drives_degrees() {
        let cfg = SessionConfig {
            uplink: Some(crate::bandwidth::UplinkModel::residential_2011()),
            ..tiny_cfg()
        };
        let r = SessionRunner::prepare(&cfg, 4);
        assert!(r.limits.contains(&1));
        assert!(r.limits.iter().any(|&d| d >= 4));
        // The heterogeneous session still connects everyone.
        let out = r.run(VdmFactory::delay_based(), 4);
        let last = out.stats.measurements.last().unwrap();
        assert_eq!(last.connected, last.members);
        assert_eq!(last.tree_errors, 0);
    }

    #[test]
    fn extract_roundtrips_and_rejects_corruption() {
        let cfg = tiny_cfg();
        let pool = NodePool::generate(&cfg.pool, 7);
        let (sites, lazy) = pool.working_sites();
        let space = build_latency_space(&sites, &lazy, &cfg.space, 7);
        let fresh = (sites, lazy, space);
        let bytes = encode_extract(&fresh);
        let back = decode_extract(&bytes, cfg.pool.regions.len()).expect("roundtrip");
        assert_eq!(back.0, fresh.0);
        assert_eq!(back.1, fresh.1);
        assert_eq!(back.2.to_bytes(), fresh.2.to_bytes());
        // Truncation and trailing garbage are both misses, not panics.
        assert!(decode_extract(&bytes[..bytes.len() - 1], cfg.pool.regions.len()).is_none());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_extract(&longer, cfg.pool.regions.len()).is_none());
        // A region index beyond the configured regions is corruption.
        assert!(decode_extract(&bytes, 1).is_none());
    }

    #[test]
    fn extract_cache_hit_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("vdm-extract-cache-{}", std::process::id()));
        let store = cache::CacheStore::at(&dir);
        let cfg = tiny_cfg();
        let build = || {
            let pool = NodePool::generate(&cfg.pool, 9);
            let (sites, lazy) = pool.working_sites();
            let space = build_latency_space(&sites, &lazy, &cfg.space, 9);
            (sites, lazy, space)
        };
        let key = KeyHasher::new().feed_u64(9).key("test-extract");
        let cold = store.get_or_compute(&key, build, encode_extract, |b| {
            decode_extract(b, cfg.pool.regions.len())
        });
        let warm = store.get_or_compute(
            &key,
            || unreachable!("second lookup must hit the cache"),
            encode_extract,
            |b| decode_extract(b, cfg.pool.regions.len()),
        );
        assert_eq!(encode_extract(&cold), encode_extract(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_are_deterministic() {
        let r = SessionRunner::prepare(&tiny_cfg(), 3);
        let a = r.run(VdmFactory::delay_based(), 3);
        let b = r.run(VdmFactory::delay_based(), 3);
        assert_eq!(a.stats.startup_s, b.stats.startup_s);
        assert_eq!(a.final_snapshot.parent, b.final_snapshot.parent);
    }
}
