//! Emulated PlanetLab testbed (Chapter 5 substrate).
//!
//! PlanetLab itself is long gone, so this crate synthesizes the four
//! properties that made the paper's Chapter 5 different from its NS-2
//! chapter, and otherwise runs the *same* protocol agents:
//!
//! 1. **Real-metric-space RTTs with triangle-inequality violations** —
//!    sites live in geographic continent clusters ([`vdm_topology::geo`]);
//!    pairwise RTTs are fiber-speed great circles plus access delays,
//!    multiplied by a pairwise *inflation factor* modelling routing
//!    detours (the reason the paper's sample trees are "not an exact
//!    fit" to geography, §5.4.1).
//! 2. **Measurement noise and lazy nodes** — per-probe jitter plus a
//!    tail of slow responders (§5.3: "sometimes PlanetLab nodes are
//!    lazy to answer the information request").
//! 3. **Uncontrolled loss** — small per-path base loss plus a lossy-path
//!    tail (§5.4.2: "in PlanetLab we can't control the loss rate over
//!    links").
//! 4. **Unstable nodes** — a fraction of the pool is dead, blocks
//!    pings, or cannot run the agent; the three-stage filtering pipeline
//!    of Fig. 5.2 selects the working subset before each experiment.
//!
//! [`session`] then packages the paper's experiment shape: a main
//! controller executing a scenario file against per-node VDM agents,
//! the sender streaming 10 chunks/s, 5000 s sessions with a 2000 s
//! join-only phase (§5.4.2).

pub mod bandwidth;
pub mod pool;
pub mod session;
pub mod space;

pub use bandwidth::UplinkModel;
pub use pool::{NodeHealth, NodePool, PoolConfig};
pub use session::{SessionConfig, SessionRunner};
pub use space::{build_latency_space, SpaceConfig};
