//! Building the PlanetLab-like latency space.
//!
//! Pairwise RTT = (fiber-speed great circle + access delays) × an
//! *inflation factor* drawn per pair from a lognormal-shaped
//! distribution. Inflation models routing detours ("the Internet
//! backbones and routing within and between ISPs may result in
//! different distances between the nodes in contrast to geographic
//! distribution", §5.4.1) and is what makes the space violate the
//! triangle inequality, so directionality estimates can be wrong the
//! same way they were on PlanetLab. Per-path loss gets a small base
//! plus a heavy-ish tail of lossy paths.

use rand::{rngs::StdRng, Rng, SeedableRng};
use vdm_netsim::underlay::LazyProfile;
use vdm_netsim::{HostId, LatencySpace};
use vdm_topology::geo::{site_rtt_ms, Site};

/// Latency-space synthesis parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpaceConfig {
    /// Mean of `ln(inflation)`; e.g. 0.35 → median inflation ≈ 1.42
    /// (real Internet paths average ~1.5–2× the great-circle time).
    pub inflation_mu: f64,
    /// Std-dev of `ln(inflation)`.
    pub inflation_sigma: f64,
    /// Per-probe multiplicative jitter amplitude (±fraction).
    pub jitter_frac: f64,
    /// Base per-path loss probability.
    pub base_loss: f64,
    /// Fraction of paths with extra loss.
    pub lossy_path_frac: f64,
    /// Maximum extra loss on lossy paths.
    pub lossy_path_extra: f64,
    /// Extra response delay of lazy nodes, ms (tail).
    pub lazy_extra_ms: f64,
    /// Probability a packet toward a lazy node hits the slow path.
    pub lazy_prob: f64,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        Self {
            inflation_mu: 0.35,
            inflation_sigma: 0.25,
            jitter_frac: 0.08,
            base_loss: 0.002,
            lossy_path_frac: 0.08,
            lossy_path_extra: 0.04,
            lazy_extra_ms: 800.0,
            lazy_prob: 0.05,
        }
    }
}

/// Approximate standard normal via the sum of 12 uniforms (good enough
/// for synthesis; keeps us off extra dependencies).
fn gauss(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// Build the latency space over `sites`; `lazy[i]` marks slow
/// responders. Deterministic in `seed`.
pub fn build_latency_space(
    sites: &[Site],
    lazy: &[bool],
    cfg: &SpaceConfig,
    seed: u64,
) -> LatencySpace {
    assert_eq!(sites.len(), lazy.len());
    let n = sites.len();
    assert!(n >= 2, "need at least two sites");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0073_7061_6365);
    let mut rtt = vec![vec![0.0; n]; n];
    let mut loss = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let base = site_rtt_ms(&sites[i], &sites[j]);
            let inflation = (cfg.inflation_mu + cfg.inflation_sigma * gauss(&mut rng)).exp();
            let r = (base * inflation.max(1.0)).max(0.2);
            rtt[i][j] = r;
            rtt[j][i] = r;
            let mut p = cfg.base_loss;
            if rng.gen::<f64>() < cfg.lossy_path_frac {
                p += rng.gen::<f64>() * cfg.lossy_path_extra;
            }
            loss[i][j] = p;
            loss[j][i] = p;
        }
    }
    let mut space = LatencySpace::from_rtt_matrix(&rtt)
        .with_loss_matrix(&loss)
        .with_jitter(cfg.jitter_frac);
    for (i, &l) in lazy.iter().enumerate() {
        if l {
            space.set_lazy(
                HostId(i as u32),
                LazyProfile {
                    prob: cfg.lazy_prob,
                    extra_ms: cfg.lazy_extra_ms,
                },
            );
        }
    }
    space
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{NodePool, PoolConfig};
    use vdm_netsim::Underlay;

    fn us_space(seed: u64) -> (LatencySpace, usize) {
        let pool = NodePool::generate(&PoolConfig::us_paper(), seed);
        let (sites, lazy) = pool.working_sites();
        let n = sites.len();
        (
            build_latency_space(&sites, &lazy, &SpaceConfig::default(), seed),
            n,
        )
    }

    #[test]
    fn rtts_look_like_us_planetlab() {
        let (space, n) = us_space(1);
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let r = space.rtt_ms(HostId(i as u32), HostId(j as u32));
                min = min.min(r);
                max = max.max(r);
                sum += r;
                count += 1;
            }
        }
        let mean = sum / count as f64;
        // Continental US: a few ms nearby, under ~250 ms worst case
        // with detours, tens of ms on average.
        assert!(min > 0.2 && min < 30.0, "min {min}");
        assert!(max > 60.0 && max < 300.0, "max {max}");
        assert!((15.0..120.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn triangle_inequality_is_sometimes_violated() {
        let (space, n) = us_space(2);
        let mut violations = 0;
        let mut triples = 0;
        for a in 0..n.min(40) {
            for b in (a + 1)..n.min(40) {
                for c in (b + 1)..n.min(40) {
                    let (ha, hb, hc) = (HostId(a as u32), HostId(b as u32), HostId(c as u32));
                    let (ab, bc, ac) = (
                        space.rtt_ms(ha, hb),
                        space.rtt_ms(hb, hc),
                        space.rtt_ms(ha, hc),
                    );
                    triples += 1;
                    if ac > ab + bc || ab > ac + bc || bc > ab + ac {
                        violations += 1;
                    }
                }
            }
        }
        let frac = violations as f64 / triples as f64;
        assert!(frac > 0.005, "expected TIVs, got {frac}");
        assert!(frac < 0.5, "space should still be mostly metric: {frac}");
    }

    #[test]
    fn losses_have_base_and_tail() {
        let (space, n) = us_space(3);
        let mut lossy = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let p = space.path_loss(HostId(i as u32), HostId(j as u32));
                assert!((0.0019..0.05).contains(&p), "loss {p}");
                if p > 0.005 {
                    lossy += 1;
                }
                total += 1;
            }
        }
        let frac = lossy as f64 / total as f64;
        assert!((0.02..0.25).contains(&frac), "lossy fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, n) = us_space(5);
        let (b, _) = us_space(5);
        for i in 0..n.min(20) {
            for j in 0..n.min(20) {
                if i != j {
                    assert_eq!(
                        a.rtt_ms(HostId(i as u32), HostId(j as u32)),
                        b.rtt_ms(HostId(i as u32), HostId(j as u32))
                    );
                }
            }
        }
    }
}
