//! Optional queueing data plane (link-calendar model).
//!
//! The pure-latency model treats links as infinite-capacity pipes; NS-2
//! (the paper's simulator) models transmission time and finite FIFO
//! buffers. This module adds both for *data* packets without per-hop
//! events: each link keeps a `busy_until` calendar; a packet crossing a
//! path accumulates, per link,
//!
//! ```text
//! start_tx = max(arrival, busy_until)        // waits in the queue
//! drop if start_tx - arrival > buffer_ms      // FIFO overflow
//! busy_until = start_tx + serialization       // bits / bandwidth
//! arrival'  = start_tx + serialization + propagation
//! ```
//!
//! which is exact for FIFO links fed in arrival order. Since the
//! discrete-event engine dispatches sends in timestamp order, the
//! arrival-order condition holds per link for all practical overlay
//! traffic, and congestion (the §2.1.1 unicast problem: "a packet is
//! transmitted many times on a link which overloads the network") shows
//! up as real queueing delay and buffer drops.

use crate::time::SimTime;
use vdm_topology::{EdgeId, Millis};

/// Data-plane parameters.
#[derive(Clone, Copy, Debug)]
pub struct DataPlaneConfig {
    /// Size of one stream chunk, bits (default: 10 kbit ≈ a 1250-byte
    /// packet).
    pub packet_bits: f64,
    /// Maximum queueing delay a link buffer absorbs before dropping,
    /// ms (a delay-based formulation of buffer depth).
    pub buffer_ms: Millis,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        Self {
            packet_bits: 10_000.0,
            buffer_ms: 50.0,
        }
    }
}

/// One physical link the data plane knows about.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Propagation delay, ms.
    pub delay_ms: Millis,
    /// Capacity, Mbit/s.
    pub bandwidth_mbps: f64,
}

/// Why a packet failed to cross its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferDrop {
    /// The link whose buffer overflowed.
    pub link: EdgeId,
}

/// The mutable link-calendar state.
#[derive(Clone, Debug)]
pub struct DataPlane {
    cfg: DataPlaneConfig,
    links: Vec<LinkSpec>,
    busy_until: Vec<SimTime>,
    /// Buffer drops so far (diagnostics).
    pub drops: u64,
    /// Per-link drop counts (diagnostics).
    pub drops_per_link: Vec<u64>,
}

impl DataPlane {
    /// New data plane over the given links (indexed by [`EdgeId`]).
    pub fn new(links: Vec<LinkSpec>, cfg: DataPlaneConfig) -> Self {
        assert!(cfg.packet_bits > 0.0 && cfg.buffer_ms >= 0.0);
        let n = links.len();
        Self {
            cfg,
            links,
            busy_until: vec![SimTime::ZERO; n],
            drops: 0,
            drops_per_link: vec![0; n],
        }
    }

    /// Serialization time of one packet on `link`, ms.
    fn serialization_ms(&self, link: EdgeId) -> Millis {
        // bits / (Mbit/s) = µs; /1000 = ms.
        self.cfg.packet_bits / (self.links[link.idx()].bandwidth_mbps * 1_000.0)
    }

    /// Transmit one packet over one `link`, arriving at the link's
    /// input queue at `now`: returns the arrival time at the far end,
    /// or a drop on buffer overflow. The engine calls this hop by hop
    /// (one event per link crossing), so every link's calendar is
    /// charged in true arrival order — charging a whole path up front
    /// would let in-flight packets block links they have not reached
    /// yet.
    pub fn transit_hop(&mut self, now: SimTime, link: EdgeId) -> Result<SimTime, BufferDrop> {
        let busy = self.busy_until[link.idx()];
        let start_tx = now.max(busy);
        let queued_ms = (start_tx - now).as_ms();
        if queued_ms > self.cfg.buffer_ms {
            self.drops += 1;
            self.drops_per_link[link.idx()] += 1;
            return Err(BufferDrop { link });
        }
        let ser = SimTime::from_ms(self.serialization_ms(link));
        self.busy_until[link.idx()] = start_tx + ser;
        Ok(start_tx + ser + SimTime::from_ms(self.links[link.idx()].delay_ms))
    }

    /// Send one data packet along a whole `path` starting at `now`
    /// (all hops charged immediately — only correct when the path's
    /// propagation is negligible relative to packet spacing; the
    /// engine uses [`DataPlane::transit_hop`] instead).
    pub fn transit(&mut self, now: SimTime, path: &[EdgeId]) -> Result<SimTime, BufferDrop> {
        let mut arrival = now;
        for &link in path {
            arrival = self.transit_hop(arrival, link)?;
        }
        Ok(arrival)
    }

    /// Current queueing backlog of a link, ms, as of `now`.
    pub fn backlog_ms(&self, link: EdgeId, now: SimTime) -> Millis {
        self.busy_until[link.idx()].saturating_sub(now).as_ms()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_link(bw_mbps: f64) -> DataPlane {
        DataPlane::new(
            vec![LinkSpec {
                delay_ms: 5.0,
                bandwidth_mbps: bw_mbps,
            }],
            DataPlaneConfig {
                packet_bits: 10_000.0,
                buffer_ms: 3.0,
            },
        )
    }

    #[test]
    fn uncongested_packet_pays_serialization_plus_propagation() {
        let mut dp = one_link(10.0); // 10 kbit / 10 Mbps = 1 ms
        let t = dp.transit(SimTime::ZERO, &[EdgeId(0)]).unwrap();
        assert_eq!(t, SimTime::from_ms(6.0)); // 1 ser + 5 prop
        assert_eq!(dp.drops, 0);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut dp = one_link(10.0);
        let t1 = dp.transit(SimTime::ZERO, &[EdgeId(0)]).unwrap();
        let t2 = dp.transit(SimTime::ZERO, &[EdgeId(0)]).unwrap();
        let t3 = dp.transit(SimTime::ZERO, &[EdgeId(0)]).unwrap();
        assert_eq!(t1, SimTime::from_ms(6.0));
        assert_eq!(t2, SimTime::from_ms(7.0)); // 1 ms queued behind #1
        assert_eq!(t3, SimTime::from_ms(8.0));
        assert!((dp.backlog_ms(EdgeId(0), SimTime::ZERO) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut dp = one_link(10.0);
        // buffer_ms = 3: the 5th simultaneous packet sees 4 ms of queue.
        for i in 0..4 {
            assert!(dp.transit(SimTime::ZERO, &[EdgeId(0)]).is_ok(), "pkt {i}");
        }
        let r = dp.transit(SimTime::ZERO, &[EdgeId(0)]);
        assert_eq!(r, Err(BufferDrop { link: EdgeId(0) }));
        assert_eq!(dp.drops, 1);
    }

    #[test]
    fn calendar_drains_over_time() {
        let mut dp = one_link(10.0);
        for _ in 0..3 {
            dp.transit(SimTime::ZERO, &[EdgeId(0)]).unwrap();
        }
        // 10 ms later the link is idle again.
        let t = dp.transit(SimTime::from_ms(10.0), &[EdgeId(0)]).unwrap();
        assert_eq!(t, SimTime::from_ms(16.0));
    }

    #[test]
    fn multi_hop_accumulates() {
        let mut dp = DataPlane::new(
            vec![
                LinkSpec {
                    delay_ms: 2.0,
                    bandwidth_mbps: 10.0,
                },
                LinkSpec {
                    delay_ms: 3.0,
                    bandwidth_mbps: 5.0,
                },
            ],
            DataPlaneConfig::default(),
        );
        let t = dp.transit(SimTime::ZERO, &[EdgeId(0), EdgeId(1)]).unwrap();
        // hop0: 1 ser + 2 prop = 3; hop1: 2 ser + 3 prop = 5 -> 8.
        assert_eq!(t, SimTime::from_ms(8.0));
    }

    #[test]
    fn fast_links_barely_serialize() {
        let mut dp = one_link(1_000.0); // 10 kbit / 1 Gbps = 10 µs
        let t = dp.transit(SimTime::ZERO, &[EdgeId(0)]).unwrap();
        assert_eq!(t, SimTime::from_ms(5.01));
    }
}
