//! Conservative parallel DES: shard one simulation across cores.
//!
//! A [`ShardedEngine`] partitions the host space into `S` contiguous id
//! blocks (a [`ShardMap`], atm0s-sdn-style: the high range of a host id
//! names its shard the way geo/group prefixes name a zone). Each shard is
//! a complete, unmodified [`Engine`] — its own event heap, sequence
//! counter and RNG stream — and the shards advance in lock-step
//! *lookahead windows*:
//!
//! 1. pick the earliest pending event time across shards, open a window
//!    of `lookahead` from there;
//! 2. run every shard (in parallel, one thread each) up to the window
//!    end — safe because no event generated inside the window can affect
//!    another shard earlier than `lookahead` later, the classic
//!    conservative-DES argument, with the underlay's minimum cross-shard
//!    link delay as the natural lookahead lower bound;
//! 3. at the barrier, drain every shard's per-destination outbox of
//!    cross-shard `Deliver` events and inject them into the target
//!    heaps in `(at, src_shard, seq)` order.
//!
//! That drain order is what makes runs **bit-reproducible at a fixed
//! shard count**, independent of thread scheduling: the merge key is a
//! pure function of simulation state, never of wall-clock interleaving.
//! Reproducibility across *different* shard counts is deliberately not
//! the contract — each shard owns an RNG stream, so `S` changes the
//! random universe (see DESIGN.md §12). The one exception is `S = 1`,
//! which installs no shard context at all and delegates straight to the
//! inner [`Engine`], byte-identical to an unsharded run per seed.

use crate::engine::{Counters, Engine, World};
use crate::time::SimTime;
use crate::underlay::{HostId, Underlay};
use std::sync::Arc;

/// Partition of the host id space into contiguous shard blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Host-id boundaries: shard `s` owns `bounds[s]..bounds[s + 1]`.
    bounds: Vec<u32>,
}

impl ShardMap {
    /// Split `num_hosts` into `shards` near-equal contiguous blocks
    /// (the remainder spread over the first shards).
    pub fn contiguous(num_hosts: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            num_hosts >= shards,
            "need at least one host per shard ({num_hosts} hosts, {shards} shards)"
        );
        // Host ids are u32 on the wire; a host count past that space
        // used to truncate the upper boundaries silently, folding the
        // tail of the id space onto the head.
        let top = u32::try_from(num_hosts)
            .unwrap_or_else(|_| panic!("{num_hosts} hosts exceed the u32 host-id space"));
        let base = top / shards as u32;
        let extra = top as usize % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        let mut at = 0u32;
        for s in 0..shards {
            at += base + u32::from(s < extra);
            bounds.push(at);
        }
        Self { bounds }
    }

    /// Build from explicit boundaries (`bounds[0] = 0`, strictly
    /// ascending, last entry = host count).
    pub fn from_bounds(bounds: Vec<u32>) -> Self {
        assert!(bounds.len() >= 2, "need at least one shard");
        assert_eq!(bounds[0], 0, "first boundary must be zero");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly ascending"
        );
        Self { bounds }
    }

    /// Coarsen this map by merging its blocks into `groups` contiguous
    /// groups (near-equal in block count). Because every new boundary is
    /// an existing one, any lookahead valid for `self` stays valid for
    /// the coarser map — used to sweep `S` over one generated underlay.
    pub fn grouped(&self, groups: usize) -> Self {
        let s = self.num_shards();
        assert!(
            groups >= 1 && groups <= s,
            "cannot group {s} shards into {groups}"
        );
        let base = s / groups;
        let extra = s % groups;
        let mut bounds = Vec::with_capacity(groups + 1);
        bounds.push(0u32);
        let mut block = 0usize;
        for g in 0..groups {
            block += base + usize::from(g < extra);
            bounds.push(self.bounds[block]);
        }
        Self { bounds }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of hosts covered.
    pub fn num_hosts(&self) -> usize {
        *self.bounds.last().unwrap() as usize
    }

    /// Shard owning host `h`.
    #[inline]
    pub fn shard_of(&self, h: HostId) -> u32 {
        debug_assert!(h.0 < *self.bounds.last().unwrap(), "host {h} out of range");
        (self.bounds.partition_point(|&b| b <= h.0) - 1) as u32
    }

    /// Host-id range owned by shard `s`.
    pub fn range(&self, s: u32) -> std::ops::Range<u32> {
        self.bounds[s as usize]..self.bounds[s as usize + 1]
    }

    /// The raw boundaries (`num_shards + 1` entries).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }
}

/// A cross-shard delivery parked in a sender-side outbox until the next
/// window barrier.
pub(crate) struct OutboundEvent<M> {
    pub(crate) at: SimTime,
    pub(crate) to: HostId,
    pub(crate) from: HostId,
    pub(crate) msg: M,
    /// Per-source-shard monotone counter; with `(at, src_shard)` it
    /// makes the barrier merge order a total, scheduling-independent
    /// order.
    pub(crate) seq: u64,
}

/// Shard identity + outboxes installed into each member [`Engine`].
pub(crate) struct ShardCtx<M> {
    pub(crate) map: Arc<ShardMap>,
    pub(crate) id: u32,
    /// Outgoing events, indexed by destination shard.
    pub(crate) outbox: Vec<Vec<OutboundEvent<M>>>,
    pub(crate) sent: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// `S` engines advancing in lookahead-bounded lock-step windows.
///
/// Drives one [`World`] per shard (each world owns its shard's slice of
/// per-host state and must only originate sends/timers for its own
/// hosts). `S = 1` is the plain [`Engine`], byte-identical per seed.
pub struct ShardedEngine<M> {
    engines: Vec<Engine<M>>,
    map: Arc<ShardMap>,
    lookahead: SimTime,
    parallel: bool,
    windows: u64,
    cross_events: u64,
}

impl<M: Clone + Send> ShardedEngine<M> {
    /// New sharded engine: shard 0 is seeded with `seed` itself (so
    /// `S = 1` reproduces [`Engine::new`] exactly), every further shard
    /// with a splitmix-derived stream. `lookahead` must lower-bound the
    /// delay of every cross-shard message (use the underlay's
    /// `min_cross_shard_delay` oracle); the engine hard-errors at drain
    /// time if a cross-shard event ever lands inside a closed window.
    pub fn new(
        underlay: Arc<dyn Underlay + Send + Sync>,
        seed: u64,
        map: ShardMap,
        lookahead: SimTime,
    ) -> Self {
        let s = map.num_shards();
        assert_eq!(
            map.num_hosts(),
            underlay.num_hosts(),
            "shard map covers {} hosts, underlay has {}",
            map.num_hosts(),
            underlay.num_hosts()
        );
        if s > 1 {
            assert!(
                lookahead > SimTime::ZERO,
                "a multi-shard run needs a positive lookahead"
            );
        }
        let map = Arc::new(map);
        let mut engines = Vec::with_capacity(s);
        for i in 0..s {
            let shard_seed = if i == 0 {
                seed
            } else {
                splitmix64(seed ^ 0x7368_6172_6421 ^ ((i as u64) << 32))
            };
            let mut e = Engine::new(Arc::clone(&underlay), shard_seed);
            if s > 1 {
                e.install_shard_ctx(ShardCtx {
                    map: Arc::clone(&map),
                    id: i as u32,
                    outbox: (0..s).map(|_| Vec::new()).collect(),
                    sent: 0,
                });
            }
            engines.push(e);
        }
        Self {
            engines,
            map,
            lookahead,
            parallel: true,
            windows: 0,
            cross_events: 0,
        }
    }

    /// Single-shard engine over the whole host space — the delegation
    /// baseline the determinism gate compares against [`Engine`].
    pub fn single(underlay: Arc<dyn Underlay + Send + Sync>, seed: u64) -> Self {
        let n = underlay.num_hosts();
        Self::new(underlay, seed, ShardMap::contiguous(n, 1), SimTime::MAX)
    }

    /// The shard partition.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// The synchronization window length.
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Run windows sequentially on the calling thread instead of one
    /// thread per shard. Results are identical either way (the
    /// determinism suite pins this); sequential mode exists for that
    /// test and for debugging.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Shard `s`'s engine (schedule external events / timers, install
    /// tracers, read per-shard counters).
    pub fn engine(&self, s: usize) -> &Engine<M> {
        &self.engines[s]
    }

    /// Mutable access to shard `s`'s engine.
    pub fn engine_mut(&mut self, s: usize) -> &mut Engine<M> {
        &mut self.engines[s]
    }

    /// Current simulated time: the front of the slowest shard.
    pub fn now(&self) -> SimTime {
        self.engines.iter().map(|e| e.now()).min().unwrap()
    }

    /// Traffic counters summed over shards.
    pub fn counters(&self) -> Counters {
        let mut sum = Counters::default();
        for e in &self.engines {
            let c = e.counters();
            sum.control_sent += c.control_sent;
            sum.data_sent += c.data_sent;
            sum.data_dropped += c.data_dropped;
            sum.data_congestion_dropped += c.data_congestion_dropped;
            sum.delivered += c.delivered;
            sum.faults_dropped += c.faults_dropped;
            sum.faults_duplicated += c.faults_duplicated;
            sum.faults_delayed += c.faults_delayed;
        }
        sum
    }

    /// Events processed, summed over shards.
    pub fn events_processed(&self) -> u64 {
        self.engines.iter().map(|e| e.events_processed()).sum()
    }

    /// Synchronization windows executed so far (0 for `S = 1`).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-shard events exchanged at barriers so far.
    pub fn cross_events(&self) -> u64 {
        self.cross_events
    }

    /// True when no shard has pending events (outboxes are always empty
    /// between [`ShardedEngine::run`] calls).
    pub fn is_idle(&self) -> bool {
        self.engines.iter().all(|e| e.is_idle())
    }

    /// Run all shards until no event at or before `until` remains
    /// (events at exactly `until` are processed, matching
    /// [`Engine::run`]). Returns the number of events processed.
    pub fn run<W: World<Msg = M> + Send>(&mut self, worlds: &mut [W], until: SimTime) -> u64 {
        assert_eq!(
            worlds.len(),
            self.engines.len(),
            "need exactly one world per shard"
        );
        if self.engines.len() == 1 {
            return self.engines[0].run(&mut worlds[0], until);
        }
        let mut total = 0u64;
        loop {
            let next = self.engines.iter().filter_map(|e| e.next_event_at()).min();
            let Some(next) = next else { break };
            if next > until {
                break;
            }
            // Open the window at the earliest pending event (skipping
            // dead time between bursts) and close it one lookahead
            // later: nothing scheduled inside can reach another shard
            // sooner, so the shards are causally independent until then.
            let w_end = until.min(next + self.lookahead);
            total += self.run_window(worlds, w_end);
            self.windows += 1;
            self.exchange();
        }
        if until != SimTime::MAX {
            // Advance every shard clock to the horizon so subsequent
            // relative scheduling is anchored like a plain engine's.
            for (e, w) in self.engines.iter_mut().zip(worlds.iter_mut()) {
                total += e.run(w, until);
            }
        }
        total
    }

    /// Run until every shard is idle.
    pub fn run_to_idle<W: World<Msg = M> + Send>(&mut self, worlds: &mut [W]) -> u64 {
        self.run(worlds, SimTime::MAX)
    }

    fn run_window<W: World<Msg = M> + Send>(&mut self, worlds: &mut [W], w_end: SimTime) -> u64 {
        if !self.parallel {
            let mut n = 0;
            for (e, w) in self.engines.iter_mut().zip(worlds.iter_mut()) {
                n += e.run(w, w_end);
            }
            return n;
        }
        let mut n = 0;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.engines.len());
            for (e, w) in self.engines.iter_mut().zip(worlds.iter_mut()) {
                handles.push(scope.spawn(move || e.run(w, w_end)));
            }
            for h in handles {
                n += h.join().expect("shard thread panicked");
            }
        });
        n
    }

    /// Barrier step: move every outbox entry into its destination heap,
    /// per destination in `(at, src_shard, seq)` order — a total order
    /// over simulation state, so the result is independent of how the
    /// window's threads were scheduled.
    fn exchange(&mut self) {
        // (at, src_shard, seq, to, from, msg)
        type Inbound<M> = Vec<(SimTime, u32, u64, HostId, HostId, M)>;
        let s = self.engines.len();
        let mut inbound: Vec<Inbound<M>> = (0..s).map(|_| Vec::new()).collect();
        for (src, e) in self.engines.iter_mut().enumerate() {
            for (dst, q) in e.take_outboxes().into_iter().enumerate() {
                for ev in q {
                    inbound[dst].push((ev.at, src as u32, ev.seq, ev.to, ev.from, ev.msg));
                }
            }
        }
        for (dst, mut q) in inbound.into_iter().enumerate() {
            q.sort_unstable_by_key(|a| (a.0, a.1, a.2));
            for (at, _src, _seq, to, from, msg) in q {
                self.cross_events += 1;
                self.engines[dst].inject_remote(at, to, from, msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks_are_near_equal() {
        let m = ShardMap::contiguous(10, 3);
        assert_eq!(m.num_shards(), 3);
        assert_eq!(m.num_hosts(), 10);
        assert_eq!(m.range(0), 0..4);
        assert_eq!(m.range(1), 4..7);
        assert_eq!(m.range(2), 7..10);
        assert_eq!(m.shard_of(HostId(0)), 0);
        assert_eq!(m.shard_of(HostId(3)), 0);
        assert_eq!(m.shard_of(HostId(4)), 1);
        assert_eq!(m.shard_of(HostId(9)), 2);
    }

    #[test]
    fn grouping_reuses_existing_boundaries() {
        let fine = ShardMap::contiguous(100, 8);
        let coarse = fine.grouped(3);
        assert_eq!(coarse.num_shards(), 3);
        assert_eq!(coarse.num_hosts(), 100);
        // Every coarse boundary is a fine boundary, so any lookahead
        // valid for the fine map stays valid for the coarse one.
        for &b in coarse.bounds() {
            assert!(fine.bounds().contains(&b), "boundary {b} not in fine map");
        }
        assert_eq!(fine.grouped(8), fine);
        assert_eq!(fine.grouped(1), ShardMap::contiguous(100, 1));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_bounds_rejects_empty_blocks() {
        ShardMap::from_bounds(vec![0, 5, 5, 10]);
    }

    #[test]
    fn contiguous_covers_the_full_u32_id_space() {
        // The whole u32 space is a legal host count; the boundaries
        // used to truncate past it instead of refusing.
        let m = ShardMap::contiguous(u32::MAX as usize, 4);
        assert_eq!(m.num_hosts(), u32::MAX as usize);
        assert_eq!(m.range(3).end, u32::MAX);
        assert_eq!(m.shard_of(HostId(u32::MAX - 1)), 3);
    }

    #[test]
    #[should_panic(expected = "exceed the u32 host-id space")]
    fn contiguous_rejects_counts_past_u32() {
        ShardMap::contiguous(u32::MAX as usize + 1, 4);
    }
}
