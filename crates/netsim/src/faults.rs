//! Deterministic fault injection for the discrete-event engine.
//!
//! A [`FaultPlan`] is a seeded schedule of timed fault events applied at
//! the underlay send hook ([`crate::Engine::send`]):
//!
//! * [`FaultEvent::LinkFlap`] — a host pair loses connectivity for a
//!   window (both directions, both message classes);
//! * [`FaultEvent::Partition`] — the host set is bisected for a window;
//!   messages crossing the cut are dropped;
//! * [`FaultEvent::MsgFaults`] — probabilistic message-level faults
//!   inside a window: drops, duplicates, bounded reordering delays, and
//!   fixed delay spikes;
//! * [`FaultEvent::Slowdown`] — a host processes inbound traffic with a
//!   multiplicative delay (modelling CPU contention).
//!
//! All randomness comes from the plan's own RNG, seeded at construction,
//! so identical seeds give identical fault decisions — and the engine's
//! RNG stream is untouched, so a run with no plan installed is
//! byte-identical to a run on an engine that never heard of faults.
//! [`FaultPlan::fate`] consumes RNG only while a [`FaultEvent::MsgFaults`]
//! window is active.

use crate::time::SimTime;
use crate::underlay::HostId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One timed fault in a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Host pair `a`–`b` is blacked out during `[from, until)`.
    LinkFlap {
        a: HostId,
        b: HostId,
        from: SimTime,
        until: SimTime,
    },
    /// During `[from, until)` messages between `side` and its complement
    /// are dropped. `side` is kept sorted for binary search.
    Partition {
        side: Vec<HostId>,
        from: SimTime,
        until: SimTime,
    },
    /// During `[from, until)` every message independently suffers:
    /// drop with `drop_p`; duplication with `dup_p` (the copy arrives
    /// after an extra uniform delay in `[0, reorder_max]`); an extra
    /// uniform delay in `[0, reorder_max]` with `reorder_p` (reordering
    /// it behind later traffic, but within the bound); a fixed `spike`
    /// delay with `spike_p`.
    MsgFaults {
        from: SimTime,
        until: SimTime,
        drop_p: f64,
        dup_p: f64,
        reorder_p: f64,
        reorder_max: SimTime,
        spike_p: f64,
        spike: SimTime,
    },
    /// During `[from, until)` traffic delivered to `host` takes
    /// `factor`× its sampled transit delay.
    Slowdown {
        host: HostId,
        factor: f64,
        from: SimTime,
        until: SimTime,
    },
}

impl FaultEvent {
    fn window(&self) -> (SimTime, SimTime) {
        match self {
            FaultEvent::LinkFlap { from, until, .. }
            | FaultEvent::Partition { from, until, .. }
            | FaultEvent::MsgFaults { from, until, .. }
            | FaultEvent::Slowdown { from, until, .. } => (*from, *until),
        }
    }

    fn active(&self, now: SimTime) -> bool {
        let (from, until) = self.window();
        now >= from && now < until
    }
}

/// What the fault layer decided for one message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SendFate {
    /// Message never arrives.
    pub dropped: bool,
    /// Extra transit delay on top of the underlay sample.
    pub extra_delay: SimTime,
    /// If set, a second copy is delivered with this extra delay.
    pub duplicate: Option<SimTime>,
}

impl SendFate {
    const CLEAN: SendFate = SendFate {
        dropped: false,
        extra_delay: SimTime::ZERO,
        duplicate: None,
    };
}

/// Parameters for [`FaultPlan::generate`]: how many faults of each class
/// to scatter over `[start, end)` and how severe to make them.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Earliest fault onset (leave warmup undisturbed).
    pub start: SimTime,
    /// All faults end by here.
    pub end: SimTime,
    /// Number of link flap events.
    pub link_flaps: usize,
    /// Flap duration range in seconds.
    pub flap_secs: (f64, f64),
    /// Number of partition events.
    pub partitions: usize,
    /// Partition duration range in seconds.
    pub partition_secs: (f64, f64),
    /// Number of message-fault windows.
    pub msg_windows: usize,
    /// Message-fault window duration range in seconds.
    pub msg_window_secs: (f64, f64),
    /// Per-message drop probability inside a window.
    pub drop_p: f64,
    /// Per-message duplication probability inside a window.
    pub dup_p: f64,
    /// Per-message reorder probability inside a window.
    pub reorder_p: f64,
    /// Reorder delay bound in milliseconds.
    pub reorder_max_ms: f64,
    /// Per-message delay-spike probability inside a window.
    pub spike_p: f64,
    /// Delay spike magnitude in milliseconds.
    pub spike_ms: f64,
    /// Number of node slowdown events.
    pub slowdowns: usize,
    /// Slowdown duration range in seconds.
    pub slowdown_secs: (f64, f64),
    /// Slowdown factor range (multiplies inbound transit delay).
    pub slowdown_factor: (f64, f64),
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            start: SimTime::from_secs(120),
            end: SimTime::from_secs(300),
            link_flaps: 4,
            flap_secs: (5.0, 20.0),
            partitions: 1,
            partition_secs: (20.0, 30.0),
            msg_windows: 2,
            msg_window_secs: (10.0, 30.0),
            drop_p: 0.05,
            dup_p: 0.10,
            reorder_p: 0.10,
            reorder_max_ms: 200.0,
            spike_p: 0.02,
            spike_ms: 500.0,
            slowdowns: 2,
            slowdown_secs: (10.0, 30.0),
            slowdown_factor: (2.0, 5.0),
        }
    }
}

/// A seeded, deterministic schedule of fault events.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    rng: StdRng,
}

impl FaultPlan {
    /// Empty plan; all fault decisions will flow from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x0066_6175_6c74), // "fault"
        }
    }

    /// Plan with a fixed event list.
    pub fn with_events(seed: u64, events: Vec<FaultEvent>) -> Self {
        let mut plan = FaultPlan::new(seed);
        for ev in events {
            plan.push(ev);
        }
        plan
    }

    /// Append one event (partition sides are normalized to sorted order).
    pub fn push(&mut self, mut event: FaultEvent) {
        if let FaultEvent::Partition { side, .. } = &mut event {
            side.sort_unstable();
            side.dedup();
        }
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Randomized plan over `hosts` following `spec`, fully determined by
    /// `seed`. Partitions bisect the host set roughly in half; flaps and
    /// slowdowns pick uniform hosts.
    pub fn generate(spec: &ChaosSpec, hosts: &[HostId], seed: u64) -> Self {
        assert!(hosts.len() >= 2, "chaos needs at least two hosts");
        assert!(spec.end > spec.start, "chaos window is empty");
        let mut plan = FaultPlan::new(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0063_6861_6f73); // "chaos"
        let span_s = (spec.end - spec.start).as_secs();

        let window = |rng: &mut StdRng, len_range: (f64, f64)| {
            let len = rng.gen_range(len_range.0..len_range.1.max(len_range.0 + 1e-9));
            let latest = (span_s - len).max(0.0);
            let off = rng.gen_range(0.0..latest.max(1e-9));
            let from = spec.start + SimTime::from_ms(off * 1000.0);
            (from, from + SimTime::from_ms(len * 1000.0))
        };

        for _ in 0..spec.link_flaps {
            let (from, until) = window(&mut rng, spec.flap_secs);
            let a = hosts[rng.gen_range(0..hosts.len())];
            let mut b = hosts[rng.gen_range(0..hosts.len())];
            while b == a {
                b = hosts[rng.gen_range(0..hosts.len())];
            }
            plan.push(FaultEvent::LinkFlap { a, b, from, until });
        }
        for _ in 0..spec.partitions {
            let (from, until) = window(&mut rng, spec.partition_secs);
            let mut pool: Vec<HostId> = hosts.to_vec();
            // Fisher-Yates so the cut is uniform over bisections.
            for i in (1..pool.len()).rev() {
                pool.swap(i, rng.gen_range(0..=i));
            }
            let side = pool[..pool.len() / 2].to_vec();
            plan.push(FaultEvent::Partition { side, from, until });
        }
        for _ in 0..spec.msg_windows {
            let (from, until) = window(&mut rng, spec.msg_window_secs);
            plan.push(FaultEvent::MsgFaults {
                from,
                until,
                drop_p: spec.drop_p,
                dup_p: spec.dup_p,
                reorder_p: spec.reorder_p,
                reorder_max: SimTime::from_ms(spec.reorder_max_ms),
                spike_p: spec.spike_p,
                spike: SimTime::from_ms(spec.spike_ms),
            });
        }
        for _ in 0..spec.slowdowns {
            let (from, until) = window(&mut rng, spec.slowdown_secs);
            let host = hosts[rng.gen_range(0..hosts.len())];
            let factor = rng.gen_range(
                spec.slowdown_factor.0..spec.slowdown_factor.1.max(spec.slowdown_factor.0 + 1e-9),
            );
            plan.push(FaultEvent::Slowdown {
                host,
                factor,
                from,
                until,
            });
        }
        plan
    }

    /// Decide the fate of a `from → to` message sent at `now`.
    ///
    /// Blackouts (flaps, partitions) are checked first and consume no
    /// randomness; message-level faults draw from the plan's RNG only
    /// while one of their windows is active.
    pub fn fate(&mut self, now: SimTime, from: HostId, to: HostId) -> SendFate {
        let mut fate = SendFate::CLEAN;
        for ev in &self.events {
            if !ev.active(now) {
                continue;
            }
            match ev {
                FaultEvent::LinkFlap { a, b, .. } => {
                    if (from == *a && to == *b) || (from == *b && to == *a) {
                        fate.dropped = true;
                        return fate;
                    }
                }
                FaultEvent::Partition { side, .. } => {
                    if side.binary_search(&from).is_ok() != side.binary_search(&to).is_ok() {
                        fate.dropped = true;
                        return fate;
                    }
                }
                FaultEvent::MsgFaults {
                    drop_p,
                    dup_p,
                    reorder_p,
                    reorder_max,
                    spike_p,
                    spike,
                    ..
                } => {
                    if *drop_p > 0.0 && self.rng.gen_bool(*drop_p) {
                        fate.dropped = true;
                        return fate;
                    }
                    if *dup_p > 0.0 && self.rng.gen_bool(*dup_p) {
                        let us = (self.rng.gen::<f64>() * reorder_max.0 as f64) as u64;
                        fate.duplicate = Some(SimTime(us));
                    }
                    if *reorder_p > 0.0 && self.rng.gen_bool(*reorder_p) {
                        let us = (self.rng.gen::<f64>() * reorder_max.0 as f64) as u64;
                        fate.extra_delay += SimTime(us);
                    }
                    if *spike_p > 0.0 && self.rng.gen_bool(*spike_p) {
                        fate.extra_delay += *spike;
                    }
                }
                FaultEvent::Slowdown { .. } => {}
            }
        }
        fate
    }

    /// Multiplicative inbound delay factor for `host` at `now` (product
    /// of all active slowdowns; `1.0` when none). Consumes no randomness.
    pub fn slowdown_factor(&self, now: SimTime, host: HostId) -> f64 {
        let mut f = 1.0;
        for ev in &self.events {
            if let FaultEvent::Slowdown {
                host: h, factor, ..
            } = ev
            {
                if *h == host && ev.active(now) {
                    f *= *factor;
                }
            }
        }
        f
    }

    /// Latest `until` over all events ([`SimTime::ZERO`] when empty);
    /// handy for sizing recovery observation windows.
    pub fn horizon(&self) -> SimTime {
        self.events
            .iter()
            .map(|ev| ev.window().1)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn flap_blacks_out_pair_both_directions_inside_window() {
        let mut plan = FaultPlan::with_events(
            1,
            vec![FaultEvent::LinkFlap {
                a: HostId(1),
                b: HostId(2),
                from: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
            }],
        );
        let t = SimTime::from_secs(15);
        assert!(plan.fate(t, HostId(1), HostId(2)).dropped);
        assert!(plan.fate(t, HostId(2), HostId(1)).dropped);
        assert!(!plan.fate(t, HostId(1), HostId(3)).dropped);
        assert!(
            !plan
                .fate(SimTime::from_secs(9), HostId(1), HostId(2))
                .dropped
        );
        assert!(
            !plan
                .fate(SimTime::from_secs(20), HostId(1), HostId(2))
                .dropped
        );
    }

    #[test]
    fn partition_drops_only_cut_crossing_messages() {
        let mut plan = FaultPlan::with_events(
            1,
            vec![FaultEvent::Partition {
                side: vec![HostId(3), HostId(0), HostId(1)], // normalized on push
                from: SimTime::from_secs(0),
                until: SimTime::from_secs(30),
            }],
        );
        let t = SimTime::from_secs(5);
        assert!(plan.fate(t, HostId(0), HostId(5)).dropped);
        assert!(plan.fate(t, HostId(5), HostId(3)).dropped);
        assert!(!plan.fate(t, HostId(0), HostId(1)).dropped);
        assert!(!plan.fate(t, HostId(4), HostId(5)).dropped);
    }

    #[test]
    fn msg_faults_draw_rng_only_inside_window() {
        let mk = || {
            FaultPlan::with_events(
                7,
                vec![FaultEvent::MsgFaults {
                    from: SimTime::from_secs(10),
                    until: SimTime::from_secs(20),
                    drop_p: 0.5,
                    dup_p: 0.5,
                    reorder_p: 0.5,
                    reorder_max: SimTime::from_ms(100.0),
                    spike_p: 0.5,
                    spike: SimTime::from_ms(500.0),
                }],
            )
        };
        // Outside the window: clean fate, no RNG consumed — two plans
        // stay in lockstep regardless of how many out-of-window calls
        // one of them served.
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(
                a.fate(SimTime::from_secs(5), HostId(0), HostId(1)),
                SendFate::CLEAN
            );
        }
        let t = SimTime::from_secs(15);
        for _ in 0..50 {
            assert_eq!(
                a.fate(t, HostId(0), HostId(1)),
                b.fate(t, HostId(0), HostId(1))
            );
        }
    }

    #[test]
    fn msg_faults_produce_all_fault_kinds() {
        let mut plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::MsgFaults {
                from: SimTime::ZERO,
                until: SimTime::from_secs(1000),
                drop_p: 0.2,
                dup_p: 0.2,
                reorder_p: 0.2,
                reorder_max: SimTime::from_ms(100.0),
                spike_p: 0.2,
                spike: SimTime::from_ms(500.0),
            }],
        );
        let (mut drops, mut dups, mut delays) = (0, 0, 0);
        for i in 0..1000u64 {
            let fate = plan.fate(SimTime::from_secs(i % 900), HostId(0), HostId(1));
            drops += fate.dropped as u32;
            dups += fate.duplicate.is_some() as u32;
            delays += (fate.extra_delay > SimTime::ZERO) as u32;
        }
        assert!(drops > 100, "drops {drops}");
        assert!(dups > 50, "dups {dups}");
        assert!(delays > 100, "delays {delays}");
    }

    #[test]
    fn slowdown_factor_stacks_and_expires() {
        let plan = FaultPlan::with_events(
            1,
            vec![
                FaultEvent::Slowdown {
                    host: HostId(4),
                    factor: 3.0,
                    from: SimTime::from_secs(0),
                    until: SimTime::from_secs(100),
                },
                FaultEvent::Slowdown {
                    host: HostId(4),
                    factor: 2.0,
                    from: SimTime::from_secs(50),
                    until: SimTime::from_secs(100),
                },
            ],
        );
        assert_eq!(plan.slowdown_factor(SimTime::from_secs(10), HostId(4)), 3.0);
        assert_eq!(plan.slowdown_factor(SimTime::from_secs(60), HostId(4)), 6.0);
        assert_eq!(
            plan.slowdown_factor(SimTime::from_secs(100), HostId(4)),
            1.0
        );
        assert_eq!(plan.slowdown_factor(SimTime::from_secs(60), HostId(5)), 1.0);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let spec = ChaosSpec::default();
        let a = FaultPlan::generate(&spec, &hosts(24), 11);
        let b = FaultPlan::generate(&spec, &hosts(24), 11);
        let c = FaultPlan::generate(&spec, &hosts(24), 12);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert_eq!(
            a.events().len(),
            spec.link_flaps + spec.partitions + spec.msg_windows + spec.slowdowns
        );
        assert!(a.horizon() <= spec.end);
        for ev in a.events() {
            let (from, until) = (ev.window().0, ev.window().1);
            assert!(from >= spec.start && until <= spec.end && from < until);
        }
    }
}
