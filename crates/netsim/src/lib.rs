//! Deterministic discrete-event network simulator.
//!
//! This is the NS-2-shaped substrate the paper's Chapter 3 evaluation runs
//! on, reduced to what overlay-multicast experiments need:
//!
//! * [`time`] — integer-microsecond simulated clock;
//! * [`engine`] — event heap, timers, message delivery with per-packet
//!   loss, and a [`engine::World`] callback trait the overlay driver
//!   implements;
//! * [`underlay`] — the two network models: [`underlay::RoutedUnderlay`]
//!   (router graph + delay-shortest routes, per-link accounting for the
//!   stress metric — the NS-2 analogue) and [`underlay::LatencySpace`]
//!   (host-to-host metric space with jitter, inflation and lossy paths —
//!   the PlanetLab analogue);
//! * [`faults`] — seeded fault-injection schedules (link flaps,
//!   partitions, message-level faults, node slowdowns) applied at the
//!   engine's send hook for chaos experiments;
//! * [`shard`] — conservative parallel DES: one [`engine::Engine`] per
//!   host shard advancing in lookahead-bounded lock-step windows, with
//!   cross-shard deliveries exchanged at window barriers in a
//!   scheduling-independent order (bit-reproducible at fixed shard
//!   count; `S = 1` delegates to the plain engine byte-identically).
//!
//! The engine is strictly deterministic: events are ordered by
//! `(time, sequence-number)` and all randomness flows from one seeded RNG,
//! so a `(seed, scenario)` pair always reproduces the same run, which the
//! integration tests assert.

pub mod dataplane;
pub mod engine;
pub mod faults;
pub mod shard;
pub mod time;
pub mod underlay;

pub use dataplane::{DataPlane, DataPlaneConfig};
pub use engine::{Engine, SendClass, World};
pub use faults::{ChaosSpec, FaultEvent, FaultPlan, SendFate};
pub use shard::{ShardMap, ShardedEngine};
pub use time::{SimTime, WallClock};
pub use underlay::{HostId, LatencySpace, RoutedUnderlay, ShardedUnderlay, Underlay};
