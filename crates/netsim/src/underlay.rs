//! Underlay network models.
//!
//! The overlay protocols only ever see *hosts* and *measured distances*;
//! everything below that is the underlay. Two models back the paper's two
//! evaluation chapters:
//!
//! * [`RoutedUnderlay`] — hosts attached to a router graph, packets follow
//!   delay-shortest routes (the NS-2 analogue, Chapter 3). Because routes
//!   are explicit, per-physical-link metrics (stress) are defined.
//! * [`LatencySpace`] — a host-to-host RTT matrix with optional jitter and
//!   per-path loss (the PlanetLab analogue, Chapter 5). No physical links;
//!   resource usage is measured as summed virtual-link latency instead,
//!   exactly as §5.3 does.

use rand::{Rng, RngCore};
use std::sync::Arc;
use vdm_topology::cache::KeyHasher;
use vdm_topology::{Apsp, EdgeId, Graph, Millis, NodeId, OnDemandRouter, RouteProvider};

/// Index of a simulation host (dense, `0..num_hosts`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

impl HostId {
    /// The host index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A network model the engine delivers messages through.
///
/// Implementations must be deterministic functions of their construction
/// inputs; per-sample randomness comes in through the `rng` argument of
/// [`Underlay::sample_one_way_ms`] only.
pub trait Underlay {
    /// Number of hosts.
    fn num_hosts(&self) -> usize;

    /// Nominal round-trip time between two hosts, ms (what an ideal,
    /// noiseless probe would measure).
    fn rtt_ms(&self, a: HostId, b: HostId) -> Millis;

    /// Nominal one-way delay, ms.
    fn one_way_ms(&self, a: HostId, b: HostId) -> Millis {
        self.rtt_ms(a, b) / 2.0
    }

    /// One-way delay for one concrete packet, ms (may add jitter).
    fn sample_one_way_ms(&self, a: HostId, b: HostId, _rng: &mut dyn RngCore) -> Millis {
        self.one_way_ms(a, b)
    }

    /// Probability that a packet from `a` to `b` is lost.
    fn path_loss(&self, a: HostId, b: HostId) -> f64;

    /// Physical links on the route `a -> b`, if the model has any
    /// (routed underlays only).
    fn path_edges(&self, a: HostId, b: HostId) -> Option<Vec<EdgeId>>;

    /// Number of physical links (0 for latency spaces).
    fn num_links(&self) -> usize {
        0
    }

    /// Per-link specs for the queueing data plane (empty for latency
    /// spaces, which have no modelled links).
    fn link_specs(&self) -> Vec<crate::dataplane::LinkSpec> {
        Vec::new()
    }
}

/// Routing oracle backing a [`RoutedUnderlay`]: the dense exact table
/// or memory-bounded on-demand rows. Both answer queries bit-for-bit
/// identically (see `vdm_topology::router`).
enum Routes {
    Dense(Apsp),
    OnDemand(Arc<OnDemandRouter>),
}

/// Hosts attached to a router graph; routes are delay-shortest paths.
pub struct RoutedUnderlay {
    graph: Arc<Graph>,
    routes: Routes,
    /// Graph node of each host.
    host_nodes: Vec<NodeId>,
}

impl RoutedUnderlay {
    /// Build from a router+host graph and the graph nodes that act as
    /// hosts (typically from `transit_stub::attach_hosts`).
    ///
    /// Runs all-pairs shortest paths once; `O(V * E log V)` time and
    /// `O(V^2)` memory — use [`RoutedUnderlay::on_demand`] past a few
    /// thousand routers.
    pub fn new(graph: Graph, host_nodes: Vec<NodeId>) -> Self {
        let apsp = Apsp::build(&graph);
        Self::from_parts(graph, apsp, host_nodes)
    }

    /// Rebuild from a cached graph + routing table (see
    /// `vdm_topology::cache`), skipping the expensive APSP
    /// recomputation. The parts must belong together: dimensions are
    /// validated, host reachability is re-checked.
    ///
    /// # Panics
    /// Panics when `apsp` was built for a different node count than
    /// `graph`, when a host is out of range, or when hosts are mutually
    /// unreachable — the same invariants [`RoutedUnderlay::new`]
    /// establishes.
    pub fn from_parts(graph: Graph, apsp: Apsp, host_nodes: Vec<NodeId>) -> Self {
        assert!(!host_nodes.is_empty(), "need at least one host");
        assert_eq!(
            apsp.num_nodes(),
            graph.num_nodes(),
            "APSP table does not match the graph"
        );
        for &h in &host_nodes {
            assert!(h.idx() < graph.num_nodes());
        }
        for &h in &host_nodes[1..] {
            assert!(
                apsp.dist_ms(host_nodes[0], h).is_finite(),
                "host {h} unreachable"
            );
        }
        Self {
            graph: Arc::new(graph),
            routes: Routes::Dense(apsp),
            host_nodes,
        }
    }

    /// Build with a memory-bounded [`OnDemandRouter`] instead of the
    /// dense matrix: per-source Dijkstra rows computed lazily and kept
    /// in an LRU of at most `capacity` rows (`None` for the default
    /// ~64 MiB budget). With `persist_key`, rows round-trip through the
    /// global artifact cache — only sensible for graphs small enough
    /// that a full row set on disk is acceptable.
    ///
    /// Memory is `O(capacity · V)`; no `O(V^2)` structure is ever
    /// materialized.
    ///
    /// # Panics
    /// Panics when a host is out of range or hosts are mutually
    /// unreachable, as [`RoutedUnderlay::new`] does (checked from one
    /// routing row, not a full matrix).
    pub fn on_demand(
        graph: Arc<Graph>,
        host_nodes: Vec<NodeId>,
        capacity: Option<usize>,
        persist_key: Option<KeyHasher>,
    ) -> Self {
        assert!(!host_nodes.is_empty(), "need at least one host");
        for &h in &host_nodes {
            assert!(h.idx() < graph.num_nodes());
        }
        let mut router = OnDemandRouter::new(Arc::clone(&graph), capacity);
        if let Some(key) = persist_key {
            router = router.with_row_persistence(key);
        }
        let row0 = router.row(host_nodes[0]);
        for &h in &host_nodes[1..] {
            assert!(row0.dist_ms(h).is_finite(), "host {h} unreachable");
        }
        Self {
            graph,
            routes: Routes::OnDemand(Arc::new(router)),
            host_nodes,
        }
    }

    /// Graph nodes backing the hosts, in host-id order (for the
    /// artifact cache).
    pub fn host_nodes(&self) -> &[NodeId] {
        &self.host_nodes
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The routing oracle answering distance/path queries.
    pub fn routes(&self) -> &dyn RouteProvider {
        match &self.routes {
            Routes::Dense(a) => a,
            Routes::OnDemand(r) => r.as_ref(),
        }
    }

    /// The dense routing table, when this underlay was built with one
    /// (`None` for on-demand underlays, which never materialize it).
    pub fn apsp(&self) -> Option<&Apsp> {
        match &self.routes {
            Routes::Dense(a) => Some(a),
            Routes::OnDemand(_) => None,
        }
    }

    /// The on-demand router, when this underlay was built with one
    /// (for LRU hit/miss/residency stats).
    pub fn router(&self) -> Option<&OnDemandRouter> {
        match &self.routes {
            Routes::Dense(_) => None,
            Routes::OnDemand(r) => Some(r),
        }
    }

    /// Graph node backing host `h`.
    pub fn node_of(&self, h: HostId) -> NodeId {
        self.host_nodes[h.idx()]
    }

    /// Router-level hop count between two hosts.
    pub fn hops(&self, a: HostId, b: HostId) -> usize {
        self.routes().hop_count(self.node_of(a), self.node_of(b))
    }
}

impl Underlay for RoutedUnderlay {
    fn num_hosts(&self) -> usize {
        self.host_nodes.len()
    }

    fn rtt_ms(&self, a: HostId, b: HostId) -> Millis {
        2.0 * self.routes().dist_ms(self.node_of(a), self.node_of(b))
    }

    fn one_way_ms(&self, a: HostId, b: HostId) -> Millis {
        self.routes().dist_ms(self.node_of(a), self.node_of(b))
    }

    fn path_loss(&self, a: HostId, b: HostId) -> f64 {
        let mut pass = 1.0;
        for e in self
            .routes()
            .path_edges(&self.graph, self.node_of(a), self.node_of(b))
        {
            pass *= 1.0 - self.graph.edge(e).attrs.loss;
        }
        1.0 - pass
    }

    fn path_edges(&self, a: HostId, b: HostId) -> Option<Vec<EdgeId>> {
        Some(
            self.routes()
                .path_edges(&self.graph, self.node_of(a), self.node_of(b)),
        )
    }

    fn num_links(&self) -> usize {
        self.graph.num_edges()
    }

    fn link_specs(&self) -> Vec<crate::dataplane::LinkSpec> {
        self.graph
            .edges()
            .map(|(_, e)| crate::dataplane::LinkSpec {
                delay_ms: e.attrs.delay_ms,
                bandwidth_mbps: e.attrs.bandwidth_mbps,
            })
            .collect()
    }
}

/// Hierarchical O(1) distance oracle over a sharded power-law underlay
/// (`vdm_topology::shard`), for 100k+-host sharded runs.
///
/// Routing is gateway routing: a packet climbs from its host to the
/// shard gateway, rides the gateway backbone, and descends — so the
/// one-way delay decomposes as `up[a] + core[shard(a)][shard(b)] + up[b]`
/// (`core` zero within a shard). Every query is O(1) with
/// O(hosts + shards²) memory: no dense matrix, no per-source routing
/// rows, no LRU to thrash at 100k hosts. There are no modelled physical
/// links (`path_edges` is `None` — per-link stress and the queueing data
/// plane stay with [`RoutedUnderlay`]), no jitter, and no path loss.
///
/// The minimum off-diagonal `core` entry lower-bounds every cross-shard
/// delay, which makes [`ShardedUnderlay::min_cross_shard_delay_ms`] the
/// lookahead oracle for `crate::shard::ShardedEngine`.
pub struct ShardedUnderlay {
    /// Per host: delay to its shard gateway, ms.
    up_ms: Vec<Millis>,
    /// Flattened `S × S` gateway backbone delay table, ms.
    core_ms: Vec<Millis>,
    /// Host-id boundaries per shard (`S + 1` entries).
    bounds: Vec<u32>,
    min_cross_ms: Millis,
}

impl ShardedUnderlay {
    /// Build from a generated sharded topology.
    pub fn new(t: &vdm_topology::shard::ShardedPowerLaw) -> Self {
        Self::from_parts(t.up_ms.clone(), t.core_ms.clone(), t.host_bounds.clone())
    }

    /// Build from the raw decomposition (tests).
    ///
    /// # Panics
    /// Panics when dimensions disagree, a delay is negative/non-finite,
    /// or the core diagonal is non-zero.
    pub fn from_parts(up_ms: Vec<Millis>, core_ms: Vec<Millis>, bounds: Vec<u32>) -> Self {
        assert!(bounds.len() >= 2 && bounds[0] == 0);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let s = bounds.len() - 1;
        assert_eq!(core_ms.len(), s * s, "core table must be S × S");
        assert_eq!(
            up_ms.len(),
            *bounds.last().unwrap() as usize,
            "one up-cost per host"
        );
        assert!(up_ms.iter().all(|&u| u.is_finite() && u >= 0.0));
        let mut min_cross = f64::INFINITY;
        for a in 0..s {
            for b in 0..s {
                let c = core_ms[a * s + b];
                if a == b {
                    assert!(c == 0.0, "core diagonal must be zero");
                } else {
                    assert!(c.is_finite() && c > 0.0, "backbone disconnected");
                    min_cross = min_cross.min(c);
                }
            }
        }
        Self {
            up_ms,
            core_ms,
            bounds,
            min_cross_ms: min_cross,
        }
    }

    /// Shard owning host `h`.
    #[inline]
    pub fn shard_of(&self, h: HostId) -> u32 {
        (self.bounds.partition_point(|&b| b <= h.0) - 1) as u32
    }

    /// Host-id boundaries per shard (for building a matching
    /// `crate::shard::ShardMap`).
    pub fn shard_bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Lower bound on any cross-shard one-way delay, ms (`INFINITY`
    /// for a single shard): the conservative-DES lookahead.
    pub fn min_cross_shard_delay_ms(&self) -> Millis {
        self.min_cross_ms
    }
}

impl Underlay for ShardedUnderlay {
    fn num_hosts(&self) -> usize {
        *self.bounds.last().unwrap() as usize
    }

    fn rtt_ms(&self, a: HostId, b: HostId) -> Millis {
        2.0 * self.one_way_ms(a, b)
    }

    fn one_way_ms(&self, a: HostId, b: HostId) -> Millis {
        if a == b {
            return 0.0;
        }
        let (sa, sb) = (self.shard_of(a), self.shard_of(b));
        let s = self.num_shards();
        self.up_ms[a.idx()] + self.core_ms[sa as usize * s + sb as usize] + self.up_ms[b.idx()]
    }

    fn path_loss(&self, _a: HostId, _b: HostId) -> f64 {
        0.0
    }

    fn path_edges(&self, _a: HostId, _b: HostId) -> Option<Vec<EdgeId>> {
        None
    }
}

/// Per-host "lazy responder" profile: with probability `prob`, a packet
/// *received by* this host is delayed by up to `extra_ms` more.
///
/// This models the paper's observation that "sometimes PlanetLab nodes are
/// lazy to answer the information request. So, the maximum value may not
/// reflect algorithmic complexity" (§5.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyProfile {
    /// Probability a given packet hits the slow path.
    pub prob: f64,
    /// Maximum extra delay, ms (drawn uniformly).
    pub extra_ms: Millis,
}

/// Host-to-host metric space with jitter and per-path loss.
pub struct LatencySpace {
    n: usize,
    /// Flattened symmetric nominal RTT matrix, ms.
    rtt: Vec<f32>,
    /// Flattened symmetric per-path loss matrix.
    loss: Vec<f32>,
    /// Multiplicative jitter amplitude: each sample is scaled by a factor
    /// uniform in `[1 - j, 1 + j]`.
    jitter_frac: f64,
    lazy: Vec<LazyProfile>,
}

impl LatencySpace {
    /// Build from a full symmetric RTT matrix (ms). Loss starts at zero,
    /// jitter at zero.
    ///
    /// # Panics
    /// Panics if the matrix is not square/symmetric or has non-positive
    /// off-diagonal entries.
    pub fn from_rtt_matrix(rtt: &[Vec<Millis>]) -> Self {
        let n = rtt.len();
        assert!(n > 0);
        let mut flat = vec![0.0f32; n * n];
        for (i, row) in rtt.iter().enumerate() {
            assert_eq!(row.len(), n, "RTT matrix must be square");
            for (j, &v) in row.iter().enumerate() {
                if i == j {
                    assert!(v == 0.0, "diagonal must be zero");
                } else {
                    assert!(v > 0.0, "RTT {i}->{j} must be positive");
                    assert!((v - rtt[j][i]).abs() < 1e-6, "RTT matrix must be symmetric");
                }
                flat[i * n + j] = v as f32;
            }
        }
        Self {
            n,
            rtt: flat,
            loss: vec![0.0; n * n],
            jitter_frac: 0.0,
            lazy: vec![LazyProfile::default(); n],
        }
    }

    /// Set the same loss probability on every path.
    pub fn with_uniform_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss));
        for (i, v) in self.loss.iter_mut().enumerate() {
            let (a, b) = (i / self.n, i % self.n);
            *v = if a == b { 0.0 } else { loss as f32 };
        }
        self
    }

    /// Set a full per-path loss matrix.
    pub fn with_loss_matrix(mut self, loss: &[Vec<f64>]) -> Self {
        assert_eq!(loss.len(), self.n);
        for (i, row) in loss.iter().enumerate() {
            assert_eq!(row.len(), self.n);
            for (j, &v) in row.iter().enumerate() {
                assert!((0.0..1.0).contains(&v));
                self.loss[i * self.n + j] = v as f32;
            }
        }
        self
    }

    /// Set the multiplicative jitter amplitude (`0.1` = ±10 %).
    pub fn with_jitter(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac));
        self.jitter_frac = frac;
        self
    }

    /// Mark a host as a lazy responder.
    pub fn set_lazy(&mut self, h: HostId, profile: LazyProfile) {
        self.lazy[h.idx()] = profile;
    }

    /// Serialize for the artifact cache (see `vdm_topology::cache`):
    /// the full RTT/loss matrices, jitter amplitude, and lazy profiles.
    pub fn to_bytes(&self) -> Vec<u8> {
        use vdm_topology::cache::codec::ByteWriter;
        let mut w = ByteWriter::with_capacity(32 + self.rtt.len() * 8 + self.lazy.len() * 16);
        w.put_u64(self.n as u64);
        w.put_f32s(&self.rtt);
        w.put_f32s(&self.loss);
        w.put_f64(self.jitter_frac);
        w.put_u64(self.lazy.len() as u64);
        for l in &self.lazy {
            w.put_f64(l.prob);
            w.put_f64(l.extra_ms);
        }
        w.into_bytes()
    }

    /// Decode a [`LatencySpace::to_bytes`] artifact; `None` on any
    /// corruption or dimension mismatch (treated as a cache miss).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        use vdm_topology::cache::codec::ByteReader;
        let mut r = ByteReader::new(bytes);
        let n = usize::try_from(r.get_u64()?).ok()?;
        let rtt = r.get_f32s()?;
        let loss = r.get_f32s()?;
        if rtt.len() != n.checked_mul(n)? || loss.len() != rtt.len() {
            return None;
        }
        let jitter_frac = r.get_f64()?;
        if !(0.0..1.0).contains(&jitter_frac) {
            return None;
        }
        let m = usize::try_from(r.get_u64()?).ok()?;
        if m != n {
            return None;
        }
        let mut lazy = Vec::with_capacity(m);
        for _ in 0..m {
            lazy.push(LazyProfile {
                prob: r.get_f64()?,
                extra_ms: r.get_f64()?,
            });
        }
        r.at_end().then_some(Self {
            n,
            rtt,
            loss,
            jitter_frac,
            lazy,
        })
    }
}

impl Underlay for LatencySpace {
    fn num_hosts(&self) -> usize {
        self.n
    }

    fn rtt_ms(&self, a: HostId, b: HostId) -> Millis {
        self.rtt[a.idx() * self.n + b.idx()] as Millis
    }

    fn sample_one_way_ms(&self, a: HostId, b: HostId, rng: &mut dyn RngCore) -> Millis {
        let mut d = self.one_way_ms(a, b);
        if self.jitter_frac > 0.0 {
            let f = 1.0 + self.jitter_frac * (rng.gen::<f64>() * 2.0 - 1.0);
            d *= f;
        }
        let lazy = self.lazy[b.idx()];
        if lazy.prob > 0.0 && rng.gen::<f64>() < lazy.prob {
            d += rng.gen::<f64>() * lazy.extra_ms;
        }
        d.max(0.001)
    }

    fn path_loss(&self, a: HostId, b: HostId) -> f64 {
        self.loss[a.idx() * self.n + b.idx()] as f64
    }

    fn path_edges(&self, _a: HostId, _b: HostId) -> Option<Vec<EdgeId>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use vdm_topology::graph::{LinkAttrs, NodeKind};

    /// host0 - r0 - r1 - host1, all 1 ms links; r0-r1 has 10 % loss.
    fn small_routed() -> RoutedUnderlay {
        let mut g = Graph::new();
        let h0 = g.add_node(NodeKind::Host);
        let r0 = g.add_node(NodeKind::Stub);
        let r1 = g.add_node(NodeKind::Stub);
        let h1 = g.add_node(NodeKind::Host);
        g.add_edge(h0, r0, LinkAttrs::delay(1.0));
        g.add_edge(
            r0,
            r1,
            LinkAttrs {
                delay_ms: 1.0,
                loss: 0.1,
                bandwidth_mbps: 100.0,
            },
        );
        g.add_edge(r1, h1, LinkAttrs::delay(1.0));
        RoutedUnderlay::new(g, vec![h0, h1])
    }

    #[test]
    fn routed_distances_and_paths() {
        let u = small_routed();
        assert_eq!(u.num_hosts(), 2);
        assert_eq!(u.num_links(), 3);
        let (a, b) = (HostId(0), HostId(1));
        assert!((u.one_way_ms(a, b) - 3.0).abs() < 1e-6);
        assert!((u.rtt_ms(a, b) - 6.0).abs() < 1e-6);
        assert_eq!(u.path_edges(a, b).unwrap().len(), 3);
        assert_eq!(u.hops(a, b), 3);
        assert!((u.path_loss(a, b) - 0.1).abs() < 1e-9);
        assert_eq!(u.path_loss(a, a), 0.0);
    }

    /// Same topology as [`small_routed`] but routed on demand: every
    /// `Underlay` answer must match the dense oracle bitwise, with no
    /// dense matrix ever built.
    #[test]
    fn on_demand_matches_dense_underlay() {
        let dense = small_routed();
        let od = RoutedUnderlay::on_demand(
            Arc::new(dense.graph().clone()),
            dense.host_nodes().to_vec(),
            Some(2),
            None,
        );
        assert!(od.apsp().is_none(), "on-demand must not materialize APSP");
        assert!(dense.apsp().is_some());
        for a in 0..2u32 {
            for b in 0..2u32 {
                let (a, b) = (HostId(a), HostId(b));
                assert_eq!(od.rtt_ms(a, b).to_bits(), dense.rtt_ms(a, b).to_bits());
                assert_eq!(od.path_edges(a, b), dense.path_edges(a, b));
                assert_eq!(od.hops(a, b), dense.hops(a, b));
                assert_eq!(od.path_loss(a, b), dense.path_loss(a, b));
            }
        }
        let stats = od.router().unwrap().stats();
        assert!(stats.misses >= 1 && stats.resident <= 2);
    }

    #[test]
    fn latency_space_basics() {
        let rtt = vec![
            vec![0.0, 10.0, 20.0],
            vec![10.0, 0.0, 15.0],
            vec![20.0, 15.0, 0.0],
        ];
        let ls = LatencySpace::from_rtt_matrix(&rtt).with_uniform_loss(0.05);
        assert_eq!(ls.num_hosts(), 3);
        assert_eq!(ls.rtt_ms(HostId(0), HostId(2)), 20.0);
        assert_eq!(ls.one_way_ms(HostId(0), HostId(2)), 10.0);
        assert_eq!(ls.path_loss(HostId(1), HostId(2)), 0.05_f32 as f64);
        assert_eq!(ls.path_loss(HostId(1), HostId(1)), 0.0);
        assert!(ls.path_edges(HostId(0), HostId(1)).is_none());
        assert_eq!(ls.num_links(), 0);
    }

    #[test]
    fn jitter_stays_in_band() {
        let rtt = vec![vec![0.0, 100.0], vec![100.0, 0.0]];
        let ls = LatencySpace::from_rtt_matrix(&rtt).with_jitter(0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..200 {
            let d = ls.sample_one_way_ms(HostId(0), HostId(1), &mut rng);
            assert!((40.0..=60.0).contains(&d), "sample {d} out of ±20 % band");
            seen_low |= d < 48.0;
            seen_high |= d > 52.0;
        }
        assert!(seen_low && seen_high, "jitter should actually vary");
    }

    #[test]
    fn lazy_hosts_add_tail_latency() {
        let rtt = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
        let mut ls = LatencySpace::from_rtt_matrix(&rtt);
        ls.set_lazy(
            HostId(1),
            LazyProfile {
                prob: 1.0,
                extra_ms: 500.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        // Toward the lazy host: inflated.
        let d = ls.sample_one_way_ms(HostId(0), HostId(1), &mut rng);
        assert!(d > 5.0);
        // Away from the lazy host: nominal.
        let d2 = ls.sample_one_way_ms(HostId(1), HostId(0), &mut rng);
        assert!((d2 - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let rtt = vec![vec![0.0, 10.0], vec![11.0, 0.0]];
        let _ = LatencySpace::from_rtt_matrix(&rtt);
    }

    #[test]
    fn sampling_default_is_nominal() {
        let u = small_routed();
        let mut rng = StdRng::seed_from_u64(3);
        let d = u.sample_one_way_ms(HostId(0), HostId(1), &mut rng);
        assert!((d - 3.0).abs() < 1e-6);
    }
}
