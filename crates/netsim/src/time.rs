//! Simulated time as integer microseconds.
//!
//! Floating-point clocks accumulate rounding and make event ordering
//! platform-dependent; the engine therefore keeps time in `u64`
//! microseconds and converts to/from `f64` milliseconds only at the API
//! boundary (all latencies in this workspace are expressed in ms).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::{Duration, Instant};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// Far future; no event should be scheduled here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From milliseconds (rounded to the nearest microsecond; negative or
    /// NaN durations clamp to zero).
    pub fn from_ms(ms: f64) -> Self {
        if ms.is_nan() || ms <= 0.0 {
            return SimTime(0);
        }
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// As fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// From a wall-clock [`Duration`] (truncated to whole microseconds
    /// — a real clock must never round *forward* past a deadline it has
    /// not reached). Saturates one tick *below* [`SimTime::MAX`]: the
    /// sentinel means "disabled timer / far future" and must never be
    /// produced from a real clock, however absurd the elapsed time.
    pub fn from_duration(d: Duration) -> Self {
        let us = d.as_micros();
        SimTime(u64::try_from(us).unwrap_or(u64::MAX).min(u64::MAX - 1))
    }

    /// As a wall-clock [`Duration`], or `None` for the [`SimTime::MAX`]
    /// far-future sentinel (a daemon must not sleep toward it).
    pub fn to_duration(self) -> Option<Duration> {
        if self == SimTime::MAX {
            None
        } else {
            Some(Duration::from_micros(self.0))
        }
    }
}

/// Monotonic wall-clock → [`SimTime`] mapper for real runtimes.
///
/// Protocol time starts at [`SimTime::ZERO`] when the clock is created
/// and advances with [`Instant`], which the OS guarantees monotonic —
/// but the mapper re-enforces monotonicity itself (`high` watermark) so
/// a platform whose `Instant` steps backward (or a caller replaying
/// stamped timestamps out of order) still yields non-decreasing
/// protocol time, which the engine-facing state machines require.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
    high: SimTime,
}

impl WallClock {
    /// Start protocol time now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            high: SimTime::ZERO,
        }
    }

    /// Current protocol time (non-decreasing across calls; never the
    /// [`SimTime::MAX`] sentinel).
    pub fn now(&mut self) -> SimTime {
        self.map(Instant::now())
    }

    /// Map an externally captured instant (non-decreasing across
    /// calls; instants before the epoch or before the watermark clamp
    /// to the watermark).
    pub fn map(&mut self, at: Instant) -> SimTime {
        let t = SimTime::from_duration(at.saturating_duration_since(self.epoch));
        self.high = self.high.max(t);
        self.high
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

// Addition saturates: `SimTime::MAX` is the documented "far future /
// disabled timer" sentinel, and code like `deadline + grace` must stay
// at the sentinel instead of panicking (debug) or wrapping into the
// past (release). Subtraction still panics on underflow — a negative
// duration is always a logic bug, and there is no sentinel to honor.
impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(1.5).0, 1500);
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_ms(0.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(f64::NAN), SimTime::ZERO);
        let t = SimTime::from_ms(123.456);
        assert!((t.as_ms() - 123.456).abs() < 1e-3);
        assert!((SimTime::from_secs(5).as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(4.0);
        assert_eq!((a + b).as_ms(), 14.0);
        assert_eq!((a - b).as_ms(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ms(), 14.0);
    }

    #[test]
    fn add_saturates_at_the_far_future_sentinel() {
        // MAX is the "disabled timer" sentinel: offsets added near it
        // must pin to MAX, not wrap around into the past.
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimTime::MAX, SimTime::MAX);
        assert_eq!(SimTime(u64::MAX - 10) + SimTime(20), SimTime::MAX);
        let mut t = SimTime(u64::MAX - 1);
        t += SimTime(5);
        assert_eq!(t, SimTime::MAX);
        // Far from the sentinel, addition is exact.
        assert_eq!(SimTime(u64::MAX - 10) + SimTime(10), SimTime::MAX);
        assert_eq!(SimTime(u64::MAX - 10) + SimTime(9), SimTime(u64::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ms(1.0) - SimTime::from_ms(2.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(2.0));
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    fn duration_conversion_truncates_toward_zero() {
        // Sub-microsecond remainders are dropped, never rounded up: a
        // real clock must not report a deadline as reached early.
        assert_eq!(SimTime::from_duration(Duration::from_nanos(1_999)).0, 1);
        assert_eq!(SimTime::from_duration(Duration::from_nanos(999)).0, 0);
        assert_eq!(SimTime::from_duration(Duration::from_millis(3)).0, 3_000);
        assert_eq!(SimTime::from_duration(Duration::ZERO), SimTime::ZERO);
    }

    #[test]
    fn duration_round_trips_below_the_sentinel() {
        let t = SimTime::from_secs(90);
        assert_eq!(t.to_duration(), Some(Duration::from_secs(90)));
        assert_eq!(SimTime::from_duration(t.to_duration().unwrap()), t);
        assert_eq!(SimTime(0).to_duration(), Some(Duration::ZERO));
    }

    #[test]
    fn real_clocks_never_produce_the_far_future_sentinel() {
        // Even an absurd wall-clock duration saturates one microsecond
        // below MAX, so "disabled timer" stays unambiguous.
        let absurd = Duration::from_secs(u64::MAX);
        let t = SimTime::from_duration(absurd);
        assert!(t < SimTime::MAX);
        assert_eq!(t, SimTime(u64::MAX - 1));
        // And the sentinel itself refuses to become a sleep duration.
        assert_eq!(SimTime::MAX.to_duration(), None);
        assert!(SimTime(u64::MAX - 1).to_duration().is_some());
    }

    #[test]
    fn wall_clock_is_monotone_under_backward_steps() {
        let mut clock = WallClock::new();
        let epoch = clock.epoch;
        let t1 = clock.map(epoch + Duration::from_millis(50));
        assert_eq!(t1, SimTime::from_ms(50.0));
        // A step backward (or an instant captured before the epoch)
        // clamps to the watermark instead of rewinding protocol time.
        let t2 = clock.map(epoch + Duration::from_millis(20));
        assert_eq!(t2, t1);
        let t3 = clock.map(epoch);
        assert_eq!(t3, t1);
        // Forward progress resumes once the clock passes the watermark.
        let t4 = clock.map(epoch + Duration::from_millis(80));
        assert_eq!(t4, SimTime::from_ms(80.0));
        // Live reads are monotone too and never the sentinel.
        let a = clock.now();
        let b = clock.now();
        assert!(a <= b && b < SimTime::MAX);
    }
}
