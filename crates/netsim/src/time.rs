//! Simulated time as integer microseconds.
//!
//! Floating-point clocks accumulate rounding and make event ordering
//! platform-dependent; the engine therefore keeps time in `u64`
//! microseconds and converts to/from `f64` milliseconds only at the API
//! boundary (all latencies in this workspace are expressed in ms).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// Far future; no event should be scheduled here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From milliseconds (rounded to the nearest microsecond; negative or
    /// NaN durations clamp to zero).
    pub fn from_ms(ms: f64) -> Self {
        if ms.is_nan() || ms <= 0.0 {
            return SimTime(0);
        }
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// As fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

// Addition saturates: `SimTime::MAX` is the documented "far future /
// disabled timer" sentinel, and code like `deadline + grace` must stay
// at the sentinel instead of panicking (debug) or wrapping into the
// past (release). Subtraction still panics on underflow — a negative
// duration is always a logic bug, and there is no sentinel to honor.
impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(1.5).0, 1500);
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_ms(0.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(f64::NAN), SimTime::ZERO);
        let t = SimTime::from_ms(123.456);
        assert!((t.as_ms() - 123.456).abs() < 1e-3);
        assert!((SimTime::from_secs(5).as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(4.0);
        assert_eq!((a + b).as_ms(), 14.0);
        assert_eq!((a - b).as_ms(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ms(), 14.0);
    }

    #[test]
    fn add_saturates_at_the_far_future_sentinel() {
        // MAX is the "disabled timer" sentinel: offsets added near it
        // must pin to MAX, not wrap around into the past.
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimTime::MAX, SimTime::MAX);
        assert_eq!(SimTime(u64::MAX - 10) + SimTime(20), SimTime::MAX);
        let mut t = SimTime(u64::MAX - 1);
        t += SimTime(5);
        assert_eq!(t, SimTime::MAX);
        // Far from the sentinel, addition is exact.
        assert_eq!(SimTime(u64::MAX - 10) + SimTime(10), SimTime::MAX);
        assert_eq!(SimTime(u64::MAX - 10) + SimTime(9), SimTime(u64::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ms(1.0) - SimTime::from_ms(2.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(2.0));
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }
}
