//! The discrete-event engine.
//!
//! A single-threaded, deterministic event loop: the driver (in
//! `vdm-overlay`) implements [`World`] and receives callbacks for message
//! deliveries, host timers, and driver-scheduled external events (joins,
//! leaves, measurements). All ties are broken by a monotonically
//! increasing sequence number, so runs are bit-reproducible.
//!
//! Message semantics follow the paper's setup:
//!
//! * [`SendClass::Control`] messages (probes, join/connection messages,
//!   leave notifications) are delivered reliably — the protocols exchange
//!   them over connection-oriented transport, and the paper's loss metric
//!   counts only data packets (Eq. 3.7).
//! * [`SendClass::Data`] packets (stream chunks) are dropped independently
//!   with the underlay's path-loss probability, and of course never reach
//!   anyone when a node has no parent — churn-induced outage, the dominant
//!   loss term in Chapter 3 ("all packet loss are caused by disconnection
//!   of churn").

use crate::dataplane::{DataPlane, DataPlaneConfig};
use crate::faults::FaultPlan;
use crate::shard::{OutboundEvent, ShardCtx};
use crate::time::SimTime;
use crate::underlay::{HostId, Underlay};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use vdm_trace::{TraceEvent, Tracer};

/// Class of a message for loss handling and overhead accounting
/// (Eq. 3.6: overhead = maintenance messages / data messages).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendClass {
    /// Protocol maintenance traffic; reliable.
    Control,
    /// Stream payload; subject to path loss.
    Data,
}

/// Callbacks the engine drives.
pub trait World {
    /// Message type exchanged between hosts.
    type Msg;

    /// A message arrived at `to`.
    fn on_deliver(&mut self, eng: &mut Engine<Self::Msg>, to: HostId, from: HostId, msg: Self::Msg);

    /// A host timer fired.
    fn on_timer(&mut self, eng: &mut Engine<Self::Msg>, host: HostId, token: u64);

    /// A driver-scheduled external event fired.
    fn on_external(&mut self, eng: &mut Engine<Self::Msg>, token: u64);
}

enum EventKind<M> {
    Deliver {
        to: HostId,
        from: HostId,
        msg: M,
    },
    /// A data packet crossing physical links hop by hop (queueing data
    /// plane only): `next` indexes the link it is about to enter.
    Hop {
        to: HostId,
        from: HostId,
        msg: M,
        path: std::sync::Arc<[vdm_topology::EdgeId]>,
        next: usize,
    },
    Timer {
        host: HostId,
        token: u64,
    },
    External {
        token: u64,
    },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Traffic counters, reset-able by the driver between measurement slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Control messages sent.
    pub control_sent: u64,
    /// Data packets sent (per overlay hop).
    pub data_sent: u64,
    /// Data packets dropped by path loss.
    pub data_dropped: u64,
    /// Data packets dropped by router buffer overflow (queueing data
    /// plane only).
    pub data_congestion_dropped: u64,
    /// Messages delivered (any class).
    pub delivered: u64,
    /// Messages dropped by the fault layer (blackouts and injected
    /// message drops; any class).
    pub faults_dropped: u64,
    /// Messages duplicated by the fault layer.
    pub faults_duplicated: u64,
    /// Messages given extra delay by the fault layer (reordering or
    /// delay spikes).
    pub faults_delayed: u64,
}

/// The event engine. Generic over the message type `M`.
pub struct Engine<M> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    underlay: Arc<dyn Underlay + Send + Sync>,
    rng: StdRng,
    counters: Counters,
    events_processed: u64,
    data_plane: Option<DataPlane>,
    fault_plan: Option<FaultPlan>,
    tracer: Tracer,
    /// Present only when this engine is one shard of a
    /// [`crate::shard::ShardedEngine`] with `S > 1`: sends to hosts
    /// owned by other shards are diverted into per-destination outboxes
    /// instead of the local heap.
    shard: Option<ShardCtx<M>>,
}

impl<M> Engine<M> {
    /// New engine over `underlay`, with all randomness derived from
    /// `seed`. Picks up the process-global [`Tracer`] (disabled unless
    /// a trace run installed one via `vdm_trace::set_global`).
    pub fn new(underlay: Arc<dyn Underlay + Send + Sync>, seed: u64) -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            underlay,
            rng: StdRng::seed_from_u64(seed ^ 0x656e_6769_6e65),
            counters: Counters::default(),
            events_processed: 0,
            data_plane: None,
            fault_plan: None,
            tracer: vdm_trace::global(),
            shard: None,
        }
    }

    /// The engine's trace handle. Protocol agents emit structured
    /// events through this; it is disabled (a no-op) by default.
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Replace the engine's tracer (tests use a ring-buffer tracer
    /// without touching the process-global one).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Install a fault-injection schedule. The plan's decisions draw on
    /// its own seeded RNG, so the engine's stream — and therefore any run
    /// without a plan — is unaffected.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Enable the NS-2-style queueing data plane: data packets pay
    /// serialization and queueing on every physical link of their route
    /// and are dropped on buffer overflow. Requires a routed underlay
    /// (one with physical links).
    pub fn enable_data_plane(&mut self, cfg: DataPlaneConfig) {
        assert!(
            self.shard.is_none(),
            "the queueing data plane is not supported on a sharded engine \
             (hop events cannot cross shard boundaries)"
        );
        let specs = self.underlay.link_specs();
        assert!(
            !specs.is_empty(),
            "the queueing data plane needs a routed underlay"
        );
        self.data_plane = Some(DataPlane::new(specs, cfg));
    }

    /// The data plane, if enabled (diagnostics).
    pub fn data_plane(&self) -> Option<&DataPlane> {
        self.data_plane.as_ref()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlay messages travel through.
    pub fn underlay(&self) -> &(dyn Underlay + Send + Sync) {
        &*self.underlay
    }

    /// Shared handle to the underlay.
    pub fn underlay_arc(&self) -> Arc<dyn Underlay + Send + Sync> {
        Arc::clone(&self.underlay)
    }

    /// Traffic counters since construction or the last
    /// [`Engine::take_counters`].
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Read and reset the traffic counters.
    pub fn take_counters(&mut self) -> Counters {
        std::mem::take(&mut self.counters)
    }

    /// Total events processed (for engine benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Engine-owned RNG (used by drivers for scenario randomness so that
    /// a single seed governs the whole run).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, kind }));
    }

    /// Schedule a delivery, diverting it into the cross-shard outbox when
    /// the destination lives on another shard.
    fn deliver_or_forward(&mut self, at: SimTime, to: HostId, from: HostId, msg: M) {
        if let Some(ctx) = self.shard.as_mut() {
            let dst = ctx.map.shard_of(to);
            if dst != ctx.id {
                let seq = ctx.sent;
                ctx.sent += 1;
                ctx.outbox[dst as usize].push(OutboundEvent {
                    at,
                    to,
                    from,
                    msg,
                    seq,
                });
                return;
            }
        }
        self.push(at, EventKind::Deliver { to, from, msg });
    }

    /// Make this engine shard `ctx.id` of a sharded run (see
    /// `crate::shard`). Must happen before any event is scheduled.
    pub(crate) fn install_shard_ctx(&mut self, ctx: ShardCtx<M>) {
        assert!(
            self.heap.is_empty() && self.seq == 0,
            "install shards first"
        );
        assert!(
            self.data_plane.is_none(),
            "the queueing data plane is not supported on a sharded engine"
        );
        self.shard = Some(ctx);
    }

    /// Drain the per-destination cross-shard outboxes (empty between
    /// windows; only meaningful on a sharded engine).
    pub(crate) fn take_outboxes(&mut self) -> Vec<Vec<OutboundEvent<M>>> {
        let ctx = self.shard.as_mut().expect("not a sharded engine");
        let shards = ctx.outbox.len();
        std::mem::replace(&mut ctx.outbox, (0..shards).map(|_| Vec::new()).collect())
    }

    /// Inject a delivery that originated on another shard. The lookahead
    /// window contract guarantees `at` has not passed yet; violating it
    /// would silently warp the event forward (`push` clamps), so it is a
    /// hard error instead.
    pub(crate) fn inject_remote(&mut self, at: SimTime, to: HostId, from: HostId, msg: M) {
        assert!(
            at >= self.now,
            "cross-shard event at {at} is before the local clock {} — \
             the lookahead bound was violated",
            self.now
        );
        self.push(at, EventKind::Deliver { to, from, msg });
    }

    /// Time of the earliest pending event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.at)
    }

    /// Send `msg` from `from` to `to`. Control messages are reliable;
    /// data packets may be dropped by path loss. With a fault plan
    /// installed, messages of either class may additionally be dropped,
    /// duplicated or delayed by the fault layer.
    ///
    /// # Return contract
    ///
    /// Returns `true` iff the *primary* copy was scheduled: a fault drop
    /// or a path-loss drop of the original returns `false`. On multi-hop
    /// data-plane routes "scheduled" means the packet entered its first
    /// link — a later congestion drop surfaces only in
    /// [`Counters::data_congestion_dropped`]. A fault-layer duplicate is
    /// an independent copy: its loss and congestion fate is sampled
    /// separately and shows up exclusively in the counters, never in the
    /// return value (the original may be reported dropped while its
    /// duplicate still arrives, and vice versa).
    pub fn send(&mut self, from: HostId, to: HostId, msg: M, class: SendClass) -> bool
    where
        M: Clone,
    {
        assert!(from != to, "host {from} sending to itself");
        #[cfg(debug_assertions)]
        if let Some(ctx) = self.shard.as_ref() {
            debug_assert_eq!(
                ctx.map.shard_of(from),
                ctx.id,
                "host {from} sent from shard {} but lives elsewhere",
                ctx.id
            );
        }
        match class {
            SendClass::Control => self.counters.control_sent += 1,
            SendClass::Data => self.counters.data_sent += 1,
        }
        // Fault layer first: blackouts and message faults apply to both
        // classes — surviving unreliable *control* delivery is exactly
        // what chaos runs exercise. Without a plan this is one branch
        // and consumes no randomness, so chaos-off runs are untouched.
        let mut fault_extra = SimTime::ZERO;
        let mut fault_dup = None;
        if let Some(plan) = self.fault_plan.as_mut() {
            let fate = plan.fate(self.now, from, to);
            if fate.dropped {
                self.counters.faults_dropped += 1;
                if class == SendClass::Data {
                    self.counters.data_dropped += 1;
                }
                self.tracer.emit(self.now.0, || TraceEvent::FaultApplied {
                    fate: "drop",
                    from: from.0,
                    to: to.0,
                    extra_us: 0,
                });
                return false;
            }
            if fate.extra_delay > SimTime::ZERO {
                self.counters.faults_delayed += 1;
                fault_extra = fate.extra_delay;
                self.tracer.emit(self.now.0, || TraceEvent::FaultApplied {
                    fate: "delay",
                    from: from.0,
                    to: to.0,
                    extra_us: fate.extra_delay.0,
                });
            }
            if let Some(extra) = fate.duplicate {
                self.counters.faults_duplicated += 1;
                fault_dup = Some(extra);
                self.tracer.emit(self.now.0, || TraceEvent::FaultApplied {
                    fate: "dup",
                    from: from.0,
                    to: to.0,
                    extra_us: extra.0,
                });
            }
        }
        let mut primary_lost = false;
        if class == SendClass::Data {
            let p = self.underlay.path_loss(from, to);
            // Each copy crosses the lossy path independently: sample the
            // original's fate, then — only when the fault layer produced
            // a duplicate — the duplicate's. Chaos-off runs draw exactly
            // one sample, exactly as before.
            primary_lost = p > 0.0 && self.rng.gen::<f64>() < p;
            if fault_dup.is_some() && p > 0.0 && self.rng.gen::<f64>() < p {
                self.counters.data_dropped += 1;
                fault_dup = None;
            }
            if primary_lost {
                self.counters.data_dropped += 1;
                if fault_dup.is_none() {
                    return false;
                }
            }
            // Queueing data plane: route hop by hop over the link
            // calendars (one event per link crossing, so every link is
            // charged in true arrival order). A fault-injected extra
            // delay shifts the copy's entry into its first link;
            // duplicates enter separately and pay queueing like any
            // other packet. The duplicate's own congestion fate is
            // deliberately not reflected in the return value (see the
            // return contract); it lands in the counters via
            // `advance_hop`.
            if self.data_plane.is_some() {
                if let Some(path) = self.underlay.path_edges(from, to) {
                    let path: std::sync::Arc<[vdm_topology::EdgeId]> = path.into();
                    if let Some(extra) = fault_dup {
                        let _ = self.enter_hop_path(
                            to,
                            from,
                            msg.clone(),
                            path.clone(),
                            fault_extra + extra,
                        );
                    }
                    if primary_lost {
                        return false;
                    }
                    return self.enter_hop_path(to, from, msg, path, fault_extra);
                }
            }
        }
        let mut delay = SimTime::from_ms(self.underlay.sample_one_way_ms(from, to, &mut self.rng));
        if let Some(plan) = self.fault_plan.as_ref() {
            let f = plan.slowdown_factor(self.now, to);
            if f != 1.0 {
                let base = delay;
                delay = SimTime::from_ms(delay.as_ms() * f);
                self.tracer.emit(self.now.0, || TraceEvent::FaultApplied {
                    fate: "slowdown",
                    from: from.0,
                    to: to.0,
                    extra_us: delay.saturating_sub(base).0,
                });
            }
        }
        let at = self.now + delay + fault_extra;
        if let Some(extra) = fault_dup {
            self.deliver_or_forward(at + extra, to, from, msg.clone());
        }
        if primary_lost {
            // Only the duplicate survived path loss; it was scheduled
            // above, but the primary send still reports failure.
            return false;
        }
        self.deliver_or_forward(at, to, from, msg);
        true
    }

    /// Enter the queueing data plane for one packet copy. With no extra
    /// delay the packet transits the first link immediately — preserving
    /// event order (and byte-identity) for fault-free runs; with a
    /// fault-injected offset it enters link 0 at `now + offset` via a
    /// [`EventKind::Hop`] event, so the extra delay the fault layer
    /// charged (and counted in [`Counters::faults_delayed`]) is actually
    /// paid on the hop path too.
    fn enter_hop_path(
        &mut self,
        to: HostId,
        from: HostId,
        msg: M,
        path: std::sync::Arc<[vdm_topology::EdgeId]>,
        offset: SimTime,
    ) -> bool {
        if offset == SimTime::ZERO {
            self.advance_hop(to, from, msg, path, 0)
        } else {
            self.push(
                self.now + offset,
                EventKind::Hop {
                    to,
                    from,
                    msg,
                    path,
                    next: 0,
                },
            );
            true
        }
    }

    /// Move a data packet into link `path[next]` at the current time;
    /// schedules the next hop (or the final delivery) and returns
    /// whether the packet survived.
    fn advance_hop(
        &mut self,
        to: HostId,
        from: HostId,
        msg: M,
        path: std::sync::Arc<[vdm_topology::EdgeId]>,
        next: usize,
    ) -> bool {
        let dp = self
            .data_plane
            .as_mut()
            .expect("hop events need a data plane");
        match dp.transit_hop(self.now, path[next]) {
            Ok(arrival) => {
                if next + 1 == path.len() {
                    self.push(arrival, EventKind::Deliver { to, from, msg });
                } else {
                    self.push(
                        arrival,
                        EventKind::Hop {
                            to,
                            from,
                            msg,
                            path,
                            next: next + 1,
                        },
                    );
                }
                true
            }
            Err(_) => {
                self.counters.data_dropped += 1;
                self.counters.data_congestion_dropped += 1;
                false
            }
        }
    }

    /// Schedule a timer for `host`, `delay` from now, carrying `token`.
    pub fn set_timer(&mut self, host: HostId, delay: SimTime, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { host, token });
    }

    /// Schedule a driver event at absolute time `at`.
    pub fn schedule_external(&mut self, at: SimTime, token: u64) {
        self.push(at, EventKind::External { token });
    }

    /// Run until the queue is exhausted or simulated time would exceed
    /// `until` (events at exactly `until` are processed). Returns the
    /// number of events processed by this call.
    pub fn run<W: World<Msg = M>>(&mut self, world: &mut W, until: SimTime) -> u64 {
        let mut n = 0;
        loop {
            match self.heap.peek() {
                Some(Reverse(ev)) if ev.at <= until => {}
                _ => break,
            }
            let Reverse(ev) = self.heap.pop().expect("peeked");
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.events_processed += 1;
            n += 1;
            match ev.kind {
                EventKind::Deliver { to, from, msg } => {
                    self.counters.delivered += 1;
                    world.on_deliver(self, to, from, msg);
                }
                EventKind::Hop {
                    to,
                    from,
                    msg,
                    path,
                    next,
                } => {
                    self.advance_hop(to, from, msg, path, next);
                }
                EventKind::Timer { host, token } => world.on_timer(self, host, token),
                EventKind::External { token } => world.on_external(self, token),
            }
        }
        // Advance the clock to `until` so subsequent relative scheduling
        // is anchored correctly.
        if until > self.now && until != SimTime::MAX {
            self.now = until;
        }
        n
    }

    /// Run until the queue is empty.
    pub fn run_to_idle<W: World<Msg = M>>(&mut self, world: &mut W) -> u64 {
        self.run(world, SimTime::MAX)
    }

    /// True if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::underlay::LatencySpace;

    fn two_host_space(loss: f64) -> Arc<dyn Underlay + Send + Sync> {
        let rtt = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
        Arc::new(LatencySpace::from_rtt_matrix(&rtt).with_uniform_loss(loss))
    }

    /// Ping-pong world: every delivery bounces the counter back until
    /// it reaches zero.
    struct PingPong {
        bounces_left: u32,
        deliveries: Vec<(SimTime, HostId)>,
        timers: Vec<(SimTime, u64)>,
        externals: Vec<(SimTime, u64)>,
    }

    impl World for PingPong {
        type Msg = u32;
        fn on_deliver(&mut self, eng: &mut Engine<u32>, to: HostId, from: HostId, msg: u32) {
            self.deliveries.push((eng.now(), to));
            if msg == 999 {
                return; // background data packet, not part of the ping-pong
            }
            assert_eq!(msg, self.bounces_left);
            if self.bounces_left > 0 {
                self.bounces_left -= 1;
                eng.send(to, from, self.bounces_left, SendClass::Control);
            }
        }
        fn on_timer(&mut self, eng: &mut Engine<u32>, _host: HostId, token: u64) {
            self.timers.push((eng.now(), token));
        }
        fn on_external(&mut self, eng: &mut Engine<u32>, token: u64) {
            self.externals.push((eng.now(), token));
        }
    }

    fn fresh_world(bounces: u32) -> PingPong {
        PingPong {
            bounces_left: bounces,
            deliveries: Vec::new(),
            timers: Vec::new(),
            externals: Vec::new(),
        }
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let mut eng = Engine::new(two_host_space(0.0), 1);
        let mut w = fresh_world(3);
        eng.send(HostId(0), HostId(1), 3, SendClass::Control);
        eng.run_to_idle(&mut w);
        // 4 deliveries at 5, 10, 15, 20 ms (one-way = rtt/2 = 5 ms).
        let times: Vec<f64> = w.deliveries.iter().map(|(t, _)| t.as_ms()).collect();
        assert_eq!(times, vec![5.0, 10.0, 15.0, 20.0]);
        assert_eq!(w.deliveries[0].1, HostId(1));
        assert_eq!(w.deliveries[1].1, HostId(0));
        assert_eq!(eng.counters().control_sent, 4);
        assert_eq!(eng.counters().delivered, 4);
        assert!(eng.is_idle());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut eng = Engine::new(two_host_space(0.0), 1);
        let mut w = fresh_world(100);
        eng.send(HostId(0), HostId(1), 100, SendClass::Control);
        let n = eng.run(&mut w, SimTime::from_ms(12.0));
        assert_eq!(n, 2); // deliveries at 5 and 10 ms only
        assert_eq!(eng.now(), SimTime::from_ms(12.0));
        assert!(!eng.is_idle());
    }

    #[test]
    fn timers_and_externals_fire_in_order() {
        let mut eng = Engine::new(two_host_space(0.0), 1);
        let mut w = fresh_world(0);
        eng.schedule_external(SimTime::from_ms(7.0), 70);
        eng.set_timer(HostId(0), SimTime::from_ms(3.0), 30);
        eng.set_timer(HostId(1), SimTime::from_ms(3.0), 31);
        eng.run_to_idle(&mut w);
        assert_eq!(w.timers.len(), 2);
        // Same-time events fire in scheduling order.
        assert_eq!(w.timers[0].1, 30);
        assert_eq!(w.timers[1].1, 31);
        assert_eq!(w.externals, vec![(SimTime::from_ms(7.0), 70)]);
    }

    #[test]
    fn data_loss_is_sampled_control_is_reliable() {
        let mut eng = Engine::new(two_host_space(0.5), 42);
        let mut w = fresh_world(0);
        let mut delivered = 0;
        for _ in 0..1000 {
            if eng.send(HostId(0), HostId(1), 0, SendClass::Data) {
                delivered += 1;
            }
        }
        eng.run_to_idle(&mut w);
        let c = eng.counters();
        assert_eq!(c.data_sent, 1000);
        assert_eq!(c.data_dropped, 1000 - delivered);
        // 50 % loss: expect roughly half through.
        assert!((350..=650).contains(&delivered), "delivered {delivered}");
        // Control is never dropped.
        for _ in 0..100 {
            assert!(eng.send(HostId(0), HostId(1), 0, SendClass::Control));
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut eng = Engine::new(two_host_space(0.3), seed);
            let mut w = fresh_world(20);
            eng.send(HostId(0), HostId(1), 20, SendClass::Control);
            for i in 0..50 {
                eng.send(HostId(0), HostId(1), 999, SendClass::Data);
                eng.set_timer(HostId(0), SimTime::from_ms(i as f64), i);
            }
            eng.run_to_idle(&mut w);
            (w.deliveries, w.timers, eng.counters())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2);
    }

    #[test]
    fn take_counters_resets() {
        let mut eng = Engine::new(two_host_space(0.0), 1);
        eng.send(HostId(0), HostId(1), 0, SendClass::Control);
        assert_eq!(eng.take_counters().control_sent, 1);
        assert_eq!(eng.counters().control_sent, 0);
    }

    #[test]
    #[should_panic(expected = "sending to itself")]
    fn self_send_rejected() {
        let mut eng = Engine::new(two_host_space(0.0), 1);
        eng.send(HostId(0), HostId(0), 0u32, SendClass::Control);
    }

    #[test]
    fn empty_fault_plan_leaves_trace_identical() {
        let run = |with_plan: bool| {
            let mut eng = Engine::new(two_host_space(0.3), 7);
            if with_plan {
                eng.set_fault_plan(crate::faults::FaultPlan::new(99));
            }
            let mut w = fresh_world(20);
            eng.send(HostId(0), HostId(1), 20, SendClass::Control);
            for i in 0..50 {
                eng.send(HostId(0), HostId(1), 999, SendClass::Data);
                eng.set_timer(HostId(0), SimTime::from_ms(i as f64), i);
            }
            eng.run_to_idle(&mut w);
            (w.deliveries, w.timers, eng.counters())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fault_layer_drops_control_during_blackout() {
        use crate::faults::{FaultEvent, FaultPlan};
        let mut eng = Engine::new(two_host_space(0.0), 1);
        eng.set_fault_plan(FaultPlan::with_events(
            1,
            vec![FaultEvent::LinkFlap {
                a: HostId(0),
                b: HostId(1),
                from: SimTime::ZERO,
                until: SimTime::from_secs(1),
            }],
        ));
        let mut w = fresh_world(0);
        assert!(!eng.send(HostId(0), HostId(1), 999, SendClass::Control));
        eng.run_to_idle(&mut w);
        assert!(w.deliveries.is_empty());
        assert_eq!(eng.counters().faults_dropped, 1);
    }

    #[test]
    fn fault_layer_duplicates_messages() {
        use crate::faults::{FaultEvent, FaultPlan};
        let mut eng = Engine::new(two_host_space(0.0), 1);
        eng.set_fault_plan(FaultPlan::with_events(
            1,
            vec![FaultEvent::MsgFaults {
                from: SimTime::ZERO,
                until: SimTime::from_secs(10),
                drop_p: 0.0,
                dup_p: 1.0,
                reorder_p: 0.0,
                reorder_max: SimTime::from_ms(50.0),
                spike_p: 0.0,
                spike: SimTime::ZERO,
            }],
        ));
        let mut w = fresh_world(0);
        assert!(eng.send(HostId(0), HostId(1), 999, SendClass::Control));
        eng.run_to_idle(&mut w);
        assert_eq!(w.deliveries.len(), 2);
        assert_eq!(eng.counters().faults_duplicated, 1);
        assert_eq!(eng.counters().delivered, 2);
    }

    #[test]
    fn slowdown_stretches_inbound_delay() {
        use crate::faults::{FaultEvent, FaultPlan};
        let mut eng = Engine::new(two_host_space(0.0), 1);
        eng.set_fault_plan(FaultPlan::with_events(
            1,
            vec![FaultEvent::Slowdown {
                host: HostId(1),
                factor: 10.0,
                from: SimTime::ZERO,
                until: SimTime::from_secs(1),
            }],
        ));
        let mut w = fresh_world(0);
        eng.send(HostId(0), HostId(1), 999, SendClass::Control);
        eng.run_to_idle(&mut w);
        // One-way latency is 5 ms; the slowdown makes it 50 ms.
        assert_eq!(w.deliveries, vec![(SimTime::from_ms(50.0), HostId(1))]);
    }

    /// `host0 — r0 — host1`, 1 ms per link, shared bandwidth setting.
    fn routed_chain(bandwidth_mbps: f64) -> Arc<dyn Underlay + Send + Sync> {
        use vdm_topology::graph::{LinkAttrs, NodeKind};
        let mut g = vdm_topology::Graph::new();
        let h0 = g.add_node(NodeKind::Host);
        let r0 = g.add_node(NodeKind::Stub);
        let h1 = g.add_node(NodeKind::Host);
        let attrs = LinkAttrs {
            delay_ms: 1.0,
            loss: 0.0,
            bandwidth_mbps,
        };
        g.add_edge(h0, r0, attrs);
        g.add_edge(r0, h1, attrs);
        Arc::new(crate::underlay::RoutedUnderlay::new(g, vec![h0, h1]))
    }

    fn msg_faults(
        drop_p: f64,
        dup_p: f64,
        spike_p: f64,
        spike: SimTime,
    ) -> crate::faults::FaultPlan {
        crate::faults::FaultPlan::with_events(
            1,
            vec![crate::faults::FaultEvent::MsgFaults {
                from: SimTime::ZERO,
                until: SimTime::from_secs(100),
                drop_p,
                dup_p,
                reorder_p: 0.0,
                // Zero: duplicates get no extra delay of their own, so
                // the hop-path tests below control entry order exactly.
                reorder_max: SimTime::ZERO,
                spike_p,
                spike,
            }],
        )
    }

    /// Regression (ISSUE 9, bugfix 1): a fault-injected delay spike on a
    /// data packet taking the queueing hop path used to be *counted*
    /// (`faults_delayed`, `FaultApplied{fate:"delay"}`) but never
    /// *applied* — the packet entered its first link immediately.
    #[test]
    fn fault_delay_is_paid_on_the_data_plane_hop_path() {
        let mut eng = Engine::new(routed_chain(100.0), 1);
        eng.enable_data_plane(DataPlaneConfig::default());
        eng.set_fault_plan(msg_faults(0.0, 0.0, 1.0, SimTime::from_ms(100.0)));
        let mut w = fresh_world(0);
        assert!(eng.send(HostId(0), HostId(1), 999, SendClass::Data));
        eng.run_to_idle(&mut w);
        assert_eq!(eng.counters().faults_delayed, 1);
        assert_eq!(w.deliveries.len(), 1);
        let at = w.deliveries[0].0;
        // 100 ms spike + 2 × (1 ms propagation + 0.1 ms serialization).
        assert!(
            at >= SimTime::from_ms(100.0),
            "delivered at {at}: the spike was counted but not paid"
        );
        assert_eq!(at, SimTime::from_ms(102.2));
    }

    /// Regression (ISSUE 9, bugfix 2): on the non-data-plane path a
    /// fault duplicate used to share one path-loss sample with the
    /// original — when that sample dropped "the pair", only one
    /// `data_dropped` was recorded and the already-counted duplicate
    /// vanished without a trace. Copies now sample loss independently,
    /// so the books balance exactly:
    /// `delivered + data_dropped == data_sent + faults_duplicated`.
    #[test]
    fn duplicate_loss_is_sampled_per_copy() {
        let mut eng = Engine::new(two_host_space(0.5), 9);
        eng.set_fault_plan(msg_faults(0.0, 1.0, 0.0, SimTime::ZERO));
        let mut w = fresh_world(0);
        for _ in 0..400 {
            eng.send(HostId(0), HostId(1), 999, SendClass::Data);
        }
        eng.run_to_idle(&mut w);
        let c = eng.counters();
        assert_eq!(c.data_sent, 400);
        assert_eq!(c.faults_duplicated, 400);
        assert_eq!(
            c.delivered + c.data_dropped,
            c.data_sent + c.faults_duplicated,
            "a copy went missing from the books: {c:?}"
        );
        // 800 independent copies at 50 % loss: both extremes must occur.
        assert!(c.data_dropped > 0 && c.delivered > 0);
        assert!(
            (300..=500).contains(&c.delivered),
            "delivered {} of 800 copies at 50 % loss",
            c.delivered
        );
    }

    /// A duplicate may survive path loss when the original does not:
    /// `send` still reports the original's drop (return contract), but
    /// the duplicate is delivered.
    #[test]
    fn surviving_duplicate_outlives_lost_original() {
        let mut eng = Engine::new(two_host_space(0.5), 3);
        eng.set_fault_plan(msg_faults(0.0, 1.0, 0.0, SimTime::ZERO));
        let mut w = fresh_world(0);
        let mut orig_lost_dup_delivered = 0u64;
        for _ in 0..200 {
            let before = eng.counters().delivered;
            let ok = eng.send(HostId(0), HostId(1), 999, SendClass::Data);
            eng.run_to_idle(&mut w);
            let arrived = eng.counters().delivered - before;
            if !ok && arrived == 1 {
                orig_lost_dup_delivered += 1;
            }
        }
        // P(original lost, duplicate through) = 0.25 per send.
        assert!(
            orig_lost_dup_delivered > 10,
            "only {orig_lost_dup_delivered} duplicates outlived their lost original"
        );
    }

    /// Regression (ISSUE 9, bugfix 3): the duplicate's `advance_hop`
    /// outcome on the data-plane path is not part of `send`'s return
    /// value — by contract — but its congestion drop must land in the
    /// counters so delivered/dropped reconciliation still closes.
    #[test]
    fn duplicate_congestion_drops_land_in_counters() {
        // 1 Mbit/s → 10 ms serialization; zero buffer: any packet that
        // has to queue at all is dropped.
        let mut eng = Engine::new(routed_chain(1.0), 1);
        eng.enable_data_plane(DataPlaneConfig {
            packet_bits: 10_000.0,
            buffer_ms: 0.0,
        });
        eng.set_fault_plan(msg_faults(0.0, 1.0, 0.0, SimTime::ZERO));
        let mut w = fresh_world(0);
        // The duplicate enters the first link ahead of the original, so
        // the original queues behind it and is dropped — reported by the
        // return value.
        assert!(!eng.send(HostId(0), HostId(1), 999, SendClass::Data));
        // Same instant, second exchange: this time the duplicate itself
        // is the queued copy. Its drop is invisible to the caller by
        // contract, but must be counted.
        assert!(!eng.send(HostId(0), HostId(1), 999, SendClass::Data));
        eng.run_to_idle(&mut w);
        let c = eng.counters();
        assert_eq!(c.data_sent, 2);
        assert_eq!(c.faults_duplicated, 2);
        assert_eq!(c.delivered, 1, "exactly the first duplicate gets through");
        assert_eq!(c.data_congestion_dropped, 3);
        assert_eq!(
            c.delivered + c.data_dropped,
            c.data_sent + c.faults_duplicated,
            "a congestion-dropped duplicate went missing: {c:?}"
        );
    }
}
