//! Sharded-engine determinism suite (ISSUE 9 tentpole gates).
//!
//! The contract under test, in order of strength:
//!
//! 1. `S = 1` is *byte-identical* to the plain [`Engine`] per seed — the
//!    sharded path must be a pure delegation, not a reimplementation;
//! 2. at fixed `S > 1`, runs are bit-reproducible across repeated runs
//!    and across execution modes (one thread per shard vs. fully
//!    sequential) — the barrier merge order `(at, src_shard, seq)` is a
//!    function of simulation state, never of thread scheduling;
//! 3. cross-shard mailbox draining never delivers an event before the
//!    destination shard's clock (the lookahead window invariant),
//!    property-tested over random topologies and traffic.
//!
//! Reproducibility across *different* `S` is deliberately not asserted:
//! each shard owns an RNG stream, so the shard count changes the random
//! universe (DESIGN.md §12).

use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::Rng;
use std::sync::Arc;
use vdm_netsim::engine::Counters;
use vdm_netsim::underlay::ShardedUnderlay;
use vdm_netsim::{
    Engine, HostId, LatencySpace, SendClass, ShardMap, ShardedEngine, SimTime, Underlay, World,
};

/// Deterministic traffic storm. Every delivery re-emits one message with
/// a decremented TTL to a pseudo-random target drawn from the driving
/// engine's RNG — so the trace exercises per-shard RNG streams, mixed
/// send classes, and (on multi-shard underlays) cross-shard mailboxes.
struct Storm {
    /// Hosts this world owns; sends only ever originate here.
    range: std::ops::Range<u32>,
    n: u32,
    trace: Vec<(u64, u32, u32, u64)>,
    timers: Vec<(u64, u32, u64)>,
}

impl Storm {
    fn new(range: std::ops::Range<u32>, n: u32) -> Self {
        Self {
            range,
            n,
            trace: Vec::new(),
            timers: Vec::new(),
        }
    }
}

impl World for Storm {
    type Msg = u64;

    fn on_deliver(&mut self, eng: &mut Engine<u64>, to: HostId, from: HostId, ttl: u64) {
        assert!(self.range.contains(&to.0), "delivery for a foreign host");
        self.trace.push((eng.now().0, to.0, from.0, ttl));
        if ttl == 0 {
            return;
        }
        let r = eng.rng().gen::<u32>();
        let target = HostId((to.0 + 1 + r % (self.n - 1)) % self.n);
        let class = if r % 3 == 0 {
            SendClass::Control
        } else {
            SendClass::Data
        };
        eng.send(to, target, ttl - 1, class);
        if r % 5 == 0 {
            eng.set_timer(to, SimTime::from_ms(1.5), ttl);
        }
    }

    fn on_timer(&mut self, eng: &mut Engine<u64>, host: HostId, token: u64) {
        self.timers.push((eng.now().0, host.0, token));
    }

    fn on_external(&mut self, eng: &mut Engine<u64>, token: u64) {
        // Kick off a storm chain from this shard's first host.
        let src = HostId(self.range.start);
        let target = HostId((src.0 + 1) % self.n);
        eng.send(src, target, token, SendClass::Data);
    }
}

/// An 8-host latency space with jitter and loss, so the engine RNG is
/// consulted on every data send and every delivery sample.
fn jittery_space() -> Arc<dyn Underlay + Send + Sync> {
    let n = 8;
    let mut rtt = vec![vec![0.0; n]; n];
    for (i, row) in rtt.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i != j {
                *cell = 8.0 + 3.0 * (i as f64 - j as f64).abs();
            }
        }
    }
    Arc::new(
        LatencySpace::from_rtt_matrix(&rtt)
            .with_uniform_loss(0.1)
            .with_jitter(0.2),
    )
}

type RunFingerprint = (
    Vec<(u64, u32, u32, u64)>,
    Vec<(u64, u32, u64)>,
    Counters,
    u64,
);

fn run_plain_engine(seed: u64) -> RunFingerprint {
    let mut eng = Engine::new(jittery_space(), seed);
    let mut w = Storm::new(0..8, 8);
    for k in 0..4u64 {
        eng.schedule_external(SimTime::from_ms(k as f64), 6 + k);
    }
    eng.run_to_idle(&mut w);
    (w.trace, w.timers, eng.counters(), eng.events_processed())
}

fn run_sharded_single(seed: u64) -> RunFingerprint {
    let mut se = ShardedEngine::single(jittery_space(), seed);
    let mut worlds = vec![Storm::new(0..8, 8)];
    for k in 0..4u64 {
        se.engine_mut(0)
            .schedule_external(SimTime::from_ms(k as f64), 6 + k);
    }
    se.run_to_idle(&mut worlds);
    let w = worlds.pop().unwrap();
    (w.trace, w.timers, se.counters(), se.events_processed())
}

/// `S = 1` must be the plain engine, byte for byte: same delivery trace
/// (times, hosts, payloads), same timers, same counters, same event
/// count — per seed.
#[test]
fn s1_is_byte_identical_to_the_plain_engine() {
    for seed in [1u64, 7, 42, 1234] {
        let plain = run_plain_engine(seed);
        let sharded = run_sharded_single(seed);
        assert_eq!(plain, sharded, "S = 1 diverged from Engine at seed {seed}");
        assert!(!plain.0.is_empty(), "storm produced no traffic");
    }
}

/// Synthetic sharded underlay with full control over the lookahead: all
/// up-costs small, every backbone entry ≥ `LOOKAHEAD_MS`.
const LOOKAHEAD_MS: f64 = 20.0;

fn synthetic_sharded(hosts: usize, shards: usize) -> Arc<ShardedUnderlay> {
    let map = ShardMap::contiguous(hosts, shards);
    let up: Vec<f64> = (0..hosts).map(|i| 0.5 + (i % 5) as f64 * 0.4).collect();
    let mut core = vec![0.0; shards * shards];
    for a in 0..shards {
        for b in 0..shards {
            if a != b {
                core[a * shards + b] = LOOKAHEAD_MS + (a + b) as f64;
            }
        }
    }
    Arc::new(ShardedUnderlay::from_parts(up, core, map.bounds().to_vec()))
}

fn run_sharded(
    hosts: usize,
    shards: usize,
    seed: u64,
    parallel: bool,
) -> (Vec<RunFingerprint>, u64) {
    let u = synthetic_sharded(hosts, shards);
    let map = ShardMap::from_bounds(u.shard_bounds().to_vec());
    assert!(u.min_cross_shard_delay_ms() >= LOOKAHEAD_MS);
    let mut se = ShardedEngine::new(
        Arc::clone(&u) as Arc<dyn Underlay + Send + Sync>,
        seed,
        map.clone(),
        SimTime::from_ms(LOOKAHEAD_MS),
    );
    se.set_parallel(parallel);
    let mut worlds: Vec<Storm> = (0..shards)
        .map(|s| Storm::new(map.range(s as u32), hosts as u32))
        .collect();
    for s in 0..shards {
        se.engine_mut(s)
            .schedule_external(SimTime::from_ms(s as f64), 8);
    }
    se.run_to_idle(&mut worlds);
    let cross = se.cross_events();
    let fps = worlds
        .iter()
        .enumerate()
        .map(|(s, w)| {
            (
                w.trace.clone(),
                w.timers.clone(),
                se.engine(s).counters(),
                se.engine(s).events_processed(),
            )
        })
        .collect();
    (fps, cross)
}

/// Fixed `S > 1` is bit-reproducible: repeated parallel runs agree with
/// each other *and* with a fully sequential run — per shard, down to
/// every delivery timestamp and counter. This is the scheduling-
/// independence guarantee of the `(at, src_shard, seq)` barrier merge.
#[test]
fn fixed_shard_count_is_reproducible_across_runs_and_thread_modes() {
    for shards in [2usize, 4] {
        let (a, cross_a) = run_sharded(16, shards, 99, true);
        let (b, cross_b) = run_sharded(16, shards, 99, true);
        let (c, cross_c) = run_sharded(16, shards, 99, false);
        assert!(cross_a > 0, "storm never crossed a shard boundary");
        assert_eq!(cross_a, cross_b);
        assert_eq!(cross_a, cross_c);
        assert_eq!(a, b, "two parallel runs diverged at S = {shards}");
        assert_eq!(a, c, "parallel and sequential diverged at S = {shards}");
        let (d, _) = run_sharded(16, shards, 100, true);
        assert_ne!(a, d, "different seeds should differ");
    }
}

/// Horizon semantics match the plain engine: `run(until)` processes
/// events at exactly `until`, leaves later ones pending, and anchors
/// every shard clock at the horizon.
#[test]
fn run_until_horizon_is_inclusive_and_resumable() {
    let u = synthetic_sharded(8, 2);
    let map = ShardMap::from_bounds(u.shard_bounds().to_vec());
    let mut se = ShardedEngine::new(
        u as Arc<dyn Underlay + Send + Sync>,
        5,
        map.clone(),
        SimTime::from_ms(LOOKAHEAD_MS),
    );
    let mut worlds: Vec<Storm> = (0..2).map(|s| Storm::new(map.range(s), 8)).collect();
    se.engine_mut(0)
        .schedule_external(SimTime::from_ms(1.0), 10);
    se.engine_mut(1)
        .schedule_external(SimTime::from_ms(2.0), 10);
    let horizon = SimTime::from_ms(40.0);
    let n1 = se.run(&mut worlds, horizon);
    assert!(n1 > 0);
    assert_eq!(se.now(), horizon);
    assert!(worlds
        .iter()
        .all(|w| w.trace.iter().all(|&(t, ..)| t <= horizon.0)));
    // Resume to idle: the storm continues past the horizon.
    let n2 = se.run_to_idle(&mut worlds);
    assert!(n2 > 0, "nothing was pending past the horizon");
    assert!(se.is_idle());
}

/// Property world: checks the window invariant from the inside. Every
/// message payload carries its send time; a cross-shard delivery must
/// arrive at least one lookahead later, and a shard's delivery times
/// must be non-decreasing.
struct CheckWorld {
    range: std::ops::Range<u32>,
    n: u32,
    map: ShardMap,
    lookahead_us: u64,
    last_now: u64,
    violations: u64,
    deliveries: u64,
    cross_seen: u64,
}

impl World for CheckWorld {
    type Msg = (u64, u64); // (ttl, sent_at_us)

    fn on_deliver(
        &mut self,
        eng: &mut Engine<(u64, u64)>,
        to: HostId,
        from: HostId,
        m: (u64, u64),
    ) {
        let now = eng.now().0;
        let (ttl, sent) = m;
        self.deliveries += 1;
        if now < self.last_now {
            self.violations += 1;
        }
        self.last_now = now;
        if self.map.shard_of(from) != self.map.shard_of(to) {
            self.cross_seen += 1;
            if now < sent + self.lookahead_us {
                self.violations += 1;
            }
        }
        if ttl > 0 {
            let r = eng.rng().gen::<u32>();
            let target = HostId((to.0 + 1 + r % (self.n - 1)) % self.n);
            eng.send(to, target, (ttl - 1, now), SendClass::Control);
        }
    }

    fn on_timer(&mut self, _eng: &mut Engine<(u64, u64)>, _host: HostId, _token: u64) {}

    fn on_external(&mut self, eng: &mut Engine<(u64, u64)>, ttl: u64) {
        let src = HostId(self.range.start);
        let target = HostId((src.0 + 1) % self.n);
        eng.send(src, target, (ttl, eng.now().0), SendClass::Control);
    }
}

proptest! {
    /// Over random shard counts, host counts, backbone delays and kick
    /// schedules: cross-shard mailbox draining never delivers an event
    /// before the destination shard's clock (`inject_remote` would
    /// panic) nor earlier than `send + lookahead`, and per-shard
    /// delivery times stay monotone.
    #[test]
    fn mailbox_drain_never_delivers_before_now(
        seed in 0u64..1 << 32,
        shards in 2usize..5,
        hosts_per_shard in 2usize..5,
        core_base in 5.0f64..50.0,
        kicks in 1usize..5,
    ) {
        let hosts = shards * hosts_per_shard;
        let map = ShardMap::contiguous(hosts, shards);
        let up: Vec<f64> = (0..hosts).map(|i| 0.3 + (i % 4) as f64 * 0.7).collect();
        let mut core = vec![0.0; shards * shards];
        for a in 0..shards {
            for b in 0..shards {
                if a != b {
                    core[a * shards + b] = core_base + ((a + b) % 3) as f64;
                }
            }
        }
        let u = Arc::new(ShardedUnderlay::from_parts(up, core, map.bounds().to_vec()));
        let lookahead = SimTime::from_ms(u.min_cross_shard_delay_ms());
        let mut se = ShardedEngine::new(
            Arc::clone(&u) as Arc<dyn Underlay + Send + Sync>,
            seed,
            map.clone(),
            lookahead,
        );
        let mut worlds: Vec<CheckWorld> = (0..shards)
            .map(|s| CheckWorld {
                range: map.range(s as u32),
                n: hosts as u32,
                map: map.clone(),
                lookahead_us: lookahead.0,
                last_now: 0,
                violations: 0,
                deliveries: 0,
                cross_seen: 0,
            })
            .collect();
        for s in 0..shards {
            for k in 0..kicks {
                se.engine_mut(s).schedule_external(
                    SimTime::from_ms(k as f64 * 0.7),
                    5 + (k as u64 % 3),
                );
            }
        }
        se.run_to_idle(&mut worlds);
        let cross: u64 = worlds.iter().map(|w| w.cross_seen).sum();
        let delivered: u64 = worlds.iter().map(|w| w.deliveries).sum();
        prop_assert!(delivered > 0, "no traffic at all");
        prop_assert!(cross > 0, "no cross-shard traffic exercised");
        for (s, w) in worlds.iter().enumerate() {
            prop_assert_eq!(w.violations, 0, "shard {} saw early deliveries", s);
        }
    }
}
