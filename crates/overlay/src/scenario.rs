//! Seeded join/leave/churn schedules.
//!
//! §3.6.2: "We give 2000s for join process at the beginning. We take
//! 400s as a time interval and define the churn based on that interval.
//! Based on the churn rate, a number of nodes join and leave the tree.
//! [...] At the end of every time slot, we give 100s for tree to come to
//! steady state, then we do the measurements." [`Scenario::churn`]
//! reproduces exactly that; [`Scenario::growth`] reproduces the Chapter 4
//! shape ("At each interval 50 nodes join, and then we do the
//! measurement").

use crate::discovery::DiscoveryConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};
use vdm_netsim::{HostId, SimTime};

/// One scheduled driver action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Host joins the session.
    Join(HostId),
    /// Host leaves the session (gracefully, notifying neighbours).
    Leave(HostId),
    /// Host crashes: it vanishes without notifying anyone (ungraceful
    /// churn; neighbours must detect it via heartbeats / the stream
    /// watchdog).
    Crash(HostId),
    /// Take a measurement snapshot.
    Measure,
}

/// A full run schedule.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Time-ordered actions (stable order within equal times).
    pub actions: Vec<(SimTime, Action)>,
    /// Simulation horizon.
    pub end: SimTime,
    /// Seed for randomness derived *from* the schedule (crash
    /// selection): drawn from the generating scenario RNG, so the
    /// scenario seed alone fully determines [`Scenario::with_crashes`].
    pub crash_seed: u64,
    /// Bootstrap-discovery config for every joining agent; `None` (the
    /// default for all generators) keeps the omniscient source-anchored
    /// joins byte-identical to pre-discovery runs.
    pub discovery: Option<DiscoveryConfig>,
}

/// Parameters for [`Scenario::soak`] (sustained-churn robustness runs,
/// ablation A8).
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Steady-state overlay population.
    pub members: usize,
    /// Initial join phase length, seconds.
    pub warmup_s: f64,
    /// Churn phase length, seconds (starts after the warmup).
    pub duration_s: f64,
    /// Rate of the Poisson process of individual graceful departures
    /// during the churn phase, events per second (0 disables).
    pub churn_rate_per_s: f64,
    /// Interval between correlated crash bursts, seconds (0 disables).
    /// Every burst crashes `burst_frac` of the in-session members at the
    /// *same* timestamp — the pathological case for grandparent-only
    /// recovery, since a crashed peer's grandparent is likely dead too.
    pub burst_every_s: f64,
    /// Fraction of in-session members crashed per burst, in `[0, 1]`.
    pub burst_frac: f64,
    /// Measurement cadence, seconds.
    pub measure_every_s: f64,
    /// Quiet tail after the churn phase, seconds: no departures, rejoins
    /// drain, measurements continue (post-repair state is read here).
    pub quiet_tail_s: f64,
}

/// Parameters for [`Scenario::churn`].
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Steady-state overlay population.
    pub members: usize,
    /// Initial join phase length, seconds (paper: 2000 s).
    pub warmup_s: f64,
    /// Churn slot length, seconds (paper: 400 s).
    pub slot_s: f64,
    /// Number of churn slots.
    pub slots: usize,
    /// Per-slot churn as a percentage of the population (paper: 1–20 %);
    /// at 10 % with 200 members, 20 leave and 20 join each slot.
    pub churn_pct: f64,
}

/// Parameters for [`Scenario::flash_crowd`] (decentralized-bootstrap
/// robustness runs, ablation A11): `joiners` newcomers hit a cold
/// `seeds`-sized bootstrap set nearly simultaneously, a fraction of the
/// set is stale (hosts that never join), and part of the live seeds
/// crash shortly after the crowd arrives.
#[derive(Clone, Debug)]
pub struct FlashCrowdConfig {
    /// Bootstrap-set size `k` (live + stale entries).
    pub seeds: usize,
    /// Fraction of the bootstrap set that is stale — entries pointing
    /// at hosts that never join the session, in `[0, 1)`. At least one
    /// seed stays live.
    pub stale_frac: f64,
    /// Newcomers arriving in the flash crowd.
    pub joiners: usize,
    /// Initial phase, seconds: the live seeds join (bootstrapping via
    /// each other) and settle before the crowd.
    pub warmup_s: f64,
    /// When the flash crowd starts, seconds.
    pub crowd_at_s: f64,
    /// Crowd arrival window, seconds: joiners land at uniform times in
    /// `[crowd_at_s, crowd_at_s + spread_s)`.
    pub spread_s: f64,
    /// Fraction of the *live* seeds crashed mid-bootstrap, in `[0, 1]`
    /// (the crashed seeds do not rejoin — their view entries go stale).
    pub seed_churn_frac: f64,
    /// Seconds after `crowd_at_s` at which the seed churn strikes.
    pub churn_delay_s: f64,
    /// Observation window after the crowd, seconds.
    pub settle_s: f64,
    /// Measurement cadence over the settle window, seconds.
    pub measure_every_s: f64,
    /// Discovery tunables for every agent; the generator fills in
    /// [`DiscoveryConfig::seeds`] with the (shuffled) bootstrap set.
    pub discovery: DiscoveryConfig,
}

impl Scenario {
    /// The paper's churn scenario over the candidate host pool
    /// (`candidates` must exclude the source and contain at least
    /// `members` hosts; with extra candidates, joiners rotate through
    /// the pool as the paper describes — "Some nodes may join and leave
    /// several times while some never join").
    pub fn churn(cfg: &ChurnConfig, candidates: &[HostId], seed: u64) -> Self {
        assert!(cfg.members >= 1 && candidates.len() >= cfg.members);
        assert!(cfg.slot_s > 0.0 && cfg.warmup_s >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7363_656e);
        let mut actions = Vec::new();

        // Initial population: first `members` of a shuffled pool, joining
        // at uniform times over the warmup.
        let mut pool = candidates.to_vec();
        shuffle(&mut pool, &mut rng);
        let mut inside: Vec<HostId> = pool[..cfg.members].to_vec();
        let mut outside: Vec<HostId> = pool[cfg.members..].to_vec();
        for &h in &inside {
            let t = rng.gen_range(0.0..cfg.warmup_s.max(1.0));
            actions.push((SimTime::from_ms(t * 1000.0), Action::Join(h)));
        }
        actions.push((SimTime::from_ms(cfg.warmup_s * 1000.0), Action::Measure));

        let per_slot = ((cfg.churn_pct / 100.0) * cfg.members as f64).round() as usize;
        for slot in 0..cfg.slots {
            let start = cfg.warmup_s + slot as f64 * cfg.slot_s;
            let t_churn = SimTime::from_ms(start * 1000.0);
            // Leaves: random current members.
            for _ in 0..per_slot.min(inside.len().saturating_sub(1)) {
                let i = rng.gen_range(0..inside.len());
                let h = inside.swap_remove(i);
                outside.push(h);
                actions.push((t_churn, Action::Leave(h)));
            }
            // Joins: random outsiders, restoring the population.
            while inside.len() < cfg.members && !outside.is_empty() {
                let i = rng.gen_range(0..outside.len());
                let h = outside.swap_remove(i);
                // Stagger re-joins a little so the walk traffic is not
                // one synchronized burst.
                let jitter = rng.gen_range(0.0..(cfg.slot_s * 0.1));
                actions.push((SimTime::from_ms((start + jitter) * 1000.0), Action::Join(h)));
                inside.push(h);
            }
            // Measure at the end of the slot (≥ 100 s after the churn
            // burst for the paper's parameters).
            let t_measure = SimTime::from_ms((start + cfg.slot_s) * 1000.0);
            actions.push((t_measure, Action::Measure));
        }

        let end = SimTime::from_ms((cfg.warmup_s + cfg.slots as f64 * cfg.slot_s + 1.0) * 1000.0);
        let crash_seed = rng.gen();
        Self::finish(actions, end, crash_seed)
    }

    /// Sustained-churn soak schedule (ablation A8): after a warmup join
    /// phase, individual members depart as a Poisson process
    /// (`churn_rate_per_s`) and every `burst_every_s` a correlated burst
    /// crashes `burst_frac` of the in-session members at one timestamp.
    /// Every departed member schedules a staggered rejoin a few seconds
    /// later (the rejoin *storm* that admission control absorbs).
    /// Measurements run every `measure_every_s` through the churn phase
    /// and the quiet tail. Fully determined by `cfg` and `seed`.
    pub fn soak(cfg: &SoakConfig, candidates: &[HostId], seed: u64) -> Self {
        assert!(cfg.members >= 2 && candidates.len() >= cfg.members);
        assert!(cfg.warmup_s >= 0.0 && cfg.duration_s > 0.0);
        assert!((0.0..=1.0).contains(&cfg.burst_frac));
        assert!(cfg.measure_every_s > 0.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x736f_616b);
        let mut actions = Vec::new();

        // Initial population joins at uniform times over the warmup.
        let mut pool = candidates.to_vec();
        shuffle(&mut pool, &mut rng);
        let mut inside: Vec<HostId> = pool[..cfg.members].to_vec();
        for &h in &inside {
            let t = rng.gen_range(0.0..cfg.warmup_s.max(1.0));
            actions.push((SimTime::from_ms(t * 1000.0), Action::Join(h)));
        }

        let churn_end = cfg.warmup_s + cfg.duration_s;
        let horizon = churn_end + cfg.quiet_tail_s;

        // Event timeline of the churn phase, merged in time order so the
        // RNG draws (member selection, rejoin stagger) happen in a
        // deterministic order.
        #[derive(Clone, Copy, PartialEq)]
        enum Ev {
            Depart,
            Burst,
        }
        let mut events: Vec<(f64, Ev)> = Vec::new();
        if cfg.churn_rate_per_s > 0.0 {
            let mut t = cfg.warmup_s;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / cfg.churn_rate_per_s;
                if t >= churn_end {
                    break;
                }
                events.push((t, Ev::Depart));
            }
        }
        if cfg.burst_every_s > 0.0 && cfg.burst_frac > 0.0 {
            let mut k = 1usize;
            loop {
                let t = cfg.warmup_s + k as f64 * cfg.burst_every_s;
                if t >= churn_end {
                    break;
                }
                events.push((t, Ev::Burst));
                k += 1;
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Pending rejoins, kept sorted by (time, host) and drained into
        // the membership set as the cursor passes them. The Join action
        // itself is pushed at scheduling time; this queue only tracks
        // *membership* so later selections see the right inside-set.
        let mut rejoins: Vec<(f64, HostId)> = Vec::new();
        let schedule_rejoin =
            |h: HostId, now: f64, rng: &mut StdRng, actions: &mut Vec<(SimTime, Action)>| {
                let back = now + rng.gen_range(1.0..5.0);
                actions.push((SimTime::from_ms(back * 1000.0), Action::Join(h)));
                (back, h)
            };
        for (t, ev) in events {
            // Drain rejoins due by now (sorted insertion keeps order).
            while rejoins.first().is_some_and(|&(rt, _)| rt <= t) {
                inside.push(rejoins.remove(0).1);
            }
            match ev {
                Ev::Depart => {
                    if inside.len() < 2 {
                        continue;
                    }
                    let i = rng.gen_range(0..inside.len());
                    let h = inside.swap_remove(i);
                    actions.push((SimTime::from_ms(t * 1000.0), Action::Leave(h)));
                    let r = schedule_rejoin(h, t, &mut rng, &mut actions);
                    let at = rejoins.partition_point(|&(rt, rh)| (rt, rh) < r);
                    rejoins.insert(at, r);
                }
                Ev::Burst => {
                    let n = ((cfg.burst_frac * inside.len() as f64).round() as usize)
                        .min(inside.len().saturating_sub(1));
                    let t_burst = SimTime::from_ms(t * 1000.0);
                    for _ in 0..n {
                        let i = rng.gen_range(0..inside.len());
                        let h = inside.swap_remove(i);
                        actions.push((t_burst, Action::Crash(h)));
                        let r = schedule_rejoin(h, t, &mut rng, &mut actions);
                        let at = rejoins.partition_point(|&(rt, rh)| (rt, rh) < r);
                        rejoins.insert(at, r);
                    }
                }
            }
        }

        // Measurements: every `measure_every_s` from the end of the
        // warmup through the quiet tail, plus one final snapshot.
        let mut k = 0usize;
        let mut last_measure = f64::NEG_INFINITY;
        loop {
            let t = cfg.warmup_s + k as f64 * cfg.measure_every_s;
            if t > horizon {
                break;
            }
            actions.push((SimTime::from_ms(t * 1000.0), Action::Measure));
            last_measure = t;
            k += 1;
        }
        if last_measure < horizon {
            actions.push((SimTime::from_ms(horizon * 1000.0), Action::Measure));
        }

        let end = SimTime::from_ms((horizon + 1.0) * 1000.0);
        let crash_seed = rng.gen();
        Self::finish(actions, end, crash_seed)
    }

    /// Chapter 4 growth scenario: `batches` batches of `batch_size`
    /// joins, one every `interval_s`, measuring after each batch.
    pub fn growth(
        batch_size: usize,
        batches: usize,
        interval_s: f64,
        candidates: &[HostId],
        seed: u64,
    ) -> Self {
        assert!(candidates.len() >= batch_size * batches);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6f77);
        let mut pool = candidates.to_vec();
        shuffle(&mut pool, &mut rng);
        let mut actions = Vec::new();
        for b in 0..batches {
            let start = b as f64 * interval_s;
            for i in 0..batch_size {
                let h = pool[b * batch_size + i];
                let t = start + rng.gen_range(0.0..(interval_s * 0.5));
                actions.push((SimTime::from_ms(t * 1000.0), Action::Join(h)));
            }
            let t_measure = SimTime::from_ms((start + interval_s) * 1000.0);
            actions.push((t_measure, Action::Measure));
        }
        let end = SimTime::from_ms((batches as f64 * interval_s + 1.0) * 1000.0);
        let crash_seed = rng.gen();
        Self::finish(actions, end, crash_seed)
    }

    /// Decentralized-bootstrap flash-crowd schedule (ablation A11).
    ///
    /// The candidate pool is shuffled and split into live seeds, stale
    /// seeds (never join; their bootstrap entries point at dead air)
    /// and the crowd. Live seeds join over the warmup, the crowd lands
    /// in a `spread_s` window at `crowd_at_s`, and `seed_churn_frac` of
    /// the live seeds crash `churn_delay_s` later — so part of every
    /// joiner's view goes stale *mid-bootstrap*. Every agent receives
    /// the same shuffled bootstrap set via [`Scenario::discovery`].
    /// Fully determined by `cfg` and `seed`.
    pub fn flash_crowd(cfg: &FlashCrowdConfig, candidates: &[HostId], seed: u64) -> Self {
        assert!(cfg.seeds >= 1 && cfg.joiners >= 1);
        assert!((0.0..1.0).contains(&cfg.stale_frac));
        assert!((0.0..=1.0).contains(&cfg.seed_churn_frac));
        assert!(candidates.len() >= cfg.seeds + cfg.joiners);
        assert!(cfg.warmup_s > 0.0 && cfg.crowd_at_s >= cfg.warmup_s);
        assert!(cfg.spread_s >= 0.0 && cfg.settle_s > 0.0 && cfg.measure_every_s > 0.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x666c_6173);
        let mut pool = candidates.to_vec();
        shuffle(&mut pool, &mut rng);

        let n_stale = ((cfg.seeds as f64 * cfg.stale_frac).round() as usize).min(cfg.seeds - 1);
        let n_live = cfg.seeds - n_stale;
        let live: Vec<HostId> = pool[..n_live].to_vec();
        let stale: Vec<HostId> = pool[n_live..cfg.seeds].to_vec();
        let crowd: Vec<HostId> = pool[cfg.seeds..cfg.seeds + cfg.joiners].to_vec();

        let mut actions = Vec::new();
        // Live seeds join over the warmup. The first one bootstraps via
        // fallback (nobody to discover yet); the rest discover through
        // the already-joined seeds.
        for &h in &live {
            let t = rng.gen_range(0.0..cfg.warmup_s);
            actions.push((SimTime::from_ms(t * 1000.0), Action::Join(h)));
        }
        actions.push((SimTime::from_ms(cfg.warmup_s * 1000.0), Action::Measure));

        // The flash crowd.
        for &h in &crowd {
            let t = cfg.crowd_at_s + rng.gen_range(0.0..cfg.spread_s.max(1e-3));
            actions.push((SimTime::from_ms(t * 1000.0), Action::Join(h)));
        }

        // Seed churn mid-bootstrap: crash a fraction of the live seeds
        // while the crowd is still discovering through them.
        let n_churn = ((n_live as f64 * cfg.seed_churn_frac).round() as usize).min(n_live - 1);
        let t_churn = SimTime::from_ms((cfg.crowd_at_s + cfg.churn_delay_s) * 1000.0);
        let mut churnable = live.clone();
        shuffle(&mut churnable, &mut rng);
        for &h in &churnable[..n_churn] {
            actions.push((t_churn, Action::Crash(h)));
        }

        // Measurements over the settle window, plus a final snapshot.
        let horizon = cfg.crowd_at_s + cfg.settle_s;
        let mut k = 1usize;
        let mut last_measure = cfg.warmup_s;
        loop {
            let t = cfg.crowd_at_s + k as f64 * cfg.measure_every_s;
            if t > horizon {
                break;
            }
            actions.push((SimTime::from_ms(t * 1000.0), Action::Measure));
            last_measure = t;
            k += 1;
        }
        if last_measure < horizon {
            actions.push((SimTime::from_ms(horizon * 1000.0), Action::Measure));
        }

        let end = SimTime::from_ms((horizon + 1.0) * 1000.0);
        let crash_seed = rng.gen();
        let mut sc = Self::finish(actions, end, crash_seed);
        // Everyone gets the same bootstrap set, stale entries mixed in.
        let mut bootstrap: Vec<HostId> = live.into_iter().chain(stale).collect();
        shuffle(&mut bootstrap, &mut rng);
        sc.discovery = Some(DiscoveryConfig {
            seeds: bootstrap,
            ..cfg.discovery.clone()
        });
        sc
    }

    /// Hand-built schedule from explicit actions (sorted and finalized
    /// like the generated scenarios). Hand-built scenarios have no
    /// generating RNG, so `crash_seed` starts at 0; set the field
    /// directly if a different crash stream is wanted.
    pub fn from_actions(actions: Vec<(SimTime, Action)>, end: SimTime) -> Self {
        Self::finish(actions, end, 0)
    }

    /// Convert a fraction of the leave actions into ungraceful crashes.
    /// Crash selection draws from the scenario's own RNG stream
    /// ([`Scenario::crash_seed`]), so the seed that generated the
    /// schedule fully determines the result. `frac` in `[0, 1]`.
    pub fn with_crashes(self, frac: f64) -> Self {
        let seed = self.crash_seed;
        self.convert_crashes(frac, seed)
    }

    fn convert_crashes(mut self, frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0063_7261_7368);
        for (_, a) in self.actions.iter_mut() {
            if let Action::Leave(h) = *a {
                if rng.gen::<f64>() < frac {
                    *a = Action::Crash(h);
                }
            }
        }
        self
    }

    /// Number of crash actions.
    pub fn num_crashes(&self) -> usize {
        self.actions
            .iter()
            .filter(|(_, a)| matches!(a, Action::Crash(_)))
            .count()
    }

    fn finish(mut actions: Vec<(SimTime, Action)>, end: SimTime, crash_seed: u64) -> Self {
        // Stable sort keeps leave-before-join ordering at equal times.
        actions.sort_by_key(|(t, _)| *t);
        Self {
            actions,
            end,
            crash_seed,
            discovery: None,
        }
    }

    /// Number of join actions.
    pub fn num_joins(&self) -> usize {
        self.actions
            .iter()
            .filter(|(_, a)| matches!(a, Action::Join(_)))
            .count()
    }

    /// Number of leave actions.
    pub fn num_leaves(&self) -> usize {
        self.actions
            .iter()
            .filter(|(_, a)| matches!(a, Action::Leave(_)))
            .count()
    }

    /// Number of measurement points.
    pub fn num_measures(&self) -> usize {
        self.actions
            .iter()
            .filter(|(_, a)| matches!(a, Action::Measure))
            .count()
    }
}

fn shuffle(v: &mut [HostId], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (1..=n).map(HostId).collect()
    }

    #[test]
    fn churn_counts_and_membership() {
        let cfg = ChurnConfig {
            members: 20,
            warmup_s: 100.0,
            slot_s: 50.0,
            slots: 5,
            churn_pct: 10.0,
        };
        let sc = Scenario::churn(&cfg, &hosts(40), 1);
        // 20 initial joins + 2 per slot; 2 leaves per slot.
        assert_eq!(sc.num_joins(), 20 + 2 * 5);
        assert_eq!(sc.num_leaves(), 2 * 5);
        assert_eq!(sc.num_measures(), 6);
        // Replay membership: a host never leaves unless in, never joins
        // while in.
        let mut inside = std::collections::HashSet::new();
        for (_, a) in &sc.actions {
            match a {
                Action::Join(h) => assert!(inside.insert(*h), "double join {h}"),
                Action::Leave(h) | Action::Crash(h) => {
                    assert!(inside.remove(h), "phantom leave {h}")
                }
                Action::Measure => {}
            }
        }
        assert_eq!(inside.len(), 20);
        // Time-ordered.
        for w in sc.actions.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(sc.end >= sc.actions.last().unwrap().0);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let cfg = ChurnConfig {
            members: 10,
            warmup_s: 10.0,
            slot_s: 10.0,
            slots: 3,
            churn_pct: 20.0,
        };
        let a = Scenario::churn(&cfg, &hosts(30), 7);
        let b = Scenario::churn(&cfg, &hosts(30), 7);
        assert_eq!(a.actions, b.actions);
        let c = Scenario::churn(&cfg, &hosts(30), 8);
        assert_ne!(a.actions, c.actions);
    }

    #[test]
    fn zero_churn_has_no_leaves() {
        let cfg = ChurnConfig {
            members: 10,
            warmup_s: 10.0,
            slot_s: 10.0,
            slots: 4,
            churn_pct: 0.0,
        };
        let sc = Scenario::churn(&cfg, &hosts(10), 3);
        assert_eq!(sc.num_leaves(), 0);
        assert_eq!(sc.num_joins(), 10);
        assert_eq!(sc.num_measures(), 5);
    }

    #[test]
    fn crashes_derive_from_the_scenario_seed_alone() {
        let cfg = ChurnConfig {
            members: 12,
            warmup_s: 10.0,
            slot_s: 10.0,
            slots: 4,
            churn_pct: 25.0,
        };
        let a = Scenario::churn(&cfg, &hosts(24), 5).with_crashes(0.5);
        let b = Scenario::churn(&cfg, &hosts(24), 5).with_crashes(0.5);
        assert_eq!(a.actions, b.actions, "one seed, one schedule");
        assert!(a.num_crashes() > 0);
        // A different scenario seed flips the crash stream too.
        let c = Scenario::churn(&cfg, &hosts(24), 6);
        assert_ne!(a.crash_seed, c.crash_seed);
        // Extremes are exact regardless of the stream.
        let none = Scenario::churn(&cfg, &hosts(24), 5).with_crashes(0.0);
        assert_eq!(none.num_crashes(), 0);
        let all = Scenario::churn(&cfg, &hosts(24), 5).with_crashes(1.0);
        assert_eq!(all.num_leaves(), 0);
        assert_eq!(all.num_crashes(), none.num_leaves());
    }

    #[test]
    fn from_actions_sorts_and_is_crashable() {
        let acts = vec![
            (SimTime::from_secs(10), Action::Leave(HostId(1))),
            (SimTime::from_secs(5), Action::Join(HostId(1))),
        ];
        let sc = Scenario::from_actions(acts, SimTime::from_secs(20));
        assert!(matches!(sc.actions[0].1, Action::Join(_)));
        let crashed = sc.with_crashes(1.0);
        assert_eq!(crashed.num_crashes(), 1);
    }

    fn soak_cfg() -> SoakConfig {
        SoakConfig {
            members: 16,
            warmup_s: 60.0,
            duration_s: 300.0,
            churn_rate_per_s: 0.05,
            burst_every_s: 100.0,
            burst_frac: 0.25,
            measure_every_s: 50.0,
            quiet_tail_s: 60.0,
        }
    }

    #[test]
    fn soak_membership_replay_is_consistent() {
        let sc = Scenario::soak(&soak_cfg(), &hosts(16), 11);
        // Every departure is eventually matched by a rejoin, so joins =
        // initial population + departures.
        assert_eq!(
            sc.num_joins(),
            16 + sc.num_leaves() + sc.num_crashes(),
            "every departed member rejoins"
        );
        assert!(sc.num_crashes() > 0, "bursts produce crashes");
        assert!(sc.num_leaves() > 0, "poisson churn produces leaves");
        // Replay: never join while in, never depart while out.
        let mut inside = std::collections::HashSet::new();
        for (_, a) in &sc.actions {
            match a {
                Action::Join(h) => assert!(inside.insert(*h), "double join {h}"),
                Action::Leave(h) | Action::Crash(h) => {
                    assert!(inside.remove(h), "phantom departure {h}")
                }
                Action::Measure => {}
            }
        }
        // Quiet tail lets every rejoin land: full population at the end.
        assert_eq!(inside.len(), 16);
        for w in sc.actions.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(sc.end >= sc.actions.last().unwrap().0);
    }

    #[test]
    fn soak_bursts_are_correlated_in_time() {
        let sc = Scenario::soak(&soak_cfg(), &hosts(16), 3);
        // Crashes from one burst share a timestamp; with 16 members and
        // burst_frac 0.25 each burst crashes several at once.
        let mut by_time = std::collections::HashMap::new();
        for (t, a) in &sc.actions {
            if matches!(a, Action::Crash(_)) {
                *by_time.entry(*t).or_insert(0usize) += 1;
            }
        }
        assert!(
            by_time.values().any(|&n| n >= 2),
            "no same-timestamp crash burst found: {by_time:?}"
        );
    }

    #[test]
    fn soak_is_deterministic_per_seed() {
        let a = Scenario::soak(&soak_cfg(), &hosts(16), 7);
        let b = Scenario::soak(&soak_cfg(), &hosts(16), 7);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.crash_seed, b.crash_seed);
        let c = Scenario::soak(&soak_cfg(), &hosts(16), 8);
        assert_ne!(a.actions, c.actions);
    }

    #[test]
    fn soak_mechanism_knobs_disable_cleanly() {
        let cfg = SoakConfig {
            churn_rate_per_s: 0.0,
            burst_every_s: 0.0,
            ..soak_cfg()
        };
        let sc = Scenario::soak(&cfg, &hosts(16), 5);
        assert_eq!(sc.num_leaves(), 0);
        assert_eq!(sc.num_crashes(), 0);
        assert_eq!(sc.num_joins(), 16);
        assert!(sc.num_measures() > 0);
    }

    fn flash_cfg() -> FlashCrowdConfig {
        FlashCrowdConfig {
            seeds: 4,
            stale_frac: 0.25,
            joiners: 12,
            warmup_s: 30.0,
            crowd_at_s: 60.0,
            spread_s: 5.0,
            seed_churn_frac: 0.5,
            churn_delay_s: 2.0,
            settle_s: 90.0,
            measure_every_s: 30.0,
            discovery: DiscoveryConfig::default(),
        }
    }

    #[test]
    fn flash_crowd_shape_and_bootstrap_set() {
        let sc = Scenario::flash_crowd(&flash_cfg(), &hosts(30), 11);
        // 3 live seeds + 12 crowd joiners; 1 stale seed never joins.
        assert_eq!(sc.num_joins(), 3 + 12);
        // Half the live seeds (rounded) crash mid-bootstrap.
        assert_eq!(sc.num_crashes(), 2);
        assert_eq!(sc.num_leaves(), 0);
        assert!(sc.num_measures() >= 3);
        let dc = sc.discovery.as_ref().expect("bootstrap set installed");
        assert_eq!(dc.seeds.len(), 4, "k seeds, stale included");
        // The stale entry is in the bootstrap set but never joins.
        let joined: std::collections::HashSet<HostId> = sc
            .actions
            .iter()
            .filter_map(|(_, a)| match a {
                Action::Join(h) => Some(*h),
                _ => None,
            })
            .collect();
        let stale: Vec<&HostId> = dc.seeds.iter().filter(|h| !joined.contains(h)).collect();
        assert_eq!(stale.len(), 1);
        for w in sc.actions.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(sc.end >= sc.actions.last().unwrap().0);
    }

    #[test]
    fn flash_crowd_is_deterministic_per_seed() {
        let a = Scenario::flash_crowd(&flash_cfg(), &hosts(30), 7);
        let b = Scenario::flash_crowd(&flash_cfg(), &hosts(30), 7);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.discovery, b.discovery);
        let c = Scenario::flash_crowd(&flash_cfg(), &hosts(30), 8);
        assert_ne!(a.actions, c.actions);
    }

    #[test]
    fn flash_crowd_keeps_a_live_seed_at_extremes() {
        // stale_frac near 1 and full seed churn must still leave one
        // live, uncrashed seed (the assertions clamp).
        let cfg = FlashCrowdConfig {
            seeds: 3,
            stale_frac: 0.9,
            seed_churn_frac: 1.0,
            ..flash_cfg()
        };
        let sc = Scenario::flash_crowd(&cfg, &hosts(30), 5);
        // 2 stale (clamped to k-1), 1 live seed, 0 crashes (clamped to
        // n_live-1 = 0).
        assert_eq!(sc.num_joins(), 1 + 12);
        assert_eq!(sc.num_crashes(), 0);
    }

    #[test]
    fn generated_scenarios_carry_no_discovery_by_default() {
        let sc = Scenario::growth(5, 2, 100.0, &hosts(10), 1);
        assert!(sc.discovery.is_none());
        let sc = Scenario::soak(&soak_cfg(), &hosts(16), 1);
        assert!(sc.discovery.is_none());
    }

    #[test]
    fn growth_scenario_shape() {
        let sc = Scenario::growth(50, 10, 500.0, &hosts(500), 2);
        assert_eq!(sc.num_joins(), 500);
        assert_eq!(sc.num_leaves(), 0);
        assert_eq!(sc.num_measures(), 10);
        // Measures come after the joins of their batch.
        let mut joins_seen = 0;
        let mut measures_seen = 0;
        for (_, a) in &sc.actions {
            match a {
                Action::Join(_) => joins_seen += 1,
                Action::Measure => {
                    measures_seen += 1;
                    assert!(joins_seen >= measures_seen * 50);
                }
                _ => {}
            }
        }
    }
}
