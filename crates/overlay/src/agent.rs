//! The message-driven peer agent.
//!
//! [`ProtocolAgent`] is the generic peer: it runs the join walk of
//! [`crate::walk`] under a protocol-specific [`WalkPolicy`], answers
//! queries from other walkers, forwards the stream to its children,
//! reconnects at the grandparent when orphaned (§3.3), optionally
//! refines periodically (§3.4), and recovers from "dark" subtrees via a
//! data-timeout watchdog (a standard liveness mechanism real streaming
//! overlays need; the paper's simulator sidesteps it by making leaves
//! atomic).

use crate::coords::{CoordSample, CoordsConfig, VivaldiState};
use crate::core::CoreIo;
use crate::msg::{ChildEntry, ConnKind, ConnResult, Msg};
use crate::peer::PeerState;
use crate::repair::{ChunkClass, GapTracker, RepairConfig, RetransmitRing};
use crate::stats::RunStats;
use crate::walk::{Walk, WalkConfig, WalkOutcome, WalkPolicy, WalkPurpose, WALK_TOKEN_BIT};
use rand::Rng;
use std::collections::VecDeque;
use vdm_netsim::{HostId, SendClass, SimTime};

/// Timer token for the periodic refinement trigger.
pub const REFINE_TOKEN: u64 = 1 << 61;
/// Timer token for the data-timeout watchdog.
pub const DATA_WATCH_TOKEN: u64 = 1 << 60;
/// Timer token for retrying a failed walk.
pub const RETRY_TOKEN: u64 = 1 << 59;
/// Timer token for the heartbeat/pruning cycle.
pub const HEARTBEAT_TOKEN: u64 = 1 << 58;
/// Timer token for draining the admission queue.
pub const ADMIT_TOKEN: u64 = 1 << 57;
/// Timer-token namespace bit for failover attempt deadlines (the low
/// bits carry the attempt nonce, which stays far below this bit).
pub const FAILOVER_TOKEN_BIT: u64 = 1 << 56;
/// Timer token for the gap-repair NACK scheduler.
pub const REPAIR_TOKEN: u64 = 1 << 55;
/// Timer-token namespace bit for bootstrap-discovery probe deadlines
/// (the low bits carry the probe nonce, which stays far below this
/// bit).
pub const DISCOVERY_TOKEN_BIT: u64 = 1 << 54;

/// Heartbeat settings for the ungraceful-failure extension: children
/// beacon their parent every `period`; parents prune children silent
/// for `timeout`.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// Beacon interval.
    pub period: SimTime,
    /// Silence threshold after which a child is presumed crashed.
    pub timeout: SimTime,
}

/// Proactive-resilience settings: the ancestor list gossiped down the
/// tree and the ranked backup-parent candidate set harvested from walk
/// probes. An orphan first tries direct connection requests at its
/// candidates/ancestors (milliseconds) and only falls back to the §3.3
/// grandparent walk when all of them are dead, full, or exhausted.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Ancestors retained (root-path suffix, nearest-first).
    pub max_ancestors: usize,
    /// Backup-parent candidates retained (cheapest-first).
    pub max_candidates: usize,
    /// Candidates unprobed for longer than this are dropped.
    pub candidate_ttl: SimTime,
    /// Per-attempt deadline of a direct failover connection request.
    pub failover_timeout: SimTime,
    /// Direct attempts before giving up and walking.
    pub max_attempts: usize,
    /// Order failover targets by virtual-coordinate distance instead of
    /// measured-vdist-then-ancestor order (coordinate-embedding
    /// extension; only effective when the agent runs an embedding).
    pub coord_ranked: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_ancestors: 4,
            max_candidates: 3,
            candidate_ttl: SimTime::from_secs(180),
            failover_timeout: SimTime::from_secs(2),
            max_attempts: 3,
            coord_ranked: false,
        }
    }
}

/// Rejoin-storm admission control: a token bucket over plain new-child
/// admissions plus a bounded wait queue. Correlated crashes produce a
/// thundering herd of rejoin walks; throttling smooths the herd into
/// the tree instead of letting every interior node thrash, and
/// overflow is shed to siblings via the normal redirect path.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Sustained admissions per second.
    pub rate_per_s: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Queue slots for joiners awaiting a token.
    pub queue: usize,
    /// Queued joiners older than this are shed (their walk has long
    /// timed out and restarted elsewhere).
    pub max_wait: SimTime,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate_per_s: 2.0,
            burst: 4.0,
            queue: 8,
            max_wait: SimTime::from_secs(3),
        }
    }
}

/// Agent-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct AgentConfig {
    /// Join-walk mechanics (timeouts, retries).
    pub walk: WalkConfig,
    /// Refinement period (§3.4: 3 minutes in simulation, 5 minutes on
    /// PlanetLab); `None` disables refinement, which is the paper's
    /// default for VDM ("In our regular experiments, we don't use
    /// refinement").
    pub refine_period: Option<SimTime>,
    /// Maintain and propagate root paths (HMTP needs them for
    /// refinement; VDM does not and saves the overhead).
    pub maintain_root_path: bool,
    /// Declare the subtree dark and rejoin if no stream data arrives for
    /// this long while connected. `None` disables the watchdog (for
    /// runs without a stream).
    pub data_timeout: Option<SimTime>,
    /// Delay before retrying after a completely failed walk.
    pub retry_delay: SimTime,
    /// Exponential multiplier on `retry_delay` per consecutive failed
    /// walk (`1.0` keeps the fixed delay; chaos runs back off so a
    /// partitioned node doesn't flood the cut). Jitter follows
    /// `walk.jitter_frac`.
    pub retry_backoff: f64,
    /// Record a delivery-gap sample when the spacing between two
    /// accepted stream chunks reaches this threshold (recovery
    /// observability for chaos runs); `None` disables recording.
    pub gap_threshold: Option<SimTime>,
    /// Amplitude of the uniform noise on loss-probe estimates
    /// (loss-based virtual distances only).
    pub loss_probe_noise: f64,
    /// Child-liveness heartbeats (ungraceful-failure extension);
    /// `None` matches the paper's graceful-leave model.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Backup-parent failover + ancestor-list recovery
    /// (proactive-resilience extension); `None` keeps the paper's pure
    /// grandparent-walk recovery and, crucially, the exact event
    /// sequence of earlier builds.
    pub resilience: Option<ResilienceConfig>,
    /// Rejoin-storm admission control; `None` admits every join
    /// immediately as before.
    pub admission: Option<AdmissionConfig>,
    /// NACK-based stream gap repair; `None` keeps the fire-and-forget
    /// data plane.
    pub repair: Option<RepairConfig>,
    /// Cross-tree repair serving budget (multi-tree extension): a
    /// token bucket over [`Msg::CrossNack`] retransmissions, reusing
    /// the admission-control shape so sibling-tree pulls cannot starve
    /// a parent's own subtree. `None` disables serving (and, with it,
    /// the whole cross-tree path in single-tree runs). Requires
    /// `repair` to be set as well.
    pub cross_repair: Option<AdmissionConfig>,
    /// Vivaldi-style virtual-coordinate embedding (coordinate-guided
    /// joins). `None` — the default — keeps every pre-coordinate byte
    /// sequence: no piggyback fields, no state, no extra RNG draws.
    pub coords: Option<CoordsConfig>,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            walk: WalkConfig::default(),
            refine_period: None,
            maintain_root_path: false,
            data_timeout: Some(SimTime::from_secs(30)),
            retry_delay: SimTime::from_secs(5),
            retry_backoff: 1.0,
            gap_threshold: None,
            loss_probe_noise: 0.0,
            heartbeat: None,
            resilience: None,
            admission: None,
            repair: None,
            cross_repair: None,
            coords: None,
        }
    }
}

/// Everything an agent may touch during a callback.
pub struct Ctx<'a> {
    /// The agent's own host id.
    pub me: HostId,
    /// The effect sink (time, sends, timers, run RNG): the event
    /// engine in simulation, a buffered queue under a real runtime
    /// (see [`crate::core`]).
    pub io: &'a mut dyn CoreIo,
    /// Shared run statistics.
    pub stats: &'a mut RunStats,
    /// Noise amplitude for loss estimates (copied from the agent
    /// config by the driver).
    pub loss_probe_noise: f64,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.io.now()
    }

    /// Send a message (control or data, classified automatically).
    pub fn send(&mut self, to: HostId, msg: Msg) {
        if to == self.me {
            return;
        }
        let class = if msg.is_data() {
            SendClass::Data
        } else {
            SendClass::Control
        };
        self.io.send_msg(self.me, to, msg, class);
    }

    /// Arm a timer for this host.
    pub fn timer(&mut self, delay: SimTime, token: u64) {
        self.io.set_timer(self.me, delay, token);
    }

    /// Emit a structured trace event stamped with the current
    /// simulation time. No-op (the closure never runs) unless the
    /// io carries an enabled [`vdm_trace::Tracer`].
    #[inline]
    pub fn trace(&self, f: impl FnOnce() -> vdm_trace::TraceEvent) {
        self.io.tracer().emit(self.io.now().0, f);
    }

    /// Estimate the path loss probability toward `to` (models a probe
    /// train: true path loss plus bounded uniform noise). Used only by
    /// loss-based virtual metrics (Chapter 4); the paper likewise
    /// obtains loss estimates from a measurement service in simulation.
    pub fn estimate_loss(&mut self, to: HostId) -> f64 {
        let p = self.io.path_loss(self.me, to);
        if self.loss_probe_noise > 0.0 {
            let n = self.loss_probe_noise;
            let noise = self.io.rng().gen_range(-n..n);
            (p + noise).clamp(0.0, 0.99)
        } else {
            p
        }
    }
}

/// The driver-facing agent interface.
pub trait OverlayAgent {
    /// The driver tells the peer to join the session.
    fn on_join_cmd(&mut self, ctx: &mut Ctx<'_>);
    /// The driver tells the peer to leave gracefully (notify parent and
    /// children, §3.3).
    fn on_leave_cmd(&mut self, ctx: &mut Ctx<'_>);
    /// A message arrived.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, from: HostId, msg: Msg);
    /// A timer fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);
    /// Install bootstrap-discovery state (called by the driver before
    /// `on_join_cmd` when the scenario carries a
    /// [`crate::discovery::DiscoveryConfig`]). Default: ignore — agents
    /// without discovery support keep the omniscient source-anchored
    /// join.
    fn configure_discovery(&mut self, _cfg: &crate::discovery::DiscoveryConfig, _now: SimTime) {}
    /// Source only: emit one stream chunk to the children.
    fn emit_data(&mut self, ctx: &mut Ctx<'_>, seq: u64);
    /// Current parent.
    fn parent(&self) -> Option<HostId>;
    /// Current children.
    fn children(&self) -> Vec<HostId>;
    /// Attached to the tree?
    fn connected(&self) -> bool;
    /// Out-degree limit.
    fn degree_limit(&self) -> u32;
}

/// Builds agents for the driver; one factory per protocol under test.
pub trait AgentFactory {
    /// The agent type this factory produces.
    type Agent: OverlayAgent;
    /// Create the agent for `host` (its `incarnation`-th session entry).
    fn make(
        &self,
        host: HostId,
        source: HostId,
        degree_limit: u32,
        incarnation: u32,
    ) -> Self::Agent;
}

/// One ranked backup-parent candidate (resilience extension).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    host: HostId,
    vdist: crate::VDist,
    /// When the walk last measured this peer (freshness stamp).
    seen_at: SimTime,
}

/// An in-progress direct failover: one connection request in flight at
/// `target`, remaining targets queued behind it.
#[derive(Clone, Debug)]
struct Failover {
    /// Remaining targets as `(host, measured_vdist)`; unmeasured
    /// ancestors carry `VDist::INFINITY` (refreshed on repeat requests
    /// and refinement).
    targets: VecDeque<(HostId, crate::VDist)>,
    /// Host of the in-flight request.
    target: HostId,
    /// Nonce of the in-flight request (ties the response and the
    /// deadline timer to this attempt).
    nonce: u64,
    /// Measured distance of the in-flight request.
    pending_vdist: crate::VDist,
    /// Attempts fired so far.
    attempts: usize,
}

/// A joiner parked in the admission queue.
#[derive(Clone, Copy, Debug)]
struct QueuedJoin {
    from: HostId,
    nonce: u64,
    vdist: crate::VDist,
    at: SimTime,
}

/// The generic protocol peer; `P` supplies the protocol behaviour.
pub struct ProtocolAgent<P: WalkPolicy> {
    state: PeerState,
    cfg: AgentConfig,
    policy: P,
    source: HostId,
    walk: Option<Walk>,
    /// Next walk generation base (nonce namespace), unique across
    /// incarnations.
    gen_next: u64,
    /// Time of the original join command (startup timing anchor).
    join_cmd_at: Option<SimTime>,
    /// Time we were last orphaned (reconnection timing anchor).
    orphaned_at: Option<SimTime>,
    ever_connected: bool,
    refine_armed: bool,
    hb_armed: bool,
    last_data_at: SimTime,
    /// Last heartbeat (or admission) time per child.
    hb_seen: Vec<(HostId, SimTime)>,
    /// Consecutive failed walks (drives retry backoff).
    fail_streak: u32,
    /// Time of the last accepted stream chunk, across reconnections
    /// (delivery-gap observability; `last_data_at` is reset on adoption
    /// to give the watchdog a grace period, so it can't measure gaps).
    last_chunk_at: Option<SimTime>,
    /// Highest [`Msg::ParentChange`] generation stamp seen per sender:
    /// duplicated or stale reordered splice notices are dropped.
    pc_seen: Vec<(HostId, u64)>,
    /// Nearest-first ancestor anchors (resilience extension; empty when
    /// the mechanism is off).
    ancestors: Vec<HostId>,
    /// Ranked backup-parent candidates harvested from walk probes.
    candidates: Vec<Candidate>,
    /// In-progress direct failover (mutually exclusive with a walk).
    failover: Option<Failover>,
    /// Admission token bucket: current tokens and last refill time.
    admit_tokens: f64,
    admit_refilled_at: SimTime,
    /// Joiners awaiting an admission token.
    admit_queue: VecDeque<QueuedJoin>,
    /// Whether an [`ADMIT_TOKEN`] timer is in flight.
    admit_armed: bool,
    /// Recently forwarded chunks, for answering NACKs (gap repair).
    ring: RetransmitRing,
    /// Chunks we are missing ourselves (gap repair).
    gaps: GapTracker,
    /// Silent stripe holes pulled from a sibling tree (multi-tree cross
    /// repair). Kept apart from `gaps` so the regular repair timer never
    /// burns NACK retries on a dead or starving parent for holes only a
    /// sibling tree can fill.
    cross_gaps: GapTracker,
    /// Whether a [`REPAIR_TOKEN`] timer is in flight.
    repair_armed: bool,
    /// `gaps.lost + cross_gaps.lost` already pushed into the shared run
    /// stats.
    lost_reported: u64,
    /// Cross-tree serving bucket: current tokens and last refill time
    /// (multi-tree extension; inert without `cfg.cross_repair`).
    cross_tokens: f64,
    cross_refilled_at: SimTime,
    /// Bootstrap-discovery state (`None` keeps the omniscient
    /// source-anchored join byte-identical to pre-discovery runs).
    discovery: Option<crate::discovery::DiscoveryState>,
    /// The host's own Vivaldi state (`None` when the embedding is off).
    /// Handed to each walk by value and copied back on walk finish —
    /// only walks measure RTTs, so no updates race the copy.
    vivaldi: Option<VivaldiState>,
    /// Last piggybacked coordinate sample per peer, bounded; feeds
    /// failover-target ranking and gossip coord attachment.
    peer_coords: Vec<(HostId, CoordSample)>,
}

/// Bound on [`ProtocolAgent::peer_coords`]: oldest entries are evicted
/// first. Sized to a few view/candidate sets' worth of peers.
const PEER_COORD_CAP: usize = 64;

impl<P: WalkPolicy> ProtocolAgent<P> {
    /// New agent.
    pub fn new(
        host: HostId,
        source: HostId,
        degree_limit: u32,
        incarnation: u32,
        cfg: AgentConfig,
        policy: P,
    ) -> Self {
        Self {
            state: PeerState::new(host, degree_limit, host == source),
            cfg,
            policy,
            source,
            walk: None,
            gen_next: (incarnation as u64 + 1) << 32,
            join_cmd_at: None,
            orphaned_at: None,
            ever_connected: false,
            refine_armed: false,
            hb_armed: false,
            last_data_at: SimTime::ZERO,
            hb_seen: Vec::new(),
            fail_streak: 0,
            last_chunk_at: None,
            pc_seen: Vec::new(),
            ancestors: Vec::new(),
            candidates: Vec::new(),
            failover: None,
            admit_tokens: cfg.admission.map_or(0.0, |a| a.burst),
            admit_refilled_at: SimTime::ZERO,
            admit_queue: VecDeque::new(),
            admit_armed: false,
            ring: RetransmitRing::new(cfg.repair.map_or(1, |r| r.ring)),
            gaps: GapTracker::default(),
            cross_gaps: GapTracker::default(),
            repair_armed: false,
            lost_reported: 0,
            cross_tokens: cfg.cross_repair.map_or(0.0, |a| a.burst),
            cross_refilled_at: SimTime::ZERO,
            discovery: None,
            vivaldi: cfg.coords.map(|c| VivaldiState::new(&c)),
            peer_coords: Vec::new(),
        }
    }

    /// Fresh monotone generation stamp for outgoing control messages
    /// (shares the walk-nonce namespace, which `start_walk` re-bases
    /// past whatever we hand out here).
    fn stamp(&mut self) -> u64 {
        let g = self.gen_next;
        self.gen_next += 1;
        g
    }

    /// Retry delay with exponential backoff over the current fail
    /// streak and optional jitter.
    fn schedule_retry(&mut self, ctx: &mut Ctx<'_>) {
        let d = crate::walk::scaled_delay(
            self.cfg.retry_delay,
            self.cfg.retry_backoff,
            self.fail_streak,
            self.cfg.walk.jitter_frac,
            ctx,
        );
        self.fail_streak = self.fail_streak.saturating_add(1);
        ctx.timer(d, RETRY_TOKEN);
    }

    /// Record child liveness (admission counts as a beacon).
    fn note_child_alive(&mut self, c: HostId, now: SimTime) {
        if let Some(e) = self.hb_seen.iter_mut().find(|(h, _)| *h == c) {
            e.1 = now;
        } else {
            self.hb_seen.push((c, now));
        }
    }

    fn arm_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(hb) = self.cfg.heartbeat {
            if !self.hb_armed {
                self.hb_armed = true;
                ctx.timer(hb.period, HEARTBEAT_TOKEN);
            }
        }
    }

    /// Replace the ancestor list (nearest-first), dedup and truncate
    /// it, and gossip the change down to all children. No-op unless the
    /// resilience mechanism is on.
    fn set_ancestors(&mut self, ctx: &mut Ctx<'_>, proposal: Vec<HostId>) {
        let Some(r) = self.cfg.resilience else { return };
        let mut list: Vec<HostId> = Vec::new();
        for h in proposal {
            if h != self.state.host && !list.contains(&h) {
                list.push(h);
            }
        }
        list.truncate(r.max_ancestors);
        if list == self.ancestors {
            return;
        }
        self.ancestors = list;
        for (c, _) in self.state.children.clone() {
            ctx.send(
                c,
                Msg::AncestorList {
                    ancestors: self.ancestors.clone(),
                },
            );
        }
    }

    /// Send our current ancestor list to one (newly admitted) child.
    fn gossip_ancestors_to(&mut self, ctx: &mut Ctx<'_>, child: HostId) {
        if self.cfg.resilience.is_some() {
            ctx.send(
                child,
                Msg::AncestorList {
                    ancestors: self.ancestors.clone(),
                },
            );
        }
    }

    /// Our current coordinate sample for piggyback fields (`None` when
    /// the embedding is off — the field then serializes as absent and
    /// the message bytes match pre-coordinate builds).
    fn coord_sample(&self) -> Option<CoordSample> {
        self.vivaldi.map(|s| s.sample())
    }

    /// Cache a peer's piggybacked coordinate sample (bounded,
    /// most-recent wins) and mirror it into the discovery view so
    /// gossip forwards it.
    fn note_peer_coord(&mut self, h: HostId, sample: CoordSample) {
        if h == self.state.host {
            return;
        }
        if let Some(e) = self.peer_coords.iter_mut().find(|(p, _)| *p == h) {
            e.1 = sample;
        } else {
            if self.peer_coords.len() >= PEER_COORD_CAP {
                self.peer_coords.remove(0);
            }
            self.peer_coords.push((h, sample));
        }
        if let Some(d) = self.discovery.as_mut() {
            d.note_coord(h, sample);
        }
    }

    /// The last coordinate sample heard from `h`, if any.
    fn peer_coord_of(&self, h: HostId) -> Option<CoordSample> {
        self.peer_coords
            .iter()
            .find(|(p, _)| *p == h)
            .map(|&(_, s)| s)
    }

    /// Fold a walk's probe measurements into the ranked backup-parent
    /// candidate set (cheapest-first, freshness-stamped, bounded).
    fn merge_candidates(&mut self, harvest: &[(HostId, crate::VDist)], now: SimTime) {
        let Some(r) = self.cfg.resilience else { return };
        for &(h, d) in harvest {
            if h == self.state.host {
                continue;
            }
            if let Some(c) = self.candidates.iter_mut().find(|c| c.host == h) {
                c.vdist = d;
                c.seen_at = now;
            } else {
                self.candidates.push(Candidate {
                    host: h,
                    vdist: d,
                    seen_at: now,
                });
            }
        }
        self.candidates
            .retain(|c| now.saturating_sub(c.seen_at) <= r.candidate_ttl);
        self.candidates
            .sort_by(|a, b| a.vdist.total_cmp(&b.vdist).then(a.host.cmp(&b.host)));
        self.candidates.truncate(r.max_candidates);
    }

    /// Assemble the failover target list (fresh candidates cheapest
    /// first, then unmeasured ancestors nearest first) and fire the
    /// first direct connection request. Returns whether an attempt is
    /// now in flight; `false` means the caller should walk instead.
    fn start_failover(&mut self, ctx: &mut Ctx<'_>, dead: Option<HostId>) -> bool {
        let Some(r) = self.cfg.resilience else {
            return false;
        };
        let now = ctx.now();
        let me = self.state.host;
        let mut targets: VecDeque<(HostId, crate::VDist)> = VecDeque::new();
        for c in &self.candidates {
            if now.saturating_sub(c.seen_at) > r.candidate_ttl
                || c.host == me
                || Some(c.host) == dead
                || self.state.has_child(c.host)
                || targets.iter().any(|&(h, _)| h == c.host)
            {
                continue;
            }
            targets.push_back((c.host, c.vdist));
        }
        for &a in &self.ancestors {
            if a == me
                || Some(a) == dead
                || self.state.has_child(a)
                || targets.iter().any(|&(h, _)| h == a)
            {
                continue;
            }
            targets.push_back((a, crate::VDist::INFINITY));
        }
        if let (true, Some(v)) = (r.coord_ranked, self.vivaldi) {
            // Coordinate-ranked failover: try the target the embedding
            // predicts nearest first. Stable sort with unknown-sample
            // targets at INFINITY, so peers we never heard a coordinate
            // from keep their candidate/ancestor order among themselves.
            let me_coord = v.coord;
            let dist = |h: HostId| {
                self.peer_coords
                    .iter()
                    .find(|(p, _)| *p == h)
                    .map_or(f64::INFINITY, |&(_, s)| me_coord.dist(s.coord))
            };
            let mut v: Vec<(HostId, crate::VDist)> = targets.into();
            v.sort_by(|a, b| dist(a.0).total_cmp(&dist(b.0)));
            targets = v.into();
        }
        targets.truncate(r.max_attempts);
        if targets.is_empty() {
            return false;
        }
        self.failover = Some(Failover {
            targets,
            target: me,
            nonce: 0,
            pending_vdist: crate::VDist::INFINITY,
            attempts: 0,
        });
        self.failover_try_next(ctx)
    }

    /// Fire the next failover connection request. Clears the failover
    /// and returns `false` when targets or the attempt budget run out.
    fn failover_try_next(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let Some(r) = self.cfg.resilience else {
            self.failover = None;
            return false;
        };
        loop {
            let (target, vdist) = match self.failover.as_mut() {
                Some(f) if f.attempts < r.max_attempts => match f.targets.pop_front() {
                    Some(t) => {
                        f.attempts += 1;
                        t
                    }
                    None => {
                        self.failover = None;
                        return false;
                    }
                },
                _ => {
                    self.failover = None;
                    return false;
                }
            };
            if target == self.state.host || self.state.has_child(target) {
                continue;
            }
            let nonce = self.stamp();
            if let Some(f) = self.failover.as_mut() {
                f.target = target;
                f.nonce = nonce;
                f.pending_vdist = vdist;
            }
            ctx.stats.recovery.failover_attempts += 1;
            let attempt = self.failover.as_ref().map_or(0, |f| f.attempts) as u32;
            ctx.trace(|| vdm_trace::TraceEvent::FailoverAttempt {
                host: ctx.me.0,
                target: target.0,
                attempt,
            });
            let coord = self.coord_sample();
            ctx.send(
                target,
                Msg::ConnReq {
                    nonce,
                    kind: ConnKind::Child,
                    vdist,
                    coord,
                },
            );
            ctx.timer(r.failover_timeout, FAILOVER_TOKEN_BIT | nonce);
            return true;
        }
    }

    /// Failover exhausted: fall back to the §3.3 reconnection walk.
    fn failover_fall_back_to_walk(&mut self, ctx: &mut Ctx<'_>) {
        self.failover = None;
        ctx.trace(|| vdm_trace::TraceEvent::FailoverResult {
            host: ctx.me.0,
            ok: false,
            parent: None,
        });
        let start = self.state.grandparent.unwrap_or(self.source);
        self.start_walk(ctx, WalkPurpose::Reconnect, start);
    }

    /// Handle the response to an in-flight failover request.
    fn on_failover_resp(&mut self, ctx: &mut Ctx<'_>, from: HostId, result: ConnResult) {
        match result {
            ConnResult::Accepted {
                grandparent,
                adopted: _,
                root_path,
            } => {
                let f = self.failover.take().expect("active failover");
                if self.state.has_child(from) {
                    // Mutual-adoption race, as in `finish_walk`: undo the
                    // acceptor's bookkeeping and keep trying elsewhere.
                    ctx.send(from, Msg::ChildLeave);
                    self.failover = Some(f);
                    if !self.failover_try_next(ctx) {
                        self.failover_fall_back_to_walk(ctx);
                    }
                    return;
                }
                let started = self.orphaned_at.unwrap_or_else(|| ctx.now());
                let took = (ctx.now() - started).as_secs();
                ctx.stats.reconnection_s.push(took);
                ctx.stats
                    .recovery
                    .reconnections
                    .push((ctx.now().as_secs(), took));
                ctx.stats.recovery.failover_successes += 1;
                ctx.stats.join_completions += 1;
                ctx.trace(|| vdm_trace::TraceEvent::FailoverResult {
                    host: ctx.me.0,
                    ok: true,
                    parent: Some(from.0),
                });
                self.adopt_parent(
                    ctx,
                    from,
                    grandparent,
                    root_path,
                    Vec::new(),
                    f.pending_vdist,
                );
            }
            ConnResult::Redirect { next } => {
                // The target is full but offered its closest child: try
                // it ahead of the remaining targets.
                if next != self.state.host {
                    if let Some(f) = self.failover.as_mut() {
                        f.targets.push_front((next, crate::VDist::INFINITY));
                    }
                }
                if !self.failover_try_next(ctx) {
                    self.failover_fall_back_to_walk(ctx);
                }
            }
            ConnResult::Rejected => {
                ctx.stats.rejected_conns += 1;
                if !self.failover_try_next(ctx) {
                    self.failover_fall_back_to_walk(ctx);
                }
            }
        }
    }

    /// Refill the admission token bucket up to `now`.
    fn admit_refill(&mut self, now: SimTime, a: &AdmissionConfig) {
        let dt = now.saturating_sub(self.admit_refilled_at).as_secs();
        self.admit_tokens = (self.admit_tokens + dt * a.rate_per_s).min(a.burst);
        self.admit_refilled_at = now;
    }

    /// Arm the queue-drain timer for roughly when the next token lands.
    fn arm_admit_timer(&mut self, ctx: &mut Ctx<'_>, a: &AdmissionConfig) {
        if self.admit_armed {
            return;
        }
        self.admit_armed = true;
        let deficit = (1.0 - self.admit_tokens).max(0.0);
        let secs = if a.rate_per_s > 0.0 {
            deficit / a.rate_per_s
        } else {
            1.0
        };
        ctx.timer(SimTime::from_ms((secs * 1000.0).max(1.0)), ADMIT_TOKEN);
    }

    /// Admit queued joiners as tokens refill; shed stale or
    /// no-longer-valid entries.
    fn drain_admit_queue(&mut self, ctx: &mut Ctx<'_>, a: &AdmissionConfig) {
        let now = ctx.now();
        self.admit_refill(now, a);
        while let Some(&q) = self.admit_queue.front() {
            if now.saturating_sub(q.at) > a.max_wait {
                // The walker has long timed out and restarted; shed it
                // toward a sibling rather than ghost-admitting it.
                self.admit_queue.pop_front();
                ctx.stats.recovery.joins_shed += 1;
                ctx.trace(|| vdm_trace::TraceEvent::AdmissionShed {
                    host: ctx.me.0,
                    joiner: q.from.0,
                });
                self.redirect_or_reject(ctx, q.from, q.nonce);
                continue;
            }
            // Re-validate against current state: we may have filled up,
            // started a walk, or adopted the joiner as an ancestor
            // since it was queued.
            let ok = self.state.connected()
                && self.walk.is_none()
                && self.failover.is_none()
                && Some(q.from) != self.state.parent
                && !self.ancestors.contains(&q.from)
                && !self.state.has_child(q.from)
                && self.state.free_degree() > 0;
            if !ok {
                self.admit_queue.pop_front();
                ctx.send(
                    q.from,
                    Msg::ConnResp {
                        nonce: q.nonce,
                        result: ConnResult::Rejected,
                    },
                );
                continue;
            }
            if self.admit_tokens < 1.0 {
                break;
            }
            self.admit_queue.pop_front();
            self.admit_tokens -= 1.0;
            self.accept_new_child(ctx, q.from, q.nonce, q.vdist);
        }
        if !self.admit_queue.is_empty() {
            self.arm_admit_timer(ctx, a);
        }
    }

    /// Admit `from` as a plain new child and acknowledge it.
    fn accept_new_child(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        nonce: u64,
        vdist: crate::VDist,
    ) {
        self.state.add_child(from, vdist);
        self.note_child_alive(from, ctx.now());
        self.arm_heartbeat(ctx);
        let root_path = if self.cfg.maintain_root_path {
            self.own_path()
        } else {
            Vec::new()
        };
        ctx.send(
            from,
            Msg::ConnResp {
                nonce,
                result: ConnResult::Accepted {
                    grandparent: self.state.parent,
                    adopted: Vec::new(),
                    root_path,
                },
            },
        );
        self.gossip_ancestors_to(ctx, from);
    }

    /// Point the requester at our closest child (§3.2), or reject when
    /// we have none to offer.
    fn redirect_or_reject(&mut self, ctx: &mut Ctx<'_>, from: HostId, nonce: u64) {
        match self.state.closest_child(&[from]) {
            Some((next, _)) => ctx.send(
                from,
                Msg::ConnResp {
                    nonce,
                    result: ConnResult::Redirect { next },
                },
            ),
            None => ctx.send(
                from,
                Msg::ConnResp {
                    nonce,
                    result: ConnResult::Rejected,
                },
            ),
        }
    }

    /// Push newly declared-lost chunks into the shared run stats.
    fn sync_lost(&mut self, ctx: &mut Ctx<'_>) {
        let total = self.gaps.lost + self.cross_gaps.lost;
        let d = total - self.lost_reported;
        if d > 0 {
            ctx.stats.recovery.chunks_lost += d;
            self.lost_reported = total;
        }
    }

    /// Arm the NACK scheduler for the earliest missing-chunk deadline,
    /// keeping at most one timer in flight.
    fn arm_repair_timer(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.repair.is_none() || self.repair_armed {
            return;
        }
        if let Some(due) = self.gaps.next_due() {
            self.repair_armed = true;
            ctx.timer(due.saturating_sub(ctx.now()), REPAIR_TOKEN);
        }
    }

    /// Deliver one accepted chunk: count it, record gap observability
    /// (fresh arrivals only), refresh parent liveness, retain it for
    /// NACK answers, and forward downstream.
    fn deliver_chunk(&mut self, ctx: &mut Ctx<'_>, seq: u64, fresh: bool) {
        ctx.stats.received[ctx.me.idx()] += 1;
        let now = ctx.now();
        if fresh {
            if let (Some(thr), Some(prev)) = (self.cfg.gap_threshold, self.last_chunk_at) {
                let gap = now.saturating_sub(prev);
                if gap >= thr {
                    ctx.stats
                        .recovery
                        .delivery_gaps
                        .push((now.as_secs(), gap.as_secs()));
                }
            }
            self.last_chunk_at = Some(now);
        }
        self.last_data_at = now;
        if self.cfg.repair.is_some() {
            self.ring.record(seq);
        }
        self.forward_data(ctx, seq);
    }

    /// Peer state (for tests and diagnostics).
    pub fn state(&self) -> &PeerState {
        &self.state
    }

    /// Whether this incarnation ever attached to the tree (drivers use
    /// it to tell a mid-join newcomer from a cut-off subtree).
    /// Arrival time of the most recent stream chunk ([`SimTime::ZERO`]
    /// before the first); multi-tree sessions read this to detect a
    /// starving stripe.
    pub fn last_data_at(&self) -> SimTime {
        self.last_data_at
    }

    pub fn ever_connected(&self) -> bool {
        self.ever_connected
    }

    /// Gap-repair bookkeeping (for tests and diagnostics).
    pub fn gaps(&self) -> &GapTracker {
        &self.gaps
    }

    /// Cross-tree gap bookkeeping (for tests and diagnostics).
    pub fn cross_gaps(&self) -> &GapTracker {
        &self.cross_gaps
    }

    /// Multi-tree cross repair, driven by the session layer: while this
    /// peer is cut off from its stripe tree, the driver points it at a
    /// connected parent of the *sibling* tree that owns the stripe
    /// (`sibling`) and tells it how far the stripe has advanced
    /// (`latest`). Silent holes are registered (an orphaned subtree
    /// sees no watermark jump — without this, its gaps are invisible),
    /// then due NACKs go to the sibling instead of the missing parent.
    /// No-op unless both repair and cross-repair are configured.
    pub fn cross_repair_tick(&mut self, ctx: &mut Ctx<'_>, sibling: HostId, latest: u64) {
        let Some(rc) = self.cfg.repair else { return };
        if self.cfg.cross_repair.is_none() || !self.ever_connected || self.state.is_source {
            return;
        }
        self.cross_gaps
            .note_absent(latest, self.state.last_seq, ctx.now(), &rc);
        let batch = self.cross_gaps.due_nacks(ctx.now(), &rc);
        self.sync_lost(ctx);
        if !batch.is_empty() {
            ctx.stats.recovery.cross_nacks_sent += 1;
            ctx.trace(|| vdm_trace::TraceEvent::NackSent {
                host: ctx.me.0,
                parent: sibling.0,
                count: batch.len() as u32,
            });
            ctx.send(sibling, Msg::CrossNack { seqs: batch });
        }
    }

    /// The protocol policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn start_walk(&mut self, ctx: &mut Ctx<'_>, purpose: WalkPurpose, start: HostId) {
        let started_at = match purpose {
            WalkPurpose::Join => self.join_cmd_at.unwrap_or_else(|| ctx.now()),
            WalkPurpose::Reconnect => self.orphaned_at.unwrap_or_else(|| ctx.now()),
            WalkPurpose::Refine => ctx.now(),
        };
        let baseline = if purpose == WalkPurpose::Refine {
            self.state.parent_dist
        } else {
            None
        };
        let coords = match (self.vivaldi, self.cfg.coords) {
            (Some(s), Some(c)) => Some((s, c)),
            _ => None,
        };
        let w = Walk::start(
            purpose,
            start,
            self.source,
            started_at,
            self.cfg.walk,
            self.gen_next,
            baseline,
            coords,
            ctx,
        );
        self.gen_next = w.generation() + 1_000_000; // room for this walk's nonces
        self.walk = Some(w);
    }

    /// Begin bootstrap discovery on a join command. Returns `true` when
    /// a probe round was fired (the walk waits for a discovered
    /// anchor); `false` falls through to the omniscient source-anchored
    /// walk — discovery is off, the episode already ended, or the
    /// bootstrap set is empty (in which case nothing is counted or
    /// traced, so an empty-seed config stays byte-identical to
    /// discovery off).
    fn discovery_begin(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let now = ctx.now();
        let Some(d) = self.discovery.as_mut() else {
            return false;
        };
        if d.finished() {
            return false;
        }
        if d.cfg().seeds.is_empty() && !d.has_candidates(now) {
            return false;
        }
        self.discovery_fire(ctx);
        true
    }

    /// Fire one probe round at the freshest untried view entries; when
    /// the view or the round budget is exhausted, record the fallback
    /// and start the plain source-anchored join walk (from where the
    /// candidate → ancestor → source recovery hierarchy applies
    /// unchanged).
    fn discovery_fire(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let self_coord = self.vivaldi.map(|v| v.coord);
        let (targets, round, timeout, backoff, jitter) = {
            let d = self
                .discovery
                .as_mut()
                .expect("discovery_fire without state");
            let targets = d.begin_round_from(now, self_coord);
            let c = d.cfg();
            (
                targets,
                d.round(),
                c.request_timeout,
                c.backoff,
                c.jitter_frac,
            )
        };
        if targets.is_empty() {
            if let Some(d) = self.discovery.as_mut() {
                d.finish();
            }
            ctx.stats.recovery.discovery_fallbacks += 1;
            ctx.trace(|| vdm_trace::TraceEvent::DiscoveryFallback { host: ctx.me.0 });
            if self.walk.is_none() && !self.state.connected() {
                self.start_walk(ctx, WalkPurpose::Join, self.source);
            }
            return;
        }
        let fanout = targets.len() as u32;
        ctx.trace(|| vdm_trace::TraceEvent::DiscoveryRound {
            host: ctx.me.0,
            round,
            fanout,
        });
        for t in targets {
            let nonce = self.stamp();
            if let Some(d) = self.discovery.as_mut() {
                d.note_inflight(nonce, t);
            }
            ctx.stats.recovery.bootstrap_contacts += 1;
            ctx.send(t, Msg::PeerReq { nonce });
            // Deadlines stretch exponentially across rounds — the same
            // retry machinery as failed walks — which is what lets a
            // shedding seed's serving bucket refill between re-probes.
            let d =
                crate::walk::scaled_delay(timeout, backoff, round.saturating_sub(1), jitter, ctx);
            ctx.timer(d, DISCOVERY_TOKEN_BIT | nonce);
        }
    }

    /// Answer a bootstrap probe out of the serving budget. Nodes that
    /// are not yet attached to the tree (or whose budget is dry) drop
    /// the request silently — the prober's timeout+backoff spreads the
    /// flash crowd out instead of amplifying it.
    fn handle_peer_req(&mut self, ctx: &mut Ctx<'_>, from: HostId, nonce: u64) {
        let now = ctx.now();
        let me = ctx.me;
        let Some(d) = self.discovery.as_mut() else {
            return;
        };
        // The prober is demonstrably alive: gossip it onward.
        d.observe_at(from, me, now);
        if !self.state.connected() || !d.serve_take(now) {
            ctx.stats.recovery.peer_reqs_dropped += 1;
            return;
        }
        ctx.stats.recovery.peer_reqs_served += 1;
        let children: Vec<HostId> = self.state.children.iter().map(|&(c, _)| c).collect();
        let shared = d.share(me, from, self.state.parent, &children, now);
        let coords_on = self.vivaldi.is_some();
        let peers = shared
            .into_iter()
            .map(|(host, age_s)| crate::msg::PeerEntry {
                host,
                age_s,
                // Only attach samples when our own embedding runs, so a
                // coords-off responder gossips byte-identical entries.
                coord: if coords_on {
                    self.peer_coord_of(host)
                        .or_else(|| self.discovery.as_ref().and_then(|d| d.coord_of(host)))
                } else {
                    None
                },
            })
            .collect();
        ctx.send(from, Msg::PeerList { nonce, peers });
    }

    /// A probe answer arrived: fold the gossip into our view and, if
    /// the join is still waiting for an anchor, start the walk at the
    /// responder — an answered probe proves it alive, which is exactly
    /// what makes it a safe entry anchor.
    fn handle_peer_list(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        nonce: u64,
        peers: Vec<crate::msg::PeerEntry>,
    ) {
        let now = ctx.now();
        let me = ctx.me;
        let Some(d) = self.discovery.as_mut() else {
            return;
        };
        if !d.resolve_inflight(nonce, from) {
            return; // stale reply from an earlier round or incarnation
        }
        d.observe_at(from, me, now);
        for p in peers {
            d.observe_aged(p.host, me, p.age_s, now);
            if let Some(s) = p.coord {
                d.note_coord(p.host, s);
            }
        }
        if d.finished() {
            return; // late answer: keep the gossip, anchor already chosen
        }
        d.finish();
        let guided = d.cfg().coord_ranked && self.vivaldi.is_some();
        let took = now.saturating_sub(d.started_at().unwrap_or(now)).as_secs();
        ctx.stats
            .recovery
            .discovery_anchors
            .push((now.as_secs(), took));
        ctx.trace(|| vdm_trace::TraceEvent::DiscoveryAnchor {
            host: ctx.me.0,
            anchor: from.0,
            took_s: took,
        });
        if self.walk.is_none() && !self.state.connected() {
            if guided {
                // The probe order was coordinate-ranked, so the first
                // live responder is the nearest anchor the view offers.
                ctx.stats.recovery.guided_entries += 1;
                ctx.trace(|| vdm_trace::TraceEvent::GuidedEntry {
                    host: ctx.me.0,
                    anchor: from.0,
                });
            }
            self.start_walk(ctx, WalkPurpose::Join, from);
        }
    }

    fn become_orphan(&mut self, ctx: &mut Ctx<'_>, notify_parent: bool) {
        let dead = self.state.parent;
        if let (true, Some(p)) = (notify_parent, self.state.parent) {
            ctx.send(p, Msg::ChildLeave);
        }
        self.state.parent = None;
        self.orphaned_at = Some(ctx.now());
        ctx.stats.recovery.orphan_events += 1;
        ctx.trace(|| vdm_trace::TraceEvent::Orphaned {
            host: ctx.me.0,
            old_parent: dead.map(|p| p.0),
        });
        // Proactive path first: direct requests at pre-validated backup
        // parents cost one RTT instead of a full walk.
        if self.cfg.resilience.is_some() && self.start_failover(ctx, dead) {
            return;
        }
        let start = self.state.grandparent.unwrap_or(self.source);
        self.start_walk(ctx, WalkPurpose::Reconnect, start);
    }

    fn arm_refine(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(p) = self.cfg.refine_period {
            if !self.refine_armed {
                self.refine_armed = true;
                ctx.timer(p, REFINE_TOKEN);
            }
        }
    }

    fn arm_data_watch(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.cfg.data_timeout {
            ctx.timer(t, DATA_WATCH_TOKEN);
        }
    }

    /// Our root path including ourselves (what children should prefix
    /// their own paths with), when maintained.
    fn own_path(&self) -> Vec<HostId> {
        let mut p = self.state.root_path.clone();
        p.push(self.state.host);
        p
    }

    fn broadcast_root_path(&mut self, ctx: &mut Ctx<'_>) {
        if !self.cfg.maintain_root_path {
            return;
        }
        let path = self.own_path();
        for (c, _) in self.state.children.clone() {
            ctx.send(c, Msg::RootPath { path: path.clone() });
        }
    }

    fn adopt_parent(
        &mut self,
        ctx: &mut Ctx<'_>,
        parent: HostId,
        grandparent: Option<HostId>,
        root_path: Vec<HostId>,
        adopted: Vec<(HostId, crate::VDist)>,
        vdist: crate::VDist,
    ) {
        self.state.parent = Some(parent);
        self.state.parent_dist = Some(vdist);
        self.state.grandparent = grandparent;
        ctx.trace(|| vdm_trace::TraceEvent::ParentChange {
            host: ctx.me.0,
            parent: parent.0,
            vdist,
        });
        if self.cfg.maintain_root_path {
            self.state.root_path = root_path;
        }
        // Children adopted via a splice: tell them, then treat them as
        // ordinary children. Transient over-degree is possible if we
        // gained a child while the request was in flight; we honour the
        // adoption anyway rather than orphaning the handed-over child.
        for (c, d) in adopted {
            if !self.state.has_child(c) {
                if self.state.free_degree() > 0 {
                    self.state.add_child(c, d);
                } else {
                    self.state.children.push((c, d));
                }
            }
            self.note_child_alive(c, ctx.now());
            let gen = self.stamp();
            ctx.send(
                c,
                Msg::ParentChange {
                    new_grandparent: Some(parent),
                    gen,
                },
            );
        }
        // Pre-existing children: their grandparent is our new parent.
        for (c, _) in self.state.children.clone() {
            ctx.send(
                c,
                Msg::GrandparentChange {
                    new_grandparent: parent,
                },
            );
        }
        self.broadcast_root_path(ctx);
        // The new parent cannot be its own backup; free its slot.
        self.candidates.retain(|c| c.host != parent);
        let mut anc = vec![parent];
        anc.extend(grandparent);
        self.set_ancestors(ctx, anc);
        self.ever_connected = true;
        self.fail_streak = 0;
        self.last_data_at = ctx.now();
        self.arm_refine(ctx);
        self.arm_data_watch(ctx);
        self.arm_heartbeat(ctx);
    }

    fn finish_walk(&mut self, ctx: &mut Ctx<'_>, outcome: WalkOutcome) {
        let walk = self.walk.take().expect("finishing an active walk");
        if self.cfg.resilience.is_some() {
            self.merge_candidates(walk.harvest(), ctx.now());
        }
        if let Some(s) = walk.coord_state() {
            self.vivaldi = Some(s);
            for &(h, sample) in walk.coord_harvest() {
                self.note_peer_coord(h, sample);
            }
        }
        match outcome {
            WalkOutcome::Connected {
                parent,
                grandparent,
                root_path,
                adopted,
                vdist_to_parent,
            } => {
                if self.state.has_child(parent) {
                    // Mutual-adoption race: while our request was in
                    // flight the accepted parent became (or stayed) our
                    // child — adopting it would close a cycle. Undo the
                    // acceptor's bookkeeping and treat the walk as
                    // failed.
                    ctx.send(parent, Msg::ChildLeave);
                    if walk.purpose != WalkPurpose::Refine {
                        self.schedule_retry(ctx);
                    }
                    return;
                }
                match walk.purpose {
                    WalkPurpose::Join => {
                        ctx.stats
                            .startup_s
                            .push((ctx.now() - walk.started_at).as_secs());
                        self.adopt_parent(
                            ctx,
                            parent,
                            grandparent,
                            root_path,
                            adopted,
                            vdist_to_parent,
                        );
                    }
                    WalkPurpose::Reconnect => {
                        let took = (ctx.now() - walk.started_at).as_secs();
                        ctx.stats.reconnection_s.push(took);
                        ctx.stats
                            .recovery
                            .reconnections
                            .push((ctx.now().as_secs(), took));
                        self.adopt_parent(
                            ctx,
                            parent,
                            grandparent,
                            root_path,
                            adopted,
                            vdist_to_parent,
                        );
                    }
                    WalkPurpose::Refine => {
                        if Some(parent) == self.state.parent {
                            // Already the best parent; nothing to change.
                            return;
                        }
                        if let Some(old) = self.state.parent {
                            ctx.send(old, Msg::ChildLeave);
                        }
                        self.adopt_parent(
                            ctx,
                            parent,
                            grandparent,
                            root_path,
                            adopted,
                            vdist_to_parent,
                        );
                    }
                }
            }
            WalkOutcome::Failed => {
                if walk.purpose != WalkPurpose::Refine {
                    self.schedule_retry(ctx);
                }
            }
        }
    }

    fn handle_conn_req(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        nonce: u64,
        kind: ConnKind,
        vdist: crate::VDist,
    ) {
        // Dark or detached peers must not accept newcomers; a node
        // mid-walk must not either (two refining siblings would accept
        // each other concurrently and close a 2-cycle — protocols
        // without root paths have no ancestor check to catch it); our
        // own parent as a child is a cycle outright; and a root-path
        // hit means the requester is our ancestor — accepting would
        // loop the tree.
        if !self.state.connected()
            || self.walk.is_some()
            || self.failover.is_some()
            || Some(from) == self.state.parent
            || (self.cfg.maintain_root_path && self.state.root_path.contains(&from))
            || (self.cfg.resilience.is_some() && self.ancestors.contains(&from))
        {
            ctx.send(
                from,
                Msg::ConnResp {
                    nonce,
                    result: ConnResult::Rejected,
                },
            );
            return;
        }
        let root_path = if self.cfg.maintain_root_path {
            self.own_path()
        } else {
            Vec::new()
        };
        let accept = |agent: &mut Self, adopted: Vec<HostId>| Msg::ConnResp {
            nonce,
            result: ConnResult::Accepted {
                grandparent: agent.state.parent,
                adopted,
                root_path: root_path.clone(),
            },
        };
        let displace = match kind {
            ConnKind::Splice { displace } => displace,
            ConnKind::Child => Vec::new(),
        };
        let actual: Vec<HostId> = displace
            .into_iter()
            .filter(|&c| c != from && self.state.has_child(c))
            .collect();
        if !actual.is_empty() {
            // Case II splice: swap the displaced children for the
            // requester; degree can only shrink.
            for &c in &actual {
                self.state.remove_child(c);
            }
            self.state.add_child(from, vdist);
            self.note_child_alive(from, ctx.now());
            self.arm_heartbeat(ctx);
            let msg = accept(self, actual);
            ctx.send(from, msg);
            self.gossip_ancestors_to(ctx, from);
            return;
        }
        if self.state.has_child(from) {
            // Repeat request (e.g. refinement landing on the current
            // parent): refresh the distance.
            self.state.add_child(from, vdist);
            self.note_child_alive(from, ctx.now());
            let msg = accept(self, Vec::new());
            ctx.send(from, msg);
            self.gossip_ancestors_to(ctx, from);
        } else if self.state.free_degree() > 0 {
            if let Some(a) = self.cfg.admission {
                // Rejoin-storm control: plain new-child admissions pay
                // a token; a dry bucket parks the joiner in a bounded
                // queue, and overflow is shed to a sibling.
                self.admit_refill(ctx.now(), &a);
                if self.admit_tokens >= 1.0 {
                    self.admit_tokens -= 1.0;
                    self.accept_new_child(ctx, from, nonce, vdist);
                } else if self.admit_queue.len() < a.queue {
                    ctx.stats.recovery.joins_throttled += 1;
                    ctx.trace(|| vdm_trace::TraceEvent::AdmissionThrottled {
                        host: ctx.me.0,
                        joiner: from.0,
                    });
                    self.admit_queue.push_back(QueuedJoin {
                        from,
                        nonce,
                        vdist,
                        at: ctx.now(),
                    });
                    self.arm_admit_timer(ctx, &a);
                } else {
                    ctx.stats.recovery.joins_shed += 1;
                    ctx.trace(|| vdm_trace::TraceEvent::AdmissionShed {
                        host: ctx.me.0,
                        joiner: from.0,
                    });
                    self.redirect_or_reject(ctx, from, nonce);
                }
            } else {
                self.accept_new_child(ctx, from, nonce, vdist);
            }
        } else {
            // Full: point the requester at our closest child (§3.2 "it
            // connects to the closest free child"; the child redirects
            // again if it is itself full).
            self.redirect_or_reject(ctx, from, nonce);
        }
    }

    fn forward_data(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        for (c, _) in self.state.children.clone() {
            ctx.send(c, Msg::Data { seq });
        }
    }
}

impl<P: WalkPolicy> OverlayAgent for ProtocolAgent<P> {
    fn on_join_cmd(&mut self, ctx: &mut Ctx<'_>) {
        if self.state.is_source {
            return;
        }
        if self.join_cmd_at.is_none() {
            self.join_cmd_at = Some(ctx.now());
        }
        if self.walk.is_none() && !self.state.connected() {
            // Bootstrap discovery first: find a live mid-tree anchor to
            // walk from instead of assuming the source address.
            if self.discovery_begin(ctx) {
                return;
            }
            self.start_walk(ctx, WalkPurpose::Join, self.source);
        }
    }

    fn on_leave_cmd(&mut self, ctx: &mut Ctx<'_>) {
        for (c, _) in self.state.children.clone() {
            ctx.send(c, Msg::Leave);
        }
        if let Some(p) = self.state.parent {
            ctx.send(p, Msg::ChildLeave);
        }
        // Flush the admission queue so parked walkers fail fast instead
        // of timing out against a gone host.
        for q in std::mem::take(&mut self.admit_queue) {
            ctx.send(
                q.from,
                Msg::ConnResp {
                    nonce: q.nonce,
                    result: ConnResult::Rejected,
                },
            );
        }
        self.state.reset();
        self.walk = None;
        self.fail_streak = 0;
        self.last_chunk_at = None;
        self.pc_seen.clear();
        self.ancestors.clear();
        self.candidates.clear();
        self.failover = None;
        self.ring.clear();
        self.gaps.clear();
        self.cross_gaps.clear();
        if let Some(d) = self.discovery.as_mut() {
            // Keep the warm view as membership knowledge; drop the
            // per-join episode (in-flight probes, round counter).
            d.reset_episode();
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_>, from: HostId, msg: Msg) {
        match msg {
            Msg::Ping { nonce } => {
                let coord = self.coord_sample();
                ctx.send(from, Msg::Pong { nonce, coord })
            }
            Msg::InfoReq { nonce } => {
                let children = self
                    .state
                    .children
                    .iter()
                    .map(|&(child, vdist)| ChildEntry { child, vdist })
                    .collect();
                ctx.send(
                    from,
                    Msg::InfoResp {
                        nonce,
                        children,
                        parent: self.state.parent,
                        coord: self.coord_sample(),
                    },
                );
            }
            Msg::ConnReq {
                nonce,
                kind,
                vdist,
                coord,
            } => {
                if let Some(s) = coord {
                    self.note_peer_coord(from, s);
                }
                self.handle_conn_req(ctx, from, nonce, kind, vdist)
            }
            m @ (Msg::InfoResp { .. } | Msg::Pong { .. } | Msg::ConnResp { .. }) => {
                if let Msg::ConnResp { nonce, result } = &m {
                    if self
                        .failover
                        .as_ref()
                        .is_some_and(|f| f.nonce == *nonce && f.target == from)
                    {
                        self.on_failover_resp(ctx, from, result.clone());
                        return;
                    }
                }
                if let Some(mut walk) = self.walk.take() {
                    let free = self.state.free_degree();
                    let outcome = walk.on_msg(ctx, from, &m, &self.policy, free);
                    self.walk = Some(walk);
                    if let Some(out) = outcome {
                        self.finish_walk(ctx, out);
                    }
                }
            }
            Msg::ParentChange {
                new_grandparent,
                gen,
            } => {
                // A splice: `from` claims to be our new parent and our
                // old parent should now be our grandparent. The
                // generation stamp makes handling idempotent: a
                // duplicated or reordered-stale copy is dropped here
                // instead of being misread as a bogus splice (which
                // would make us ChildLeave our own parent).
                let seen = self.pc_seen.iter_mut().find(|(h, _)| *h == from);
                match seen {
                    Some(e) if gen <= e.1 => return,
                    Some(e) => e.1 = gen,
                    None => self.pc_seen.push((from, gen)),
                }
                if Some(from) == self.state.parent {
                    // Splice already applied (e.g. the first copy of a
                    // duplicated notice arrived out of stamp order):
                    // nothing to change.
                    return;
                }
                if new_grandparent == self.state.parent {
                    self.state.parent = Some(from);
                    self.state.parent_dist = None;
                    self.state.grandparent = new_grandparent;
                    if self.cfg.maintain_root_path {
                        self.state.root_path.push(from);
                        self.broadcast_root_path(ctx);
                    }
                    for (c, _) in self.state.children.clone() {
                        ctx.send(
                            c,
                            Msg::GrandparentChange {
                                new_grandparent: from,
                            },
                        );
                    }
                    // The splicer slots in directly above us.
                    let mut anc = vec![from];
                    anc.extend(self.ancestors.clone());
                    self.set_ancestors(ctx, anc);
                } else {
                    ctx.send(from, Msg::ChildLeave);
                }
            }
            Msg::GrandparentChange { new_grandparent } => {
                if Some(from) == self.state.parent {
                    self.state.grandparent = Some(new_grandparent);
                    // Deeper ancestors are stale until the parent's
                    // AncestorList gossip arrives.
                    self.set_ancestors(ctx, vec![from, new_grandparent]);
                }
            }
            Msg::AncestorList { ancestors } => {
                if self.cfg.resilience.is_some() && Some(from) == self.state.parent {
                    let mut anc = vec![from];
                    anc.extend(ancestors);
                    self.set_ancestors(ctx, anc);
                }
            }
            Msg::RootPath { path } => {
                if self.cfg.maintain_root_path && Some(from) == self.state.parent {
                    self.state.root_path = path;
                    self.broadcast_root_path(ctx);
                }
            }
            Msg::Leave => {
                if Some(from) == self.state.parent {
                    self.state.parent_dist = None;
                    self.become_orphan(ctx, false);
                }
            }
            Msg::Heartbeat => {
                if self.state.has_child(from) {
                    self.note_child_alive(from, ctx.now());
                } else {
                    // A peer beacons us as its parent, but we dropped it
                    // (e.g. pruned after a false alarm): tell it to
                    // re-home.
                    ctx.send(from, Msg::Leave);
                }
            }
            Msg::ChildLeave => {
                self.state.remove_child(from);
                self.hb_seen.retain(|(h, _)| *h != from);
            }
            Msg::Nack { seqs } => {
                if self.cfg.repair.is_some() && self.state.has_child(from) {
                    for seq in seqs {
                        if self.ring.contains(seq) {
                            ctx.send(from, Msg::Data { seq });
                        }
                    }
                }
            }
            Msg::Data { seq } => {
                if Some(from) != self.state.parent {
                    return;
                }
                if let Some(rc) = self.cfg.repair {
                    // A chunk a cross-tree NACK is chasing may race in
                    // through the recovered tree; stop re-asking.
                    self.cross_gaps.resolve(seq);
                    match self.gaps.on_chunk(seq, self.state.last_seq, ctx.now(), &rc) {
                        ChunkClass::Fresh => {
                            self.state.last_seq = Some(seq);
                            self.deliver_chunk(ctx, seq, true);
                            self.sync_lost(ctx);
                            self.arm_repair_timer(ctx);
                        }
                        ChunkClass::Repaired => {
                            ctx.stats.recovery.chunks_repaired += 1;
                            ctx.trace(|| vdm_trace::TraceEvent::ChunkRepaired {
                                host: ctx.me.0,
                                seq,
                            });
                            self.deliver_chunk(ctx, seq, false);
                        }
                        ChunkClass::Duplicate => {}
                    }
                } else if self.state.accept_seq(seq) {
                    self.deliver_chunk(ctx, seq, true);
                }
            }
            Msg::CrossNack { seqs } => {
                // Serve a sibling-tree orphan out of our ring, bounded
                // by the cross-repair token bucket so these pulls can
                // never starve our own subtree's repair traffic.
                let Some(a) = self.cfg.cross_repair else {
                    return;
                };
                if self.cfg.repair.is_none() || !self.state.connected() {
                    return;
                }
                let now = ctx.now();
                let dt = now.saturating_sub(self.cross_refilled_at).as_secs();
                self.cross_tokens = (self.cross_tokens + dt * a.rate_per_s).min(a.burst);
                self.cross_refilled_at = now;
                for seq in seqs {
                    if self.cross_tokens < 1.0 {
                        break;
                    }
                    if self.ring.contains(seq) {
                        self.cross_tokens -= 1.0;
                        ctx.send(from, Msg::CrossData { seq });
                    }
                }
            }
            Msg::CrossData { seq } => {
                let Some(rc) = self.cfg.repair else { return };
                if self.cfg.cross_repair.is_none() {
                    return;
                }
                // Stripe-ownership invariant: a cross retransmission
                // must carry a chunk of *our* stripe — anything else
                // means repair asked a tree that does not own the
                // sequence. Counted (and dropped) so tests can assert
                // it never happens.
                if rc.stride > 1 && seq % rc.stride != rc.stripe {
                    ctx.stats.recovery.cross_stripe_violations += 1;
                    return;
                }
                let was_pending = self.cross_gaps.resolve(seq);
                match self.gaps.on_chunk(seq, self.state.last_seq, ctx.now(), &rc) {
                    ChunkClass::Fresh => {
                        self.state.last_seq = Some(seq);
                        ctx.stats.recovery.cross_repaired += 1;
                        ctx.trace(|| vdm_trace::TraceEvent::ChunkRepaired {
                            host: ctx.me.0,
                            seq,
                        });
                        self.deliver_chunk(ctx, seq, true);
                        self.sync_lost(ctx);
                        self.arm_repair_timer(ctx);
                    }
                    ChunkClass::Repaired => {
                        ctx.stats.recovery.cross_repaired += 1;
                        ctx.trace(|| vdm_trace::TraceEvent::ChunkRepaired {
                            host: ctx.me.0,
                            seq,
                        });
                        self.deliver_chunk(ctx, seq, false);
                    }
                    // The watermark advanced past this hole while its
                    // cross NACK was in flight (retransmissions landing
                    // out of order); it is still a first delivery.
                    ChunkClass::Duplicate if was_pending => {
                        ctx.stats.recovery.cross_repaired += 1;
                        ctx.trace(|| vdm_trace::TraceEvent::ChunkRepaired {
                            host: ctx.me.0,
                            seq,
                        });
                        self.deliver_chunk(ctx, seq, false);
                    }
                    ChunkClass::Duplicate => {}
                }
            }
            Msg::PeerReq { nonce } => self.handle_peer_req(ctx, from, nonce),
            Msg::PeerList { nonce, peers } => self.handle_peer_list(ctx, from, nonce, peers),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token & WALK_TOKEN_BIT != 0 {
            if let Some(mut walk) = self.walk.take() {
                let free = self.state.free_degree();
                let outcome = walk.on_timer(ctx, token, &self.policy, free);
                self.walk = Some(walk);
                if let Some(out) = outcome {
                    self.finish_walk(ctx, out);
                }
            }
            return;
        }
        if token & FAILOVER_TOKEN_BIT != 0 {
            let nonce = token & !FAILOVER_TOKEN_BIT;
            if self.failover.as_ref().is_some_and(|f| f.nonce == nonce) && !self.state.connected() {
                // The attempt timed out (target crashed or unreachable).
                if !self.failover_try_next(ctx) {
                    self.failover_fall_back_to_walk(ctx);
                }
            }
            return;
        }
        if token & DISCOVERY_TOKEN_BIT != 0 {
            let nonce = token & !DISCOVERY_TOKEN_BIT;
            let mut fire = false;
            if let Some(d) = self.discovery.as_mut() {
                if let Some(dead) = d.timeout_inflight(nonce) {
                    // An unanswered probe marks its target stale: retire
                    // it so later rounds (and gossip we forward) stop
                    // pointing at a departed host.
                    ctx.stats.recovery.stale_peer_hits += 1;
                    d.retire(dead);
                    fire = !d.finished() && d.idle();
                }
            }
            if fire {
                self.discovery_fire(ctx);
            }
            return;
        }
        match token {
            REFINE_TOKEN => {
                if let Some(p) = self.cfg.refine_period {
                    if self.state.connected() && !self.state.is_source && self.walk.is_none() {
                        let start =
                            self.policy
                                .refine_start(&self.state, self.source, ctx.io.rng());
                        self.start_walk(ctx, WalkPurpose::Refine, start);
                    }
                    ctx.timer(p, REFINE_TOKEN);
                }
            }
            DATA_WATCH_TOKEN => {
                if let Some(t) = self.cfg.data_timeout {
                    if self.state.connected() && !self.state.is_source {
                        let silent = ctx.now().saturating_sub(self.last_data_at);
                        if silent >= t && self.walk.is_none() {
                            // Dark subtree: abandon the parent and rejoin.
                            self.become_orphan(ctx, true);
                        }
                        ctx.timer(t, DATA_WATCH_TOKEN);
                    }
                }
            }
            HEARTBEAT_TOKEN => {
                if let Some(hb) = self.cfg.heartbeat {
                    // Beacon our parent.
                    if let Some(p) = self.state.parent {
                        ctx.send(p, Msg::Heartbeat);
                    }
                    // Prune silent children (presumed crashed) so their
                    // degree slots become available again.
                    let now = ctx.now();
                    let stale: Vec<HostId> = self
                        .hb_seen
                        .iter()
                        .filter(|&&(_, t)| now.saturating_sub(t) >= hb.timeout)
                        .map(|&(h, _)| h)
                        .collect();
                    for c in stale {
                        self.state.remove_child(c);
                        self.hb_seen.retain(|(h, _)| *h != c);
                    }
                    ctx.timer(hb.period, HEARTBEAT_TOKEN);
                }
            }
            ADMIT_TOKEN => {
                if let Some(a) = self.cfg.admission {
                    self.admit_armed = false;
                    self.drain_admit_queue(ctx, &a);
                }
            }
            REPAIR_TOKEN => {
                if let Some(rc) = self.cfg.repair {
                    self.repair_armed = false;
                    if self.state.parent.is_none() && self.cfg.cross_repair.is_some() {
                        // Orphaned in a multi-tree session: leave the
                        // due state to the cross-repair ticks instead
                        // of burning NACK retries on a missing parent.
                        return;
                    }
                    let batch = self.gaps.due_nacks(ctx.now(), &rc);
                    self.sync_lost(ctx);
                    if !batch.is_empty() {
                        // Orphans hold their NACKs; the retry state was
                        // bumped, so they re-fire after reconnecting.
                        if let Some(p) = self.state.parent {
                            ctx.stats.recovery.nacks_sent += 1;
                            ctx.trace(|| vdm_trace::TraceEvent::NackSent {
                                host: ctx.me.0,
                                parent: p.0,
                                count: batch.len() as u32,
                            });
                            ctx.send(p, Msg::Nack { seqs: batch });
                        }
                    }
                    self.arm_repair_timer(ctx);
                }
            }
            RETRY_TOKEN
                if !self.state.connected()
                    && !self.state.is_source
                    && self.walk.is_none()
                    && self.failover.is_none() =>
            {
                let purpose = if self.ever_connected {
                    WalkPurpose::Reconnect
                } else {
                    WalkPurpose::Join
                };
                // With resilience on, rotate the anchor deeper into the
                // ancestor list as the fail streak grows: a dead
                // grandparent stops costing a full walk timeout on
                // every single retry.
                let start = match self.cfg.resilience {
                    Some(_) if !self.ancestors.is_empty() => {
                        let i = (self.fail_streak as usize).min(self.ancestors.len() - 1);
                        self.ancestors[i]
                    }
                    _ => self.state.grandparent.unwrap_or(self.source),
                };
                self.start_walk(ctx, purpose, start);
            }
            _ => {}
        }
    }

    fn emit_data(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        debug_assert!(self.state.is_source);
        if self.cfg.repair.is_some() {
            self.ring.record(seq);
        }
        self.forward_data(ctx, seq);
    }

    fn parent(&self) -> Option<HostId> {
        self.state.parent
    }

    fn children(&self) -> Vec<HostId> {
        self.state.children.iter().map(|&(c, _)| c).collect()
    }

    fn connected(&self) -> bool {
        self.state.connected()
    }

    fn degree_limit(&self) -> u32 {
        self.state.degree_limit
    }

    fn configure_discovery(&mut self, cfg: &crate::discovery::DiscoveryConfig, now: SimTime) {
        // Every agent gets the state: joiners probe out of it, and any
        // attached node (the source included) answers probes out of its
        // serving budget.
        self.discovery = Some(crate::discovery::DiscoveryState::new(
            cfg,
            self.state.host,
            now,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ChildEntry, ConnKind, ConnResult};
    use crate::walk::{ProbeResult, WalkStep};
    use std::sync::Arc;
    use vdm_netsim::{Engine, LatencySpace, World};

    /// Minimal policy: always attach to the node under examination.
    struct Attach;
    impl WalkPolicy for Attach {
        fn vdist(&self, rtt_ms: f64, _l: f64) -> f64 {
            rtt_ms
        }
        fn decide(&self, _p: &ProbeResult, _purpose: WalkPurpose) -> WalkStep {
            WalkStep::Attach { splice: vec![] }
        }
    }

    /// Records everything the agent under test (host 0) sends out.
    struct Recorder {
        agent: ProtocolAgent<Attach>,
        outbox: Vec<(HostId, Msg)>,
    }

    impl World for Recorder {
        type Msg = Msg;
        fn on_deliver(&mut self, eng: &mut Engine<Msg>, to: HostId, from: HostId, msg: Msg) {
            if to == HostId(0) {
                let mut stats = RunStats::new(8);
                let mut ctx = Ctx {
                    me: HostId(0),
                    io: eng,
                    stats: &mut stats,
                    loss_probe_noise: 0.0,
                };
                self.agent.on_msg(&mut ctx, from, msg);
            } else {
                self.outbox.push((to, msg));
            }
        }
        fn on_timer(&mut self, eng: &mut Engine<Msg>, host: HostId, token: u64) {
            if host == HostId(0) {
                let mut stats = RunStats::new(8);
                let mut ctx = Ctx {
                    me: HostId(0),
                    io: eng,
                    stats: &mut stats,
                    loss_probe_noise: 0.0,
                };
                self.agent.on_timer(&mut ctx, token);
            }
        }
        fn on_external(&mut self, _: &mut Engine<Msg>, _: u64) {}
    }

    fn space() -> Arc<LatencySpace> {
        let n = 8;
        let mut rtt = vec![vec![0.0; n]; n];
        for (i, row) in rtt.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                if i != j {
                    *v = 10.0;
                }
            }
        }
        Arc::new(LatencySpace::from_rtt_matrix(&rtt))
    }

    /// Agent for host 0 with the given config; not the source unless
    /// `source` says so.
    fn harness(cfg: AgentConfig, is_source: bool) -> (Engine<Msg>, Recorder) {
        let eng = Engine::new(space(), 1);
        let source = if is_source { HostId(0) } else { HostId(7) };
        let agent = ProtocolAgent::new(HostId(0), source, 2, 0, cfg, Attach);
        (
            eng,
            Recorder {
                agent,
                outbox: Vec::new(),
            },
        )
    }

    /// Deliver a message to the agent "from" another host and run the
    /// engine for a bounded window (the agent retries failed joins
    /// forever by design, so running to idle would never return).
    fn inject(eng: &mut Engine<Msg>, world: &mut Recorder, from: HostId, msg: Msg) {
        world.on_deliver(eng, HostId(0), from, msg);
        let until = eng.now() + SimTime::from_ms(300.0);
        eng.run(world, until);
    }

    fn take_to(world: &mut Recorder, to: HostId) -> Vec<Msg> {
        let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut world.outbox)
            .into_iter()
            .partition(|(t, _)| *t == to);
        world.outbox = rest;
        mine.into_iter().map(|(_, m)| m).collect()
    }

    /// Wire host 0 up as: parent 1, grandparent 2, child 3 (dist 4.0).
    fn connected_agent() -> (Engine<Msg>, Recorder) {
        let (eng, mut w) = harness(AgentConfig::default(), false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.grandparent = Some(HostId(2));
        w.agent.state.parent_dist = Some(10.0);
        w.agent.state.add_child(HostId(3), 4.0);
        (eng, w)
    }

    #[test]
    fn info_req_reports_children_and_parent() {
        let (mut eng, mut w) = connected_agent();
        inject(&mut eng, &mut w, HostId(5), Msg::InfoReq { nonce: 9 });
        let sent = take_to(&mut w, HostId(5));
        assert_eq!(
            sent,
            vec![Msg::InfoResp {
                nonce: 9,
                children: vec![ChildEntry {
                    child: HostId(3),
                    vdist: 4.0
                }],
                parent: Some(HostId(1)),
                coord: None,
            }]
        );
    }

    #[test]
    fn ping_pong() {
        let (mut eng, mut w) = connected_agent();
        inject(&mut eng, &mut w, HostId(4), Msg::Ping { nonce: 3 });
        assert_eq!(
            take_to(&mut w, HostId(4)),
            vec![Msg::Pong {
                nonce: 3,
                coord: None
            }]
        );
    }

    #[test]
    fn conn_req_accepts_until_full_then_redirects() {
        let (mut eng, mut w) = connected_agent();
        // One slot free (limit 2, child 3 present): accept host 5.
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnReq {
                nonce: 1,
                kind: ConnKind::Child,
                vdist: 6.0,
                coord: None,
            },
        );
        let sent = take_to(&mut w, HostId(5));
        assert!(matches!(
            &sent[0],
            Msg::ConnResp {
                nonce: 1,
                result: ConnResult::Accepted { grandparent: Some(p), .. }
            } if *p == HostId(1)
        ));
        assert!(w.agent.state.has_child(HostId(5)));
        // Now full: host 6 gets redirected to the closest child (3).
        inject(
            &mut eng,
            &mut w,
            HostId(6),
            Msg::ConnReq {
                nonce: 2,
                kind: ConnKind::Child,
                vdist: 8.0,
                coord: None,
            },
        );
        let sent = take_to(&mut w, HostId(6));
        assert_eq!(
            sent,
            vec![Msg::ConnResp {
                nonce: 2,
                result: ConnResult::Redirect { next: HostId(3) }
            }]
        );
    }

    #[test]
    fn unconnected_peers_reject_conn_requests() {
        let (mut eng, mut w) = harness(AgentConfig::default(), false);
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnReq {
                nonce: 7,
                kind: ConnKind::Child,
                vdist: 1.0,
                coord: None,
            },
        );
        assert_eq!(
            take_to(&mut w, HostId(5)),
            vec![Msg::ConnResp {
                nonce: 7,
                result: ConnResult::Rejected
            }]
        );
    }

    #[test]
    fn splice_swaps_children_even_when_full() {
        let (mut eng, mut w) = connected_agent();
        w.agent.state.add_child(HostId(4), 9.0); // now full (limit 2)
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnReq {
                nonce: 1,
                kind: ConnKind::Splice {
                    displace: vec![HostId(3), HostId(6)], // 6 is not ours
                },
                vdist: 2.0,
                coord: None,
            },
        );
        let sent = take_to(&mut w, HostId(5));
        match &sent[0] {
            Msg::ConnResp {
                result: ConnResult::Accepted { adopted, .. },
                ..
            } => assert_eq!(adopted, &vec![HostId(3)]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!w.agent.state.has_child(HostId(3)));
        assert!(w.agent.state.has_child(HostId(5)));
        assert!(w.agent.state.has_child(HostId(4)));
    }

    #[test]
    fn parent_change_validates_grandparent() {
        let (mut eng, mut w) = connected_agent();
        // Valid splice: claimed grandparent equals our current parent.
        inject(
            &mut eng,
            &mut w,
            HostId(6),
            Msg::ParentChange {
                new_grandparent: Some(HostId(1)),
                gen: 1,
            },
        );
        assert_eq!(w.agent.state.parent, Some(HostId(6)));
        assert_eq!(w.agent.state.grandparent, Some(HostId(1)));
        // Our child was told about its new grandparent.
        let to_child = take_to(&mut w, HostId(3));
        assert!(to_child.contains(&Msg::GrandparentChange {
            new_grandparent: HostId(6)
        }));
        // Stale splice: claimed grandparent no longer matches -> refuse.
        inject(
            &mut eng,
            &mut w,
            HostId(4),
            Msg::ParentChange {
                new_grandparent: Some(HostId(9)),
                gen: 1,
            },
        );
        assert_eq!(w.agent.state.parent, Some(HostId(6)));
        assert_eq!(take_to(&mut w, HostId(4)), vec![Msg::ChildLeave]);
    }

    /// A duplicated ParentChange must not make the child ChildLeave its
    /// own (new) parent: the second copy carries the same stamp and is
    /// dropped.
    #[test]
    fn duplicated_parent_change_is_idempotent() {
        let (mut eng, mut w) = connected_agent();
        let splice = Msg::ParentChange {
            new_grandparent: Some(HostId(1)),
            gen: 7,
        };
        inject(&mut eng, &mut w, HostId(6), splice.clone());
        assert_eq!(w.agent.state.parent, Some(HostId(6)));
        let _ = take_to(&mut w, HostId(3));
        // The duplicate: no state change, and crucially no ChildLeave
        // to host 6.
        inject(&mut eng, &mut w, HostId(6), splice);
        assert_eq!(w.agent.state.parent, Some(HostId(6)));
        assert!(take_to(&mut w, HostId(6)).is_empty());
        // A stale lower-stamped splice from the same sender is dropped
        // too.
        inject(
            &mut eng,
            &mut w,
            HostId(6),
            Msg::ParentChange {
                new_grandparent: Some(HostId(9)),
                gen: 3,
            },
        );
        assert_eq!(w.agent.state.parent, Some(HostId(6)));
        assert!(take_to(&mut w, HostId(6)).is_empty());
    }

    /// A node with an active walk must reject connection requests:
    /// accepting while adopting elsewhere is how two refining siblings
    /// close a 2-cycle.
    #[test]
    fn walking_node_rejects_conn_requests() {
        let (mut eng, mut w) = connected_agent();
        let mut stats = RunStats::new(8);
        let mut ctx = Ctx {
            me: HostId(0),
            io: &mut eng,
            stats: &mut stats,
            loss_probe_noise: 0.0,
        };
        w.agent.start_walk(&mut ctx, WalkPurpose::Refine, HostId(7));
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnReq {
                nonce: 4,
                kind: ConnKind::Child,
                vdist: 1.0,
                coord: None,
            },
        );
        assert_eq!(
            take_to(&mut w, HostId(5)),
            vec![Msg::ConnResp {
                nonce: 4,
                result: ConnResult::Rejected
            }]
        );
    }

    /// Our own parent asking to become our child is a cycle outright.
    #[test]
    fn conn_request_from_own_parent_is_rejected() {
        let (mut eng, mut w) = connected_agent();
        inject(
            &mut eng,
            &mut w,
            HostId(1),
            Msg::ConnReq {
                nonce: 4,
                kind: ConnKind::Child,
                vdist: 1.0,
                coord: None,
            },
        );
        assert_eq!(
            take_to(&mut w, HostId(1)),
            vec![Msg::ConnResp {
                nonce: 4,
                result: ConnResult::Rejected
            }]
        );
        assert!(!w.agent.state.has_child(HostId(1)));
    }

    #[test]
    fn leave_from_parent_triggers_grandparent_walk() {
        let (mut eng, mut w) = connected_agent();
        w.agent.on_msg(
            &mut Ctx {
                me: HostId(0),
                io: &mut eng,
                stats: &mut RunStats::new(8),
                loss_probe_noise: 0.0,
            },
            HostId(1),
            Msg::Leave,
        );
        assert_eq!(w.agent.state.parent, None);
        assert!(w.agent.walk.is_some());
        // The reconnection walk starts at the grandparent (host 2).
        let mut found = false;
        eng.run(&mut w, vdm_netsim::SimTime::from_ms(20.0));
        for m in take_to(&mut w, HostId(2)) {
            if matches!(m, Msg::InfoReq { .. }) {
                found = true;
            }
        }
        assert!(found, "expected an InfoReq at the grandparent");
    }

    #[test]
    fn leave_from_non_parent_is_ignored() {
        let (mut eng, mut w) = connected_agent();
        inject(&mut eng, &mut w, HostId(4), Msg::Leave);
        assert_eq!(w.agent.state.parent, Some(HostId(1)));
        assert!(w.agent.walk.is_none());
    }

    #[test]
    fn data_only_accepted_from_parent_and_forwarded() {
        let (mut eng, mut w) = connected_agent();
        // From a stranger: dropped.
        inject(&mut eng, &mut w, HostId(4), Msg::Data { seq: 1 });
        assert!(take_to(&mut w, HostId(3)).is_empty());
        // From the parent: accepted and forwarded to the child.
        inject(&mut eng, &mut w, HostId(1), Msg::Data { seq: 2 });
        assert_eq!(take_to(&mut w, HostId(3)), vec![Msg::Data { seq: 2 }]);
        // Duplicate: dropped.
        inject(&mut eng, &mut w, HostId(1), Msg::Data { seq: 2 });
        assert!(take_to(&mut w, HostId(3)).is_empty());
    }

    #[test]
    fn heartbeat_from_unknown_child_gets_a_leave() {
        let (mut eng, mut w) = connected_agent();
        inject(&mut eng, &mut w, HostId(6), Msg::Heartbeat);
        assert_eq!(take_to(&mut w, HostId(6)), vec![Msg::Leave]);
        // From a real child: silently noted.
        inject(&mut eng, &mut w, HostId(3), Msg::Heartbeat);
        assert!(take_to(&mut w, HostId(3)).is_empty());
    }

    /// Drive a full join handshake by scripting the remote side from
    /// the recorded outbox (source = host 7).
    #[test]
    fn scripted_join_walk_completes() {
        let (mut eng, mut w) = harness(AgentConfig::default(), false);
        let mut stats = RunStats::new(8);
        w.agent.on_join_cmd(&mut Ctx {
            me: HostId(0),
            io: &mut eng,
            stats: &mut stats,
            loss_probe_noise: 0.0,
        });
        eng.run(&mut w, SimTime::from_ms(50.0));
        // The walk sent an InfoReq to the source.
        let info = take_to(&mut w, HostId(7));
        let Some(Msg::InfoReq { nonce }) = info.first() else {
            panic!("expected InfoReq, got {info:?}");
        };
        // Source answers: one child (host 3, distance 12).
        inject(
            &mut eng,
            &mut w,
            HostId(7),
            Msg::InfoResp {
                nonce: *nonce,
                children: vec![ChildEntry {
                    child: HostId(3),
                    vdist: 12.0,
                }],
                parent: None,
                coord: None,
            },
        );
        // The walk pings the child.
        let ping = take_to(&mut w, HostId(3));
        let Some(Msg::Ping { nonce: ping_nonce }) = ping.first() else {
            panic!("expected Ping, got {ping:?}");
        };
        inject(
            &mut eng,
            &mut w,
            HostId(3),
            Msg::Pong {
                nonce: *ping_nonce,
                coord: None,
            },
        );
        // Policy (Attach) fires a ConnReq at the source.
        let conn = take_to(&mut w, HostId(7));
        let Some(Msg::ConnReq {
            nonce: cn, kind, ..
        }) = conn.first()
        else {
            panic!("expected ConnReq, got {conn:?}");
        };
        assert_eq!(*kind, ConnKind::Child);
        inject(
            &mut eng,
            &mut w,
            HostId(7),
            Msg::ConnResp {
                nonce: *cn,
                result: ConnResult::Accepted {
                    grandparent: None,
                    adopted: vec![],
                    root_path: vec![],
                },
            },
        );
        assert_eq!(w.agent.state.parent, Some(HostId(7)));
        assert!(w.agent.walk.is_none());
        assert_eq!(stats.startup_s.len(), 0, "stats captured per-dispatch here");
    }

    /// No one ever answers: the walk must retry, restart at the
    /// fallback, and eventually give up (scheduling a later retry)
    /// without wedging the agent.
    #[test]
    fn silent_network_exhausts_walk_restarts() {
        let cfg = AgentConfig {
            walk: crate::walk::WalkConfig {
                timeout: SimTime::from_ms(500.0),
                info_retries: 1,
                max_restarts: 2,
                ..crate::walk::WalkConfig::default()
            },
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        let mut stats = RunStats::new(8);
        w.agent.on_join_cmd(&mut Ctx {
            me: HostId(0),
            io: &mut eng,
            stats: &mut stats,
            loss_probe_noise: 0.0,
        });
        // Run long enough for all timeouts to fire.
        eng.run(&mut w, SimTime::from_secs(20));
        let info_reqs = take_to(&mut w, HostId(7))
            .into_iter()
            .filter(|m| matches!(m, Msg::InfoReq { .. }))
            .count();
        // initial + 1 retry, then per restart (2) another 2 each, and
        // the scheduled RETRY walks add more: at least 4 attempts.
        assert!(info_reqs >= 4, "only {info_reqs} info requests");
        assert!(!w.agent.state.connected());
        assert!(w.agent.state.parent.is_none());
    }

    /// Probe timeouts exclude silent children instead of stalling:
    /// source answers with two children, only one pongs.
    #[test]
    fn silent_children_are_excluded_from_the_decision() {
        let (mut eng, mut w) = harness(AgentConfig::default(), false);
        let mut stats = RunStats::new(8);
        w.agent.on_join_cmd(&mut Ctx {
            me: HostId(0),
            io: &mut eng,
            stats: &mut stats,
            loss_probe_noise: 0.0,
        });
        eng.run(&mut w, SimTime::from_ms(50.0));
        let info = take_to(&mut w, HostId(7));
        let Some(Msg::InfoReq { nonce }) = info.first() else {
            panic!("expected InfoReq");
        };
        inject(
            &mut eng,
            &mut w,
            HostId(7),
            Msg::InfoResp {
                nonce: *nonce,
                children: vec![
                    ChildEntry {
                        child: HostId(3),
                        vdist: 5.0,
                    },
                    ChildEntry {
                        child: HostId(4),
                        vdist: 6.0,
                    },
                ],
                parent: None,
                coord: None,
            },
        );
        // Only child 3 pongs; child 4 stays silent.
        let pings3 = take_to(&mut w, HostId(3));
        let Some(Msg::Ping { nonce: n3 }) = pings3.first() else {
            panic!("expected Ping to h3");
        };
        let _ = take_to(&mut w, HostId(4));
        inject(
            &mut eng,
            &mut w,
            HostId(3),
            Msg::Pong {
                nonce: *n3,
                coord: None,
            },
        );
        // Let the probe deadline fire; the walk proceeds with child 3
        // only and (policy = Attach) sends a ConnReq to the source.
        eng.run(&mut w, SimTime::from_secs(5));
        let conn: Vec<Msg> = take_to(&mut w, HostId(7))
            .into_iter()
            .filter(|m| matches!(m, Msg::ConnReq { .. }))
            .collect();
        assert!(!conn.is_empty(), "walk stalled on the silent child");
    }

    #[test]
    fn root_path_propagates_when_maintained() {
        let cfg = AgentConfig {
            maintain_root_path: true,
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.add_child(HostId(3), 4.0);
        inject(
            &mut eng,
            &mut w,
            HostId(1),
            Msg::RootPath {
                path: vec![HostId(7), HostId(1)],
            },
        );
        assert_eq!(w.agent.state.root_path, vec![HostId(7), HostId(1)]);
        assert_eq!(
            take_to(&mut w, HostId(3)),
            vec![Msg::RootPath {
                path: vec![HostId(7), HostId(1), HostId(0)]
            }]
        );
    }

    fn resilient_cfg() -> AgentConfig {
        AgentConfig {
            resilience: Some(ResilienceConfig::default()),
            ..AgentConfig::default()
        }
    }

    /// An orphan with a fresh backup candidate sends it a direct
    /// ConnReq instead of walking, and attaches on acceptance.
    #[test]
    fn orphan_fails_over_to_backup_candidate_without_a_walk() {
        let (mut eng, mut w) = harness(resilient_cfg(), false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.grandparent = Some(HostId(2));
        w.agent.candidates.push(Candidate {
            host: HostId(5),
            vdist: 3.0,
            seen_at: SimTime::ZERO,
        });
        inject(&mut eng, &mut w, HostId(1), Msg::Leave);
        assert!(w.agent.walk.is_none(), "failover must not start a walk");
        assert!(w.agent.failover.is_some());
        let sent = take_to(&mut w, HostId(5));
        let Some(Msg::ConnReq {
            nonce,
            kind: ConnKind::Child,
            ..
        }) = sent.first()
        else {
            panic!("expected a direct ConnReq at the candidate, got {sent:?}");
        };
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnResp {
                nonce: *nonce,
                result: ConnResult::Accepted {
                    grandparent: Some(HostId(2)),
                    adopted: vec![],
                    root_path: vec![],
                },
            },
        );
        assert_eq!(w.agent.state.parent, Some(HostId(5)));
        assert!(w.agent.failover.is_none());
        assert!(w.agent.walk.is_none());
    }

    /// When every failover target refuses, the orphan falls back to the
    /// §3.3 grandparent walk.
    #[test]
    fn failover_rejection_falls_back_to_grandparent_walk() {
        let (mut eng, mut w) = harness(resilient_cfg(), false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.grandparent = Some(HostId(2));
        w.agent.candidates.push(Candidate {
            host: HostId(5),
            vdist: 3.0,
            seen_at: SimTime::ZERO,
        });
        inject(&mut eng, &mut w, HostId(1), Msg::Leave);
        let sent = take_to(&mut w, HostId(5));
        let Some(Msg::ConnReq { nonce, .. }) = sent.first() else {
            panic!("expected ConnReq, got {sent:?}");
        };
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnResp {
                nonce: *nonce,
                result: ConnResult::Rejected,
            },
        );
        assert!(w.agent.failover.is_none());
        assert!(w.agent.walk.is_some(), "exhausted failover must walk");
        let to_gp = take_to(&mut w, HostId(2));
        assert!(
            to_gp.iter().any(|m| matches!(m, Msg::InfoReq { .. })),
            "walk must anchor at the grandparent, got {to_gp:?}"
        );
    }

    /// Ancestor gossip from the parent is prefixed with the parent and
    /// forwarded down to children.
    #[test]
    fn ancestor_gossip_propagates_down() {
        let (mut eng, mut w) = harness(resilient_cfg(), false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.add_child(HostId(3), 4.0);
        inject(
            &mut eng,
            &mut w,
            HostId(1),
            Msg::AncestorList {
                ancestors: vec![HostId(2), HostId(7)],
            },
        );
        assert_eq!(w.agent.ancestors, vec![HostId(1), HostId(2), HostId(7)]);
        assert_eq!(
            take_to(&mut w, HostId(3)),
            vec![Msg::AncestorList {
                ancestors: vec![HostId(1), HostId(2), HostId(7)],
            }]
        );
    }

    /// With the bucket dry, a plain join is queued and admitted once a
    /// token refills — never silently dropped.
    #[test]
    fn admission_throttles_then_admits_queued_join() {
        let cfg = AgentConfig {
            admission: Some(AdmissionConfig {
                rate_per_s: 1.0,
                burst: 1.0,
                queue: 2,
                max_wait: SimTime::from_secs(10),
            }),
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.parent = Some(HostId(1));
        inject(
            &mut eng,
            &mut w,
            HostId(4),
            Msg::ConnReq {
                nonce: 1,
                kind: ConnKind::Child,
                vdist: 5.0,
                coord: None,
            },
        );
        assert!(
            w.agent.state.has_child(HostId(4)),
            "first join takes the token"
        );
        inject(
            &mut eng,
            &mut w,
            HostId(5),
            Msg::ConnReq {
                nonce: 2,
                kind: ConnKind::Child,
                vdist: 6.0,
                coord: None,
            },
        );
        assert!(
            take_to(&mut w, HostId(5)).is_empty(),
            "second join is parked"
        );
        assert_eq!(w.agent.admit_queue.len(), 1);
        // A token refills after ~1 s and the queue drains.
        let until = eng.now() + SimTime::from_secs(2);
        eng.run(&mut w, until);
        assert!(w.agent.state.has_child(HostId(5)));
        let sent = take_to(&mut w, HostId(5));
        assert!(sent.iter().any(|m| matches!(
            m,
            Msg::ConnResp {
                nonce: 2,
                result: ConnResult::Accepted { .. }
            }
        )));
    }

    /// A watermark jump NACKs the missing chunks to the parent, and a
    /// retransmission fills the hole and is forwarded downstream.
    #[test]
    fn gap_triggers_nack_and_repair_fills_hole() {
        let cfg = AgentConfig {
            repair: Some(RepairConfig::default()),
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.add_child(HostId(3), 4.0);
        inject(&mut eng, &mut w, HostId(1), Msg::Data { seq: 1 });
        inject(&mut eng, &mut w, HostId(1), Msg::Data { seq: 4 });
        // inject() runs 300 ms per call, past the 250 ms NACK delay.
        let to_parent = take_to(&mut w, HostId(1));
        assert!(
            to_parent.contains(&Msg::Nack { seqs: vec![2, 3] }),
            "expected a NACK for the hole, got {to_parent:?}"
        );
        let _ = take_to(&mut w, HostId(3));
        // The parent retransmits chunk 2: delivered and forwarded.
        inject(&mut eng, &mut w, HostId(1), Msg::Data { seq: 2 });
        assert_eq!(take_to(&mut w, HostId(3)), vec![Msg::Data { seq: 2 }]);
        assert_eq!(w.agent.state.last_seq, Some(4));
        assert_eq!(w.agent.gaps.pending(), 1);
        // A duplicate of the repaired chunk is dropped.
        inject(&mut eng, &mut w, HostId(1), Msg::Data { seq: 2 });
        assert!(take_to(&mut w, HostId(3)).is_empty());
    }

    /// The parent side: NACKed chunks present in the retransmit ring
    /// are resent to the requesting child.
    #[test]
    fn parent_answers_nack_from_its_ring() {
        let cfg = AgentConfig {
            repair: Some(RepairConfig::default()),
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.add_child(HostId(3), 4.0);
        for seq in 1..=3 {
            inject(&mut eng, &mut w, HostId(1), Msg::Data { seq });
        }
        let _ = take_to(&mut w, HostId(3));
        inject(&mut eng, &mut w, HostId(3), Msg::Nack { seqs: vec![2, 99] });
        // 2 is in the ring, 99 is not.
        assert_eq!(take_to(&mut w, HostId(3)), vec![Msg::Data { seq: 2 }]);
        // NACKs from non-children are ignored.
        inject(&mut eng, &mut w, HostId(6), Msg::Nack { seqs: vec![2] });
        assert!(take_to(&mut w, HostId(6)).is_empty());
    }

    /// A sibling-tree orphan's CrossNack is served out of the ring,
    /// bounded by the cross-repair token bucket; peers without the
    /// budget ignore the message entirely.
    #[test]
    fn cross_nack_is_served_within_token_budget() {
        let cfg = AgentConfig {
            repair: Some(RepairConfig::default()),
            cross_repair: Some(AdmissionConfig {
                rate_per_s: 1.0,
                burst: 2.0,
                queue: 0,
                max_wait: SimTime::from_secs(1),
            }),
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.parent = Some(HostId(1));
        for seq in 1..=4 {
            inject(&mut eng, &mut w, HostId(1), Msg::Data { seq });
        }
        // Host 6 is NOT our child — cross pulls are not child-gated.
        inject(
            &mut eng,
            &mut w,
            HostId(6),
            Msg::CrossNack {
                seqs: vec![1, 2, 3],
            },
        );
        // Burst 2 (plus ~0.9 s of refill at 1/s): exactly two served.
        let served: Vec<Msg> = take_to(&mut w, HostId(6))
            .into_iter()
            .filter(|m| matches!(m, Msg::CrossData { .. }))
            .collect();
        assert_eq!(
            served,
            vec![Msg::CrossData { seq: 1 }, Msg::CrossData { seq: 2 }]
        );
    }

    /// The orphan side: a cross-repair tick registers the silent
    /// stripe holes and NACKs them at the sibling parent; the answered
    /// chunk is delivered and cascades to our own children, and an
    /// off-stripe retransmission is dropped and counted.
    #[test]
    fn cross_repair_tick_pulls_stripe_from_sibling_and_cascades() {
        let rc = RepairConfig::default().striped(2, 1);
        let cfg = AgentConfig {
            repair: Some(rc),
            cross_repair: Some(AdmissionConfig::default()),
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.add_child(HostId(3), 4.0);
        w.agent.ever_connected = true; // orphaned, not a newcomer
        let mut stats = RunStats::new(8);
        w.agent.cross_repair_tick(
            &mut Ctx {
                me: HostId(0),
                io: &mut eng,
                stats: &mut stats,
                loss_probe_noise: 0.0,
            },
            HostId(5),
            5,
        );
        // Holes registered (in the cross tracker, so the regular repair
        // timer cannot burn their retries), but the NACK delay has not
        // elapsed.
        assert!(take_to(&mut w, HostId(5)).is_empty());
        assert_eq!(w.agent.cross_gaps().pending(), 3);
        assert_eq!(w.agent.gaps().pending(), 0);
        // An inert timer carries the clock past the NACK delay (the
        // engine clock only moves when events are processed).
        let until = eng.now() + SimTime::from_ms(400.0);
        eng.set_timer(HostId(0), SimTime::from_ms(400.0), 0);
        eng.run(&mut w, until);
        w.agent.cross_repair_tick(
            &mut Ctx {
                me: HostId(0),
                io: &mut eng,
                stats: &mut stats,
                loss_probe_noise: 0.0,
            },
            HostId(5),
            5,
        );
        // Let the engine deliver the in-flight NACK to the sibling.
        let until = eng.now() + SimTime::from_ms(100.0);
        eng.run(&mut w, until);
        assert_eq!(
            take_to(&mut w, HostId(5)),
            vec![Msg::CrossNack {
                seqs: vec![1, 3, 5]
            }]
        );
        assert_eq!(stats.recovery.cross_nacks_sent, 1);
        // The sibling answers chunk 3: delivered fresh (first delivery
        // of this stripe) and forwarded to our child.
        inject(&mut eng, &mut w, HostId(5), Msg::CrossData { seq: 3 });
        assert_eq!(w.agent.state.last_seq, Some(3));
        assert_eq!(take_to(&mut w, HostId(3)), vec![Msg::Data { seq: 3 }]);
        // An off-stripe chunk (seq 2 is stripe 0) violates ownership:
        // dropped, counted, watermark untouched.
        let mut stats2 = RunStats::new(8);
        w.agent.on_msg(
            &mut Ctx {
                me: HostId(0),
                io: &mut eng,
                stats: &mut stats2,
                loss_probe_noise: 0.0,
            },
            HostId(5),
            Msg::CrossData { seq: 2 },
        );
        assert_eq!(stats2.recovery.cross_stripe_violations, 1);
        assert_eq!(w.agent.state.last_seq, Some(3));
    }

    #[test]
    fn ancestors_are_rejected_when_root_paths_are_on() {
        let cfg = AgentConfig {
            maintain_root_path: true,
            ..AgentConfig::default()
        };
        let (mut eng, mut w) = harness(cfg, false);
        w.agent.state.parent = Some(HostId(1));
        w.agent.state.root_path = vec![HostId(7), HostId(2), HostId(1)];
        // Host 2 is our ancestor: accepting it as a child would loop.
        inject(
            &mut eng,
            &mut w,
            HostId(2),
            Msg::ConnReq {
                nonce: 5,
                kind: ConnKind::Child,
                vdist: 1.0,
                coord: None,
            },
        );
        assert_eq!(
            take_to(&mut w, HostId(2)),
            vec![Msg::ConnResp {
                nonce: 5,
                result: ConnResult::Rejected
            }]
        );
    }
}
