//! Decentralized bootstrap membership: iterative peer discovery over a
//! gossiped partial view.
//!
//! The paper's scenarios hand every newcomer the source address — an
//! omniscient rendezvous no deployed overlay has. With discovery
//! enabled, a joiner instead knows only a small *bootstrap set* of seed
//! peers ([`DiscoveryConfig::seeds`]) and runs iterative peer discovery
//! before its join walk: it fires [`crate::msg::Msg::PeerReq`] probes at
//! the freshest entries of its partial view (bounded fanout), responders
//! answer with [`crate::msg::Msg::PeerList`] samples of their own view
//! under a token-bucket serving budget, and the first verified-live
//! responder becomes the walk's *entry anchor* in place of the source.
//! Unanswered probes retire their view entry (stale/dead peers are
//! detected by age and timeout, never trusted forever), per-request
//! deadlines grow exponentially across rounds (the PR 1 retry
//! machinery, [`crate::walk::scaled_delay`]), and when the whole view
//! is exhausted the join falls back to the plain source walk — from
//! where the existing candidate → ancestor → source recovery hierarchy
//! applies unchanged.
//!
//! Everything here is inert unless a [`DiscoveryConfig`] is installed:
//! no RNG draws, timers, or messages happen otherwise, so runs without
//! discovery stay byte-identical per seed.

use crate::coords::{Coord, CoordSample};
use vdm_netsim::{HostId, SimTime};

/// Bootstrap-discovery tunables plus the seed peer set. Carried by
/// [`crate::scenario::Scenario`] and distributed to every agent by the
/// driver; `None` (the default everywhere) keeps the omniscient joins.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscoveryConfig {
    /// The bootstrap set: peers a newcomer knows before joining. May
    /// contain stale entries (departed or never-joining hosts) — that
    /// is the point of the hardening.
    pub seeds: Vec<HostId>,
    /// Concurrent `PeerReq` probes per discovery round.
    pub fanout: usize,
    /// Deadline of a round-0 probe; later rounds scale it by
    /// [`DiscoveryConfig::backoff`] per round.
    pub request_timeout: SimTime,
    /// Exponential deadline multiplier per round (the flash-crowd
    /// absorber: re-probes of a budget-shedding seed space out
    /// exponentially, giving its token bucket time to refill).
    pub backoff: f64,
    /// Uniform ± jitter fraction on probe deadlines (0 draws no RNG).
    pub jitter_frac: f64,
    /// Probe rounds before giving up and falling back to the source
    /// walk.
    pub max_rounds: u32,
    /// Partial-view capacity (freshest entries win).
    pub view_size: usize,
    /// View entries unseen for longer than this are evicted as stale.
    pub max_age: SimTime,
    /// Responder serving budget: sustained `PeerList` replies per
    /// second. A dry bucket drops the request silently — the
    /// requester's timeout+backoff spreads the crowd out.
    pub serve_rate_per_s: f64,
    /// Serving-budget burst capacity.
    pub serve_burst: f64,
    /// Peers shared per `PeerList` reply.
    pub gossip_fanout: usize,
    /// Rank probe targets by virtual-coordinate distance instead of
    /// freshness (coordinate-embedding extension). Only effective when
    /// the agent also runs an embedding; the joiner then probes its
    /// coordinate-nearest view entries first, so the first live
    /// responder — the walk anchor — is already near the joiner's
    /// predicted tree region.
    pub coord_ranked: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            seeds: Vec::new(),
            fanout: 2,
            request_timeout: SimTime::from_secs(2),
            backoff: 2.0,
            jitter_frac: 0.0,
            max_rounds: 4,
            view_size: 12,
            max_age: SimTime::from_secs(120),
            serve_rate_per_s: 4.0,
            serve_burst: 8.0,
            gossip_fanout: 6,
            coord_ranked: false,
        }
    }
}

/// One partial-view entry.
#[derive(Clone, Copy, Debug)]
struct ViewEntry {
    host: HostId,
    /// When we last heard of this peer (directly or via gossip).
    seen_at: SimTime,
    /// Probed in the current pass over the view (cleared when every
    /// entry has been tried and rounds remain).
    tried: bool,
    /// The peer's last gossiped coordinate sample (`None` when the
    /// embedding is off or no sample has arrived yet).
    coord: Option<CoordSample>,
}

/// Per-agent discovery state: the gossiped partial view, the in-flight
/// probe set, and the responder serving bucket. Pure bookkeeping — the
/// agent owns all message/timer side effects.
#[derive(Clone, Debug)]
pub struct DiscoveryState {
    cfg: DiscoveryConfig,
    view: Vec<ViewEntry>,
    /// In-flight probes as `(nonce, target)`.
    inflight: Vec<(u64, HostId)>,
    /// Rounds fired so far.
    round: u32,
    /// When the first round fired (time-to-first-anchor zero point).
    started_at: Option<SimTime>,
    /// Anchor chosen or fallback taken; further replies only refresh
    /// the view.
    finished: bool,
    /// Responder serving bucket.
    serve_tokens: f64,
    serve_refilled_at: SimTime,
}

impl DiscoveryState {
    /// Fresh state for `me`, with the bootstrap set stamped `now`.
    pub fn new(cfg: &DiscoveryConfig, me: HostId, now: SimTime) -> Self {
        let mut s = Self {
            cfg: cfg.clone(),
            view: Vec::new(),
            inflight: Vec::new(),
            round: 0,
            started_at: None,
            finished: false,
            serve_tokens: cfg.serve_burst,
            serve_refilled_at: now,
        };
        for &h in &cfg.seeds {
            s.observe_at(h, me, now);
        }
        s
    }

    /// The installed tunables.
    pub fn cfg(&self) -> &DiscoveryConfig {
        &self.cfg
    }

    /// Rounds fired so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// When the first probe round fired.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Anchor chosen or fallback taken.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Mark the episode done (anchor found or fallback taken).
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// No probes awaiting an answer or deadline.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Whether a cold join has anyone to ask at all (after age
    /// eviction). A configured-but-empty view joins exactly like the
    /// discovery-off path, with no counters touched.
    pub fn has_candidates(&mut self, now: SimTime) -> bool {
        self.evict_stale(now);
        !self.view.is_empty()
    }

    /// Record that `host` was seen (gossip or direct contact) at `at`.
    /// The view keeps the freshest `view_size` entries; `me` is never
    /// inserted.
    pub fn observe_at(&mut self, host: HostId, me: HostId, at: SimTime) {
        if host == me {
            return;
        }
        if let Some(e) = self.view.iter_mut().find(|e| e.host == host) {
            e.seen_at = e.seen_at.max(at);
            return;
        }
        self.view.push(ViewEntry {
            host,
            seen_at: at,
            tried: false,
            coord: None,
        });
        if self.view.len() > self.cfg.view_size {
            // Evict the oldest entry (ties broken by host id so the
            // view is deterministic regardless of insertion order).
            let mut oldest = 0;
            for (i, e) in self.view.iter().enumerate() {
                let o = &self.view[oldest];
                if (e.seen_at, e.host.0) < (o.seen_at, o.host.0) {
                    oldest = i;
                }
            }
            self.view.remove(oldest);
        }
    }

    /// Record a gossiped peer whose reported age is `age_s` seconds.
    pub fn observe_aged(&mut self, host: HostId, me: HostId, age_s: f64, now: SimTime) {
        let age = SimTime::from_ms((age_s * 1000.0).max(0.0));
        self.observe_at(host, me, now.saturating_sub(age));
    }

    /// Attach a gossiped coordinate sample to `host`'s view entry, if
    /// one exists (silently dropped otherwise — the view's capacity
    /// policy is freshness-only and coordinates never pin an entry).
    pub fn note_coord(&mut self, host: HostId, sample: CoordSample) {
        if let Some(e) = self.view.iter_mut().find(|e| e.host == host) {
            e.coord = Some(sample);
        }
    }

    /// The last gossiped coordinate sample of `host`, if any.
    pub fn coord_of(&self, host: HostId) -> Option<CoordSample> {
        self.view
            .iter()
            .find(|e| e.host == host)
            .and_then(|e| e.coord)
    }

    /// Drop entries unseen for longer than `max_age`.
    fn evict_stale(&mut self, now: SimTime) {
        let max_age = self.cfg.max_age;
        self.view
            .retain(|e| now.saturating_sub(e.seen_at) <= max_age);
    }

    /// Remove a dead/stale peer outright (probe deadline expired).
    pub fn retire(&mut self, host: HostId) {
        self.view.retain(|e| e.host != host);
    }

    /// Begin a probe round: evict stale entries and pick up to `fanout`
    /// untried entries, freshest first (host id breaks ties). When
    /// every live entry has been tried and rounds remain, the tried
    /// flags reset — a later pass re-probes seeds that shed us under
    /// load, after the backoff gave their budget time to refill.
    /// Returns the empty vector when the round budget or the view is
    /// exhausted: the caller falls back to the source walk.
    pub fn begin_round(&mut self, now: SimTime) -> Vec<HostId> {
        self.begin_round_from(now, None)
    }

    /// [`DiscoveryState::begin_round`] with an optional joiner
    /// coordinate: when `coord_ranked` is set and a coordinate is
    /// supplied, untried entries are probed nearest-first (entries
    /// without a sample last, freshest-first among equals) instead of
    /// purely freshest-first, so the first live responder is already
    /// near the joiner's predicted region.
    pub fn begin_round_from(&mut self, now: SimTime, self_coord: Option<Coord>) -> Vec<HostId> {
        if self.round >= self.cfg.max_rounds {
            return Vec::new();
        }
        self.evict_stale(now);
        if self.view.is_empty() {
            return Vec::new();
        }
        if self.view.iter().all(|e| e.tried) {
            for e in &mut self.view {
                e.tried = false;
            }
        }
        let mut order: Vec<usize> = (0..self.view.len())
            .filter(|&i| !self.view[i].tried)
            .collect();
        let ranked = if self.cfg.coord_ranked {
            self_coord
        } else {
            None
        };
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&self.view[a], &self.view[b]);
            if let Some(c) = ranked {
                let da = ea.coord.map_or(f64::INFINITY, |s| c.dist(s.coord));
                let db = eb.coord.map_or(f64::INFINITY, |s| c.dist(s.coord));
                if let o @ (std::cmp::Ordering::Less | std::cmp::Ordering::Greater) =
                    da.total_cmp(&db)
                {
                    return o;
                }
            }
            (eb.seen_at, ea.host.0).cmp(&(ea.seen_at, eb.host.0))
        });
        order.truncate(self.cfg.fanout.max(1));
        let targets: Vec<HostId> = order
            .iter()
            .map(|&i| {
                self.view[i].tried = true;
                self.view[i].host
            })
            .collect();
        self.round += 1;
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
        targets
    }

    /// Track an in-flight probe.
    pub fn note_inflight(&mut self, nonce: u64, target: HostId) {
        self.inflight.push((nonce, target));
    }

    /// A `PeerList` arrived: true iff `(nonce, from)` matched an
    /// in-flight probe (which is then cleared). Stale replies from
    /// earlier rounds or other hosts are ignored.
    pub fn resolve_inflight(&mut self, nonce: u64, from: HostId) -> bool {
        let before = self.inflight.len();
        self.inflight.retain(|&(n, t)| !(n == nonce && t == from));
        self.inflight.len() < before
    }

    /// A probe deadline fired: returns the target if the probe was
    /// still unanswered (and clears it), `None` if a reply won the
    /// race.
    pub fn timeout_inflight(&mut self, nonce: u64) -> Option<HostId> {
        let i = self.inflight.iter().position(|&(n, _)| n == nonce)?;
        Some(self.inflight.swap_remove(i).1)
    }

    /// Take one serving token (refilled at `serve_rate_per_s` up to
    /// `serve_burst`); `false` means the request should be dropped.
    pub fn serve_take(&mut self, now: SimTime) -> bool {
        let dt = now.saturating_sub(self.serve_refilled_at).as_secs();
        self.serve_tokens =
            (self.serve_tokens + dt * self.cfg.serve_rate_per_s).min(self.cfg.serve_burst);
        self.serve_refilled_at = now;
        if self.serve_tokens < 1.0 {
            return false;
        }
        self.serve_tokens -= 1.0;
        true
    }

    /// Sample peers to share with `asker`: tree neighbours first (our
    /// parent and children are verified live), then the freshest view
    /// entries, capped at `gossip_fanout`. Ages are attached so the
    /// receiver can stamp the entries into its own view.
    pub fn share(
        &self,
        me: HostId,
        asker: HostId,
        parent: Option<HostId>,
        children: &[HostId],
        now: SimTime,
    ) -> Vec<(HostId, f64)> {
        let mut out: Vec<(HostId, f64)> = Vec::new();
        let push = |h: HostId, age_s: f64, out: &mut Vec<(HostId, f64)>| {
            if h != asker && h != me && !out.iter().any(|&(x, _)| x == h) {
                out.push((h, age_s));
            }
        };
        if let Some(p) = parent {
            push(p, 0.0, &mut out);
        }
        for &c in children {
            push(c, 0.0, &mut out);
        }
        let mut by_age: Vec<&ViewEntry> = self.view.iter().collect();
        by_age.sort_by(|a, b| (b.seen_at, a.host.0).cmp(&(a.seen_at, b.host.0)));
        for e in by_age {
            push(e.host, now.saturating_sub(e.seen_at).as_secs(), &mut out);
        }
        out.truncate(self.cfg.gossip_fanout.max(1));
        out
    }

    /// Clear the per-join episode (a graceful leave keeps the warm
    /// view as membership knowledge for the next incarnation).
    pub fn reset_episode(&mut self) {
        self.inflight.clear();
        self.round = 0;
        self.started_at = None;
        self.finished = false;
        for e in &mut self.view {
            e.tried = false;
        }
    }

    /// Current view hosts, freshest first (diagnostics/tests).
    pub fn view_hosts(&self) -> Vec<HostId> {
        let mut by_age: Vec<&ViewEntry> = self.view.iter().collect();
        by_age.sort_by(|a, b| (b.seen_at, a.host.0).cmp(&(a.seen_at, b.host.0)));
        by_age.iter().map(|e| e.host).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seeds: &[u32]) -> DiscoveryConfig {
        DiscoveryConfig {
            seeds: seeds.iter().map(|&h| HostId(h)).collect(),
            ..DiscoveryConfig::default()
        }
    }

    const ME: HostId = HostId(99);

    #[test]
    fn seeds_populate_the_view_excluding_self() {
        let d = DiscoveryState::new(&cfg(&[1, 2, 99]), ME, SimTime::from_secs(5));
        assert_eq!(d.view_hosts(), vec![HostId(1), HostId(2)]);
    }

    #[test]
    fn rounds_walk_the_view_then_exhaust() {
        let mut d = DiscoveryState::new(&cfg(&[1, 2, 3]), ME, SimTime::ZERO);
        let t = SimTime::from_secs(1);
        let r1 = d.begin_round(t);
        assert_eq!(r1.len(), 2, "fanout-bounded");
        let r2 = d.begin_round(t);
        assert_eq!(r2.len(), 1, "remaining untried entry");
        // A third pass re-probes (tried flags reset) until max_rounds.
        let r3 = d.begin_round(t);
        assert_eq!(r3.len(), 2);
        let r4 = d.begin_round(t);
        assert_eq!(r4.len(), 1);
        assert_eq!(d.begin_round(t), Vec::new(), "round budget exhausted");
    }

    #[test]
    fn age_eviction_retires_stale_entries() {
        let mut d = DiscoveryState::new(&cfg(&[1, 2]), ME, SimTime::ZERO);
        d.observe_at(HostId(7), ME, SimTime::from_secs(100));
        assert!(d.has_candidates(SimTime::from_secs(130)));
        // Seeds stamped at 0 are now older than max_age (120 s); only
        // the fresh gossip survives.
        assert_eq!(d.view_hosts(), vec![HostId(7)]);
        assert!(!d.has_candidates(SimTime::from_secs(500)));
    }

    #[test]
    fn gossiped_ages_backdate_entries() {
        let mut d = DiscoveryState::new(&cfg(&[]), ME, SimTime::ZERO);
        let now = SimTime::from_secs(200);
        d.observe_aged(HostId(5), ME, 30.0, now);
        d.observe_aged(HostId(6), ME, 500.0, now);
        assert!(d.has_candidates(now));
        assert_eq!(d.view_hosts(), vec![HostId(5)], "too-old gossip evicted");
    }

    #[test]
    fn view_caps_at_view_size_keeping_freshest() {
        let mut c = cfg(&[]);
        c.view_size = 3;
        let mut d = DiscoveryState::new(&c, ME, SimTime::ZERO);
        for i in 1..=5u32 {
            d.observe_at(HostId(i), ME, SimTime::from_secs(i as u64));
        }
        assert_eq!(d.view_hosts(), vec![HostId(5), HostId(4), HostId(3)]);
    }

    #[test]
    fn inflight_resolution_and_timeout_race() {
        let mut d = DiscoveryState::new(&cfg(&[1]), ME, SimTime::ZERO);
        d.note_inflight(10, HostId(1));
        d.note_inflight(11, HostId(2));
        assert!(d.resolve_inflight(10, HostId(1)));
        assert!(!d.resolve_inflight(10, HostId(1)), "already resolved");
        assert!(!d.resolve_inflight(11, HostId(3)), "wrong responder");
        assert_eq!(d.timeout_inflight(11), Some(HostId(2)));
        assert_eq!(d.timeout_inflight(11), None, "already timed out");
        assert!(d.idle());
    }

    #[test]
    fn serve_bucket_drains_and_refills() {
        let mut c = cfg(&[]);
        c.serve_rate_per_s = 1.0;
        c.serve_burst = 2.0;
        let mut d = DiscoveryState::new(&c, ME, SimTime::ZERO);
        assert!(d.serve_take(SimTime::ZERO));
        assert!(d.serve_take(SimTime::ZERO));
        assert!(!d.serve_take(SimTime::ZERO), "burst spent");
        assert!(d.serve_take(SimTime::from_secs(1)), "refilled");
        assert!(!d.serve_take(SimTime::from_secs(1)));
    }

    #[test]
    fn share_prefers_live_tree_neighbours() {
        let mut d = DiscoveryState::new(&cfg(&[4, 5]), ME, SimTime::from_secs(50));
        d.observe_at(HostId(6), ME, SimTime::from_secs(60));
        let peers = d.share(
            ME,
            HostId(4),
            Some(HostId(2)),
            &[HostId(3)],
            SimTime::from_secs(60),
        );
        // Parent and child lead with age 0; the asker itself is
        // excluded; gossiped view entries follow with their ages.
        assert_eq!(peers[0], (HostId(2), 0.0));
        assert_eq!(peers[1], (HostId(3), 0.0));
        assert!(peers.contains(&(HostId(6), 0.0)));
        assert!(peers.iter().any(|&(h, a)| h == HostId(5) && a == 10.0));
        assert!(!peers.iter().any(|&(h, _)| h == HostId(4)));
    }

    #[test]
    fn coord_ranked_rounds_probe_nearest_first() {
        let mut c = cfg(&[1, 2, 3]);
        c.coord_ranked = true;
        c.fanout = 2;
        let mut d = DiscoveryState::new(&c, ME, SimTime::ZERO);
        let at = |x: f64| CoordSample {
            coord: Coord([x, 0.0, 0.0, 0.0]),
            err: 0.3,
        };
        d.note_coord(HostId(2), at(1.0));
        d.note_coord(HostId(3), at(5.0));
        // Host 1 has no sample and must sort last despite equal age.
        let t = SimTime::from_secs(1);
        let r = d.begin_round_from(t, Some(Coord::ZERO));
        assert_eq!(r, vec![HostId(2), HostId(3)]);
        assert_eq!(d.begin_round_from(t, Some(Coord::ZERO)), vec![HostId(1)]);
        // Without a joiner coordinate the freshest-first order stands.
        let mut d2 = DiscoveryState::new(&c, ME, SimTime::ZERO);
        d2.note_coord(HostId(3), at(0.1));
        assert_eq!(d2.begin_round(t), vec![HostId(1), HostId(2)]);
        assert_eq!(d2.coord_of(HostId(3)), Some(at(0.1)));
        assert_eq!(d2.coord_of(HostId(1)), None);
    }

    #[test]
    fn reset_episode_keeps_the_view_warm() {
        let mut d = DiscoveryState::new(&cfg(&[1, 2]), ME, SimTime::ZERO);
        let t = SimTime::from_secs(1);
        d.begin_round(t);
        d.note_inflight(7, HostId(1));
        d.finish();
        d.reset_episode();
        assert!(!d.finished());
        assert!(d.idle());
        assert_eq!(d.round(), 0);
        assert_eq!(d.begin_round(t).len(), 2, "view survived the reset");
    }
}
