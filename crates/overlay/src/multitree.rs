//! Multi-tree striped delivery with cross-tree repair (ablation A10).
//!
//! A [`MultiTreeSession`] runs `k` overlay trees for one stream and
//! stripes the chunk sequence round-robin across them (`seq % k` is the
//! owning tree), so an interior-node failure in one tree costs at most
//! ~`1/k` of the stream while the other stripes keep flowing. The
//! resilience is only real when the trees do not share interior nodes;
//! callers decorrelate them with per-tree walk policies (perturbed
//! virtual-direction metrics) and [`striped_limits`] degree biasing,
//! and [`interior_overlap`] reports how disjoint the interiors actually
//! are.
//!
//! ## Virtual hosts
//!
//! Tree `t` of a session over `n` physical hosts runs its agents under
//! *virtual* host ids `t*n + h` on one shared engine; a
//! [`StripedUnderlay`] folds every virtual pair back onto the physical
//! RTT/loss model, so the `k` trees contend for the same network while
//! the per-tree protocol state stays fully isolated. `k = 1` bypasses
//! all of this and delegates to the plain single-tree [`Driver`] —
//! byte-identical outputs per seed, chaos on or off.
//!
//! ## Cross-tree repair
//!
//! A receiver cut off from stripe `t` (orphaned, or silent past a
//! stall threshold) cannot NACK its dead parent. Instead, each sweep of
//! the session-level cross-repair tick finds the host's parent in a
//! *sibling* tree, maps that physical host back into tree `t`, and
//! pulls the missing stripe-`t` chunks from there (`CrossNack` /
//! `CrossData`, token-bucket bounded at the server). Requests therefore
//! never leave the stripe that owns the sequence numbers — a property
//! the receiver enforces by dropping and counting off-stripe
//! retransmissions.

use crate::agent::{AgentFactory, Ctx, OverlayAgent, ProtocolAgent};
use crate::driver::{Driver, DriverConfig, RunOutput};
use crate::metrics::TreeMetrics;
use crate::msg::Msg;
use crate::scenario::{Action, Scenario};
use crate::stats::{RunStats, SlotMeasurement};
use crate::tree::TreeSnapshot;
use crate::walk::WalkPolicy;
use rand::RngCore;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use vdm_netsim::dataplane::LinkSpec;
use vdm_netsim::engine::Counters;
use vdm_netsim::{Engine, FaultEvent, FaultPlan, HostId, RoutedUnderlay, SimTime, Underlay, World};
use vdm_topology::{EdgeId, Millis};
use vdm_trace::{EventSink, TraceEvent, Tracer};

/// External-event token for the periodic stream tick (mirrors the
/// single-tree driver).
const DATA_TICK: u64 = u64::MAX;
/// External-event token for the cross-tree repair sweep.
const CROSS_TICK: u64 = u64::MAX - 1;

/// `k` copies of a physical underlay under virtual host ids: virtual
/// host `t*n + h` is physical host `h` participating in tree `t`.
/// Every latency/loss/route query folds back onto the physical pair,
/// so tree traffic from all `k` trees shares one network model.
pub struct StripedUnderlay {
    inner: Arc<dyn Underlay + Send + Sync>,
    k: usize,
    n: usize,
}

/// Fold `(tree, physical host)` into the virtual id space of a `k`-tree
/// session over `n` physical hosts. Checked: a 100k-host, many-tree
/// session folds ids well past 32 bits of headroom's comfort zone, and
/// the old `(t * n + h) as u32` cast silently wrapped there — wrong
/// *physical* hosts would have received every fault and message. Panics
/// with a config diagnosis instead of truncating.
pub fn fold_vid(t: usize, n: usize, h: HostId) -> HostId {
    let v = t
        .checked_mul(n)
        .and_then(|tn| tn.checked_add(h.idx()))
        .and_then(|v| u32::try_from(v).ok())
        .unwrap_or_else(|| {
            panic!("virtual id {t}*{n}+{h} overflows the u32 host-id space; lower k or n")
        });
    HostId(v)
}

impl StripedUnderlay {
    /// Wrap `inner` for a `k`-tree session.
    pub fn new(inner: Arc<dyn Underlay + Send + Sync>, k: usize) -> Self {
        let n = inner.num_hosts();
        assert!(k >= 1 && n >= 1);
        // Reject sessions whose virtual id space does not fit u32 up
        // front, so every later fold is infallible.
        let _ = fold_vid(k - 1, n, HostId(n as u32 - 1));
        Self { inner, k, n }
    }

    fn phys(&self, v: HostId) -> HostId {
        HostId((v.idx() % self.n) as u32)
    }
}

impl Underlay for StripedUnderlay {
    fn num_hosts(&self) -> usize {
        self.k * self.n
    }

    fn rtt_ms(&self, a: HostId, b: HostId) -> Millis {
        self.inner.rtt_ms(self.phys(a), self.phys(b))
    }

    fn one_way_ms(&self, a: HostId, b: HostId) -> Millis {
        self.inner.one_way_ms(self.phys(a), self.phys(b))
    }

    fn sample_one_way_ms(&self, a: HostId, b: HostId, rng: &mut dyn RngCore) -> Millis {
        self.inner
            .sample_one_way_ms(self.phys(a), self.phys(b), rng)
    }

    fn path_loss(&self, a: HostId, b: HostId) -> f64 {
        self.inner.path_loss(self.phys(a), self.phys(b))
    }

    fn path_edges(&self, a: HostId, b: HostId) -> Option<Vec<EdgeId>> {
        self.inner.path_edges(self.phys(a), self.phys(b))
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_specs(&self) -> Vec<LinkSpec> {
        self.inner.link_specs()
    }
}

/// What the session driver needs from an agent beyond [`OverlayAgent`]:
/// the cross-tree repair hooks. Blanket-implemented for every
/// [`ProtocolAgent`], so any walk policy gets multi-tree support for
/// free.
pub trait CrossRepairAgent: OverlayAgent {
    /// One cross-repair opportunity: register the silent stripe holes
    /// up to `latest` and NACK the due ones at `sibling` (a same-tree
    /// virtual id found through a sibling tree's parent relation).
    fn cross_repair_tick(&mut self, ctx: &mut Ctx<'_>, sibling: HostId, latest: u64);

    /// Should this receiver pull from a sibling tree right now? True
    /// when it once had a parent but lost it, or when its stripe has
    /// been silent for at least `stall`.
    fn wants_cross_repair(&self, now: SimTime, stall: SimTime) -> bool;
}

impl<P: WalkPolicy> CrossRepairAgent for ProtocolAgent<P> {
    fn cross_repair_tick(&mut self, ctx: &mut Ctx<'_>, sibling: HostId, latest: u64) {
        ProtocolAgent::cross_repair_tick(self, ctx, sibling, latest);
    }

    fn wants_cross_repair(&self, now: SimTime, stall: SimTime) -> bool {
        self.ever_connected()
            && !self.state().is_source
            && (self.parent().is_none() || now.saturating_sub(self.last_data_at()) >= stall)
    }
}

/// Session tunables on top of the per-tree [`DriverConfig`].
#[derive(Clone, Copy, Debug)]
pub struct MultiTreeConfig {
    /// Number of stripe trees (`1` = the plain single-tree driver).
    pub k: usize,
    /// Per-tree driver mechanics (stream interval, metric toggles).
    pub driver: DriverConfig,
    /// Cadence of the cross-tree repair sweep (`None` disables it; the
    /// per-chunk NACK budget still applies when enabled).
    pub cross_period: Option<SimTime>,
    /// Stripe silence that makes a still-connected receiver start
    /// pulling from a sibling tree (orphans pull immediately).
    pub cross_stall: SimTime,
}

impl MultiTreeConfig {
    /// Defaults for a `k`-tree session: 1 s stream tick, 1 s cross
    /// sweep, 3 s stall threshold.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            driver: DriverConfig::default(),
            cross_period: Some(SimTime::from_secs(1)),
            cross_stall: SimTime::from_secs(3),
        }
    }
}

/// One multi-tree measurement point (alongside the tree-0 shaped
/// [`SlotMeasurement`] pushed into [`RunStats::measurements`]).
#[derive(Clone, Debug)]
pub struct MtSlot {
    /// Simulated time of the measurement, seconds.
    pub time_s: f64,
    /// Session members (identical across trees by construction).
    pub members: usize,
    /// Connected members per tree.
    pub connected: Vec<usize>,
    /// Mean pairwise Jaccard overlap of the trees' interior-node sets
    /// (0 = fully interior-disjoint).
    pub interior_overlap: f64,
    /// Worst per-link stress across the trees (0 when stress is not
    /// computed).
    pub stress_max: f64,
    /// Slot loss over every stripe combined.
    pub loss_rate: f64,
}

/// Result of a session run.
#[derive(Clone, Debug)]
pub struct MultiTreeOutput {
    /// Statistics over all `k*n` virtual receivers (for `k = 1`,
    /// exactly the single-tree [`RunOutput::stats`]).
    pub stats: RunStats,
    /// Final snapshot of each tree, in physical host ids.
    pub snapshots: Vec<TreeSnapshot>,
    /// Per-measurement multi-tree series.
    pub slots: Vec<MtSlot>,
    /// Engine events processed.
    pub events: u64,
    /// Whole-run traffic counters.
    pub counters: Counters,
}

/// Mean pairwise Jaccard overlap of the interior-node sets of `snaps`
/// (physical ids, source excluded). 0 for fewer than two trees or when
/// no tree has interior nodes.
pub fn interior_overlap(snaps: &[TreeSnapshot]) -> f64 {
    if snaps.len() < 2 {
        return 0.0;
    }
    let sets: Vec<BTreeSet<HostId>> = snaps
        .iter()
        .map(|s| s.interior_members().into_iter().collect())
        .collect();
    let mut acc = 0.0;
    let mut pairs = 0usize;
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            let inter = sets[i].intersection(&sets[j]).count();
            let union = sets[i].union(&sets[j]).count();
            if union > 0 {
                acc += inter as f64 / union as f64;
            }
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        acc / pairs as f64
    }
}

/// The deterministic crash target of the A10 fault schedule: the
/// interior node of the *first* tree with the largest subtree,
/// preferring nodes that are leaves in every sibling tree (those
/// isolate the measured damage to one stripe), tie-broken toward the
/// lowest host id.
pub fn interior_victim(snaps: &[TreeSnapshot]) -> Option<HostId> {
    let first = snaps.first()?;
    let sizes = first.subtree_sizes();
    let sibling_interior: BTreeSet<HostId> = snaps[1..]
        .iter()
        .flat_map(|s| s.interior_members())
        .collect();
    first.interior_members().into_iter().max_by_key(|h| {
        (
            !sibling_interior.contains(h),
            sizes[h.idx()],
            std::cmp::Reverse(h.0),
        )
    })
}

/// Virtual-id degree limits that bias each tree's fan-out onto its own
/// residue class: in tree `t`, host `h` keeps `base[h]` when
/// `h % k == t` (or when it is the source, which roots every tree) and
/// is capped at `off_stripe_cap` otherwise. This is what decorrelates
/// the interiors — a host mostly relays in one tree and leafs in the
/// others.
pub fn striped_limits(base: &[u32], k: usize, source: HostId, off_stripe_cap: u32) -> Vec<u32> {
    let n = base.len();
    let mut out = Vec::with_capacity(k * n);
    for t in 0..k {
        for (h, &limit) in base.iter().enumerate() {
            let full = k <= 1 || h == source.idx() || h % k == t;
            out.push(if full {
                limit
            } else {
                limit.min(off_stripe_cap).max(1)
            });
        }
    }
    out
}

/// Expand a physical-host fault schedule to the virtual id space of a
/// `k`-tree session over `n` physical hosts, so a physical link outage
/// or host slowdown hits every tree exactly like it would hit one.
pub fn expand_faults(events: &[FaultEvent], k: usize, n: usize) -> Vec<FaultEvent> {
    let vid = |t: usize, h: HostId| fold_vid(t, n, h);
    let mut out = Vec::new();
    for ev in events {
        match ev {
            FaultEvent::LinkFlap { a, b, from, until } => {
                // The physical pair blacks out for every tree-pair
                // combination of its endpoints.
                for ta in 0..k {
                    for tb in 0..k {
                        out.push(FaultEvent::LinkFlap {
                            a: vid(ta, *a),
                            b: vid(tb, *b),
                            from: *from,
                            until: *until,
                        });
                    }
                }
            }
            FaultEvent::Partition { side, from, until } => {
                let mut vs = Vec::with_capacity(side.len() * k);
                for t in 0..k {
                    for h in side {
                        vs.push(vid(t, *h));
                    }
                }
                out.push(FaultEvent::Partition {
                    side: vs,
                    from: *from,
                    until: *until,
                });
            }
            ev @ FaultEvent::MsgFaults { .. } => out.push(ev.clone()),
            FaultEvent::Slowdown {
                host,
                factor,
                from,
                until,
            } => {
                for t in 0..k {
                    out.push(FaultEvent::Slowdown {
                        host: vid(t, *host),
                        factor: *factor,
                        from: *from,
                        until: *until,
                    });
                }
            }
        }
    }
    out
}

/// An [`EventSink`] that rewrites virtual-id trace events into
/// physical-id events wrapped in [`TraceEvent::Tagged`] (carrying the
/// tree index), then forwards them to the tracer the process had
/// installed. Installed on the session engine only when tracing is on,
/// so traced multi-tree runs stay analyzable with single-tree tooling.
struct RetagSink {
    inner: Tracer,
    n: u32,
}

impl EventSink for RetagSink {
    fn record(&mut self, t_us: u64, ev: &TraceEvent) {
        let tree = primary_vid(ev).map_or(0, |v| v / self.n);
        let n = self.n;
        self.inner.emit(t_us, || TraceEvent::Tagged {
            tree,
            inner: Box::new(ev.clone().map_hosts(&|h| h % n)),
        });
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// The acting virtual host of an event (the field tree attribution
/// keys on); `None` for host-free events.
fn primary_vid(ev: &TraceEvent) -> Option<u32> {
    match ev {
        TraceEvent::WalkStart { host, .. }
        | TraceEvent::WalkDecision { host, .. }
        | TraceEvent::WalkRestart { host, .. }
        | TraceEvent::WalkConnected { host, .. }
        | TraceEvent::ParentChange { host, .. }
        | TraceEvent::Orphaned { host, .. }
        | TraceEvent::FailoverAttempt { host, .. }
        | TraceEvent::FailoverResult { host, .. }
        | TraceEvent::NackSent { host, .. }
        | TraceEvent::ChunkRepaired { host, .. }
        | TraceEvent::AdmissionThrottled { host, .. }
        | TraceEvent::AdmissionShed { host, .. }
        | TraceEvent::DiscoveryRound { host, .. }
        | TraceEvent::DiscoveryAnchor { host, .. }
        | TraceEvent::DiscoveryFallback { host, .. }
        | TraceEvent::CoordUpdate { host, .. }
        | TraceEvent::GuidedEntry { host, .. } => Some(*host),
        TraceEvent::FaultApplied { from, .. } => Some(*from),
        TraceEvent::CacheLookup { .. } => None,
        TraceEvent::Tagged { inner, .. } => primary_vid(inner),
    }
}

struct MtWorld<F: AgentFactory> {
    factories: Vec<F>,
    cfg: DriverConfig,
    k: usize,
    n: usize,
    source: HostId,
    cross_period: Option<SimTime>,
    cross_stall: SimTime,
    agents: Vec<Option<F::Agent>>,
    in_session: Vec<bool>,
    incarnations: Vec<u32>,
    limits: Vec<u32>,
    stats: RunStats,
    actions: Vec<(SimTime, Action)>,
    phys: Arc<dyn Underlay + Send + Sync>,
    routed: Option<Arc<RoutedUnderlay>>,
    seq: u64,
    end: SimTime,
    slots: Vec<MtSlot>,
    last_counters: Counters,
    last_expected: u64,
    last_received: u64,
    last_chunks: u64,
}

impl<F: AgentFactory> MtWorld<F>
where
    F::Agent: CrossRepairAgent,
{
    fn dispatch<R>(
        &mut self,
        eng: &mut Engine<Msg>,
        host: HostId,
        f: impl FnOnce(&mut F::Agent, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        let agent = self.agents[host.idx()].as_mut()?;
        let mut ctx = Ctx {
            me: host,
            io: eng,
            stats: &mut self.stats,
            loss_probe_noise: self.cfg.loss_probe_noise,
        };
        Some(f(agent, &mut ctx))
    }

    fn src_vid(&self, t: usize) -> HostId {
        fold_vid(t, self.n, self.source)
    }

    /// Tree `t` in physical ids.
    fn snapshot_tree(&self, t: usize) -> TreeSnapshot {
        let n = self.n;
        let mut parent = vec![None; n];
        let mut members = Vec::new();
        for (h, slot) in parent.iter_mut().enumerate() {
            if h == self.source.idx() {
                continue;
            }
            let vid = t * n + h;
            if self.in_session[vid] {
                members.push(HostId(h as u32));
                if let Some(a) = &self.agents[vid] {
                    *slot = a.parent().map(|p| HostId((p.idx() % n) as u32));
                }
            }
        }
        TreeSnapshot {
            source: self.source,
            members,
            parent,
        }
    }

    /// Latest stream sequence owned by stripe `t` (0 when none yet).
    fn stripe_latest(&self, t: usize) -> u64 {
        let k = self.k as u64;
        let lag = (self.seq % k + k - t as u64) % k;
        self.seq.saturating_sub(lag)
    }

    /// One cross-tree repair sweep: every starving receiver locates a
    /// live repair peer through a sibling tree's parent relation and
    /// NACKs its missing stripe chunks there.
    fn cross_sweep(&mut self, eng: &mut Engine<Msg>) {
        let (k, n) = (self.k, self.n);
        if self.seq == 0 || k < 2 {
            return;
        }
        let now = eng.now();
        let stall = self.cross_stall;
        for t in 0..k {
            let latest = self.stripe_latest(t);
            if latest == 0 {
                continue;
            }
            for h in 0..n {
                if h == self.source.idx() {
                    continue;
                }
                let vid = t * n + h;
                if !self.in_session[vid] {
                    continue;
                }
                let wants = self.agents[vid]
                    .as_ref()
                    .is_some_and(|a| a.wants_cross_repair(now, stall));
                if !wants {
                    continue;
                }
                // Find a sibling tree where this physical host still has
                // a parent; pull from that parent's *own-tree* agent, so
                // the request stays inside the stripe that owns the
                // sequence numbers.
                let mut sibling = None;
                for d in 1..k {
                    let u = (t + d) % k;
                    let sv = u * n + h;
                    if !self.in_session[sv] {
                        continue;
                    }
                    let Some(pp) = self.agents[sv].as_ref().and_then(|a| a.parent()) else {
                        continue;
                    };
                    let p_phys = pp.idx() % n;
                    let target = fold_vid(t, n, HostId(p_phys as u32));
                    let present = p_phys == self.source.idx() || self.in_session[target.idx()];
                    if p_phys != h && present && self.agents[target.idx()].is_some() {
                        sibling = Some(target);
                        break;
                    }
                }
                if let Some(s) = sibling {
                    self.dispatch(eng, fold_vid(t, n, HostId(h as u32)), |a, ctx| {
                        a.cross_repair_tick(ctx, s, latest)
                    });
                }
            }
        }
    }

    fn measure(&mut self, eng: &mut Engine<Msg>) {
        let n = self.n;
        let snaps: Vec<TreeSnapshot> = (0..self.k).map(|t| self.snapshot_tree(t)).collect();
        let tm0 = TreeMetrics::compute(
            &snaps[0],
            &*self.phys,
            if self.cfg.compute_stress {
                self.routed.as_deref()
            } else {
                None
            },
        );
        let mut errors = 0;
        for (t, s) in snaps.iter().enumerate() {
            errors += s.validate(&self.limits[t * n..(t + 1) * n]).len();
        }
        if errors > 0 {
            self.stats
                .recovery
                .invariant_violations
                .push((eng.now().as_secs(), errors));
        }

        let counters = eng.counters();
        let d_control = counters.control_sent - self.last_counters.control_sent;
        let d_data = counters.data_sent - self.last_counters.data_sent;
        self.last_counters = counters;

        let expected: u64 = self.stats.expected.iter().sum();
        let received: u64 = self.stats.received.iter().sum();
        let d_expected = expected - self.last_expected;
        let d_received = received - self.last_received;
        self.last_expected = expected;
        self.last_received = received;

        let d_chunks = self.stats.source_chunks - self.last_chunks;
        self.last_chunks = self.stats.source_chunks;

        let loss_rate = if d_expected > 0 {
            (1.0 - d_received as f64 / d_expected as f64).max(0.0)
        } else {
            0.0
        };

        let mut stress_max = tm0.stress.as_ref().map_or(0.0, |s| s.max);
        if self.cfg.compute_stress {
            for s in &snaps[1..] {
                let tm = TreeMetrics::compute(s, &*self.phys, self.routed.as_deref());
                stress_max = stress_max.max(tm.stress.as_ref().map_or(0.0, |x| x.max));
            }
        }

        let connected0 = snaps[0].connected_members().len();
        self.stats.measurements.push(SlotMeasurement {
            time_s: eng.now().as_secs(),
            members: snaps[0].members.len(),
            connected: connected0,
            stress: tm0.stress,
            stretch: tm0.stretch,
            stretch_leaf_mean: tm0.stretch_leaf_mean,
            hopcount: tm0.hopcount,
            hopcount_leaf_mean: tm0.hopcount_leaf_mean,
            usage_ms: tm0.usage_ms,
            usage_normalized: tm0.usage_normalized,
            loss_rate,
            duplicates: d_received.saturating_sub(d_expected),
            overhead: if d_data > 0 {
                d_control as f64 / d_data as f64
            } else {
                0.0
            },
            overhead_per_chunk: if d_chunks > 0 {
                d_control as f64 / d_chunks as f64
            } else {
                0.0
            },
            mst_ratio: None,
            tree_errors: errors,
        });
        self.slots.push(MtSlot {
            time_s: eng.now().as_secs(),
            members: snaps[0].members.len(),
            connected: snaps.iter().map(|s| s.connected_members().len()).collect(),
            interior_overlap: interior_overlap(&snaps),
            stress_max,
            loss_rate,
        });
    }
}

impl<F: AgentFactory> World for MtWorld<F>
where
    F::Agent: CrossRepairAgent,
{
    type Msg = Msg;

    fn on_deliver(&mut self, eng: &mut Engine<Msg>, to: HostId, from: HostId, msg: Msg) {
        self.dispatch(eng, to, |a, ctx| a.on_msg(ctx, from, msg));
    }

    fn on_timer(&mut self, eng: &mut Engine<Msg>, host: HostId, token: u64) {
        self.dispatch(eng, host, |a, ctx| a.on_timer(ctx, token));
    }

    fn on_external(&mut self, eng: &mut Engine<Msg>, token: u64) {
        if token == DATA_TICK {
            let Some(interval) = self.cfg.data_interval else {
                return;
            };
            self.seq += 1;
            let seq = self.seq;
            self.stats.source_chunks += 1;
            // The owning stripe's receivers expect this chunk.
            let stripe = (seq % self.k as u64) as usize;
            let base = stripe * self.n;
            for h in 0..self.n {
                if h != self.source.idx() && self.in_session[base + h] {
                    self.stats.expected[base + h] += 1;
                }
            }
            let src = self.src_vid(stripe);
            self.dispatch(eng, src, |a, ctx| a.emit_data(ctx, seq));
            let next = eng.now() + interval;
            if next <= self.end {
                eng.schedule_external(next, DATA_TICK);
            }
            return;
        }
        if token == CROSS_TICK {
            let Some(period) = self.cross_period else {
                return;
            };
            self.cross_sweep(eng);
            let next = eng.now() + period;
            if next <= self.end {
                eng.schedule_external(next, CROSS_TICK);
            }
            return;
        }
        let (_, action) = self.actions[token as usize];
        let (k, n) = (self.k, self.n);
        match action {
            Action::Join(h) => {
                if h == self.source {
                    return;
                }
                for t in 0..k {
                    let v = fold_vid(t, n, h);
                    let vid = v.idx();
                    if !self.in_session[vid] {
                        self.in_session[vid] = true;
                        let inc = self.incarnations[vid];
                        self.incarnations[vid] += 1;
                        let src = self.src_vid(t);
                        self.agents[vid] =
                            Some(self.factories[t].make(v, src, self.limits[vid], inc));
                        self.dispatch(eng, v, |a, ctx| a.on_join_cmd(ctx));
                    }
                }
            }
            Action::Leave(h) => {
                if h == self.source {
                    return;
                }
                for t in 0..k {
                    let v = fold_vid(t, n, h);
                    let vid = v.idx();
                    if self.in_session[vid] {
                        self.dispatch(eng, v, |a, ctx| a.on_leave_cmd(ctx));
                        self.agents[vid] = None;
                        self.in_session[vid] = false;
                    }
                }
            }
            Action::Crash(h) => {
                if h == self.source {
                    return;
                }
                for t in 0..k {
                    let vid = t * n + h.idx();
                    if self.in_session[vid] {
                        self.agents[vid] = None;
                        self.in_session[vid] = false;
                    }
                }
            }
            Action::Measure => self.measure(eng),
        }
    }
}

/// The striped `k ≥ 2` execution (built by [`MultiTreeSession::new`]).
pub struct StripedDriver<F: AgentFactory>
where
    F::Agent: CrossRepairAgent,
{
    eng: Engine<Msg>,
    world: MtWorld<F>,
}

/// One stream over `k` decorrelated trees. For `k = 1` this *is* the
/// single-tree [`Driver`] (same engine seed, same event order — outputs
/// are byte-identical per seed); for `k ≥ 2` it runs the virtual-host
/// world described in the module docs.
pub enum MultiTreeSession<F: AgentFactory>
where
    F::Agent: CrossRepairAgent,
{
    /// `k = 1`: the plain single-tree path.
    Single(Box<Driver<F>>),
    /// `k ≥ 2`: striped delivery.
    Striped(Box<StripedDriver<F>>),
}

impl<F: AgentFactory> MultiTreeSession<F>
where
    F::Agent: CrossRepairAgent,
{
    /// Build a session.
    ///
    /// * `factories` — one per tree (`factories.len() == cfg.k`); the
    ///   caller decorrelates them (perturbed metrics) and stripes their
    ///   repair configs (`RepairConfig::striped(k, t)`);
    /// * `limits` — virtual-id degree limits, `cfg.k * n` entries (see
    ///   [`striped_limits`]);
    /// * everything else mirrors [`Driver::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        underlay: Arc<dyn Underlay + Send + Sync>,
        routed: Option<Arc<RoutedUnderlay>>,
        source: HostId,
        mut factories: Vec<F>,
        scenario: &Scenario,
        limits: Vec<u32>,
        cfg: MultiTreeConfig,
        seed: u64,
    ) -> Self {
        let k = cfg.k;
        let n = underlay.num_hosts();
        assert!(k >= 1, "need at least one tree");
        assert_eq!(factories.len(), k, "need one factory per tree");
        assert_eq!(
            limits.len(),
            k * n,
            "need one degree limit per virtual host"
        );
        assert!(source.idx() < n);
        if k == 1 {
            let factory = factories.pop().expect("one factory");
            return MultiTreeSession::Single(Box::new(Driver::new(
                underlay, routed, source, factory, scenario, limits, cfg.driver, seed,
            )));
        }

        let striped: Arc<dyn Underlay + Send + Sync> =
            Arc::new(StripedUnderlay::new(Arc::clone(&underlay), k));
        let mut eng = Engine::new(striped, seed);
        if let Some(dp_cfg) = cfg.driver.data_plane {
            eng.enable_data_plane(dp_cfg);
        }
        // Re-attribute traced events to physical hosts + tree tags.
        let global = vdm_trace::global();
        if global.enabled() {
            eng.set_tracer(Tracer::with_sink(Arc::new(Mutex::new(RetagSink {
                inner: global,
                n: n as u32,
            }))));
        }
        let mut world = MtWorld {
            factories,
            cfg: cfg.driver,
            k,
            n,
            source,
            cross_period: cfg.cross_period,
            cross_stall: cfg.cross_stall,
            agents: (0..k * n).map(|_| None).collect(),
            in_session: vec![false; k * n],
            incarnations: vec![0; k * n],
            limits,
            stats: RunStats::new(k * n),
            actions: scenario.actions.clone(),
            phys: underlay,
            routed,
            seq: 0,
            end: scenario.end,
            slots: Vec::new(),
            last_counters: Counters::default(),
            last_expected: 0,
            last_received: 0,
            last_chunks: 0,
        };
        // Every tree's source agent exists for the whole run.
        for t in 0..k {
            let src = world.src_vid(t);
            world.agents[src.idx()] =
                Some(world.factories[t].make(src, src, world.limits[src.idx()], 0));
        }
        for (i, (t, _)) in world.actions.iter().enumerate() {
            eng.schedule_external(*t, i as u64);
        }
        if world.cfg.data_interval.is_some() {
            eng.schedule_external(SimTime::ZERO, DATA_TICK);
        }
        if let Some(period) = world.cross_period {
            eng.schedule_external(period, CROSS_TICK);
        }
        MultiTreeSession::Striped(Box::new(StripedDriver { eng, world }))
    }

    /// Number of trees.
    pub fn k(&self) -> usize {
        match self {
            MultiTreeSession::Single(_) => 1,
            MultiTreeSession::Striped(d) => d.world.k,
        }
    }

    /// Install a *physical-host* fault schedule; for `k ≥ 2` it is
    /// expanded to the virtual id space (see [`expand_faults`]). Call
    /// before running.
    pub fn set_fault_events(&mut self, seed: u64, events: Vec<FaultEvent>) {
        match self {
            MultiTreeSession::Single(d) => d.set_fault_plan(FaultPlan::with_events(seed, events)),
            MultiTreeSession::Striped(d) => {
                let expanded = expand_faults(&events, d.world.k, d.world.n);
                d.eng.set_fault_plan(FaultPlan::with_events(seed, expanded));
            }
        }
    }

    /// Run up to `t` (incremental stepping).
    pub fn run_until(&mut self, t: SimTime) {
        match self {
            MultiTreeSession::Single(d) => d.run_until(t),
            MultiTreeSession::Striped(d) => {
                d.eng.run(&mut d.world, t);
            }
        }
    }

    /// Ungracefully remove a physical member from every tree right now
    /// (runtime-chosen fault injection; see [`Driver::crash_now`]).
    pub fn crash_now(&mut self, h: HostId) {
        match self {
            MultiTreeSession::Single(d) => d.crash_now(h),
            MultiTreeSession::Striped(d) => {
                if h == d.world.source {
                    return;
                }
                for t in 0..d.world.k {
                    let vid = t * d.world.n + h.idx();
                    if d.world.in_session[vid] {
                        d.world.agents[vid] = None;
                        d.world.in_session[vid] = false;
                    }
                }
            }
        }
    }

    /// Current snapshot of each tree, physical ids.
    pub fn snapshots(&self) -> Vec<TreeSnapshot> {
        match self {
            MultiTreeSession::Single(d) => vec![d.snapshot()],
            MultiTreeSession::Striped(d) => {
                (0..d.world.k).map(|t| d.world.snapshot_tree(t)).collect()
            }
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &RunStats {
        match self {
            MultiTreeSession::Single(d) => d.stats(),
            MultiTreeSession::Striped(d) => &d.world.stats,
        }
    }

    /// Simulated time.
    pub fn now(&self) -> SimTime {
        match self {
            MultiTreeSession::Single(d) => d.now(),
            MultiTreeSession::Striped(d) => d.eng.now(),
        }
    }

    /// Execute to the scenario horizon and collect results.
    pub fn finish(self) -> MultiTreeOutput {
        match self {
            MultiTreeSession::Single(d) => from_single(d.run()),
            MultiTreeSession::Striped(d) => {
                let mut d = *d;
                let end = d.world.end;
                d.eng.run(&mut d.world, end);
                let snapshots = (0..d.world.k).map(|t| d.world.snapshot_tree(t)).collect();
                MultiTreeOutput {
                    snapshots,
                    slots: d.world.slots,
                    events: d.eng.events_processed(),
                    counters: d.eng.counters(),
                    stats: d.world.stats,
                }
            }
        }
    }
}

/// Lift a single-tree run into the multi-tree result shape.
fn from_single(out: RunOutput) -> MultiTreeOutput {
    let slots = out
        .stats
        .measurements
        .iter()
        .map(|m| MtSlot {
            time_s: m.time_s,
            members: m.members,
            connected: vec![m.connected],
            interior_overlap: 0.0,
            stress_max: m.stress.as_ref().map_or(0.0, |s| s.max),
            loss_rate: m.loss_rate,
        })
        .collect();
    MultiTreeOutput {
        stats: out.stats,
        snapshots: vec![out.final_snapshot],
        slots,
        events: out.events,
        counters: out.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AdmissionConfig, AgentConfig};
    use crate::repair::RepairConfig;
    use crate::scenario::ChurnConfig;
    use crate::walk::{ProbeResult, WalkPurpose, WalkStep};
    use vdm_netsim::LatencySpace;

    #[test]
    fn fold_vid_reaches_the_top_of_the_id_space() {
        assert_eq!(fold_vid(0, 4, HostId(3)), HostId(3));
        assert_eq!(fold_vid(2, 4, HostId(1)), HostId(9));
        // t*n+h may legally land anywhere in u32.
        let n = (u32::MAX as usize).div_ceil(2);
        assert_eq!(fold_vid(1, n, HostId(n as u32 - 1)), HostId(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "overflows the u32 host-id space")]
    fn fold_vid_rejects_overflow_instead_of_truncating() {
        // 100k hosts at 43k trees folds past u32::MAX; the old cast
        // wrapped this onto low physical ids.
        let _ = fold_vid(43_000, 100_000, HostId(0));
    }

    #[test]
    #[should_panic(expected = "overflows the u32 host-id space")]
    fn expand_faults_rejects_overflowing_sessions() {
        let ev = FaultEvent::Slowdown {
            host: HostId(1),
            factor: 2.0,
            from: SimTime::ZERO,
            until: SimTime::from_secs(1),
        };
        let _ = expand_faults(&[ev], 2, u32::MAX as usize);
    }

    /// Depth-greedy policy: always descend into the first child —
    /// builds chains, so every non-tail member is interior.
    struct Chain;
    impl WalkPolicy for Chain {
        fn vdist(&self, rtt_ms: f64, _loss: f64) -> f64 {
            rtt_ms
        }
        fn decide(&self, p: &ProbeResult, _purpose: WalkPurpose) -> WalkStep {
            match p.children.first() {
                Some(c) => WalkStep::Descend(c.child),
                None => WalkStep::Attach { splice: vec![] },
            }
        }
    }

    /// Breadth-greedy policy: always attach where the walk stands —
    /// builds a star under the source, so members are all leaves.
    struct Star;
    impl WalkPolicy for Star {
        fn vdist(&self, rtt_ms: f64, _loss: f64) -> f64 {
            rtt_ms
        }
        fn decide(&self, _p: &ProbeResult, _purpose: WalkPurpose) -> WalkStep {
            WalkStep::Attach { splice: vec![] }
        }
    }

    /// One factory, two shapes: trees pick their policy by index.
    struct ShapeFactory {
        cfg: AgentConfig,
        n: usize,
        chain_trees: Vec<bool>,
    }

    enum Either {
        Chain(ProtocolAgent<Chain>),
        Star(ProtocolAgent<Star>),
    }

    impl OverlayAgent for Either {
        fn on_join_cmd(&mut self, ctx: &mut Ctx<'_>) {
            match self {
                Either::Chain(a) => a.on_join_cmd(ctx),
                Either::Star(a) => a.on_join_cmd(ctx),
            }
        }
        fn on_leave_cmd(&mut self, ctx: &mut Ctx<'_>) {
            match self {
                Either::Chain(a) => a.on_leave_cmd(ctx),
                Either::Star(a) => a.on_leave_cmd(ctx),
            }
        }
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, from: HostId, msg: Msg) {
            match self {
                Either::Chain(a) => a.on_msg(ctx, from, msg),
                Either::Star(a) => a.on_msg(ctx, from, msg),
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            match self {
                Either::Chain(a) => a.on_timer(ctx, token),
                Either::Star(a) => a.on_timer(ctx, token),
            }
        }
        fn emit_data(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
            match self {
                Either::Chain(a) => a.emit_data(ctx, seq),
                Either::Star(a) => a.emit_data(ctx, seq),
            }
        }
        fn parent(&self) -> Option<HostId> {
            match self {
                Either::Chain(a) => a.parent(),
                Either::Star(a) => a.parent(),
            }
        }
        fn children(&self) -> Vec<HostId> {
            match self {
                Either::Chain(a) => a.children(),
                Either::Star(a) => a.children(),
            }
        }
        fn connected(&self) -> bool {
            match self {
                Either::Chain(a) => a.connected(),
                Either::Star(a) => a.connected(),
            }
        }
        fn degree_limit(&self) -> u32 {
            match self {
                Either::Chain(a) => a.degree_limit(),
                Either::Star(a) => a.degree_limit(),
            }
        }
    }

    impl CrossRepairAgent for Either {
        fn cross_repair_tick(&mut self, ctx: &mut Ctx<'_>, sibling: HostId, latest: u64) {
            match self {
                Either::Chain(a) => a.cross_repair_tick(ctx, sibling, latest),
                Either::Star(a) => a.cross_repair_tick(ctx, sibling, latest),
            }
        }
        fn wants_cross_repair(&self, now: SimTime, stall: SimTime) -> bool {
            match self {
                Either::Chain(a) => a.wants_cross_repair(now, stall),
                Either::Star(a) => a.wants_cross_repair(now, stall),
            }
        }
    }

    impl AgentFactory for ShapeFactory {
        type Agent = Either;
        fn make(&self, h: HostId, src: HostId, limit: u32, inc: u32) -> Either {
            let tree = h.idx() / self.n;
            let k = self.chain_trees.len() as u64;
            let mut cfg = self.cfg;
            if let Some(rc) = cfg.repair {
                cfg.repair = Some(rc.striped(k, tree as u64));
            }
            if self.chain_trees[tree] {
                Either::Chain(ProtocolAgent::new(h, src, limit, inc, cfg, Chain))
            } else {
                Either::Star(ProtocolAgent::new(h, src, limit, inc, cfg, Star))
            }
        }
    }

    fn grid_space(n: usize) -> Arc<LatencySpace> {
        let mut rtt = vec![vec![0.0; n]; n];
        for (i, row) in rtt.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                if i != j {
                    *v = 10.0 * (i as f64 - j as f64).abs();
                }
            }
        }
        Arc::new(LatencySpace::from_rtt_matrix(&rtt))
    }

    fn shape_factories(n: usize, shapes: &[bool], cfg: AgentConfig) -> Vec<ShapeFactory> {
        shapes
            .iter()
            .map(|_| ShapeFactory {
                cfg,
                n,
                chain_trees: shapes.to_vec(),
            })
            .collect()
    }

    #[test]
    fn striped_underlay_folds_virtual_pairs_onto_physical_hosts() {
        let s = StripedUnderlay::new(grid_space(4), 3);
        assert_eq!(s.num_hosts(), 12);
        // (tree 2, host 1) to (tree 0, host 3) is the physical 1-3 pair.
        assert_eq!(s.rtt_ms(HostId(9), HostId(3)), 20.0);
        // Same physical host across trees: zero distance.
        assert_eq!(s.rtt_ms(HostId(1), HostId(5)), 0.0);
        assert_eq!(s.path_loss(HostId(9), HostId(3)), 0.0);
    }

    #[test]
    fn striped_limits_bias_fanout_per_tree() {
        let lims = striped_limits(&[8, 4, 4, 4], 2, HostId(0), 1);
        // Tree 0: source full, even hosts full, odd hosts capped.
        // Tree 1: source full, odd hosts full, even hosts capped.
        assert_eq!(lims, vec![8, 1, 4, 1, 8, 4, 1, 4]);
        // k = 1 is a no-op.
        assert_eq!(striped_limits(&[8, 4], 1, HostId(0), 1), vec![8, 4]);
    }

    #[test]
    fn fault_expansion_covers_every_tree() {
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs(1);
        let events = vec![
            FaultEvent::LinkFlap {
                a: HostId(1),
                b: HostId(2),
                from: t0,
                until: t1,
            },
            FaultEvent::Partition {
                side: vec![HostId(1), HostId(3)],
                from: t0,
                until: t1,
            },
            FaultEvent::Slowdown {
                host: HostId(2),
                factor: 4.0,
                from: t0,
                until: t1,
            },
        ];
        let out = expand_faults(&events, 2, 4);
        let flaps = out
            .iter()
            .filter(|e| matches!(e, FaultEvent::LinkFlap { .. }))
            .count();
        assert_eq!(flaps, 4); // k² endpoint tree combinations
        let sides: Vec<_> = out
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Partition { side, .. } => Some(side.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(sides.len(), 1);
        assert_eq!(sides[0], vec![HostId(1), HostId(3), HostId(5), HostId(7)]);
        let slow = out
            .iter()
            .filter(|e| matches!(e, FaultEvent::Slowdown { .. }))
            .count();
        assert_eq!(slow, 2);
    }

    #[test]
    fn interior_victim_prefers_sibling_leaves_with_big_subtrees() {
        // Tree 0: 0 -> 1 -> {2, 3}, 0 -> 4. Tree 1: 0 -> 2 -> {1, 3, 4}.
        let t0 = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2), HostId(3), HostId(4)],
            parent: vec![
                None,
                Some(HostId(0)),
                Some(HostId(1)),
                Some(HostId(1)),
                Some(HostId(0)),
            ],
        };
        let t1 = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2), HostId(3), HostId(4)],
            parent: vec![
                None,
                Some(HostId(2)),
                Some(HostId(0)),
                Some(HostId(2)),
                Some(HostId(2)),
            ],
        };
        // Host 1 is the only tree-0 interior, and a leaf in tree 1.
        assert_eq!(interior_victim(&[t0.clone(), t1.clone()]), Some(HostId(1)));
        // Overlap: interiors {1} vs {2} — fully disjoint.
        assert_eq!(interior_overlap(&[t0.clone(), t1]), 0.0);
        // A tree overlapping itself is fully overlapped.
        assert_eq!(interior_overlap(&[t0.clone(), t0]), 1.0);
    }

    fn join_scenario(hosts: &[HostId], slots: usize) -> Scenario {
        Scenario::churn(
            &ChurnConfig {
                members: hosts.len(),
                warmup_s: 10.0,
                slot_s: 10.0,
                slots,
                churn_pct: 0.0,
            },
            hosts,
            3,
        )
    }

    #[test]
    fn k1_delegates_to_the_single_tree_driver_byte_for_byte() {
        let space = grid_space(4);
        let hosts = [HostId(1), HostId(2), HostId(3)];
        let scenario = join_scenario(&hosts, 1);
        let cfg = AgentConfig::default();
        let single = Driver::new(
            space.clone(),
            None,
            HostId(0),
            ShapeFactory {
                cfg,
                n: 4,
                chain_trees: vec![true],
            },
            &scenario,
            vec![10; 4],
            DriverConfig::default(),
            5,
        )
        .run();
        let multi = MultiTreeSession::new(
            space,
            None,
            HostId(0),
            shape_factories(4, &[true], cfg),
            &scenario,
            vec![10; 4],
            MultiTreeConfig::new(1),
            5,
        )
        .finish();
        assert_eq!(multi.stats.startup_s, single.stats.startup_s);
        assert_eq!(multi.stats.received, single.stats.received);
        assert_eq!(multi.stats.measurements, single.stats.measurements);
        assert_eq!(multi.events, single.events);
        assert_eq!(multi.snapshots[0].parent, single.final_snapshot.parent);
        assert_eq!(multi.slots.len(), single.stats.measurements.len());
    }

    #[test]
    fn two_trees_form_their_own_shapes_and_stream_deterministically() {
        let space = grid_space(5);
        let hosts = [HostId(1), HostId(2), HostId(3), HostId(4)];
        let scenario = join_scenario(&hosts, 1);
        let cfg = AgentConfig::default();
        let run = |seed| {
            let out = MultiTreeSession::new(
                space.clone(),
                None,
                HostId(0),
                shape_factories(5, &[true, false], cfg),
                &scenario,
                vec![10; 10],
                MultiTreeConfig::new(2),
                seed,
            )
            .finish();
            (out.stats.received.clone(), out.events, out.snapshots)
        };
        let (received, events, snaps) = run(9);
        // Chain tree: a path (every non-tail member interior). Star
        // tree: all leaves under the source.
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].connected_members().len(), 4);
        assert_eq!(snaps[1].connected_members().len(), 4);
        let depths1 = snaps[1].depths();
        for &m in &snaps[1].members {
            assert_eq!(depths1[m.idx()], Some(1), "star member {m}");
        }
        assert!(snaps[0].depths().iter().flatten().any(|&d| d >= 2));
        assert_eq!(interior_overlap(&snaps), 0.0);
        // Both stripes delivered: every member saw chunks under both
        // virtual ids.
        for h in 1..5 {
            assert!(received[h] > 0, "stripe 0 starved host {h}");
            assert!(received[5 + h] > 0, "stripe 1 starved host {h}");
        }
        // Determinism per seed.
        let again = run(9);
        assert_eq!(again.0, received);
        assert_eq!(again.1, events);
    }

    #[test]
    fn cross_tree_repair_keeps_a_cut_stripe_flowing() {
        let space = grid_space(4);
        let hosts = [HostId(1), HostId(2), HostId(3)];
        let mut actions = Vec::new();
        for (i, &h) in hosts.iter().enumerate() {
            actions.push((SimTime::from_secs(1 + i as u64), Action::Join(h)));
        }
        // Crash the chain head: its tree-0 subtree loses the stripe.
        actions.push((SimTime::from_secs(15), Action::Crash(HostId(1))));
        actions.push((SimTime::from_secs(40), Action::Measure));
        let scenario = Scenario::from_actions(actions, SimTime::from_secs(41));
        // No watchdog: the orphaned subtree never rejoins, so *only*
        // cross-tree repair can keep stripe 0 alive.
        let cfg = AgentConfig {
            data_timeout: None,
            repair: Some(RepairConfig {
                nack_retries: 8,
                ..RepairConfig::default()
            }),
            cross_repair: Some(AdmissionConfig {
                rate_per_s: 10.0,
                burst: 10.0,
                ..AdmissionConfig::default()
            }),
            ..AgentConfig::default()
        };
        let run = |cross: bool| {
            let mut mt_cfg = MultiTreeConfig::new(2);
            if !cross {
                mt_cfg.cross_period = None;
            }
            MultiTreeSession::new(
                space.clone(),
                None,
                HostId(0),
                shape_factories(4, &[true, false], cfg),
                &scenario,
                vec![10; 8],
                mt_cfg,
                7,
            )
            .finish()
        };
        let with = run(true);
        // Hosts 2 and 3 sit under the crashed chain head in tree 0;
        // the star tree (stripe 1) is undisturbed, and its parent
        // relation is the repair route for stripe 0.
        let r = &with.stats.recovery;
        assert!(r.cross_nacks_sent > 0, "no cross NACKs: {r:?}");
        assert!(r.cross_repaired > 5, "little repaired: {r:?}");
        assert_eq!(r.cross_stripe_violations, 0);
        let without = run(false);
        assert_eq!(without.stats.recovery.cross_nacks_sent, 0);
        // The repaired run delivers strictly more of stripe 0 to the
        // cut subtree (virtual ids 2 and 3).
        for h in [2usize, 3] {
            assert!(
                with.stats.received[h] > without.stats.received[h] + 5,
                "host {h}: {} vs {}",
                with.stats.received[h],
                without.stats.received[h]
            );
        }
        // Stripe 1 was never affected in either run.
        assert_eq!(with.stats.received[4 + 2], without.stats.received[4 + 2]);
    }
}
