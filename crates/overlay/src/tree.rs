//! Global tree snapshots and structural validation.
//!
//! The driver periodically freezes the distributed state into a
//! [`TreeSnapshot`] (who is whose parent right now) and the metrics
//! module evaluates the paper's measures over it. Validation catches
//! protocol bugs — cycles, degree violations, phantom parents — in tests
//! and (cheaply) at every measurement.

use vdm_netsim::HostId;

/// A frozen view of the overlay tree.
#[derive(Clone, Debug)]
pub struct TreeSnapshot {
    /// The stream source (tree root).
    pub source: HostId,
    /// Members that are currently in the session, source excluded.
    pub members: Vec<HostId>,
    /// `parent[h.idx()]` = parent of host `h` (None for the source,
    /// non-members, and members that are mid-(re)join).
    pub parent: Vec<Option<HostId>>,
}

/// A structural problem found by [`TreeSnapshot::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum TreeError {
    /// A member's parent chain does not reach the source (broken or
    /// cyclic).
    Unrooted(HostId),
    /// A parent pointer refers to a non-member that is not the source.
    PhantomParent {
        /// The child with the bad pointer.
        child: HostId,
        /// The non-member parent.
        parent: HostId,
    },
    /// A node has more children than its degree limit allows.
    DegreeExceeded {
        /// The overloaded node.
        node: HostId,
        /// Its child count.
        children: usize,
        /// Its limit.
        limit: u32,
    },
}

impl TreeSnapshot {
    /// Parent of `h`, if any.
    pub fn parent_of(&self, h: HostId) -> Option<HostId> {
        self.parent.get(h.idx()).copied().flatten()
    }

    /// Members that currently have a parent (connected members).
    pub fn connected_members(&self) -> Vec<HostId> {
        self.members
            .iter()
            .copied()
            .filter(|&m| self.parent_of(m).is_some())
            .collect()
    }

    /// Tree edges `(parent, child)` over connected members.
    pub fn edges(&self) -> Vec<(HostId, HostId)> {
        self.members
            .iter()
            .filter_map(|&m| self.parent_of(m).map(|p| (p, m)))
            .collect()
    }

    /// Children lists keyed by host index (source included).
    pub fn children(&self) -> Vec<Vec<HostId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for &m in &self.members {
            if let Some(p) = self.parent_of(m) {
                ch[p.idx()].push(m);
            }
        }
        ch
    }

    /// Child count per host index (source included). One flat `O(n)`
    /// pass — unlike [`TreeSnapshot::children`], no per-host `Vec`s are
    /// allocated, which keeps per-measurement invariant checks linear
    /// at A9 scale (10k+ members).
    pub fn child_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.parent.len()];
        for &m in &self.members {
            if let Some(p) = self.parent_of(m) {
                counts[p.idx()] += 1;
            }
        }
        counts
    }

    /// Connected members that currently relay the stream to at least
    /// one child (interior nodes). The source is excluded — it is
    /// interior in every tree by construction, so including it would
    /// mask the interior-disjointness a multi-tree session achieves.
    pub fn interior_members(&self) -> Vec<HostId> {
        let counts = self.child_counts();
        self.members
            .iter()
            .copied()
            .filter(|&m| counts[m.idx()] > 0 && self.parent_of(m).is_some())
            .collect()
    }

    /// Tree nodes in each host's subtree, the host itself included
    /// (0 for hosts outside the tree; unrooted members contribute
    /// nothing). `subtree[source]` equals the rooted-member count.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parent.len()];
        let depths = self.depths();
        for &m in &self.members {
            if depths[m.idx()].is_none() {
                continue;
            }
            let mut cur = m;
            loop {
                sizes[cur.idx()] += 1;
                match self.parent_of(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        sizes
    }

    /// Hop depth of every connected member (source = 0); `None` for
    /// members whose chain does not reach the source.
    pub fn depths(&self) -> Vec<Option<usize>> {
        let n = self.parent.len();
        let mut depth: Vec<Option<usize>> = vec![None; n];
        depth[self.source.idx()] = Some(0);
        for &m in &self.members {
            if depth[m.idx()].is_some() {
                continue;
            }
            // Walk up collecting the chain until a known depth, the
            // source, a dead end, or a length bound (cycle).
            let mut chain = vec![m];
            let mut cur = m;
            let base = loop {
                match self.parent_of(cur) {
                    Some(p) if p == self.source => break Some(0),
                    Some(p) => {
                        if let Some(d) = depth[p.idx()] {
                            break Some(d);
                        }
                        if chain.len() > n {
                            break None; // cycle
                        }
                        chain.push(p);
                        cur = p;
                    }
                    None => break None,
                }
            };
            if let Some(base) = base {
                for (i, &node) in chain.iter().rev().enumerate() {
                    depth[node.idx()] = Some(base + i + 1);
                }
            }
        }
        depth
    }

    /// Path from `h` up to the source (inclusive of both), or `None` if
    /// the chain is broken or cyclic.
    pub fn root_path(&self, h: HostId) -> Option<Vec<HostId>> {
        let mut path = vec![h];
        let mut cur = h;
        while cur != self.source {
            cur = self.parent_of(cur)?;
            path.push(cur);
            if path.len() > self.parent.len() {
                return None;
            }
        }
        path.reverse();
        Some(path)
    }

    /// Check structure. `limits[h.idx()]` = degree limit of host `h`
    /// (pass an empty slice to skip degree checks). Only *connected*
    /// members are required to be rooted; a member without a parent is
    /// mid-join, which is legal.
    pub fn validate(&self, limits: &[u32]) -> Vec<TreeError> {
        let mut errors = Vec::new();
        let is_member = {
            let mut v = vec![false; self.parent.len()];
            for &m in &self.members {
                v[m.idx()] = true;
            }
            v
        };
        let depths = self.depths();
        for &m in &self.members {
            if let Some(p) = self.parent_of(m) {
                if p != self.source && !is_member[p.idx()] {
                    errors.push(TreeError::PhantomParent {
                        child: m,
                        parent: p,
                    });
                }
                if depths[m.idx()].is_none() {
                    errors.push(TreeError::Unrooted(m));
                }
            }
        }
        if !limits.is_empty() {
            let counts = self.child_counts();
            for h in std::iter::once(self.source).chain(self.members.iter().copied()) {
                let c = counts[h.idx()];
                let lim = limits[h.idx()];
                if c > lim as usize {
                    errors.push(TreeError::DegreeExceeded {
                        node: h,
                        children: c,
                        limit: lim,
                    });
                }
            }
        }
        errors
    }

    /// Render the tree as Graphviz DOT (used by the sample-tree figures
    /// 5.5/5.6). `label` customizes per-node labels.
    pub fn to_dot(&self, label: impl Fn(HostId) -> String) -> String {
        let mut out = String::from("digraph overlay {\n  rankdir=TB;\n");
        out.push_str(&format!(
            "  \"{}\" [shape=doublecircle];\n",
            label(self.source)
        ));
        for (p, c) in self.edges() {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", label(p), label(c)));
        }
        out.push_str("}\n");
        out
    }

    /// Render as an indented ASCII tree.
    pub fn to_ascii(&self, label: impl Fn(HostId) -> String) -> String {
        let children = self.children();
        let mut out = String::new();
        let mut stack = vec![(self.source, 0usize)];
        while let Some((node, depth)) = stack.pop() {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&label(node));
            out.push('\n');
            let mut kids = children[node.idx()].clone();
            kids.sort();
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// source 0 -> 1 -> {2, 3}; member 4 is mid-join (no parent).
    fn sample() -> TreeSnapshot {
        TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2), HostId(3), HostId(4)],
            parent: vec![
                None,
                Some(HostId(0)),
                Some(HostId(1)),
                Some(HostId(1)),
                None,
            ],
        }
    }

    #[test]
    fn depths_and_paths() {
        let t = sample();
        let d = t.depths();
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], Some(2));
        assert_eq!(d[4], None);
        assert_eq!(
            t.root_path(HostId(2)).unwrap(),
            vec![HostId(0), HostId(1), HostId(2)]
        );
        assert!(t.root_path(HostId(4)).is_none());
        assert_eq!(t.connected_members().len(), 3);
        assert_eq!(t.edges().len(), 3);
    }

    #[test]
    fn valid_tree_passes() {
        let t = sample();
        assert!(t.validate(&[3, 2, 1, 1, 1]).is_empty());
    }

    #[test]
    fn interiors_and_subtree_sizes() {
        let t = sample();
        // Only host 1 relays (source excluded, 2/3 are leaves, 4 is
        // mid-join).
        assert_eq!(t.interior_members(), vec![HostId(1)]);
        // Subtrees: 1 carries {1,2,3}; source sees every rooted member.
        assert_eq!(t.subtree_sizes(), vec![3, 3, 1, 1, 0]);
    }

    #[test]
    fn child_counts_match_children() {
        let t = sample();
        let lists = t.children();
        let counts = t.child_counts();
        assert_eq!(counts.len(), lists.len());
        for (c, l) in counts.iter().zip(&lists) {
            assert_eq!(*c, l.len());
        }
        assert_eq!(counts, vec![1, 2, 0, 0, 0]);
    }

    #[test]
    fn degree_violation_detected() {
        let t = sample();
        let errs = t.validate(&[3, 1, 1, 1, 1]); // node 1 has 2 children, limit 1
        assert_eq!(
            errs,
            vec![TreeError::DegreeExceeded {
                node: HostId(1),
                children: 2,
                limit: 1
            }]
        );
    }

    #[test]
    fn cycle_detected() {
        let mut t = sample();
        // 2 -> 3 -> 2 cycle, detached from the source.
        t.parent[2] = Some(HostId(3));
        t.parent[3] = Some(HostId(2));
        let errs = t.validate(&[]);
        assert!(errs.contains(&TreeError::Unrooted(HostId(2))));
        assert!(errs.contains(&TreeError::Unrooted(HostId(3))));
        assert_eq!(t.depths()[2], None);
    }

    #[test]
    fn phantom_parent_detected() {
        let mut t = sample();
        t.parent[2] = Some(HostId(9));
        t.parent.resize(10, None);
        let errs = t.validate(&[]);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TreeError::PhantomParent { child, .. } if *child == HostId(2))));
    }

    #[test]
    fn renderings_contain_all_edges() {
        let t = sample();
        let dot = t.to_dot(|h| format!("{h}"));
        assert!(dot.contains("\"h0\" -> \"h1\""));
        assert!(dot.contains("\"h1\" -> \"h3\""));
        let ascii = t.to_ascii(|h| format!("{h}"));
        assert_eq!(ascii.lines().count(), 4); // h4 is disconnected
        assert!(ascii.starts_with("h0\n"));
    }
}
