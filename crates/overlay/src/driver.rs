//! The simulation driver: executes a [`Scenario`] against a set of
//! protocol agents over an underlay, streams data from the source, and
//! takes the paper's measurements at the scheduled points.

use crate::agent::{AgentFactory, Ctx, OverlayAgent};
use crate::arena::HostArena;
use crate::metrics::{mst_ratio, TreeMetrics};
use crate::msg::Msg;
use crate::scenario::{Action, Scenario};
use crate::stats::{RunStats, SlotMeasurement};
use crate::tree::TreeSnapshot;
use std::sync::Arc;
use vdm_netsim::engine::Counters;
use vdm_netsim::{Engine, HostId, RoutedUnderlay, SimTime, Underlay, World};

/// External-event token for the periodic stream tick.
const DATA_TICK: u64 = u64::MAX;

/// Driver tunables.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Stream chunk interval; `None` disables the stream (pure
    /// tree-construction runs).
    pub data_interval: Option<SimTime>,
    /// Compute per-link stress at measurements (requires a routed
    /// underlay handle).
    pub compute_stress: bool,
    /// Compute the tree/MST cost ratio at measurements (O(n²) per
    /// measurement).
    pub compute_mst_ratio: bool,
    /// Loss-probe noise amplitude handed to agents via [`Ctx`].
    pub loss_probe_noise: f64,
    /// Enable the NS-2-style queueing data plane (routed underlays
    /// only): data packets pay serialization/queueing per link and
    /// drop on buffer overflow.
    pub data_plane: Option<vdm_netsim::DataPlaneConfig>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            data_interval: Some(SimTime::from_secs(1)),
            compute_stress: false,
            compute_mst_ratio: false,
            loss_probe_noise: 0.0,
            data_plane: None,
        }
    }
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// All collected statistics and measurements.
    pub stats: RunStats,
    /// The tree as of the end of the run.
    pub final_snapshot: TreeSnapshot,
    /// Engine events processed (throughput benchmarking).
    pub events: u64,
    /// Whole-run traffic counters.
    pub counters: Counters,
}

struct WorldState<F: AgentFactory> {
    factory: F,
    cfg: DriverConfig,
    source: HostId,
    /// Flat per-host state (agent slot, session bit, incarnation, degree
    /// limit), one contiguous arena covering every host.
    hosts: HostArena<F::Agent>,
    stats: RunStats,
    actions: Vec<(SimTime, Action)>,
    routed: Option<Arc<RoutedUnderlay>>,
    /// Bootstrap-discovery config from the scenario, installed on every
    /// agent the driver creates; `None` keeps the omniscient joins.
    discovery: Option<crate::discovery::DiscoveryConfig>,
    seq: u64,
    end: SimTime,
    // Slot-delta anchors for loss/overhead measurements.
    last_counters: Counters,
    last_expected: u64,
    last_received: u64,
    last_chunks: u64,
}

impl<F: AgentFactory> WorldState<F> {
    fn dispatch<R>(
        &mut self,
        eng: &mut Engine<Msg>,
        host: HostId,
        f: impl FnOnce(&mut F::Agent, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        // Split borrows: the agent lives in `hosts`, the context needs
        // `stats` — distinct fields.
        let agent = self.hosts.get_mut(host)?;
        let mut ctx = Ctx {
            me: host,
            io: eng,
            stats: &mut self.stats,
            loss_probe_noise: self.cfg.loss_probe_noise,
        };
        Some(f(agent, &mut ctx))
    }

    fn snapshot(&self) -> TreeSnapshot {
        let n = self.hosts.len();
        let mut parent = vec![None; n];
        let mut members = Vec::new();
        for (i, slot) in parent.iter_mut().enumerate() {
            let h = HostId(i as u32);
            if h == self.source {
                continue;
            }
            if self.hosts.in_session(h) {
                members.push(h);
                if let Some(a) = self.hosts.get(h) {
                    *slot = a.parent();
                }
            }
        }
        TreeSnapshot {
            source: self.source,
            members,
            parent,
        }
    }

    fn measure(&mut self, eng: &mut Engine<Msg>) {
        let snap = self.snapshot();
        let underlay = eng.underlay_arc();
        let tm = TreeMetrics::compute(
            &snap,
            &*underlay,
            if self.cfg.compute_stress {
                self.routed.as_deref()
            } else {
                None
            },
        );
        let errors = snap.validate(self.hosts.limits()).len();
        if errors > 0 {
            self.stats
                .recovery
                .invariant_violations
                .push((eng.now().as_secs(), errors));
        }

        let counters = eng.counters();
        let d_control = counters.control_sent - self.last_counters.control_sent;
        let d_data = counters.data_sent - self.last_counters.data_sent;
        self.last_counters = counters;

        let expected: u64 = self.stats.expected.iter().sum();
        let received: u64 = self.stats.received.iter().sum();
        let d_expected = expected - self.last_expected;
        let d_received = received - self.last_received;
        self.last_expected = expected;
        self.last_received = received;

        let d_chunks = self.stats.source_chunks - self.last_chunks;
        self.last_chunks = self.stats.source_chunks;

        let ratio = if self.cfg.compute_mst_ratio {
            mst_ratio(&snap, |a, b| underlay.rtt_ms(a, b))
        } else {
            None
        };

        let connected = snap.connected_members().len();
        self.stats.measurements.push(SlotMeasurement {
            time_s: eng.now().as_secs(),
            members: snap.members.len(),
            connected,
            stress: tm.stress,
            stretch: tm.stretch,
            stretch_leaf_mean: tm.stretch_leaf_mean,
            hopcount: tm.hopcount,
            hopcount_leaf_mean: tm.hopcount_leaf_mean,
            usage_ms: tm.usage_ms,
            usage_normalized: tm.usage_normalized,
            // Clamped at 0: NACK retransmits can deliver more chunks in
            // a slot than the slot expected (see RunStats::overall_loss);
            // the excess is reported as `duplicates` instead.
            loss_rate: if d_expected > 0 {
                (1.0 - d_received as f64 / d_expected as f64).max(0.0)
            } else {
                0.0
            },
            duplicates: d_received.saturating_sub(d_expected),
            overhead: if d_data > 0 {
                d_control as f64 / d_data as f64
            } else {
                0.0
            },
            overhead_per_chunk: if d_chunks > 0 {
                d_control as f64 / d_chunks as f64
            } else {
                0.0
            },
            mst_ratio: ratio,
            tree_errors: errors,
        });
    }
}

impl<F: AgentFactory> World for WorldState<F> {
    type Msg = Msg;

    fn on_deliver(&mut self, eng: &mut Engine<Msg>, to: HostId, from: HostId, msg: Msg) {
        self.dispatch(eng, to, |a, ctx| a.on_msg(ctx, from, msg));
    }

    fn on_timer(&mut self, eng: &mut Engine<Msg>, host: HostId, token: u64) {
        self.dispatch(eng, host, |a, ctx| a.on_timer(ctx, token));
    }

    fn on_external(&mut self, eng: &mut Engine<Msg>, token: u64) {
        if token == DATA_TICK {
            let Some(interval) = self.cfg.data_interval else {
                return;
            };
            self.seq += 1;
            let seq = self.seq;
            self.stats.source_chunks += 1;
            // Every in-session member should see this chunk.
            for h in self.hosts.hosts() {
                if self.hosts.in_session(h) && h != self.source {
                    self.stats.expected[h.idx()] += 1;
                }
            }
            self.dispatch(eng, self.source, |a, ctx| a.emit_data(ctx, seq));
            let next = eng.now() + interval;
            if next <= self.end {
                eng.schedule_external(next, DATA_TICK);
            }
            return;
        }
        let (_, action) = self.actions[token as usize];
        match action {
            Action::Join(h) => {
                if !self.hosts.in_session(h) && h != self.source {
                    self.hosts.set_in_session(h, true);
                    let inc = self.hosts.bump_incarnation(h);
                    let agent = self.factory.make(h, self.source, self.hosts.limit(h), inc);
                    self.hosts.insert(h, agent);
                    if let Some(dc) = &self.discovery {
                        let now = eng.now();
                        if let Some(a) = self.hosts.get_mut(h) {
                            a.configure_discovery(dc, now);
                        }
                    }
                    self.dispatch(eng, h, |a, ctx| a.on_join_cmd(ctx));
                }
            }
            Action::Leave(h) => {
                if self.hosts.in_session(h) && h != self.source {
                    self.dispatch(eng, h, |a, ctx| a.on_leave_cmd(ctx));
                    self.hosts.remove(h);
                    self.hosts.set_in_session(h, false);
                }
            }
            Action::Crash(h) => {
                // Ungraceful: the agent vanishes with no notifications;
                // neighbours find out through heartbeat/data timeouts.
                if self.hosts.in_session(h) && h != self.source {
                    self.hosts.remove(h);
                    self.hosts.set_in_session(h, false);
                }
            }
            Action::Measure => self.measure(eng),
        }
    }
}

/// Runs one scenario with one protocol over one underlay.
pub struct Driver<F: AgentFactory> {
    eng: Engine<Msg>,
    world: WorldState<F>,
}

impl<F: AgentFactory> Driver<F> {
    /// Build a driver.
    ///
    /// * `underlay` — the network (shared, reusable across runs);
    /// * `routed` — pass the same underlay again when it is a
    ///   [`RoutedUnderlay`] and stress should be computed;
    /// * `source` — the streaming root host;
    /// * `limits[h]` — degree limit per host (must cover all hosts);
    /// * `seed` — all run randomness (jitter, loss sampling) flows from
    ///   here.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        underlay: Arc<dyn Underlay + Send + Sync>,
        routed: Option<Arc<RoutedUnderlay>>,
        source: HostId,
        factory: F,
        scenario: &Scenario,
        limits: Vec<u32>,
        cfg: DriverConfig,
        seed: u64,
    ) -> Self {
        let n = underlay.num_hosts();
        assert_eq!(limits.len(), n, "need one degree limit per host");
        assert!(source.idx() < n);
        let mut eng = Engine::new(underlay, seed);
        if let Some(dp_cfg) = cfg.data_plane {
            eng.enable_data_plane(dp_cfg);
        }
        let mut world = WorldState {
            factory,
            cfg,
            source,
            hosts: HostArena::new(limits),
            stats: RunStats::new(n),
            actions: scenario.actions.clone(),
            routed,
            discovery: scenario.discovery.clone(),
            seq: 0,
            end: scenario.end,
            last_counters: Counters::default(),
            last_expected: 0,
            last_received: 0,
            last_chunks: 0,
        };
        // The source agent exists for the whole run.
        let src_agent = world
            .factory
            .make(source, source, world.hosts.limit(source), 0);
        world.hosts.insert(source, src_agent);
        if let Some(dc) = &world.discovery {
            // The source never probes (it owns the tree) but needs the
            // serving budget to answer bootstrap probes.
            if let Some(a) = world.hosts.get_mut(source) {
                a.configure_discovery(dc, SimTime::ZERO);
            }
        }
        // Schedule the scenario and the stream.
        for (i, (t, _)) in world.actions.iter().enumerate() {
            eng.schedule_external(*t, i as u64);
        }
        if world.cfg.data_interval.is_some() {
            eng.schedule_external(SimTime::ZERO, DATA_TICK);
        }
        Self { eng, world }
    }

    /// Install a fault-injection schedule (chaos runs); see
    /// [`vdm_netsim::FaultPlan`]. Must be called before [`Driver::run`].
    pub fn set_fault_plan(&mut self, plan: vdm_netsim::FaultPlan) {
        self.eng.set_fault_plan(plan);
    }

    /// Execute to the scenario horizon and collect results.
    pub fn run(mut self) -> RunOutput {
        let end = self.world.end;
        self.eng.run(&mut self.world, end);
        RunOutput {
            final_snapshot: self.world.snapshot(),
            counters: self.eng.counters(),
            stats: self.world.stats,
            events: self.eng.events_processed(),
        }
    }

    /// Run only up to `t` (incremental stepping for tests/examples).
    pub fn run_until(&mut self, t: SimTime) {
        self.eng.run(&mut self.world, t);
    }

    /// Ungracefully remove a member right now, exactly like a scheduled
    /// [`Action::Crash`]: the agent vanishes with no notifications.
    /// Lets callers crash a node chosen from *runtime* tree state (e.g.
    /// the currently-largest interior node) between [`Driver::run_until`]
    /// steps, which a precomputed scenario cannot express.
    pub fn crash_now(&mut self, h: HostId) {
        if h != self.world.source && self.world.hosts.in_session(h) {
            self.world.hosts.remove(h);
            self.world.hosts.set_in_session(h, false);
        }
    }

    /// Current tree.
    pub fn snapshot(&self) -> TreeSnapshot {
        self.world.snapshot()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.world.stats
    }

    /// Simulated time.
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// Borrow the engine (diagnostics).
    pub fn engine(&self) -> &Engine<Msg> {
        &self.eng
    }

    /// Borrow an agent (tests/diagnostics).
    pub fn agent(&self, h: HostId) -> Option<&F::Agent> {
        self.world.hosts.get(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, ProtocolAgent};
    use crate::scenario::{ChurnConfig, Scenario};
    use crate::walk::{ProbeResult, WalkPolicy, WalkStep};
    use vdm_netsim::LatencySpace;

    /// Trivial policy: always attach to whatever node we are examining
    /// (with redirects on full nodes this builds a shallow fan tree).
    struct AttachHere;
    impl WalkPolicy for AttachHere {
        fn vdist(&self, rtt_ms: f64, _loss: f64) -> f64 {
            rtt_ms
        }
        fn decide(&self, _probe: &ProbeResult, _purpose: crate::walk::WalkPurpose) -> WalkStep {
            WalkStep::Attach { splice: vec![] }
        }
    }

    struct AttachFactory(AgentConfig);
    impl AgentFactory for AttachFactory {
        type Agent = ProtocolAgent<AttachHere>;
        fn make(&self, h: HostId, src: HostId, limit: u32, inc: u32) -> Self::Agent {
            ProtocolAgent::new(h, src, limit, inc, self.0, AttachHere)
        }
    }

    fn grid_space(n: usize) -> Arc<LatencySpace> {
        // Hosts on a line, 5 ms apart one way.
        let mut rtt = vec![vec![0.0; n]; n];
        for (i, row) in rtt.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                if i != j {
                    *v = 10.0 * (i as f64 - j as f64).abs();
                }
            }
        }
        Arc::new(LatencySpace::from_rtt_matrix(&rtt))
    }

    fn join_only_scenario(hosts: &[HostId]) -> Scenario {
        Scenario::churn(
            &ChurnConfig {
                members: hosts.len(),
                warmup_s: 10.0,
                slot_s: 10.0,
                slots: 1,
                churn_pct: 0.0,
            },
            hosts,
            3,
        )
    }

    #[test]
    fn star_forms_and_measures() {
        let space = grid_space(4);
        let hosts = [HostId(1), HostId(2), HostId(3)];
        let scenario = join_only_scenario(&hosts);
        let driver = Driver::new(
            space.clone(),
            None,
            HostId(0),
            AttachFactory(AgentConfig::default()),
            &scenario,
            vec![10; 4],
            DriverConfig::default(),
            1,
        );
        let out = driver.run();
        assert_eq!(out.stats.startup_s.len(), 3);
        assert!(out.stats.startup_s.iter().all(|&s| s < 1.0));
        let snap = &out.final_snapshot;
        assert_eq!(snap.connected_members().len(), 3);
        for &m in &snap.members {
            assert_eq!(snap.parent_of(m), Some(HostId(0)));
        }
        assert!(snap.validate(&[10, 10, 10, 10]).is_empty());
        // Measurements were taken and show a working stream.
        assert_eq!(out.stats.measurements.len(), 2);
        let last = out.stats.measurements.last().unwrap();
        assert_eq!(last.members, 3);
        assert_eq!(last.connected, 3);
        assert!(last.loss_rate < 0.05, "loss {}", last.loss_rate);
        assert!((last.stretch.mean - 1.0).abs() < 1e-6);
        assert_eq!(last.tree_errors, 0);
        // Overall loss includes the few chunks each node misses between
        // its join command and its first connection; with only ~15
        // chunks in this tiny run that quantizes coarsely.
        assert!(out.stats.overall_loss() < 0.2);
    }

    #[test]
    fn degree_limit_redirects_to_children() {
        let space = grid_space(5);
        let hosts = [HostId(1), HostId(2), HostId(3), HostId(4)];
        let scenario = join_only_scenario(&hosts);
        // Source can take 1 child only; everyone chains.
        let driver = Driver::new(
            space.clone(),
            None,
            HostId(0),
            AttachFactory(AgentConfig::default()),
            &scenario,
            vec![1, 1, 1, 1, 1],
            DriverConfig::default(),
            7,
        );
        let out = driver.run();
        let snap = &out.final_snapshot;
        assert_eq!(snap.connected_members().len(), 4);
        assert!(snap.validate(&[1; 5]).is_empty());
        // Chain: max depth is 4.
        let max_depth = snap.depths().iter().flatten().copied().max().unwrap();
        assert_eq!(max_depth, 4);
    }

    #[test]
    fn leave_triggers_reconnection() {
        let space = grid_space(5);
        let hosts = [HostId(1), HostId(2), HostId(3), HostId(4)];
        let cfg = ChurnConfig {
            members: 4,
            warmup_s: 10.0,
            slot_s: 20.0,
            slots: 4,
            churn_pct: 25.0, // one leave+join per slot
        };
        let scenario = Scenario::churn(&cfg, &hosts, 5);
        assert!(scenario.num_leaves() > 0);
        let driver = Driver::new(
            space.clone(),
            None,
            HostId(0),
            AttachFactory(AgentConfig::default()),
            &scenario,
            vec![2; 5],
            DriverConfig::default(),
            11,
        );
        let out = driver.run();
        // Some orphans must have reconnected (leaves of interior nodes).
        let last = out.stats.measurements.last().unwrap();
        assert_eq!(last.tree_errors, 0);
        assert_eq!(last.connected, last.members);
        // The run saw the scheduled joins (initial + churn).
        assert_eq!(out.stats.startup_s.len(), scenario.num_joins());
    }

    #[test]
    fn deterministic_runs() {
        let space = grid_space(5);
        let hosts = [HostId(1), HostId(2), HostId(3), HostId(4)];
        let cfg = ChurnConfig {
            members: 4,
            warmup_s: 10.0,
            slot_s: 20.0,
            slots: 3,
            churn_pct: 25.0,
        };
        let scenario = Scenario::churn(&cfg, &hosts, 5);
        let run = |seed| {
            let driver = Driver::new(
                space.clone(),
                None,
                HostId(0),
                AttachFactory(AgentConfig::default()),
                &scenario,
                vec![2; 5],
                DriverConfig::default(),
                seed,
            );
            let out = driver.run();
            (
                out.stats.startup_s.clone(),
                out.stats.overall_loss(),
                out.final_snapshot.parent.clone(),
                out.events,
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn no_stream_mode() {
        let space = grid_space(3);
        let hosts = [HostId(1), HostId(2)];
        let scenario = join_only_scenario(&hosts);
        let driver = Driver::new(
            space,
            None,
            HostId(0),
            AttachFactory(AgentConfig {
                data_timeout: None,
                ..AgentConfig::default()
            }),
            &scenario,
            vec![5; 3],
            DriverConfig {
                data_interval: None,
                ..DriverConfig::default()
            },
            2,
        );
        let out = driver.run();
        assert_eq!(out.stats.source_chunks, 0);
        assert_eq!(out.stats.overall_loss(), 0.0);
        assert_eq!(out.final_snapshot.connected_members().len(), 2);
    }
}
