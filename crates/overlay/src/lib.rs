//! Overlay multicast framework.
//!
//! Everything protocol-*independent* about the paper's evaluation lives
//! here; the protocols themselves (VDM in `vdm-core`, HMTP/BTP/star in
//! `vdm-baselines`) plug in as small *policies*:
//!
//! * [`msg`] — the control/data message set exchanged between peers
//!   (information request/response, ping/pong probes, connection
//!   request/response, parent/grandparent change, leave — §5.2.2 of the
//!   paper enumerates exactly these);
//! * [`peer`] — per-peer tree bookkeeping (parent, grandparent, children
//!   with stored virtual distances, degree limit);
//! * [`walk`] — the iterative top-down *join walk* shared by VDM and HMTP:
//!   probe the current node and its children, let the protocol's
//!   [`walk::WalkPolicy`] pick the next step, handle timeouts, redirects
//!   and splices;
//! * [`agent`] — the message-driven peer agent ([`agent::ProtocolAgent`])
//!   that runs walks, answers queries, forwards the stream, reconnects
//!   orphans at the grandparent and optionally refines periodically;
//! * [`arena`] — flat struct-of-arrays per-host state ([`HostArena`])
//!   indexed by contiguous host id, so a sharded run can hand each shard
//!   world its own contiguous slice of driver state;
//! * [`discovery`] — decentralized bootstrap membership: iterative peer
//!   discovery from a small seed set over a gossiped partial view, so a
//!   walk can start from a discovered live anchor instead of the source;
//! * [`coords`] — a Vivaldi-style virtual-coordinate embedding
//!   maintained piggyback on walk/gossip traffic; joiners rank anchors
//!   by coordinate distance and enter the walk mid-tree;
//! * [`tree`] — global tree snapshots and structural validation;
//! * [`sync`] — a synchronous oracle executor that runs the *same*
//!   policies against exact distances (used by unit tests, the MST
//!   comparison, and the paper's worked join examples);
//! * [`scenario`] — seeded join/leave/churn schedules (§3.6.2, §5.4);
//! * [`metrics`] — stress, stretch, hop count, resource usage, MST ratio
//!   (Eqs. 3.4–3.7 and §5.3);
//! * [`driver`] — the discrete-event [`netsim`](vdm_netsim) world that
//!   executes a scenario against a set of agents and collects
//!   measurements;
//! * [`multitree`] — striped delivery over `k` decorrelated trees with
//!   cross-tree repair (ablation A10);
//! * [`stats`] — run statistics and measurement records.

pub mod agent;
pub mod arena;
pub mod coords;
pub mod core;
pub mod discovery;
pub mod driver;
pub mod metrics;
pub mod msg;
pub mod multitree;
pub mod peer;
pub mod repair;
pub mod scenario;
pub mod stats;
pub mod sync;
pub mod tree;
pub mod walk;

pub use agent::{AdmissionConfig, AgentConfig, Ctx, OverlayAgent, ProtocolAgent, ResilienceConfig};
pub use arena::HostArena;
pub use coords::{Coord, CoordSample, CoordTable, CoordsConfig, VivaldiState};
pub use core::{CoreIo, Input, Output, ProtocolCore};
pub use discovery::{DiscoveryConfig, DiscoveryState};
pub use driver::{Driver, DriverConfig, RunOutput};
pub use metrics::TreeMetrics;
pub use msg::Msg;
pub use multitree::{
    expand_faults, fold_vid, interior_overlap, interior_victim, striped_limits, CrossRepairAgent,
    MtSlot, MultiTreeConfig, MultiTreeOutput, MultiTreeSession, StripedUnderlay,
};
pub use repair::{GapTracker, RepairConfig, RetransmitRing};
pub use scenario::{Action, Scenario};
pub use stats::{RunStats, SlotMeasurement, Summary};
pub use tree::TreeSnapshot;
pub use walk::{ChildProbe, ProbeResult, WalkPolicy, WalkStep};

/// Virtual distance between two peers, in metric-dependent units
/// (milliseconds of RTT for delay-based trees, `-ln(1-p)` for loss-based
/// trees — Chapter 4's generalization).
pub type VDist = f64;
