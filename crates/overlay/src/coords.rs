//! Virtual-coordinate embedding (Vivaldi-style spring relaxation).
//!
//! At N = 10k the A9 family showed VDM's contacts-per-join blowing past
//! the `4·log₄N` curve because a saturated tree core forces repeated
//! Case-III restarts from the source. The fix — following the
//! virtual-geometric-coordinate tree construction of Andreica et al. —
//! is to let a newcomer *predict* its region of the tree: every host
//! maintains a low-dimensional virtual coordinate whose pairwise
//! Euclidean distances approximate measured RTTs, updated with the
//! standard Vivaldi spring-relaxation rule from samples the walk and
//! gossip traffic already produce. Joiners then rank candidate walk
//! anchors (discovered peers, gossiped ancestors, visited nodes) by
//! coordinate distance and enter the walk mid-tree instead of at the
//! source, and Case-III restarts resume from the coordinate-nearest
//! visited ancestor.
//!
//! Everything here is **default-off and byte-invisible when disabled**:
//! no [`CoordsConfig`] means no state, no extra messages (the piggyback
//! fields on [`crate::msg::Msg`] stay `None`), no timers, and no RNG
//! draws — the degenerate-direction tie-break below hashes host ids
//! instead of consuming the shared engine stream, so enabling or
//! disabling the embedding never shifts another subsystem's randomness.
//! All updates are pure `f64` arithmetic over delivered samples:
//! deterministic per seed, and clamped so coordinates stay finite under
//! arbitrary RTT inputs.

use crate::VDist;
use vdm_netsim::HostId;

/// Embedding dimensionality. Vivaldi converges well in 2–5 dimensions;
/// 4 keeps samples `Copy`-small while leaving room for the power-law
/// underlays' non-metric quirks.
pub const DIM: usize = 4;

/// A point in the virtual coordinate space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coord(pub [f64; DIM]);

impl Coord {
    /// The origin — every host starts here.
    pub const ZERO: Coord = Coord([0.0; DIM]);

    /// Euclidean distance to `other` (the RTT estimate, ms).
    pub fn dist(&self, other: Coord) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Vector magnitude.
    pub fn norm(&self) -> f64 {
        self.dist(Coord::ZERO)
    }

    /// Every component finite?
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

/// A host's coordinate plus its local error estimate — what the
/// piggyback fields on probes, connection requests, and gossip carry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoordSample {
    /// The remote host's current coordinate.
    pub coord: Coord,
    /// The remote host's confidence (relative error, lower = better).
    pub err: f64,
}

/// Tunables of the embedding and the coordinate-guided join. Installed
/// via [`crate::agent::AgentConfig::coords`] (agents) or passed to
/// [`CoordTable::new`] (the synchronous A9 path); `None`/absent keeps
/// every pre-coordinate byte sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoordsConfig {
    /// Error adaptation rate (Vivaldi's `c_e`).
    pub ce: f64,
    /// Position step rate (Vivaldi's `c_c`).
    pub cc: f64,
    /// Initial (and maximum) relative error.
    pub err_init: f64,
    /// Relative error never drops below this (keeps the update
    /// responsive to topology changes and the weight well-defined).
    pub err_floor: f64,
    /// Per-component coordinate clamp: updates never push any axis
    /// beyond ±`max_coord`, so coordinates stay finite under arbitrary
    /// (even adversarial) RTT samples.
    pub max_coord: f64,
    /// RTT samples below this are clamped up (guards the relative
    /// error's division and keeps zero-RTT self-loops harmless).
    pub min_rtt_ms: f64,
    /// Guided join: candidate anchors probed (true RTT) per join, taken
    /// from the coordinate-ranked view head.
    pub probe_k: usize,
    /// Guided join: membership-view size the joiner ranks.
    pub view_k: usize,
}

impl Default for CoordsConfig {
    fn default() -> Self {
        Self {
            ce: 0.25,
            cc: 0.25,
            err_init: 1.0,
            err_floor: 0.05,
            max_coord: 1e6,
            min_rtt_ms: 0.01,
            probe_k: 6,
            view_k: 32,
        }
    }
}

/// One host's Vivaldi state: coordinate plus local error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VivaldiState {
    /// Current coordinate.
    pub coord: Coord,
    /// Current relative error estimate.
    pub err: f64,
}

impl VivaldiState {
    /// Fresh state at the origin with maximal error.
    pub fn new(cfg: &CoordsConfig) -> Self {
        Self {
            coord: Coord::ZERO,
            err: cfg.err_init,
        }
    }

    /// The sample other hosts receive in piggyback fields.
    pub fn sample(&self) -> CoordSample {
        CoordSample {
            coord: self.coord,
            err: self.err,
        }
    }

    /// One spring-relaxation step against a measured RTT to `remote`.
    /// Deterministic: same state + same inputs ⇒ same result; when the
    /// two coordinates coincide the push-apart direction is hashed from
    /// `pair_seed` (never drawn from a shared RNG). Returns the step
    /// magnitude (trace/diagnostics).
    pub fn update(
        &mut self,
        remote: CoordSample,
        rtt_ms: f64,
        cfg: &CoordsConfig,
        pair_seed: u64,
    ) -> f64 {
        let rtt = if rtt_ms.is_finite() {
            rtt_ms.max(cfg.min_rtt_ms)
        } else {
            return 0.0;
        };
        let remote_err = remote.err.clamp(cfg.err_floor, cfg.err_init);
        // Sample weight: how much we trust ourselves vs the remote.
        let w = self.err / (self.err + remote_err);
        let dist = self.coord.dist(remote.coord);
        // Relative error of this sample, folded into our confidence.
        let es = (dist - rtt).abs() / rtt;
        let alpha = cfg.ce * w;
        self.err = (es * alpha + self.err * (1.0 - alpha)).clamp(cfg.err_floor, cfg.err_init);
        // Unit vector from the remote toward us; coincident coordinates
        // get a deterministic pseudo-random direction so two hosts born
        // at the origin still separate.
        let dir = if dist > 1e-9 {
            let mut d = [0.0; DIM];
            for (i, v) in d.iter_mut().enumerate() {
                *v = (self.coord.0[i] - remote.coord.0[i]) / dist;
            }
            Coord(d)
        } else {
            unit_from_hash(pair_seed)
        };
        let step = cfg.cc * w * (rtt - dist);
        for (i, v) in self.coord.0.iter_mut().enumerate() {
            *v = (*v + step * dir.0[i]).clamp(-cfg.max_coord, cfg.max_coord);
        }
        step.abs()
    }
}

/// SplitMix64 — the same cheap avalanche the per-tree metric
/// perturbation uses; good enough to decorrelate degenerate directions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic seed for the degenerate-direction tie-break of an
/// update between two hosts. Order-sensitive on purpose: the two ends
/// of a coincident pair must push in *different* directions.
pub fn pair_seed(me: HostId, remote: HostId) -> u64 {
    splitmix64(((me.0 as u64) << 32) | remote.0 as u64)
}

/// A deterministic unit vector hashed from `seed` (components from
/// independent SplitMix64 outputs, normalized).
pub fn unit_from_hash(seed: u64) -> Coord {
    let mut c = [0.0; DIM];
    let mut s = seed;
    for v in c.iter_mut() {
        s = splitmix64(s);
        // Map to (-1, 1); 53-bit mantissa keeps this exact.
        *v = (s >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
    }
    let coord = Coord(c);
    let n = coord.norm();
    if n > 1e-12 {
        for v in c.iter_mut() {
            *v /= n;
        }
        Coord(c)
    } else {
        let mut unit = [0.0; DIM];
        unit[0] = 1.0;
        Coord(unit)
    }
}

/// A whole-population coordinate table for the synchronous oracle path
/// (the A9 guided-join series): one [`VivaldiState`] per host, updated
/// symmetrically from the probe RTTs joins measure anyway.
pub struct CoordTable {
    cfg: CoordsConfig,
    states: Vec<VivaldiState>,
}

impl CoordTable {
    /// A table of `n` hosts, all at the origin.
    pub fn new(n: usize, cfg: CoordsConfig) -> Self {
        Self {
            cfg,
            states: vec![VivaldiState::new(&cfg); n],
        }
    }

    /// The installed tunables.
    pub fn cfg(&self) -> &CoordsConfig {
        &self.cfg
    }

    /// A host's current state.
    pub fn state(&self, h: HostId) -> &VivaldiState {
        &self.states[h.idx()]
    }

    /// Fold one measured RTT into both endpoints (each end sees the
    /// other's pre-update sample, exactly as two piggybacked updates
    /// from one probe exchange would).
    pub fn observe(&mut self, a: HostId, b: HostId, rtt_ms: f64) {
        if a == b {
            return;
        }
        let sa = self.states[a.idx()].sample();
        let sb = self.states[b.idx()].sample();
        self.states[a.idx()].update(sb, rtt_ms, &self.cfg, pair_seed(a, b));
        self.states[b.idx()].update(sa, rtt_ms, &self.cfg, pair_seed(b, a));
    }

    /// Estimated virtual distance between two hosts.
    pub fn est_dist(&self, a: HostId, b: HostId) -> VDist {
        self.states[a.idx()].coord.dist(self.states[b.idx()].coord)
    }

    /// Sort `candidates` by estimated distance from `from`, nearest
    /// first, host id breaking ties (deterministic regardless of input
    /// order).
    pub fn rank_from(&self, from: HostId, candidates: &mut [HostId]) {
        let c = self.states[from.idx()].coord;
        candidates.sort_by(|&x, &y| {
            let dx = c.dist(self.states[x.idx()].coord);
            let dy = c.dist(self.states[y.idx()].coord);
            dx.total_cmp(&dy).then(x.cmp(&y))
        });
    }
}

/// Rank `(host, sample)` candidates by coordinate distance from `me`,
/// nearest first; hosts without a sample keep their relative order
/// after every ranked one. Shared by the agent's discovery anchor
/// ranking and failover target ordering.
pub fn rank_candidates(me: Coord, candidates: &mut [(HostId, Option<CoordSample>)]) {
    candidates.sort_by(|a, b| {
        let da = a.1.map_or(f64::INFINITY, |s| me.dist(s.coord));
        let db = b.1.map_or(f64::INFINITY, |s| me.dist(s.coord));
        da.total_cmp(&db).then(a.0.cmp(&b.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CoordsConfig {
        CoordsConfig::default()
    }

    #[test]
    fn update_is_deterministic() {
        let mut a = VivaldiState::new(&cfg());
        let mut b = VivaldiState::new(&cfg());
        let remote = CoordSample {
            coord: Coord([3.0, -1.0, 0.5, 2.0]),
            err: 0.4,
        };
        let s1 = a.update(remote, 25.0, &cfg(), 77);
        let s2 = b.update(remote, 25.0, &cfg(), 77);
        assert_eq!(a, b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn coincident_pairs_separate_deterministically() {
        let mut a = VivaldiState::new(&cfg());
        let mut b = VivaldiState::new(&cfg());
        let origin = CoordSample {
            coord: Coord::ZERO,
            err: 1.0,
        };
        a.update(origin, 10.0, &cfg(), pair_seed(HostId(1), HostId(2)));
        b.update(origin, 10.0, &cfg(), pair_seed(HostId(2), HostId(1)));
        assert!(a.coord.norm() > 0.0);
        assert!(b.coord.norm() > 0.0);
        assert_ne!(a.coord, b.coord, "the two ends must push apart");
    }

    #[test]
    fn pathological_rtts_keep_coordinates_finite() {
        let mut v = VivaldiState::new(&cfg());
        let remote = CoordSample {
            coord: Coord([1e9, -1e9, 1e9, -1e9]),
            err: 0.0,
        };
        for rtt in [0.0, -5.0, f64::MAX, f64::INFINITY, f64::NAN, 1e300] {
            v.update(remote, rtt, &cfg(), 3);
            assert!(v.coord.is_finite(), "rtt={rtt}: {:?}", v.coord);
            assert!(v.err.is_finite() && v.err >= cfg().err_floor);
        }
        assert!(v.coord.norm() <= cfg().max_coord * (DIM as f64).sqrt());
    }

    #[test]
    fn embedding_converges_on_a_line() {
        // Hosts 0..4 on a line, RTT = 10·|i-j|. After enough symmetric
        // sweeps the coordinate distances should reflect the geometry:
        // the embedding must order 1's neighbours correctly.
        let n = 5;
        let mut t = CoordTable::new(n, cfg());
        let rtt = |a: u32, b: u32| 10.0 * (a as f64 - b as f64).abs();
        for _ in 0..60 {
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i != j {
                        t.observe(HostId(i), HostId(j), rtt(i, j));
                    }
                }
            }
        }
        let d01 = t.est_dist(HostId(0), HostId(1));
        let d04 = t.est_dist(HostId(0), HostId(4));
        assert!(
            d04 > d01 * 2.0,
            "far pair must embed farther: d01={d01:.2} d04={d04:.2}"
        );
        let mut cands = vec![HostId(4), HostId(2), HostId(1), HostId(3)];
        t.rank_from(HostId(0), &mut cands);
        assert_eq!(cands[0], HostId(1), "ranked order: {cands:?}");
        assert_eq!(cands[3], HostId(4));
    }

    #[test]
    fn rank_candidates_puts_unknowns_last() {
        let near = CoordSample {
            coord: Coord([1.0, 0.0, 0.0, 0.0]),
            err: 0.2,
        };
        let far = CoordSample {
            coord: Coord([9.0, 0.0, 0.0, 0.0]),
            err: 0.2,
        };
        let mut cands = vec![
            (HostId(7), None),
            (HostId(3), Some(far)),
            (HostId(5), Some(near)),
        ];
        rank_candidates(Coord::ZERO, &mut cands);
        assert_eq!(
            cands.iter().map(|c| c.0).collect::<Vec<_>>(),
            vec![HostId(5), HostId(3), HostId(7)]
        );
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        for s in [0u64, 1, 42, u64::MAX] {
            let u = unit_from_hash(s);
            assert!((u.norm() - 1.0).abs() < 1e-9, "seed {s}: {:?}", u);
        }
    }
}
