//! Per-peer tree bookkeeping.
//!
//! "Nodes store some state information to cope with the protocol. Each
//! node has children list and distances to them. They also know their
//! parent and grandparent." (§3.2) — [`PeerState`] is exactly that
//! state, plus the degree limit and an optional root path for protocols
//! that maintain one (HMTP).

use crate::VDist;
use vdm_netsim::HostId;

/// Local tree state of one peer.
#[derive(Clone, Debug)]
pub struct PeerState {
    /// This peer.
    pub host: HostId,
    /// Whether this peer is the stream source (root; never joins).
    pub is_source: bool,
    /// Maximum number of children (out-degree limit; ≥ 1 per §3.2).
    pub degree_limit: u32,
    /// Current parent (None for the source and for unconnected peers).
    pub parent: Option<HostId>,
    /// Measured virtual distance to the parent, when known (set by the
    /// join walk; splices leave it unknown). Used as the refinement
    /// improvement baseline.
    pub parent_dist: Option<VDist>,
    /// Parent's parent — the §3.3 recovery anchor.
    pub grandparent: Option<HostId>,
    /// Children with the stored virtual distance to each.
    pub children: Vec<(HostId, VDist)>,
    /// Path `source..=parent` if the protocol maintains root paths;
    /// empty otherwise.
    pub root_path: Vec<HostId>,
    /// Highest stream sequence number accepted so far (playout
    /// watermark; duplicates and late packets are dropped).
    pub last_seq: Option<u64>,
}

impl PeerState {
    /// Fresh, unconnected peer.
    pub fn new(host: HostId, degree_limit: u32, is_source: bool) -> Self {
        assert!(degree_limit >= 1, "degree limit must be at least one");
        Self {
            host,
            is_source,
            degree_limit,
            parent: None,
            parent_dist: None,
            grandparent: None,
            children: Vec::new(),
            root_path: Vec::new(),
            last_seq: None,
        }
    }

    /// Is this peer attached to the tree (the source always is)?
    pub fn connected(&self) -> bool {
        self.is_source || self.parent.is_some()
    }

    /// Remaining child slots.
    pub fn free_degree(&self) -> u32 {
        self.degree_limit.saturating_sub(self.children.len() as u32)
    }

    /// Stored distance to a child, if it is one.
    pub fn child_dist(&self, c: HostId) -> Option<VDist> {
        self.children.iter().find(|(h, _)| *h == c).map(|(_, d)| *d)
    }

    /// Whether `c` is currently a child.
    pub fn has_child(&self, c: HostId) -> bool {
        self.child_dist(c).is_some()
    }

    /// Add (or re-distance) a child.
    ///
    /// # Panics
    /// Panics if adding a *new* child would exceed the degree limit or
    /// if `c` is the peer itself.
    pub fn add_child(&mut self, c: HostId, vdist: VDist) {
        assert!(c != self.host, "cannot parent itself");
        if let Some(slot) = self.children.iter_mut().find(|(h, _)| *h == c) {
            slot.1 = vdist;
            return;
        }
        assert!(
            self.free_degree() > 0,
            "degree limit exceeded at {}",
            self.host
        );
        self.children.push((c, vdist));
    }

    /// Remove a child if present; returns whether it was one.
    pub fn remove_child(&mut self, c: HostId) -> bool {
        let before = self.children.len();
        self.children.retain(|(h, _)| *h != c);
        self.children.len() != before
    }

    /// The child with the smallest stored distance, optionally requiring
    /// a predicate (e.g. "has free degree" is not locally knowable, so
    /// callers filter by exclusion lists instead).
    pub fn closest_child(&self, exclude: &[HostId]) -> Option<(HostId, VDist)> {
        self.children
            .iter()
            .filter(|(h, _)| !exclude.contains(h))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .copied()
    }

    /// Accept a stream chunk: returns `true` if `seq` advances the
    /// playout watermark (i.e. the chunk counts as received and should
    /// be forwarded), `false` for duplicates/stale chunks.
    pub fn accept_seq(&mut self, seq: u64) -> bool {
        match self.last_seq {
            Some(last) if seq <= last => false,
            _ => {
                self.last_seq = Some(seq);
                true
            }
        }
    }

    /// Reset to the unconnected state (used when a peer leaves and later
    /// re-joins as a fresh incarnation).
    pub fn reset(&mut self) {
        self.parent = None;
        self.parent_dist = None;
        self.grandparent = None;
        self.children.clear();
        self.root_path.clear();
        self.last_seq = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_accounting() {
        let mut p = PeerState::new(HostId(1), 2, false);
        assert_eq!(p.free_degree(), 2);
        p.add_child(HostId(2), 5.0);
        p.add_child(HostId(3), 3.0);
        assert_eq!(p.free_degree(), 0);
        // Re-distancing an existing child is fine even when full.
        p.add_child(HostId(2), 4.0);
        assert_eq!(p.child_dist(HostId(2)), Some(4.0));
        assert!(p.remove_child(HostId(2)));
        assert!(!p.remove_child(HostId(2)));
        assert_eq!(p.free_degree(), 1);
    }

    #[test]
    #[should_panic(expected = "degree limit exceeded")]
    fn over_degree_panics() {
        let mut p = PeerState::new(HostId(1), 1, false);
        p.add_child(HostId(2), 1.0);
        p.add_child(HostId(3), 1.0);
    }

    #[test]
    fn closest_child_with_exclusions() {
        let mut p = PeerState::new(HostId(0), 4, true);
        p.add_child(HostId(1), 5.0);
        p.add_child(HostId(2), 2.0);
        p.add_child(HostId(3), 8.0);
        assert_eq!(p.closest_child(&[]), Some((HostId(2), 2.0)));
        assert_eq!(p.closest_child(&[HostId(2)]), Some((HostId(1), 5.0)));
        assert_eq!(p.closest_child(&[HostId(1), HostId(2), HostId(3)]), None);
    }

    #[test]
    fn seq_watermark() {
        let mut p = PeerState::new(HostId(1), 1, false);
        assert!(p.accept_seq(5));
        assert!(!p.accept_seq(5));
        assert!(!p.accept_seq(3));
        assert!(p.accept_seq(6));
        p.reset();
        assert!(p.accept_seq(1));
    }

    #[test]
    fn connected_logic() {
        let mut p = PeerState::new(HostId(1), 1, false);
        assert!(!p.connected());
        p.parent = Some(HostId(0));
        assert!(p.connected());
        let s = PeerState::new(HostId(0), 3, true);
        assert!(s.connected());
    }
}
