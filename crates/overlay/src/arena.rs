//! Flat per-host state arena (SoA layout).
//!
//! The driver used to scatter per-host state over parallel `Vec`s inside
//! `WorldState`; the sharded engine wants that state to be *sliceable* —
//! each shard world owning a contiguous host-id block — so the layout is
//! factored out here. A [`HostArena`] is a struct-of-arrays over one
//! contiguous host-id range `base..base + len`: protocol slot (present
//! while the host runs an agent), session membership, incarnation
//! counter, and degree limit — all indexed by host id minus base, never
//! by hash.
//!
//! The whole-simulation case is `base = 0`; a sharded run carves one
//! arena per shard with [`HostArena::per_shard`], whose ranges are
//! exactly the `ShardMap` blocks.

use vdm_netsim::shard::ShardMap;
use vdm_netsim::HostId;

/// Struct-of-arrays per-host state over a contiguous host-id range.
pub struct HostArena<T> {
    base: u32,
    slots: Vec<Option<T>>,
    in_session: Vec<bool>,
    incarnations: Vec<u32>,
    limits: Vec<u32>,
}

impl<T> HostArena<T> {
    /// Arena over hosts `0..limits.len()` (the unsharded case).
    pub fn new(limits: Vec<u32>) -> Self {
        Self::for_range(0, limits)
    }

    /// Arena over hosts `base..base + limits.len()`.
    ///
    /// The range must fit the u32 host-id space: an end past `u32::MAX`
    /// used to wrap silently in [`HostArena::hosts`], iterating the
    /// wrong ids in release builds.
    pub fn for_range(base: u32, limits: Vec<u32>) -> Self {
        let n = limits.len();
        u32::try_from(n)
            .ok()
            .and_then(|n32| base.checked_add(n32))
            .unwrap_or_else(|| {
                panic!("arena range {base}..{base}+{n} exceeds the u32 host-id space")
            });
        Self {
            base,
            slots: (0..n).map(|_| None).collect(),
            in_session: vec![false; n],
            incarnations: vec![0; n],
            limits,
        }
    }

    /// One arena per shard of `map`, each owning its contiguous block
    /// of `limits` (which must cover the whole map).
    pub fn per_shard(limits: &[u32], map: &ShardMap) -> Vec<Self> {
        assert_eq!(limits.len(), map.num_hosts(), "one limit per host");
        (0..map.num_shards())
            .map(|s| {
                let r = map.range(s as u32);
                Self::for_range(r.start, limits[r.start as usize..r.end as usize].to_vec())
            })
            .collect()
    }

    /// First host id owned.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of hosts owned.
    pub fn len(&self) -> usize {
        self.limits.len()
    }

    /// True when the arena owns no hosts.
    pub fn is_empty(&self) -> bool {
        self.limits.is_empty()
    }

    /// True when `h` falls in this arena's range.
    pub fn contains(&self, h: HostId) -> bool {
        h.0 >= self.base && ((h.0 - self.base) as usize) < self.len()
    }

    #[inline]
    fn idx(&self, h: HostId) -> usize {
        debug_assert!(self.contains(h), "host {h} outside arena range");
        (h.0 - self.base) as usize
    }

    /// The hosts owned, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (self.base..self.base + self.len() as u32).map(HostId)
    }

    /// Shared access to `h`'s slot.
    pub fn get(&self, h: HostId) -> Option<&T> {
        self.slots[self.idx(h)].as_ref()
    }

    /// Mutable access to `h`'s slot.
    pub fn get_mut(&mut self, h: HostId) -> Option<&mut T> {
        let i = self.idx(h);
        self.slots[i].as_mut()
    }

    /// Install `h`'s slot, replacing (and returning) any previous one.
    pub fn insert(&mut self, h: HostId, value: T) -> Option<T> {
        let i = self.idx(h);
        self.slots[i].replace(value)
    }

    /// Clear `h`'s slot.
    pub fn remove(&mut self, h: HostId) -> Option<T> {
        let i = self.idx(h);
        self.slots[i].take()
    }

    /// Is `h` currently in the session?
    pub fn in_session(&self, h: HostId) -> bool {
        self.in_session[self.idx(h)]
    }

    /// Mark `h`'s session membership.
    pub fn set_in_session(&mut self, h: HostId, yes: bool) {
        let i = self.idx(h);
        self.in_session[i] = yes;
    }

    /// `h`'s current incarnation number.
    pub fn incarnation(&self, h: HostId) -> u32 {
        self.incarnations[self.idx(h)]
    }

    /// Return `h`'s incarnation and advance it — the driver stamps each
    /// new agent with the pre-bump value, so rejoins are distinguishable
    /// from stale messages.
    pub fn bump_incarnation(&mut self, h: HostId) -> u32 {
        let i = self.idx(h);
        let inc = self.incarnations[i];
        self.incarnations[i] += 1;
        inc
    }

    /// `h`'s degree limit.
    pub fn limit(&self, h: HostId) -> u32 {
        self.limits[self.idx(h)]
    }

    /// All degree limits, in host-id order (for `TreeSnapshot::validate`;
    /// only meaningful on a `base = 0` arena covering every host).
    pub fn limits(&self) -> &[u32] {
        &self.limits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_range_basics() {
        let mut a: HostArena<&'static str> = HostArena::new(vec![4, 4, 2]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.base(), 0);
        assert!(a.contains(HostId(2)) && !a.contains(HostId(3)));
        assert!(a.get(HostId(1)).is_none());
        assert!(a.insert(HostId(1), "x").is_none());
        assert_eq!(a.get(HostId(1)), Some(&"x"));
        assert_eq!(a.limit(HostId(2)), 2);
        assert!(!a.in_session(HostId(1)));
        a.set_in_session(HostId(1), true);
        assert!(a.in_session(HostId(1)));
        assert_eq!(a.bump_incarnation(HostId(1)), 0);
        assert_eq!(a.bump_incarnation(HostId(1)), 1);
        assert_eq!(a.incarnation(HostId(1)), 2);
        assert_eq!(a.remove(HostId(1)), Some("x"));
        assert!(a.get(HostId(1)).is_none());
        assert_eq!(
            a.hosts().collect::<Vec<_>>(),
            vec![HostId(0), HostId(1), HostId(2)]
        );
    }

    #[test]
    fn per_shard_slices_follow_the_map() {
        let map = ShardMap::contiguous(10, 3);
        let limits: Vec<u32> = (0..10).collect();
        let arenas: Vec<HostArena<u8>> = HostArena::per_shard(&limits, &map);
        assert_eq!(arenas.len(), 3);
        assert_eq!(arenas[0].base(), 0);
        assert_eq!(arenas[1].base(), 4);
        assert_eq!(arenas[2].base(), 7);
        assert_eq!(arenas[1].len(), 3);
        assert!(arenas[1].contains(HostId(5)));
        assert!(!arenas[1].contains(HostId(7)));
        assert_eq!(arenas[1].limit(HostId(5)), 5);
        assert_eq!(arenas[2].hosts().next(), Some(HostId(7)));
    }

    #[test]
    #[should_panic(expected = "outside arena range")]
    fn out_of_range_access_panics_in_debug() {
        let a: HostArena<u8> = HostArena::for_range(5, vec![1, 1]);
        let _ = a.get(HostId(2));
    }

    #[test]
    fn range_may_end_exactly_at_the_id_space_top() {
        let a: HostArena<u8> = HostArena::for_range(u32::MAX - 2, vec![7, 8]);
        assert!(a.contains(HostId(u32::MAX - 1)));
        assert_eq!(
            a.hosts().collect::<Vec<_>>(),
            vec![HostId(u32::MAX - 2), HostId(u32::MAX - 1)]
        );
        assert_eq!(a.limit(HostId(u32::MAX - 1)), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 host-id space")]
    fn range_past_the_id_space_is_rejected() {
        let _: HostArena<u8> = HostArena::for_range(u32::MAX - 1, vec![1, 1, 1]);
    }
}
