//! Tree metrics: the paper's Eqs. 3.4–3.7 and §5.3 measures.
//!
//! All structural metrics are computed analytically from a
//! [`TreeSnapshot`] plus the underlay: stress counts, per link, how many
//! tree edges route over it; stretch compares tree delay with unicast
//! delay; usage sums overlay-link latencies. Loss and overhead come from
//! traffic counters in the driver, not from here.

use crate::stats::Summary;
use crate::tree::TreeSnapshot;
use vdm_netsim::{HostId, RoutedUnderlay, Underlay};
use vdm_topology::mst;

/// Structural metrics of one snapshot.
#[derive(Clone, Debug, Default)]
pub struct TreeMetrics {
    /// Per-used-link stress (Eq. 3.4); `None` on latency-space underlays
    /// which have no physical links.
    pub stress: Option<Summary>,
    /// Per-receiver stretch (Eq. 3.5), over connected members with a
    /// rooted chain.
    pub stretch: Summary,
    /// Mean stretch over leaf members.
    pub stretch_leaf_mean: f64,
    /// Per-receiver overlay hop count.
    pub hopcount: Summary,
    /// Mean hop count over leaf members.
    pub hopcount_leaf_mean: f64,
    /// Sum of one-way latencies over overlay tree links, ms.
    pub usage_ms: f64,
    /// `usage_ms` / the unicast star's usage (source directly to every
    /// connected member).
    pub usage_normalized: f64,
}

impl TreeMetrics {
    /// Compute all structural metrics. Pass `routed` when the underlay
    /// is a [`RoutedUnderlay`] so that stress can be attributed to
    /// physical links.
    pub fn compute(
        snap: &TreeSnapshot,
        underlay: &(dyn Underlay + Send + Sync),
        routed: Option<&RoutedUnderlay>,
    ) -> Self {
        let depths = snap.depths();
        let children = snap.children();
        let rooted: Vec<HostId> = snap
            .connected_members()
            .into_iter()
            .filter(|m| depths[m.idx()].is_some())
            .collect();

        // Tree delay from the source to each rooted member: accumulate
        // down the tree (children lists only contain rooted members'
        // edges).
        let mut tree_delay = vec![f64::NAN; snap.parent.len()];
        tree_delay[snap.source.idx()] = 0.0;
        let mut stack = vec![snap.source];
        while let Some(v) = stack.pop() {
            for &c in &children[v.idx()] {
                tree_delay[c.idx()] = tree_delay[v.idx()] + underlay.one_way_ms(v, c);
                stack.push(c);
            }
        }

        let is_leaf = |m: HostId| children[m.idx()].is_empty();

        let mut stretches = Vec::with_capacity(rooted.len());
        let mut leaf_stretches = Vec::new();
        let mut hops = Vec::with_capacity(rooted.len());
        let mut leaf_hops = Vec::new();
        for &m in &rooted {
            let direct = underlay.one_way_ms(snap.source, m);
            if direct > 0.0 && tree_delay[m.idx()].is_finite() {
                let s = tree_delay[m.idx()] / direct;
                stretches.push(s);
                if is_leaf(m) {
                    leaf_stretches.push(s);
                }
            }
            let h = depths[m.idx()].expect("rooted member has a depth") as f64;
            hops.push(h);
            if is_leaf(m) {
                leaf_hops.push(h);
            }
        }

        // Usage: sum of overlay-link latencies; normalize by the star.
        let usage_ms: f64 = snap
            .edges()
            .iter()
            .map(|&(p, c)| underlay.one_way_ms(p, c))
            .sum();
        let star_ms: f64 = rooted
            .iter()
            .map(|&m| underlay.one_way_ms(snap.source, m))
            .sum();
        let usage_normalized = if star_ms > 0.0 {
            usage_ms / star_ms
        } else {
            0.0
        };

        // Stress over physical links (routed underlays only).
        let stress = routed.map(|r| {
            let mut per_link = vec![0u32; r.num_links()];
            for (p, c) in snap.edges() {
                if let Some(edges) = r.path_edges(p, c) {
                    for e in edges {
                        per_link[e.idx()] += 1;
                    }
                }
            }
            Summary::of(per_link.iter().filter(|&&s| s > 0).map(|&s| s as f64))
        });

        let mean_or_zero = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };

        Self {
            stress,
            stretch: Summary::of(stretches.iter().copied()),
            stretch_leaf_mean: mean_or_zero(&leaf_stretches),
            hopcount: Summary::of(hops.iter().copied()),
            hopcount_leaf_mean: mean_or_zero(&leaf_hops),
            usage_ms,
            usage_normalized,
        }
    }
}

/// Tree cost / MST cost over the source plus all connected members,
/// under the metric `dist` (§5.4.6 runs this with RTT). Returns `None`
/// when fewer than 2 connected members exist.
pub fn mst_ratio(snap: &TreeSnapshot, mut dist: impl FnMut(HostId, HostId) -> f64) -> Option<f64> {
    let depths = snap.depths();
    let mut points: Vec<HostId> = vec![snap.source];
    points.extend(
        snap.connected_members()
            .into_iter()
            .filter(|m| depths[m.idx()].is_some()),
    );
    if points.len() < 3 {
        return None;
    }
    // Tree cost over the same point set/metric.
    let tree_cost: f64 = points[1..]
        .iter()
        .map(|&m| dist(snap.parent_of(m).expect("connected"), m))
        .sum();
    let mst = mst::prim(points.len(), 0, |a, b| dist(points[a], points[b]));
    if mst.cost <= 0.0 {
        return None;
    }
    Some(tree_cost / mst.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_netsim::LatencySpace;
    use vdm_topology::graph::{Graph, LinkAttrs, NodeKind};

    /// Chain latency space: hosts at positions 0, 10, 20, 30 ms one-way
    /// (RTT = 2x |difference|).
    fn chain_space() -> LatencySpace {
        let pos = [0.0_f64, 10.0, 20.0, 30.0];
        let n = pos.len();
        let mut rtt = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rtt[i][j] = 2.0 * (pos[i] - pos[j]).abs();
                }
            }
        }
        LatencySpace::from_rtt_matrix(&rtt)
    }

    /// Chain tree: 0 -> 1 -> 2 -> 3.
    fn chain_tree() -> TreeSnapshot {
        TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2), HostId(3)],
            parent: vec![None, Some(HostId(0)), Some(HostId(1)), Some(HostId(2))],
        }
    }

    #[test]
    fn chain_metrics() {
        let space = chain_space();
        let m = TreeMetrics::compute(&chain_tree(), &space, None);
        // On a line the chain is delay-optimal: stretch 1 everywhere.
        assert!((m.stretch.mean - 1.0).abs() < 1e-9);
        assert_eq!(m.stretch.count, 3);
        assert_eq!(m.hopcount.mean, 2.0); // depths 1,2,3
        assert_eq!(m.hopcount.max, 3.0);
        assert_eq!(m.hopcount_leaf_mean, 3.0); // only h3 is a leaf
        assert!((m.usage_ms - 30.0).abs() < 1e-9); // 10+10+10
                                                   // Star usage: 10+20+30 = 60 -> normalized 0.5.
        assert!((m.usage_normalized - 0.5).abs() < 1e-9);
        assert!(m.stress.is_none());
    }

    #[test]
    fn star_tree_metrics() {
        let space = chain_space();
        let star = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2), HostId(3)],
            parent: vec![None, Some(HostId(0)), Some(HostId(0)), Some(HostId(0))],
        };
        let m = TreeMetrics::compute(&star, &space, None);
        assert!((m.stretch.mean - 1.0).abs() < 1e-9); // direct connections
        assert_eq!(m.hopcount.mean, 1.0);
        assert!((m.usage_normalized - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stress_on_routed_underlay() {
        // hosts h0,h1,h2 all behind one router r: every overlay edge
        // crosses the shared access links.
        let mut g = Graph::new();
        let r = g.add_node(NodeKind::Stub);
        let h0 = g.add_node(NodeKind::Host);
        let h1 = g.add_node(NodeKind::Host);
        let h2 = g.add_node(NodeKind::Host);
        g.add_edge(h0, r, LinkAttrs::delay(1.0));
        g.add_edge(h1, r, LinkAttrs::delay(1.0));
        g.add_edge(h2, r, LinkAttrs::delay(1.0));
        let routed = RoutedUnderlay::new(g, vec![h0, h1, h2]);
        // Tree: h0 -> h1, h0 -> h2 (host ids 0,1,2).
        let snap = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2)],
            parent: vec![None, Some(HostId(0)), Some(HostId(0))],
        };
        let m = TreeMetrics::compute(&snap, &routed, Some(&routed));
        let stress = m.stress.unwrap();
        // Link h0-r carries both tree edges (stress 2); links r-h1 and
        // r-h2 carry one each. Mean = (2+1+1)/3.
        assert!((stress.mean - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(stress.max, 2.0);
        assert_eq!(stress.count, 3);
    }

    #[test]
    fn unicast_star_has_stress_one_behind_distinct_paths() {
        // Distinct access paths: stress 1 on every used link.
        let mut g = Graph::new();
        let r0 = g.add_node(NodeKind::Stub);
        let r1 = g.add_node(NodeKind::Stub);
        g.add_edge(r0, r1, LinkAttrs::delay(5.0));
        let s = g.add_node(NodeKind::Host);
        let a = g.add_node(NodeKind::Host);
        g.add_edge(s, r0, LinkAttrs::delay(1.0));
        g.add_edge(a, r1, LinkAttrs::delay(1.0));
        let routed = RoutedUnderlay::new(g, vec![s, a]);
        let snap = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1)],
            parent: vec![None, Some(HostId(0))],
        };
        let m = TreeMetrics::compute(&snap, &routed, Some(&routed));
        let stress = m.stress.unwrap();
        assert_eq!(stress.mean, 1.0);
        assert_eq!(stress.count, 3);
    }

    #[test]
    fn mst_ratio_of_chain_is_one() {
        let space = chain_space();
        let snap = chain_tree();
        let r = mst_ratio(&snap, |a, b| space.rtt_ms(a, b)).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
        // A star on the chain metric costs 60 vs MST 30 -> ratio 2.
        let star = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1), HostId(2), HostId(3)],
            parent: vec![None, Some(HostId(0)), Some(HostId(0)), Some(HostId(0))],
        };
        let r2 = mst_ratio(&star, |a, b| space.rtt_ms(a, b)).unwrap();
        assert!((r2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mst_ratio_requires_enough_members() {
        let snap = TreeSnapshot {
            source: HostId(0),
            members: vec![HostId(1)],
            parent: vec![None, Some(HostId(0))],
        };
        assert!(mst_ratio(&snap, |_, _| 1.0).is_none());
    }

    #[test]
    fn disconnected_members_are_excluded() {
        let space = Arc::new(chain_space());
        let mut snap = chain_tree();
        snap.parent[2] = None; // h2 mid-join; h3's chain passes h2 -> broken
        let m = TreeMetrics::compute(&snap, &*space, None);
        assert_eq!(m.stretch.count, 1); // only h1 measured
        assert_eq!(m.hopcount.count, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vdm_topology::graph::{Graph, LinkAttrs, NodeKind};
    use vdm_topology::NodeId;

    proptest! {
        /// On a routed underlay (where shortest-path distances satisfy
        /// the triangle inequality by construction), stretch is ≥ 1
        /// for every receiver, whatever the tree shape.
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn routed_stretch_never_below_one(seed in 0u64..200) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            // Random connected router graph with 4..10 hosts attached.
            let routers = rng.gen_range(5..15usize);
            let mut g = Graph::with_nodes(routers, NodeKind::Stub);
            for v in 1..routers {
                let u = rng.gen_range(0..v);
                g.add_edge(
                    NodeId(u as u32),
                    NodeId(v as u32),
                    LinkAttrs::delay(rng.gen_range(1.0..20.0)),
                );
            }
            for _ in 0..routers {
                let a = rng.gen_range(0..routers);
                let b = rng.gen_range(0..routers);
                if a != b && g.find_edge(NodeId(a as u32), NodeId(b as u32)).is_none() {
                    g.add_edge(
                        NodeId(a as u32),
                        NodeId(b as u32),
                        LinkAttrs::delay(rng.gen_range(1.0..20.0)),
                    );
                }
            }
            let num_hosts = rng.gen_range(4..10usize);
            let mut host_nodes = Vec::new();
            for _ in 0..num_hosts {
                let r = NodeId(rng.gen_range(0..routers) as u32);
                let h = g.add_node(NodeKind::Host);
                g.add_edge(h, r, LinkAttrs::delay(rng.gen_range(0.5..3.0)));
                host_nodes.push(h);
            }
            let routed = RoutedUnderlay::new(g, host_nodes);
            // Random tree over the hosts rooted at host 0.
            let mut parent = vec![None; num_hosts];
            let members: Vec<HostId> = (1..num_hosts as u32).map(HostId).collect();
            for v in 1..num_hosts {
                parent[v] = Some(HostId(rng.gen_range(0..v) as u32));
            }
            let snap = TreeSnapshot {
                source: HostId(0),
                members,
                parent,
            };
            let m = TreeMetrics::compute(&snap, &routed, Some(&routed));
            if m.stretch.count > 0 {
                prop_assert!(m.stretch.min >= 1.0 - 1e-9, "stretch {}", m.stretch.min);
            }
            // Stress is at least 1 on every used link by definition.
            if let Some(s) = m.stress {
                if s.count > 0 {
                    prop_assert!(s.min >= 1.0);
                }
            }
            // Usage equals the sum of edge delays and is bounded by
            // depth * star usage.
            prop_assert!(m.usage_ms >= 0.0);
        }

        /// The MST ratio of any valid snapshot is ≥ 1 under any metric.
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn mst_ratio_at_least_one(seed in 0u64..200) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let n = rng.gen_range(4..12usize);
            let mut m = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let w = rng.gen_range(1.0..100.0);
                    m[i][j] = w;
                    m[j][i] = w;
                }
            }
            let mut parent = vec![None; n];
            for v in 1..n {
                parent[v] = Some(HostId(rng.gen_range(0..v) as u32));
            }
            let snap = TreeSnapshot {
                source: HostId(0),
                members: (1..n as u32).map(HostId).collect(),
                parent,
            };
            let ratio = mst_ratio(&snap, |a, b| m[a.idx()][b.idx()]).unwrap();
            prop_assert!(ratio >= 1.0 - 1e-9, "ratio {ratio}");
        }
    }
}
