//! NACK-based stream gap repair (proactive-resilience extension).
//!
//! The paper's data plane is fire-and-forget: a chunk lost to an outage
//! (orphaned subtree, message drop) is gone, and
//! [`crate::stats::RecoveryStats::delivery_gaps`] can only report the
//! outage. With repair enabled, every peer keeps a small
//! [`RetransmitRing`] of the chunk sequence numbers it recently
//! forwarded, and a [`GapTracker`] over the sequence numbers it is
//! still missing. A receiver that sees the watermark jump records the
//! skipped sequences as missing and — after a short delay that lets
//! plain reordering settle — NACKs them to its current parent, which
//! answers out of its ring. Chunks recovered this way are forwarded
//! downstream like any other, so repair cascades through a subtree that
//! was dark together. Missing chunks that exhaust their NACK budget (or
//! fall out of the bounded window) are declared lost, which makes the
//! residual loss rate a *post-repair* figure.
//!
//! Everything here is plain bookkeeping: no timers, no randomness. The
//! agent owns scheduling (one repair timer, armed only while something
//! is missing), so runs without a [`RepairConfig`] execute exactly the
//! same event sequence as before the extension existed.

use std::collections::VecDeque;
use vdm_netsim::SimTime;

/// Tunables of the gap-repair machinery.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Chunk sequence numbers retained for retransmission.
    pub ring: usize,
    /// How far behind the watermark a missing chunk may trail before it
    /// is declared lost (bounds both memory and NACK traffic after a
    /// long outage).
    pub window: u64,
    /// Delay between detecting a gap and the first NACK (lets ordinary
    /// reordering fill the hole for free).
    pub nack_delay: SimTime,
    /// Spacing between NACK retries for the same chunk.
    pub nack_period: SimTime,
    /// NACK attempts per missing chunk before giving up.
    pub nack_retries: u32,
    /// Stride of the sequence numbers this receiver expects (multi-tree
    /// striping: tree `t` of `k` carries only `seq % k == t`). `1` is
    /// the plain single-tree stream and keeps every computation
    /// identical to the pre-stripe code.
    pub stride: u64,
    /// Residue of this receiver's stripe (`seq % stride == stripe`).
    /// Ignored when `stride <= 1`.
    pub stripe: u64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            ring: 64,
            window: 64,
            nack_delay: SimTime::from_ms(250.0),
            nack_period: SimTime::from_secs(1),
            nack_retries: 3,
            stride: 1,
            stripe: 0,
        }
    }
}

impl RepairConfig {
    /// This config restriped for tree `stripe` of `stride` (multi-tree
    /// sessions; `window` and retry budgets still count chunks).
    pub fn striped(self, stride: u64, stripe: u64) -> Self {
        Self {
            stride: stride.max(1),
            stripe: if stride > 1 { stripe % stride } else { 0 },
            ..self
        }
    }
}

/// Fixed-capacity ascending buffer of the chunk sequence numbers a peer
/// can retransmit. The stream is near-monotone, so inserts are O(1)
/// appends in the common case; the eviction policy is strictly
/// lowest-first (oldest content).
#[derive(Clone, Debug)]
pub struct RetransmitRing {
    cap: usize,
    seqs: VecDeque<u64>,
}

impl RetransmitRing {
    /// Ring holding at most `cap` sequence numbers.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            seqs: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Record a forwarded chunk. Duplicates are ignored; the lowest
    /// sequence number is evicted once the ring is full.
    pub fn record(&mut self, seq: u64) {
        match self.seqs.back() {
            Some(&last) if seq > last => self.seqs.push_back(seq),
            Some(_) => {
                // Out-of-order record (a repaired chunk): sorted insert.
                match self.seqs.binary_search(&seq) {
                    Ok(_) => return,
                    Err(pos) => self.seqs.insert(pos, seq),
                }
            }
            None => self.seqs.push_back(seq),
        }
        if self.seqs.len() > self.cap {
            self.seqs.pop_front();
        }
    }

    /// Can `seq` be retransmitted from here?
    pub fn contains(&self, seq: u64) -> bool {
        self.seqs.binary_search(&seq).is_ok()
    }

    /// Number of retained sequence numbers.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Drop everything (peer left the session).
    pub fn clear(&mut self) {
        self.seqs.clear();
    }
}

/// One chunk the receiver knows it skipped.
#[derive(Clone, Copy, Debug)]
struct Missing {
    seq: u64,
    /// NACKs already sent for this chunk.
    nacks: u32,
    /// Earliest time the next NACK (or the give-up) may fire.
    due_at: SimTime,
}

/// What [`GapTracker::on_chunk`] decided about an arriving chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkClass {
    /// Advances the watermark; deliver and forward.
    Fresh,
    /// Fills a known hole behind the watermark; deliver and forward.
    Repaired,
    /// Already delivered (or given up on); drop.
    Duplicate,
}

/// Receiver-side bookkeeping of missing chunk sequence numbers.
#[derive(Clone, Debug, Default)]
pub struct GapTracker {
    missing: Vec<Missing>,
    /// Chunks declared lost after exhausting their NACK budget or
    /// falling out of the window (post-repair loss).
    pub lost: u64,
}

impl GapTracker {
    /// Classify an arriving chunk against the watermark `last_seq`
    /// (`None` before the first delivery), recording any newly skipped
    /// sequences as missing. The caller advances the watermark itself
    /// on [`ChunkClass::Fresh`].
    pub fn on_chunk(
        &mut self,
        seq: u64,
        last_seq: Option<u64>,
        now: SimTime,
        cfg: &RepairConfig,
    ) -> ChunkClass {
        match last_seq {
            None => {
                // A chunk pre-registered by `note_absent` arriving as
                // the very first delivery is no longer missing.
                self.missing.retain(|m| m.seq != seq);
                ChunkClass::Fresh
            }
            Some(last) if seq > last => {
                // Sequences we jumped over become repair candidates,
                // newest-window only: after a long outage everything
                // older than `window` chunks is lost outright. All
                // arithmetic walks the stripe grid `last + j*stride`
                // (stride 1 == the plain stream, byte-identical to the
                // pre-stripe code).
                let stride = cfg.stride.max(1);
                let span = cfg.window.saturating_mul(stride);
                let first_unseen = last.saturating_add(stride).min(seq);
                let first_wanted = seq.saturating_sub(span).max(first_unseen);
                self.lost = self
                    .lost
                    .saturating_add((first_wanted - first_unseen) / stride);
                let mut s = first_wanted;
                while s < seq {
                    if !self.missing.iter().any(|m| m.seq == s) {
                        self.missing.push(Missing {
                            seq: s,
                            nacks: 0,
                            due_at: now + cfg.nack_delay,
                        });
                    }
                    s = match s.checked_add(stride) {
                        Some(n) => n,
                        None => break,
                    };
                }
                // `note_absent` may have registered this chunk (or ones
                // above it) before it arrived through the tree.
                self.missing.retain(|m| m.seq != seq);
                // The window also bounds the backlog as the watermark
                // advances past older holes.
                self.expire_below(seq.saturating_sub(span));
                ChunkClass::Fresh
            }
            Some(_) => {
                let before = self.missing.len();
                self.missing.retain(|m| m.seq != seq);
                if self.missing.len() != before {
                    ChunkClass::Repaired
                } else {
                    ChunkClass::Duplicate
                }
            }
        }
    }

    /// Register stripe chunks up to and including `latest` as missing
    /// without a triggering arrival (multi-tree cross repair: an
    /// orphaned subtree receives *nothing*, so the watermark jump that
    /// normally reveals gaps never happens — the driver tells the
    /// receiver how far its stripe has advanced instead). Walks the
    /// stripe grid downward from `latest`, window-bounded, stopping at
    /// the watermark; already-known holes are left untouched. Returns
    /// how many new holes were registered.
    pub fn note_absent(
        &mut self,
        latest: u64,
        last_seq: Option<u64>,
        now: SimTime,
        cfg: &RepairConfig,
    ) -> usize {
        let stride = cfg.stride.max(1);
        let floor = match last_seq {
            Some(last) => {
                if latest <= last {
                    return 0;
                }
                last.saturating_add(stride)
            }
            None => cfg.stripe,
        };
        let mut added = 0;
        let mut s = latest;
        for _ in 0..cfg.window.max(1) {
            if s < floor {
                break;
            }
            if !self.missing.iter().any(|m| m.seq == s) {
                self.missing.push(Missing {
                    seq: s,
                    nacks: 0,
                    due_at: now + cfg.nack_delay,
                });
                added += 1;
            }
            s = match s.checked_sub(stride) {
                Some(n) => n,
                None => break,
            };
        }
        added
    }

    /// Drop the pending entry for `seq` — it arrived through another
    /// path (e.g. the regular tree while a cross-tree NACK was
    /// outstanding, or vice versa). Returns whether it was pending.
    pub fn resolve(&mut self, seq: u64) -> bool {
        let before = self.missing.len();
        self.missing.retain(|m| m.seq != seq);
        self.missing.len() != before
    }

    fn expire_below(&mut self, floor: u64) {
        let before = self.missing.len();
        self.missing.retain(|m| m.seq >= floor);
        self.lost = self
            .lost
            .saturating_add((before - self.missing.len()) as u64);
    }

    /// Collect the sequence numbers whose NACK is due, bumping their
    /// retry state; chunks out of retries are declared lost. Returns
    /// the NACK batch (empty if nothing is due yet).
    pub fn due_nacks(&mut self, now: SimTime, cfg: &RepairConfig) -> Vec<u64> {
        let mut batch = Vec::new();
        let mut lost = 0u64;
        self.missing.retain_mut(|m| {
            if m.due_at > now {
                return true;
            }
            if m.nacks >= cfg.nack_retries {
                lost += 1;
                return false;
            }
            m.nacks += 1;
            m.due_at = now + cfg.nack_period;
            batch.push(m.seq);
            true
        });
        self.lost = self.lost.saturating_add(lost);
        batch.sort_unstable();
        batch
    }

    /// Earliest pending deadline, for timer arming.
    pub fn next_due(&self) -> Option<SimTime> {
        self.missing.iter().map(|m| m.due_at).min()
    }

    /// Anything still outstanding?
    pub fn has_pending(&self) -> bool {
        !self.missing.is_empty()
    }

    /// Outstanding hole count.
    pub fn pending(&self) -> usize {
        self.missing.len()
    }

    /// Drop all state (peer left the session).
    pub fn clear(&mut self) {
        self.missing.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RepairConfig {
        RepairConfig::default()
    }

    #[test]
    fn ring_records_evicts_lowest_and_finds() {
        let mut r = RetransmitRing::new(4);
        assert!(r.is_empty());
        for s in [1, 2, 3, 4] {
            r.record(s);
        }
        assert_eq!(r.len(), 4);
        r.record(5); // evicts 1
        assert!(!r.contains(1));
        assert!(r.contains(2) && r.contains(5));
        // Out-of-order (repaired) record lands sorted; duplicate is a no-op.
        let mut r = RetransmitRing::new(4);
        r.record(10);
        r.record(12);
        r.record(11);
        r.record(11);
        assert_eq!(r.len(), 3);
        assert!(r.contains(11));
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn gap_detection_and_repair_classification() {
        let mut g = GapTracker::default();
        let t = SimTime::from_secs(1);
        assert_eq!(g.on_chunk(1, None, t, &cfg()), ChunkClass::Fresh);
        // 2 and 3 skipped.
        assert_eq!(g.on_chunk(4, Some(1), t, &cfg()), ChunkClass::Fresh);
        assert_eq!(g.pending(), 2);
        assert_eq!(g.on_chunk(2, Some(4), t, &cfg()), ChunkClass::Repaired);
        assert_eq!(g.on_chunk(2, Some(4), t, &cfg()), ChunkClass::Duplicate);
        assert_eq!(g.on_chunk(4, Some(4), t, &cfg()), ChunkClass::Duplicate);
        assert_eq!(g.pending(), 1);
        assert_eq!(g.lost, 0);
    }

    #[test]
    fn long_outage_is_window_bounded() {
        let mut g = GapTracker::default();
        let c = RepairConfig {
            window: 10,
            ..cfg()
        };
        let t = SimTime::from_secs(5);
        // Watermark 10, next arrival 200: only the last 10 holes are
        // recoverable, the other 179 are lost outright.
        assert_eq!(g.on_chunk(200, Some(10), t, &c), ChunkClass::Fresh);
        assert_eq!(g.pending(), 10);
        assert_eq!(g.lost, 179);
    }

    #[test]
    fn nack_scheduling_retries_then_gives_up() {
        let mut g = GapTracker::default();
        let c = RepairConfig {
            nack_retries: 2,
            ..cfg()
        };
        let t0 = SimTime::from_secs(1);
        g.on_chunk(4, Some(1), t0, &c); // missing 2, 3
        assert!(g.due_nacks(t0, &c).is_empty(), "nack delay not elapsed");
        let t1 = t0 + c.nack_delay;
        assert_eq!(g.due_nacks(t1, &c), vec![2, 3]);
        // Chunk 3 gets repaired; chunk 2 exhausts its retries.
        assert_eq!(g.on_chunk(3, Some(4), t1, &c), ChunkClass::Repaired);
        let t2 = t1 + c.nack_period;
        assert_eq!(g.due_nacks(t2, &c), vec![2]);
        let t3 = t2 + c.nack_period;
        assert!(g.due_nacks(t3, &c).is_empty());
        assert!(!g.has_pending());
        assert_eq!(g.lost, 1);
        assert_eq!(g.next_due(), None);
    }

    #[test]
    fn ring_handles_sequences_at_u64_max() {
        let mut r = RetransmitRing::new(3);
        for s in [u64::MAX - 2, u64::MAX - 1, u64::MAX] {
            r.record(s);
        }
        assert_eq!(r.len(), 3);
        assert!(r.contains(u64::MAX - 2) && r.contains(u64::MAX));
        // Duplicate of the top sequence is a no-op, not an eviction.
        r.record(u64::MAX);
        assert_eq!(r.len(), 3);
        assert!(r.contains(u64::MAX - 2));
        // An out-of-order record into a full ring sorts in, then the
        // lowest-first eviction drops it again: the ring never holds
        // more than `cap`, and never trades new content for old.
        r.record(5);
        assert_eq!(r.len(), 3);
        assert!(!r.contains(5), "the lowest sequence must be the evictee");
        assert!(r.contains(u64::MAX - 2) && r.contains(u64::MAX - 1) && r.contains(u64::MAX));
    }

    #[test]
    fn watermark_jump_to_u64_max_is_window_bounded() {
        let mut g = GapTracker::default();
        let c = RepairConfig { window: 8, ..cfg() };
        let t = SimTime::from_secs(1);
        // Watermark 100, next arrival u64::MAX: only the last 8 holes
        // stay recoverable; the arithmetic on the enormous skipped span
        // must neither overflow nor panic.
        assert_eq!(g.on_chunk(u64::MAX, Some(100), t, &c), ChunkClass::Fresh);
        assert_eq!(g.pending(), 8);
        assert_eq!(g.lost, u64::MAX - 8 - 101);
        // Holes right below the maximum watermark are still repairable.
        assert_eq!(
            g.on_chunk(u64::MAX - 1, Some(u64::MAX), t, &c),
            ChunkClass::Repaired
        );
        assert_eq!(
            g.on_chunk(u64::MAX - 1, Some(u64::MAX), t, &c),
            ChunkClass::Duplicate
        );
        assert_eq!(g.pending(), 7);
        // A chunk equal to the watermark itself is a duplicate even at
        // the far end of the sequence space.
        assert_eq!(
            g.on_chunk(u64::MAX, Some(u64::MAX), t, &c),
            ChunkClass::Duplicate
        );
    }

    #[test]
    fn watermark_jump_from_zero_to_u64_max() {
        let mut g = GapTracker::default();
        let c = RepairConfig { window: 4, ..cfg() };
        let t = SimTime::from_secs(1);
        // The largest possible jump: every skipped chunk outside the
        // window is lost, and the count stays exact (no wrap).
        assert_eq!(g.on_chunk(u64::MAX, Some(0), t, &c), ChunkClass::Fresh);
        assert_eq!(g.pending(), 4);
        assert_eq!(g.lost, u64::MAX - 4 - 1);
    }

    #[test]
    fn lost_counter_saturates_instead_of_wrapping() {
        let mut g = GapTracker {
            lost: u64::MAX - 2,
            ..GapTracker::default()
        };
        let c = RepairConfig { window: 4, ..cfg() };
        let t = SimTime::from_secs(1);
        // The new losses (u64::MAX - 5 of them) would wrap a plain add;
        // the counter must pin at u64::MAX instead.
        g.on_chunk(u64::MAX, Some(0), t, &c);
        assert_eq!(g.lost, u64::MAX);
        // Give-ups after the saturation point keep it pinned.
        let t_due = t + c.nack_delay;
        for _ in 0..=c.nack_retries {
            g.due_nacks(t_due, &c);
        }
        let far = t_due + c.nack_period + c.nack_period + c.nack_period + c.nack_period;
        g.due_nacks(far, &c);
        assert_eq!(g.lost, u64::MAX);
    }

    #[test]
    fn strided_gap_detection_stays_on_the_stripe_grid() {
        let mut g = GapTracker::default();
        let c = cfg().striped(3, 1); // this stripe carries 1, 4, 7, 10, ...
        let t = SimTime::from_secs(1);
        assert_eq!(g.on_chunk(1, None, t, &c), ChunkClass::Fresh);
        // 4 and 7 skipped — only grid points become repair candidates.
        assert_eq!(g.on_chunk(10, Some(1), t, &c), ChunkClass::Fresh);
        assert_eq!(g.pending(), 2);
        assert_eq!(g.on_chunk(4, Some(10), t, &c), ChunkClass::Repaired);
        assert_eq!(g.on_chunk(4, Some(10), t, &c), ChunkClass::Duplicate);
        assert_eq!(g.lost, 0);
    }

    #[test]
    fn strided_window_counts_chunks_not_raw_sequence_span() {
        let mut g = GapTracker::default();
        let c = RepairConfig { window: 2, ..cfg() }.striped(3, 1);
        let t = SimTime::from_secs(1);
        // Watermark 1, next arrival 31: nine grid chunks were skipped,
        // the window keeps the newest two (25, 28), the rest are lost.
        assert_eq!(g.on_chunk(31, Some(1), t, &c), ChunkClass::Fresh);
        assert_eq!(g.pending(), 2);
        assert_eq!(g.lost, 7);
        assert_eq!(g.on_chunk(28, Some(31), t, &c), ChunkClass::Repaired);
    }

    #[test]
    fn note_absent_registers_silent_stripe_holes() {
        let mut g = GapTracker::default();
        let c = RepairConfig { window: 4, ..cfg() }.striped(2, 0);
        let t = SimTime::from_secs(1);
        // Watermark 4; the stripe advanced to 12 while we heard nothing.
        assert_eq!(g.note_absent(12, Some(4), t, &c), 4);
        assert_eq!(g.pending(), 4);
        // Idempotent; a stale notice is a no-op too.
        assert_eq!(g.note_absent(12, Some(4), t, &c), 0);
        assert_eq!(g.note_absent(4, Some(4), t, &c), 0);
        // NACKs fire after the usual delay.
        assert!(g.due_nacks(t, &c).is_empty());
        assert_eq!(g.due_nacks(t + c.nack_delay, &c), vec![6, 8, 10, 12]);
        // An arrival above the watermark clears its own hole.
        assert_eq!(g.on_chunk(8, Some(4), t, &c), ChunkClass::Fresh);
        let batch = g.due_nacks(t + c.nack_delay + c.nack_period, &c);
        assert_eq!(batch, vec![6, 10, 12]);
    }

    #[test]
    fn note_absent_without_watermark_stops_at_the_stripe_base() {
        let mut g = GapTracker::default();
        let c = cfg().striped(4, 3); // this stripe carries 3, 7, 11, ...
        let t = SimTime::from_secs(1);
        assert_eq!(g.note_absent(11, None, t, &c), 3);
        assert_eq!(g.pending(), 3);
        // A pre-registered chunk arriving as the first delivery is
        // fresh and no longer missing.
        assert_eq!(g.on_chunk(7, None, t, &c), ChunkClass::Fresh);
        assert_eq!(g.pending(), 2);
    }

    #[test]
    fn next_due_tracks_earliest_deadline() {
        let mut g = GapTracker::default();
        let c = cfg();
        let t0 = SimTime::from_secs(1);
        g.on_chunk(3, Some(1), t0, &c);
        assert_eq!(g.next_due(), Some(t0 + c.nack_delay));
    }
}
