//! Sans-io protocol core.
//!
//! The per-host VDM state machine ([`crate::agent::ProtocolAgent`] and
//! the [`crate::walk`] join walk under it) historically touched the
//! deterministic [`vdm_netsim::Engine`] directly through [`Ctx`]. That
//! coupling is cut here: [`CoreIo`] is the complete set of effects an
//! agent callback may perform — read the clock, send a message, arm a
//! timer, draw randomness, estimate path loss, emit a trace event —
//! and [`Ctx`] holds a `&mut dyn CoreIo` instead of the engine.
//!
//! Two implementations exist:
//!
//! * [`Engine<Msg>`] itself (below): the simulator path. Call order,
//!   send classification, and the shared run-RNG stream are exactly
//!   what they were before the seam, so every golden byte sequence is
//!   preserved (CI pins this).
//! * [`BufIo`] inside [`ProtocolCore`]: a buffered facade for real
//!   runtimes (the `vdm-node` daemon). Inputs go in as [`Input`]
//!   values, effects come back out as [`Output`] values; the caller
//!   owns sockets, clocks, and timer wheels. No engine, no sockets,
//!   no wall clock in here — pure state machine.
//!
//! The only semantic difference between the two paths is randomness
//! and loss probing: the simulator draws from the engine's shared
//! per-run RNG stream (byte-identity demands it), while a
//! [`ProtocolCore`] owns a private RNG seeded per node, and reports
//! `path_loss = 0` because a real deployment has no oracle — the
//! delay-based metric (VDM-D, the paper's default) never calls it.

use crate::agent::{Ctx, OverlayAgent};
use crate::msg::Msg;
use crate::stats::RunStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use vdm_netsim::{Engine, HostId, SendClass, SimTime};

/// Every effect an agent callback may perform, as a trait object the
/// [`Ctx`] methods forward to. Implemented by the deterministic
/// [`Engine`] (simulation) and by [`BufIo`] (real runtimes).
pub trait CoreIo {
    /// Current protocol time.
    fn now(&self) -> SimTime;
    /// Ship `msg` from `from` to `to`; returns false when the
    /// transport refused it outright (engine: host down / faulted).
    fn send_msg(&mut self, from: HostId, to: HostId, msg: Msg, class: SendClass) -> bool;
    /// Arm a timer for `host` to fire `delay` from now carrying `token`.
    fn set_timer(&mut self, host: HostId, delay: SimTime, token: u64);
    /// The randomness stream for jitter and probe noise.
    fn rng(&mut self) -> &mut StdRng;
    /// Path loss estimate toward `to` (a measurement-service oracle in
    /// simulation; 0 where no oracle exists).
    fn path_loss(&mut self, from: HostId, to: HostId) -> f64;
    /// The structured-event tracer (disabled tracers make
    /// [`Ctx::trace`] free).
    fn tracer(&self) -> &vdm_trace::Tracer;
}

impl CoreIo for Engine<Msg> {
    fn now(&self) -> SimTime {
        Engine::now(self)
    }

    fn send_msg(&mut self, from: HostId, to: HostId, msg: Msg, class: SendClass) -> bool {
        Engine::send(self, from, to, msg, class)
    }

    fn set_timer(&mut self, host: HostId, delay: SimTime, token: u64) {
        Engine::set_timer(self, host, delay, token)
    }

    fn rng(&mut self) -> &mut StdRng {
        Engine::rng(self)
    }

    fn path_loss(&mut self, from: HostId, to: HostId) -> f64 {
        self.underlay().path_loss(from, to)
    }

    fn tracer(&self) -> &vdm_trace::Tracer {
        Engine::tracer(self)
    }
}

/// One thing that happened to a node, from the runtime's point of view.
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// The operator told this node to join the session.
    Join,
    /// The operator told this node to leave gracefully.
    Leave,
    /// A protocol message arrived from `from`.
    Packet {
        /// Sender host id.
        from: HostId,
        /// The decoded message.
        msg: Msg,
    },
    /// A timer armed by an earlier [`Output::Timer`] fired.
    Timer {
        /// The token the timer was armed with.
        token: u64,
    },
    /// Source only: emit stream chunk `seq` to the children.
    EmitData {
        /// Chunk sequence number.
        seq: u64,
    },
}

/// One effect the runtime must perform on the node's behalf.
#[derive(Clone, Debug, PartialEq)]
pub enum Output {
    /// Ship `msg` to `to`.
    Send {
        /// Destination host id.
        to: HostId,
        /// The message to encode and transmit.
        msg: Msg,
        /// Data/control classification (QoS hint; the loopback daemon
        /// sends both the same way).
        class: SendClass,
    },
    /// Arm a timer to fire `delay` from now, then feed back
    /// [`Input::Timer`] with `token`.
    Timer {
        /// Relative deadline.
        delay: SimTime,
        /// Token to echo back when the timer fires.
        token: u64,
    },
}

/// Buffered [`CoreIo`] for real runtimes: effects accumulate in a queue
/// the [`ProtocolCore`] drains after each callback.
struct BufIo {
    now: SimTime,
    out: VecDeque<Output>,
    rng: StdRng,
    tracer: vdm_trace::Tracer,
}

impl CoreIo for BufIo {
    fn now(&self) -> SimTime {
        self.now
    }

    fn send_msg(&mut self, _from: HostId, to: HostId, msg: Msg, class: SendClass) -> bool {
        self.out.push_back(Output::Send { to, msg, class });
        true
    }

    fn set_timer(&mut self, _host: HostId, delay: SimTime, token: u64) {
        self.out.push_back(Output::Timer { delay, token });
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn path_loss(&mut self, _from: HostId, _to: HostId) -> f64 {
        // No measurement oracle over real sockets; only loss-based
        // metrics (VDM-L/VDM-R) read this, and they are simulation
        // studies. The daemon runs the delay-based default.
        0.0
    }

    fn tracer(&self) -> &vdm_trace::Tracer {
        &self.tracer
    }
}

/// The sans-io per-host state machine: an [`OverlayAgent`] plus the
/// buffered io it runs against. Feed it [`Input`]s stamped with the
/// caller's monotonic clock, act on the [`Output`]s it returns.
pub struct ProtocolCore<A: OverlayAgent> {
    me: HostId,
    agent: A,
    io: BufIo,
    stats: RunStats,
    loss_probe_noise: f64,
}

impl<A: OverlayAgent> ProtocolCore<A> {
    /// Wrap `agent` as the state machine for host `me` in a session of
    /// `num_hosts` hosts. `seed` derives the node-private RNG (jitter,
    /// probe noise); two cores with the same seed behave identically.
    pub fn new(me: HostId, agent: A, num_hosts: usize, seed: u64) -> Self {
        Self {
            me,
            agent,
            io: BufIo {
                now: SimTime::ZERO,
                out: VecDeque::new(),
                // Decorrelate per-node streams the same way the engine
                // decorrelates per-shard ones: fold the host id in.
                rng: StdRng::seed_from_u64(seed ^ (0x6e6f_6465u64 << 32) ^ u64::from(me.0)),
                tracer: vdm_trace::Tracer::disabled(),
            },
            stats: RunStats::new(num_hosts),
            loss_probe_noise: 0.0,
        }
    }

    /// Install an enabled tracer (events are stamped with core time).
    pub fn set_tracer(&mut self, tracer: vdm_trace::Tracer) {
        self.io.tracer = tracer;
    }

    /// Set the loss-probe noise amplitude (loss-based metrics only).
    pub fn set_loss_probe_noise(&mut self, noise: f64) {
        self.loss_probe_noise = noise;
    }

    /// Install bootstrap-discovery state before the first
    /// [`Input::Join`] (mirrors the driver's pre-join hook).
    pub fn configure_discovery(&mut self, cfg: &crate::discovery::DiscoveryConfig, now: SimTime) {
        self.agent.configure_discovery(cfg, now);
    }

    /// Advance the clock to `now` and apply `input`, returning the
    /// effects to perform. Time never moves backwards: a stale `now`
    /// (possible when a runtime maps a stepped wall clock) is clamped
    /// to the high-water mark so timer arithmetic stays monotonic.
    pub fn handle(&mut self, now: SimTime, input: Input) -> impl Iterator<Item = Output> + '_ {
        self.io.now = self.io.now.max(now);
        let mut ctx = Ctx {
            me: self.me,
            io: &mut self.io,
            stats: &mut self.stats,
            loss_probe_noise: self.loss_probe_noise,
        };
        match input {
            Input::Join => self.agent.on_join_cmd(&mut ctx),
            Input::Leave => self.agent.on_leave_cmd(&mut ctx),
            Input::Packet { from, msg } => self.agent.on_msg(&mut ctx, from, msg),
            Input::Timer { token } => self.agent.on_timer(&mut ctx, token),
            Input::EmitData { seq } => {
                // The driver counts emitted chunks at the session level;
                // standalone runtimes have no driver, so count here.
                ctx.stats.source_chunks += 1;
                self.agent.emit_data(&mut ctx, seq);
            }
        }
        self.io.out.drain(..)
    }

    /// This node's host id.
    pub fn host(&self) -> HostId {
        self.me
    }

    /// Core time (high-water mark of the `now` values seen).
    pub fn now(&self) -> SimTime {
        self.io.now
    }

    /// The wrapped agent, for read-side queries (parent, children,
    /// connectivity).
    pub fn agent(&self) -> &A {
        &self.agent
    }

    /// The per-node run statistics the agent accumulated.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}
