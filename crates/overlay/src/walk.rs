//! The iterative top-down join walk shared by VDM and HMTP.
//!
//! Both protocols join the same way mechanically (§3.2, §2.4.7): starting
//! at the source, the newcomer sends an information request to the
//! current node, pings the reported children, and then decides — per its
//! own policy — whether to descend into a child, or to attach here
//! (possibly splicing between the current node and some of its children,
//! VDM's Case II). This module owns that mechanics: probe rounds,
//! timeouts, retries, redirects on full targets, and restart at the
//! fallback node; the protocol supplies a [`WalkPolicy`].

use crate::agent::Ctx;
use crate::coords::{pair_seed, CoordSample, CoordsConfig, VivaldiState};
use crate::msg::{ChildEntry, ConnKind, ConnResult, Msg};
use crate::VDist;
use vdm_netsim::{HostId, SimTime};

/// One probed child of the current node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChildProbe {
    /// The child.
    pub child: HostId,
    /// The current node's stored virtual distance to this child (from
    /// the information response).
    pub d_parent_child: VDist,
    /// The walker's measured virtual distance to this child.
    pub d_new_child: VDist,
}

/// Everything the policy sees about one walk iteration.
#[derive(Clone, Debug)]
pub struct ProbeResult {
    /// The node being examined.
    pub current: HostId,
    /// The walker's measured virtual distance to `current`.
    pub d_current: VDist,
    /// Probed children (walker itself excluded; children that did not
    /// answer in time excluded).
    pub children: Vec<ChildProbe>,
    /// 0-based iteration of this walk (0 = the start node). Policies
    /// whose refinement is single-level (HMTP probes one root-path
    /// node, §2.4.7) use this to stop descending.
    pub iteration: usize,
}

/// The policy's verdict for one iteration.
#[derive(Clone, Debug, PartialEq)]
pub enum WalkStep {
    /// Continue the walk at this child (VDM Case III, HMTP "closer
    /// child").
    Descend(HostId),
    /// Attach to the current node. `splice` lists children of the
    /// current node to adopt (VDM Case II), closest-first; empty for a
    /// plain connection (Case I).
    Attach {
        /// Children of the current node to adopt.
        splice: Vec<HostId>,
    },
}

/// A protocol's join behaviour: how to turn raw measurements into
/// virtual distances (Chapter 4's generalization) and which step to take
/// given a probe round.
pub trait WalkPolicy {
    /// Virtual distance from a measured RTT (ms) and estimated path loss
    /// probability. Delay-based protocols ignore `loss_est`.
    fn vdist(&self, rtt_ms: f64, loss_est: f64) -> VDist;

    /// Whether [`WalkPolicy::vdist`] needs a loss estimate (triggers
    /// loss probing during the walk).
    fn needs_loss(&self) -> bool {
        false
    }

    /// Decide the next step. `purpose` lets protocols whose initial
    /// join differs from their optimization pass (e.g. BTP: join at the
    /// root, improve via switches) branch on why the walk runs.
    fn decide(&self, probe: &ProbeResult, purpose: WalkPurpose) -> WalkStep;

    /// Whether a refinement walk may only switch parents when the new
    /// parent is strictly closer than the current one (HMTP/BTP switch
    /// on improvement; VDM's §3.4 refinement switches whenever the
    /// re-join lands elsewhere).
    fn refine_requires_improvement(&self) -> bool {
        false
    }

    /// Where a periodic refinement walk should start. Default: the
    /// source (VDM §3.4); HMTP picks a random node on its root path.
    fn refine_start(
        &self,
        state: &crate::peer::PeerState,
        source: HostId,
        _rng: &mut rand::rngs::StdRng,
    ) -> HostId {
        let _ = state;
        source
    }

    /// Classify each probed child for trace output, using the
    /// protocol's own directionality test (VDM overrides this with its
    /// Case I/II/III classifier). Only called when tracing is enabled;
    /// must be a pure function of the probe round. Default: every
    /// child is [`vdm_trace::CaseClass::Unknown`].
    fn classify_for_trace(&self, probe: &ProbeResult) -> Vec<(HostId, vdm_trace::CaseClass)> {
        probe
            .children
            .iter()
            .map(|c| (c.child, vdm_trace::CaseClass::Unknown))
            .collect()
    }

    /// Pick the anchor a damped restart resumes from. `visited` is the
    /// walk's responsive descent chain, shallowest-first, with the node
    /// that just failed already removed; `coord_dist` estimates the
    /// walker's virtual distance to each visited entry out of an active
    /// coordinate embedding (`None` when no embedding runs, `INFINITY`
    /// entries where no sample was piggybacked). Only called when
    /// [`WalkConfig::restart_anchor`] damping is on. Default: the
    /// deepest visited ancestor, else the fallback — exactly the
    /// pre-coordinate damping. VDM overrides this to resume from the
    /// coordinate-nearest visited ancestor (deepest on ties), so a
    /// restart lands in the joiner's predicted tree region instead of
    /// blindly at the frontier.
    fn restart_anchor(
        &self,
        visited: &[HostId],
        coord_dist: Option<&[VDist]>,
        fallback: HostId,
    ) -> HostId {
        let _ = coord_dist;
        visited.last().copied().unwrap_or(fallback)
    }
}

/// Stable trace label for a walk purpose.
pub(crate) fn purpose_label(p: WalkPurpose) -> &'static str {
    match p {
        WalkPurpose::Join => "join",
        WalkPurpose::Reconnect => "rejoin",
        WalkPurpose::Refine => "refine",
    }
}

/// Why the walk is running; determines timing stats and the start node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkPurpose {
    /// First join of this incarnation (startup time).
    Join,
    /// Recovery after the parent left (reconnection time, §3.3).
    Reconnect,
    /// Periodic refinement (§3.4); does not disturb the current
    /// connection until a better parent accepts.
    Refine,
}

/// Final result of a walk, handed back to the agent.
#[derive(Clone, Debug)]
pub enum WalkOutcome {
    /// A parent accepted us.
    Connected {
        /// The new parent.
        parent: HostId,
        /// Our new grandparent (the parent's parent).
        grandparent: Option<HostId>,
        /// Parent's root path (empty unless the protocol maintains
        /// root paths).
        root_path: Vec<HostId>,
        /// Children adopted through a splice, with our measured
        /// distances to them.
        adopted: Vec<(HostId, VDist)>,
        /// Our measured virtual distance to the parent.
        vdist_to_parent: VDist,
    },
    /// Restarts exhausted; the agent should retry later.
    Failed,
}

#[allow(clippy::enum_variant_names)] // the phases genuinely all await something
enum Phase {
    AwaitInfo {
        sent_at: SimTime,
        retries: u32,
    },
    AwaitProbes {
        d_current: VDist,
        /// Stored parent->child distances from the info response.
        reported: Vec<ChildEntry>,
        /// Outstanding pings: (nonce, child, sent_at).
        pending: Vec<(u64, HostId, SimTime)>,
        results: Vec<ChildProbe>,
    },
    AwaitConn {
        target: HostId,
        vdist: VDist,
        /// Requested splice children with our distances to them.
        splice: Vec<(HostId, VDist)>,
        /// Distances to the current node's probed children, for
        /// redirect handling.
        probed: Vec<(HostId, VDist)>,
    },
}

/// Tunables of the walk mechanics.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Deadline for each probe/connect round.
    pub timeout: SimTime,
    /// Info-request retries per node before restarting the walk.
    pub info_retries: u32,
    /// Walk restarts (from the fallback node) before giving up.
    pub max_restarts: u32,
    /// Per-restart exponential multiplier on `timeout` (`1.0` keeps the
    /// paper's fixed deadlines; chaos runs use `> 1.0` so a walk under
    /// partition backs off instead of hammering a dead path).
    pub backoff: f64,
    /// Uniform ± fraction of jitter applied to every deadline. `0.0`
    /// draws no randomness at all, leaving the RNG streams of existing
    /// runs untouched.
    pub jitter_frac: f64,
    /// Restart-anchor damping: restart a failed walk from the deepest
    /// *visited* responsive ancestor instead of always the fallback
    /// node. A Case-III descent that dies near the frontier then
    /// resumes near the frontier — restart depth is monotonically
    /// non-decreasing within one join — instead of re-walking the whole
    /// tree from the source. `false` keeps the paper's source-anchored
    /// restarts (and the event sequence of existing runs) exactly.
    pub restart_anchor: bool,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            timeout: SimTime::from_ms(2_000.0),
            info_retries: 1,
            max_restarts: 4,
            backoff: 1.0,
            jitter_frac: 0.0,
            restart_anchor: false,
        }
    }
}

impl WalkConfig {
    /// Hardened variant for chaos runs: exponential backoff with
    /// jittered deadlines and a larger restart budget.
    pub fn hardened() -> Self {
        Self {
            max_restarts: 6,
            backoff: 2.0,
            jitter_frac: 0.1,
            ..Self::default()
        }
    }
}

/// Timer-token namespace bit for walk deadlines (the agent routes these
/// tokens back into [`Walk::on_timer`]).
pub const WALK_TOKEN_BIT: u64 = 1 << 62;

/// Exponential backoff with optional jitter: `base * backoff^attempt`
/// (exponent capped at 6), then a uniform ± `jitter_frac` factor.
/// Draws randomness only when `jitter_frac > 0`, so default configs
/// leave the RNG streams of existing runs byte-identical.
pub(crate) fn scaled_delay(
    base: SimTime,
    backoff: f64,
    attempt: u32,
    jitter_frac: f64,
    ctx: &mut Ctx<'_>,
) -> SimTime {
    let mut ms = base.as_ms();
    if backoff > 1.0 && attempt > 0 {
        ms *= backoff.powi(attempt.min(6) as i32);
    }
    if jitter_frac > 0.0 {
        use rand::Rng;
        let f = 1.0 + ctx.io.rng().gen_range(-jitter_frac..jitter_frac);
        ms *= f.max(0.1);
    }
    SimTime::from_ms(ms)
}

/// Fold one measured RTT plus the piggybacked remote sample into the
/// walker's embedding. A free function over disjoint [`Walk`] fields so
/// it can run while the phase state is still borrowed. No-op — no
/// events, counters, or RNG — unless an embedding runs *and* the reply
/// carried a sample.
fn observe_coord_sample(
    coords: &mut Option<(VivaldiState, CoordsConfig)>,
    coord_harvest: &mut Vec<(HostId, CoordSample)>,
    ctx: &mut Ctx<'_>,
    from: HostId,
    remote: Option<CoordSample>,
    rtt_ms: f64,
) {
    let (Some((state, cfg)), Some(sample)) = (coords.as_mut(), remote) else {
        return;
    };
    let step = state.update(sample, rtt_ms, cfg, pair_seed(ctx.me, from));
    let err = state.err;
    coord_harvest.push((from, sample));
    ctx.stats.recovery.coord_updates += 1;
    ctx.trace(|| vdm_trace::TraceEvent::CoordUpdate {
        host: ctx.me.0,
        err,
        step,
    });
}

/// The walk state machine. One instance per in-progress (re)join or
/// refinement.
pub struct Walk {
    /// Why we are walking.
    pub purpose: WalkPurpose,
    /// When the walk was triggered (join command / orphaning).
    pub started_at: SimTime,
    current: HostId,
    fallback: HostId,
    restarts: u32,
    cfg: WalkConfig,
    /// Monotone generation; stale timers/replies carry older values.
    generation: u64,
    /// Completed probe rounds in the current attempt.
    iteration: usize,
    /// Distance to the current parent (refinement baseline), if known.
    refine_baseline: Option<VDist>,
    /// Every peer this walk measured a virtual distance to (examined
    /// nodes and probed children alike, duplicates possible). Pure
    /// bookkeeping with no events of its own; the resilience extension
    /// harvests it as backup-parent candidates.
    harvest: Vec<(HostId, VDist)>,
    /// Responsive descent chain, shallowest-first: every node that
    /// answered an info request on the way down (the same bookkeeping
    /// the backup-candidate harvest draws from). Restart-anchor damping
    /// resumes at its deepest entry that is not the node that just
    /// failed. Unused (and empty) unless `cfg.restart_anchor` is on.
    visited: Vec<HostId>,
    /// Piggybacked coordinate of each `visited` entry (parallel vector;
    /// `None` where the info response carried no sample). Feeds the
    /// [`WalkPolicy::restart_anchor`] coordinate ranking.
    visited_coords: Vec<Option<CoordSample>>,
    /// The walker's own embedding state, updated from every measured
    /// RTT whose reply piggybacked a remote sample. `None` (coords off)
    /// makes every coordinate branch in this walk a no-op.
    coords: Option<(VivaldiState, CoordsConfig)>,
    /// Remote samples learned this walk, for the agent's peer-coord
    /// cache (parallel to nothing; dedup is the agent's job).
    coord_harvest: Vec<(HostId, CoordSample)>,
    phase: Phase,
}

impl Walk {
    /// Start a walk at `start`, falling back to `fallback` (the source)
    /// on trouble. Sends the first info request immediately.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        purpose: WalkPurpose,
        start: HostId,
        fallback: HostId,
        started_at: SimTime,
        cfg: WalkConfig,
        gen_base: u64,
        refine_baseline: Option<VDist>,
        coords: Option<(VivaldiState, CoordsConfig)>,
        ctx: &mut Ctx<'_>,
    ) -> Self {
        let mut w = Self {
            purpose,
            started_at,
            current: start,
            fallback,
            restarts: 0,
            cfg,
            generation: gen_base,
            iteration: 0,
            refine_baseline,
            harvest: Vec::new(),
            visited: Vec::new(),
            visited_coords: Vec::new(),
            coords,
            coord_harvest: Vec::new(),
            phase: Phase::AwaitInfo {
                sent_at: SimTime::ZERO,
                retries: 0,
            },
        };
        ctx.trace(|| vdm_trace::TraceEvent::WalkStart {
            host: ctx.me.0,
            purpose: purpose_label(purpose),
            start: start.0,
        });
        w.begin_info(ctx);
        w
    }

    /// The node currently being examined.
    pub fn current(&self) -> HostId {
        self.current
    }

    /// Number of restarts so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    fn bump(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Current walk generation (also the nonce of in-flight requests).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Peers this walk measured, in probe order (duplicates possible).
    pub fn harvest(&self) -> &[(HostId, VDist)] {
        &self.harvest
    }

    /// The walker's embedding state after this walk's updates (`None`
    /// when coords are off); the agent copies it back on walk finish.
    pub fn coord_state(&self) -> Option<VivaldiState> {
        self.coords.map(|(s, _)| s)
    }

    /// Remote coordinate samples piggybacked on this walk's replies.
    pub fn coord_harvest(&self) -> &[(HostId, CoordSample)] {
        &self.coord_harvest
    }

    /// The walker's sample for outgoing piggyback fields.
    fn coord_sample(&self) -> Option<CoordSample> {
        self.coords.map(|(s, _)| s.sample())
    }

    fn arm_deadline(&self, ctx: &mut Ctx<'_>) {
        let t = scaled_delay(
            self.cfg.timeout,
            self.cfg.backoff,
            self.restarts,
            self.cfg.jitter_frac,
            ctx,
        );
        ctx.timer(t, WALK_TOKEN_BIT | self.generation);
    }

    fn begin_info(&mut self, ctx: &mut Ctx<'_>) {
        let nonce = self.bump();
        // A fresh node always starts with a fresh retry budget (the
        // timer path manages its own count).
        self.phase = Phase::AwaitInfo {
            sent_at: ctx.now(),
            retries: 0,
        };
        if self.current == ctx.me {
            // Degenerate: walking to ourselves (e.g. stale grandparent
            // pointer). Restart from the fallback instead.
            self.current = self.fallback;
        }
        ctx.send(self.current, Msg::InfoReq { nonce });
        self.arm_deadline(ctx);
    }

    fn restart(&mut self, ctx: &mut Ctx<'_>, policy: &dyn WalkPolicy) -> Option<WalkOutcome> {
        self.restarts += 1;
        ctx.stats.walk_restarts += 1;
        let anchor = if self.cfg.restart_anchor {
            // Restart-anchor damping: drop the node that just failed
            // from the responsive chain, then let the policy pick the
            // resume point. Without an embedding that is the deepest
            // remaining visited ancestor (the chain only ever grows
            // except for that one pop, so restart depth is monotone
            // non-decreasing while failures stay at the frontier); with
            // one, VDM resumes from the coordinate-nearest ancestor.
            while self.visited.last() == Some(&self.current) {
                self.visited.pop();
                self.visited_coords.pop();
            }
            let coord_dist: Option<Vec<VDist>> = self.coords.as_ref().map(|(state, _)| {
                self.visited_coords
                    .iter()
                    .map(|c| c.map_or(VDist::INFINITY, |s| state.coord.dist(s.coord)))
                    .collect()
            });
            policy.restart_anchor(&self.visited, coord_dist.as_deref(), self.fallback)
        } else {
            self.fallback
        };
        ctx.trace(|| vdm_trace::TraceEvent::WalkRestart {
            host: ctx.me.0,
            restarts: self.restarts,
            anchor: anchor.0,
        });
        if self.restarts > self.cfg.max_restarts {
            return Some(WalkOutcome::Failed);
        }
        self.current = anchor;
        self.iteration = 0;
        self.phase = Phase::AwaitInfo {
            sent_at: ctx.now(),
            retries: 0,
        };
        self.begin_info(ctx);
        None
    }

    /// Feed a message to the walk. Returns an outcome when it finishes.
    pub fn on_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        msg: &Msg,
        policy: &dyn WalkPolicy,
        free_degree: u32,
    ) -> Option<WalkOutcome> {
        match (&mut self.phase, msg) {
            (
                Phase::AwaitInfo { sent_at, .. },
                Msg::InfoResp {
                    nonce,
                    children,
                    coord,
                    ..
                },
            ) if *nonce == self.generation && from == self.current => {
                let rtt = (ctx.now() - *sent_at).as_ms();
                let coord = *coord;
                let loss = if policy.needs_loss() {
                    ctx.estimate_loss(self.current)
                } else {
                    0.0
                };
                let d_current = policy.vdist(rtt, loss);
                self.harvest.push((self.current, d_current));
                observe_coord_sample(
                    &mut self.coords,
                    &mut self.coord_harvest,
                    ctx,
                    from,
                    coord,
                    rtt,
                );
                if self.cfg.restart_anchor && self.visited.last() != Some(&self.current) {
                    self.visited.push(self.current);
                    self.visited_coords.push(coord);
                }
                // Probe every reported child except ourselves.
                let reported: Vec<ChildEntry> = children
                    .iter()
                    .copied()
                    .filter(|e| e.child != ctx.me)
                    .collect();
                if reported.is_empty() {
                    return self.decide(ctx, d_current, Vec::new(), policy, free_degree);
                }
                let mut pending = Vec::with_capacity(reported.len());
                for e in &reported {
                    let nonce = self.bump();
                    pending.push((nonce, e.child, ctx.now()));
                    ctx.send(e.child, Msg::Ping { nonce });
                }
                self.phase = Phase::AwaitProbes {
                    d_current,
                    reported,
                    pending,
                    results: Vec::new(),
                };
                self.arm_deadline(ctx);
                None
            }
            (
                Phase::AwaitProbes {
                    d_current,
                    reported,
                    pending,
                    results,
                },
                Msg::Pong { nonce, coord },
            ) => {
                let Some(pos) = pending
                    .iter()
                    .position(|(n, c, _)| *n == *nonce && *c == from)
                else {
                    return None; // stale pong
                };
                let (_, child, sent_at) = pending.swap_remove(pos);
                let rtt = (ctx.now() - sent_at).as_ms();
                let coord = *coord;
                let loss = if policy.needs_loss() {
                    ctx.estimate_loss(child)
                } else {
                    0.0
                };
                let d_parent_child = reported
                    .iter()
                    .find(|e| e.child == child)
                    .map(|e| e.vdist)
                    .unwrap_or(VDist::INFINITY);
                let d_new_child = policy.vdist(rtt, loss);
                self.harvest.push((child, d_new_child));
                observe_coord_sample(
                    &mut self.coords,
                    &mut self.coord_harvest,
                    ctx,
                    child,
                    coord,
                    rtt,
                );
                results.push(ChildProbe {
                    child,
                    d_parent_child,
                    d_new_child,
                });
                if pending.is_empty() {
                    let d = *d_current;
                    let res = std::mem::take(results);
                    return self.decide(ctx, d, res, policy, free_degree);
                }
                None
            }
            (Phase::AwaitConn { target, probed, .. }, Msg::ConnResp { nonce, result })
                if *nonce == self.generation && from == *target =>
            {
                match result {
                    ConnResult::Accepted {
                        grandparent,
                        adopted,
                        root_path,
                    } => {
                        let (vdist, splice) = match &self.phase {
                            Phase::AwaitConn { vdist, splice, .. } => (*vdist, splice.clone()),
                            _ => unreachable!(),
                        };
                        let adopted_with_dist = adopted
                            .iter()
                            .filter_map(|&c| {
                                splice.iter().find(|(h, _)| *h == c).map(|&(h, d)| (h, d))
                            })
                            .collect();
                        ctx.stats.join_completions += 1;
                        ctx.trace(|| vdm_trace::TraceEvent::WalkConnected {
                            host: ctx.me.0,
                            parent: from.0,
                            purpose: purpose_label(self.purpose),
                        });
                        Some(WalkOutcome::Connected {
                            parent: from,
                            grandparent: *grandparent,
                            root_path: root_path.clone(),
                            adopted: adopted_with_dist,
                            vdist_to_parent: vdist,
                        })
                    }
                    ConnResult::Redirect { next } => {
                        let next = *next;
                        if next == ctx.me {
                            return self.restart(ctx, policy);
                        }
                        // Connect directly if we probed the redirect
                        // target this round; otherwise walk from it.
                        if let Some(&(_, d)) = probed.iter().find(|(h, _)| *h == next) {
                            let nonce = self.bump();
                            self.phase = Phase::AwaitConn {
                                target: next,
                                vdist: d,
                                splice: Vec::new(),
                                probed: Vec::new(),
                            };
                            ctx.send(
                                next,
                                Msg::ConnReq {
                                    nonce,
                                    kind: ConnKind::Child,
                                    vdist: d,
                                    coord: self.coord_sample(),
                                },
                            );
                            self.arm_deadline(ctx);
                        } else {
                            self.current = next;
                            self.begin_info(ctx);
                        }
                        None
                    }
                    ConnResult::Rejected => {
                        ctx.stats.rejected_conns += 1;
                        self.restart(ctx, policy)
                    }
                }
            }
            _ => None,
        }
    }

    /// Feed a deadline timer. Returns an outcome when the walk dies.
    pub fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_>,
        token: u64,
        policy: &dyn WalkPolicy,
        free_degree: u32,
    ) -> Option<WalkOutcome> {
        if token & WALK_TOKEN_BIT == 0 || (token & !WALK_TOKEN_BIT) != self.generation {
            return None; // stale deadline from an earlier phase
        }
        match &mut self.phase {
            Phase::AwaitInfo { retries, .. } => {
                if *retries < self.cfg.info_retries {
                    let r = *retries + 1;
                    let nonce = self.bump();
                    self.phase = Phase::AwaitInfo {
                        sent_at: ctx.now(),
                        retries: r,
                    };
                    ctx.send(self.current, Msg::InfoReq { nonce });
                    self.arm_deadline(ctx);
                    None
                } else {
                    self.restart(ctx, policy)
                }
            }
            Phase::AwaitProbes {
                d_current, results, ..
            } => {
                // Children that answered are enough; the silent ones are
                // treated as gone.
                let d = *d_current;
                let res = std::mem::take(results);
                self.decide(ctx, d, res, policy, free_degree)
            }
            Phase::AwaitConn { .. } => self.restart(ctx, policy),
        }
    }

    /// Run the policy over a completed probe round and act on it.
    fn decide(
        &mut self,
        ctx: &mut Ctx<'_>,
        d_current: VDist,
        children: Vec<ChildProbe>,
        policy: &dyn WalkPolicy,
        free_degree: u32,
    ) -> Option<WalkOutcome> {
        let probe = ProbeResult {
            current: self.current,
            d_current,
            children,
            iteration: self.iteration,
        };
        self.iteration += 1;
        let purpose = self.purpose;
        let step = policy.decide(&probe, purpose);
        ctx.trace(|| {
            let cases: Vec<(u32, vdm_trace::CaseClass)> = policy
                .classify_for_trace(&probe)
                .into_iter()
                .map(|(h, c)| (h.0, c))
                .collect();
            let (action, next, splice): (&'static str, u32, Option<u32>) = match &step {
                WalkStep::Descend(n) => ("descend", n.0, None),
                WalkStep::Attach { splice } => {
                    ("attach", probe.current.0, splice.first().map(|h| h.0))
                }
            };
            vdm_trace::TraceEvent::WalkDecision {
                host: ctx.me.0,
                at: probe.current.0,
                cases: vdm_trace::encode_cases(&cases),
                action,
                next,
                splice,
            }
        });
        match step {
            WalkStep::Descend(next) => {
                debug_assert!(probe.children.iter().any(|c| c.child == next));
                self.current = next;
                self.begin_info(ctx);
                None
            }
            WalkStep::Attach { mut splice } => {
                // Improvement-gated refinement (HMTP/BTP): abandon the
                // pass unless the candidate parent is strictly closer
                // than the current one.
                if purpose == WalkPurpose::Refine && policy.refine_requires_improvement() {
                    if let Some(baseline) = self.refine_baseline {
                        if d_current >= baseline {
                            return Some(WalkOutcome::Failed);
                        }
                    }
                }
                // Trim the adoption list to our free degree (the paper:
                // "we make connections as long as the new node allows").
                splice.truncate(free_degree as usize);
                let splice_with_dist: Vec<(HostId, VDist)> = splice
                    .iter()
                    .filter_map(|&c| {
                        probe
                            .children
                            .iter()
                            .find(|p| p.child == c)
                            .map(|p| (c, p.d_new_child))
                    })
                    .collect();
                let probed: Vec<(HostId, VDist)> = probe
                    .children
                    .iter()
                    .map(|p| (p.child, p.d_new_child))
                    .collect();
                let kind = if splice_with_dist.is_empty() {
                    ConnKind::Child
                } else {
                    ConnKind::Splice {
                        displace: splice_with_dist.iter().map(|&(h, _)| h).collect(),
                    }
                };
                let nonce = self.bump();
                self.phase = Phase::AwaitConn {
                    target: self.current,
                    vdist: d_current,
                    splice: splice_with_dist,
                    probed,
                };
                ctx.send(
                    self.current,
                    Msg::ConnReq {
                        nonce,
                        kind,
                        vdist: d_current,
                        coord: self.coord_sample(),
                    },
                );
                self.arm_deadline(ctx);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunStats;
    use std::sync::Arc;
    use vdm_netsim::{Engine, LatencySpace};

    /// Descend into the first reported child; attach at leaves.
    struct DescendFirst;
    impl WalkPolicy for DescendFirst {
        fn vdist(&self, rtt_ms: f64, _loss: f64) -> VDist {
            rtt_ms
        }
        fn decide(&self, p: &ProbeResult, _purpose: WalkPurpose) -> WalkStep {
            match p.children.first() {
                Some(c) => WalkStep::Descend(c.child),
                None => WalkStep::Attach { splice: vec![] },
            }
        }
    }

    fn engine() -> Engine<Msg> {
        let n = 8;
        let mut rtt = vec![vec![0.0; n]; n];
        for (i, row) in rtt.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                if i != j {
                    *v = 10.0;
                }
            }
        }
        Engine::new(Arc::new(LatencySpace::from_rtt_matrix(&rtt)), 1)
    }

    /// Feed an info response from `from` reporting `children` (then the
    /// matching pong, if any), driving the walk one level.
    fn step_info(
        walk: &mut Walk,
        eng: &mut Engine<Msg>,
        stats: &mut RunStats,
        from: u32,
        children: &[u32],
    ) {
        let msg = Msg::InfoResp {
            nonce: walk.generation(),
            children: children
                .iter()
                .map(|&c| ChildEntry {
                    child: HostId(c),
                    vdist: 1.0,
                })
                .collect(),
            parent: None,
            coord: None,
        };
        let mut ctx = Ctx {
            me: HostId(0),
            io: eng,
            stats,
            loss_probe_noise: 0.0,
        };
        walk.on_msg(&mut ctx, HostId(from), &msg, &DescendFirst, 2);
        // At most one child per round keeps the ping nonce predictable.
        for &c in children {
            let pong = Msg::Pong {
                nonce: walk.generation(),
                coord: None,
            };
            walk.on_msg(&mut ctx, HostId(c), &pong, &DescendFirst, 2);
        }
    }

    fn reject(walk: &mut Walk, eng: &mut Engine<Msg>, stats: &mut RunStats, from: u32) {
        let msg = Msg::ConnResp {
            nonce: walk.generation(),
            result: ConnResult::Rejected,
        };
        let mut ctx = Ctx {
            me: HostId(0),
            io: eng,
            stats,
            loss_probe_noise: 0.0,
        };
        walk.on_msg(&mut ctx, HostId(from), &msg, &DescendFirst, 2);
    }

    /// Restart-anchor damping: a Case-III descent that dies at the
    /// frontier resumes from the deepest visited responsive ancestor,
    /// and the restart depth never decreases within one join.
    #[test]
    fn damped_restarts_resume_at_deepest_visited_ancestor() {
        let mut eng = engine();
        let mut stats = RunStats::new(8);
        let cfg = WalkConfig {
            restart_anchor: true,
            ..WalkConfig::default()
        };
        let mut walk = {
            let mut ctx = Ctx {
                me: HostId(0),
                io: &mut eng,
                stats: &mut stats,
                loss_probe_noise: 0.0,
            };
            Walk::start(
                WalkPurpose::Join,
                HostId(7),
                HostId(7),
                SimTime::ZERO,
                cfg,
                0,
                None,
                None,
                &mut ctx,
            )
        };
        // Chain depth per host in this scripted tree: 7 -> 1 -> leaf.
        let depth = |h: HostId| match h.0 {
            7 => 0usize,
            1 => 1,
            _ => 2,
        };
        // Descend 7 -> 1 -> 2; 2 rejects the attach.
        step_info(&mut walk, &mut eng, &mut stats, 7, &[1]);
        step_info(&mut walk, &mut eng, &mut stats, 1, &[2]);
        step_info(&mut walk, &mut eng, &mut stats, 2, &[]);
        reject(&mut walk, &mut eng, &mut stats, 2);
        assert_eq!(walk.restarts(), 1);
        assert_eq!(walk.current(), HostId(1), "resume below the source");
        let mut depths = vec![depth(walk.current())];
        // Second attempt: 1 -> 3; 3 rejects too.
        step_info(&mut walk, &mut eng, &mut stats, 1, &[3]);
        step_info(&mut walk, &mut eng, &mut stats, 3, &[]);
        reject(&mut walk, &mut eng, &mut stats, 3);
        assert_eq!(walk.restarts(), 2);
        assert_eq!(walk.current(), HostId(1));
        depths.push(depth(walk.current()));
        assert!(
            depths.windows(2).all(|w| w[1] >= w[0]),
            "restart depth must be monotone non-decreasing, got {depths:?}"
        );
        // Walk 3: 1 -> 4 accepts; the damped walk still completes.
        step_info(&mut walk, &mut eng, &mut stats, 1, &[4]);
        step_info(&mut walk, &mut eng, &mut stats, 4, &[]);
        let msg = Msg::ConnResp {
            nonce: walk.generation(),
            result: ConnResult::Accepted {
                grandparent: Some(HostId(1)),
                adopted: vec![],
                root_path: vec![],
            },
        };
        let mut ctx = Ctx {
            me: HostId(0),
            io: &mut eng,
            stats: &mut stats,
            loss_probe_noise: 0.0,
        };
        let out = walk.on_msg(&mut ctx, HostId(4), &msg, &DescendFirst, 2);
        assert!(matches!(
            out,
            Some(WalkOutcome::Connected { parent, .. }) if parent == HostId(4)
        ));
    }

    /// The flag off keeps the paper's behaviour: every restart goes back
    /// to the fallback node.
    #[test]
    fn undamped_restarts_return_to_the_fallback() {
        let mut eng = engine();
        let mut stats = RunStats::new(8);
        let mut walk = {
            let mut ctx = Ctx {
                me: HostId(0),
                io: &mut eng,
                stats: &mut stats,
                loss_probe_noise: 0.0,
            };
            Walk::start(
                WalkPurpose::Join,
                HostId(7),
                HostId(7),
                SimTime::ZERO,
                WalkConfig::default(),
                0,
                None,
                None,
                &mut ctx,
            )
        };
        step_info(&mut walk, &mut eng, &mut stats, 7, &[1]);
        step_info(&mut walk, &mut eng, &mut stats, 1, &[2]);
        step_info(&mut walk, &mut eng, &mut stats, 2, &[]);
        reject(&mut walk, &mut eng, &mut stats, 2);
        assert_eq!(walk.restarts(), 1);
        assert_eq!(
            walk.current(),
            HostId(7),
            "undamped walks restart at the fallback"
        );
    }
}
