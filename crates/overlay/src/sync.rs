//! Synchronous oracle executor.
//!
//! Runs the *same* [`WalkPolicy`] implementations as the discrete-event
//! agents, but against an exact distance oracle and with atomic tree
//! mutations. This is what the paper's worked join examples
//! (Figs. 3.8–3.17) are unit-tested with, what the complexity analysis
//! (Eq. 3.3: contacted nodes ≈ n·log N) is measured with, and what the
//! fast MST comparisons use.

use crate::peer::PeerState;
use crate::tree::TreeSnapshot;
use crate::walk::{ChildProbe, ProbeResult, WalkPolicy, WalkStep};
use crate::VDist;
use vdm_netsim::HostId;

/// Trace of one synchronous join.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinTrace {
    /// The parent finally connected to.
    pub parent: HostId,
    /// Walk iterations (nodes whose children were examined).
    pub iterations: usize,
    /// Total peers contacted (info requests + child pings +
    /// connection hops) — the paper's Eq. 3.3 quantity.
    pub contacted: usize,
}

/// A tree built synchronously over an exact virtual-distance oracle.
pub struct SyncOverlay<D: Fn(HostId, HostId) -> VDist> {
    source: HostId,
    dist: D,
    peers: Vec<Option<PeerState>>,
}

impl<D: Fn(HostId, HostId) -> VDist> SyncOverlay<D> {
    /// New overlay with only the source in the tree.
    pub fn new(num_hosts: usize, source: HostId, source_limit: u32, dist: D) -> Self {
        let mut peers: Vec<Option<PeerState>> = (0..num_hosts).map(|_| None).collect();
        peers[source.idx()] = Some(PeerState::new(source, source_limit, true));
        Self {
            source,
            dist,
            peers,
        }
    }

    /// The source host.
    pub fn source(&self) -> HostId {
        self.source
    }

    /// Whether `h` is currently in the tree.
    pub fn in_tree(&self, h: HostId) -> bool {
        self.peers[h.idx()].is_some()
    }

    /// Peer state of an in-tree host.
    pub fn peer(&self, h: HostId) -> &PeerState {
        self.peers[h.idx()].as_ref().expect("host not in tree")
    }

    fn peer_mut(&mut self, h: HostId) -> &mut PeerState {
        self.peers[h.idx()].as_mut().expect("host not in tree")
    }

    /// Exact virtual distance between two hosts.
    pub fn vdist(&self, a: HostId, b: HostId) -> VDist {
        (self.dist)(a, b)
    }

    /// Make `parent` the parent of `child` and fix grandparent pointers
    /// (the child's own, and the child's children's).
    fn set_parent(&mut self, child: HostId, parent: HostId) {
        let gp = self.peer(parent).parent;
        let c = self.peer_mut(child);
        c.parent = Some(parent);
        c.grandparent = gp;
        let grandkids: Vec<HostId> = c.children.iter().map(|&(h, _)| h).collect();
        for gk in grandkids {
            self.peer_mut(gk).grandparent = Some(parent);
        }
    }

    fn probe(&self, joiner: HostId, current: HostId, iteration: usize) -> ProbeResult {
        let children = self
            .peer(current)
            .children
            .iter()
            .filter(|&&(c, _)| c != joiner)
            .map(|&(c, d_pc)| ChildProbe {
                child: c,
                d_parent_child: d_pc,
                d_new_child: (self.dist)(joiner, c),
            })
            .collect();
        ProbeResult {
            current,
            d_current: (self.dist)(joiner, current),
            children,
            iteration,
        }
    }

    /// Walk from `start` under `policy` on behalf of `joiner` (which
    /// must already have a [`PeerState`] if re-walking, or pass
    /// `limit` to create one). Returns the chosen parent and applies
    /// all mutations (attach/splice/redirect).
    fn walk(
        &mut self,
        joiner: HostId,
        start: HostId,
        policy: &dyn WalkPolicy,
        purpose: crate::walk::WalkPurpose,
    ) -> JoinTrace {
        let mut current = if self.in_tree(start) && start != joiner {
            start
        } else {
            self.source
        };
        let mut iterations = 0usize;
        let mut contacted = 0usize;
        let bound = self.peers.len() + 5;
        loop {
            iterations += 1;
            assert!(iterations < bound, "join walk did not terminate");
            let probe = self.probe(joiner, current, iterations - 1);
            contacted += 1 + probe.children.len();
            match policy.decide(&probe, purpose) {
                WalkStep::Descend(next) => {
                    assert!(
                        probe.children.iter().any(|c| c.child == next),
                        "policy descended into a non-child"
                    );
                    current = next;
                }
                WalkStep::Attach { mut splice } => {
                    let free = self.peer(joiner).free_degree() as usize;
                    splice.truncate(free);
                    splice.retain(|&c| self.peer(current).has_child(c));
                    if !splice.is_empty() {
                        // Case II splice.
                        let d_pn = (self.dist)(joiner, current);
                        for &c in &splice {
                            self.peer_mut(current).remove_child(c);
                        }
                        self.peer_mut(current).add_child(joiner, d_pn);
                        self.set_parent(joiner, current);
                        for &c in &splice {
                            let d_nc = (self.dist)(joiner, c);
                            self.peer_mut(joiner).add_child(c, d_nc);
                            self.set_parent(c, joiner);
                        }
                        return JoinTrace {
                            parent: current,
                            iterations,
                            contacted,
                        };
                    }
                    // Plain attach, redirecting down while targets are
                    // full (§3.2: "connects to the closest free child").
                    let mut target = current;
                    loop {
                        contacted += 1;
                        if self.peer(target).free_degree() > 0
                            || self.peer(target).has_child(joiner)
                        {
                            let d = (self.dist)(joiner, target);
                            self.peer_mut(target).add_child(joiner, d);
                            self.set_parent(joiner, target);
                            return JoinTrace {
                                parent: target,
                                iterations,
                                contacted,
                            };
                        }
                        let (next, _) = self
                            .peer(target)
                            .closest_child(&[joiner])
                            .expect("full node must have children");
                        target = next;
                    }
                }
            }
        }
    }

    /// Join `joiner` with the given degree limit.
    pub fn join(&mut self, joiner: HostId, limit: u32, policy: &dyn WalkPolicy) -> JoinTrace {
        self.join_from(joiner, limit, policy, self.source)
    }

    /// Join `joiner` with the walk anchored at `start` instead of the
    /// source (coordinate-guided entry: the caller picked a nearby
    /// in-tree host from gossip/discovery state). A dead or self
    /// `start` falls back to the source, so a stale anchor only costs
    /// walk steps, never correctness.
    pub fn join_from(
        &mut self,
        joiner: HostId,
        limit: u32,
        policy: &dyn WalkPolicy,
        start: HostId,
    ) -> JoinTrace {
        assert!(!self.in_tree(joiner), "{joiner} already joined");
        assert!(joiner != self.source);
        self.peers[joiner.idx()] = Some(PeerState::new(joiner, limit, false));
        self.walk(joiner, start, policy, crate::walk::WalkPurpose::Join)
    }

    /// Graceful leave: orphans re-join starting at their grandparent
    /// (§3.3), in child order. Returns the re-join traces.
    pub fn leave(&mut self, leaver: HostId, policy: &dyn WalkPolicy) -> Vec<(HostId, JoinTrace)> {
        assert!(leaver != self.source, "the source never leaves");
        let state = self.peers[leaver.idx()].take().expect("leaver not in tree");
        if let Some(p) = state.parent {
            self.peer_mut(p).remove_child(leaver);
        }
        let mut traces = Vec::new();
        for (orphan, _) in state.children {
            // Detach first (fragment root), then re-walk.
            self.peer_mut(orphan).parent = None;
            let start = self.recovery_anchor(orphan, leaver);
            let tr = self.walk(orphan, start, policy, crate::walk::WalkPurpose::Reconnect);
            traces.push((orphan, tr));
        }
        traces
    }

    /// Walk anchor for an orphan of `leaver`: the recorded grandparent
    /// if it is alive and is not the leaver itself, else the source.
    /// The grandparent pointer is a *hint* refreshed only on parent and
    /// grandparent changes, so it can be stale — it may equal the
    /// leaver (earlier re-parenting collapsed parent and grandparent
    /// onto the same host) or name a host that has since left the
    /// session. Anchoring a recovery walk at a dead host would target a
    /// peer that cannot answer; the source is always alive, so it is
    /// the safe fallback (§3.3 prescribes grandparent-then-source).
    fn recovery_anchor(&self, orphan: HostId, leaver: HostId) -> HostId {
        let anchor = self.peer(orphan).grandparent.unwrap_or(self.source);
        if anchor != leaver && self.in_tree(anchor) {
            anchor
        } else {
            self.source
        }
    }

    /// One refinement pass for `h` (§3.4): re-run the join from the
    /// policy's preferred start; switch parents if the walk lands
    /// elsewhere. Returns `true` if the parent changed.
    pub fn refine(
        &mut self,
        h: HostId,
        policy: &dyn WalkPolicy,
        rng: &mut rand::rngs::StdRng,
    ) -> bool {
        let old_parent = self.peer(h).parent.expect("refining a detached peer");
        let start = policy.refine_start(self.peer(h), self.source, rng);
        // Detach from the old parent for the duration of the walk so the
        // walk semantics match a fresh join; restore on no-op.
        self.peer_mut(old_parent).remove_child(h);
        self.peer_mut(h).parent = None;
        let _tr = self.walk(h, start, policy, crate::walk::WalkPurpose::Refine);
        let new_parent = self.peer(h).parent.expect("walk always reattaches");
        if new_parent == old_parent {
            return false;
        }
        if policy.refine_requires_improvement() {
            let d_new = (self.dist)(h, new_parent);
            let d_old = (self.dist)(h, old_parent);
            // If the walk spliced the old parent *under* h, reverting
            // would create a two-cycle; keep the switch instead. (No
            // current improvement-gated policy splices, but guard the
            // invariant for future ones.)
            let old_parent_now_below = self.peer(old_parent).parent == Some(h);
            if d_new >= d_old && !old_parent_now_below {
                // No improvement: undo the switch (the §2.4.7 check is
                // done before switching; the sync executor applies
                // moves eagerly, so revert).
                self.peer_mut(new_parent).remove_child(h);
                let d = (self.dist)(h, old_parent);
                self.peer_mut(old_parent).add_child(h, d);
                self.set_parent(h, old_parent);
                return false;
            }
        }
        true
    }

    /// Global snapshot for metrics/validation.
    pub fn snapshot(&self) -> TreeSnapshot {
        let n = self.peers.len();
        let mut parent = vec![None; n];
        let mut members = Vec::new();
        for (i, p) in self.peers.iter().enumerate() {
            if let Some(p) = p {
                parent[i] = p.parent;
                if !p.is_source {
                    members.push(HostId(i as u32));
                }
            }
        }
        TreeSnapshot {
            source: self.source,
            members,
            parent,
        }
    }

    /// Degree limits vector (0 for hosts not in the tree), for
    /// validation.
    pub fn limits(&self) -> Vec<u32> {
        self.peers
            .iter()
            .map(|p| p.as_ref().map_or(u32::MAX, |p| p.degree_limit))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Greedy policy: descend to the strictly closest child, else
    /// attach (an HMTP-like shape, enough to exercise the executor).
    struct Greedy;
    impl WalkPolicy for Greedy {
        fn vdist(&self, rtt_ms: f64, _l: f64) -> VDist {
            rtt_ms
        }
        fn decide(&self, p: &ProbeResult, _purpose: crate::walk::WalkPurpose) -> WalkStep {
            match p.children.iter().min_by(|a, b| {
                a.d_new_child
                    .total_cmp(&b.d_new_child)
                    .then(a.child.cmp(&b.child))
            }) {
                Some(best) if best.d_new_child < p.d_current => WalkStep::Descend(best.child),
                _ => WalkStep::Attach { splice: vec![] },
            }
        }
    }

    /// Hosts on a line at positions = host id (virtual distance =
    /// |difference|).
    fn line_dist(a: HostId, b: HostId) -> VDist {
        (a.0 as f64 - b.0 as f64).abs()
    }

    #[test]
    fn greedy_builds_a_chain_on_a_line() {
        let mut ov = SyncOverlay::new(5, HostId(0), 2, line_dist);
        for h in 1..5 {
            let tr = ov.join(HostId(h), 2, &Greedy);
            assert_eq!(tr.parent, HostId(h - 1));
        }
        let snap = ov.snapshot();
        assert!(snap.validate(&ov.limits()).is_empty());
        assert_eq!(snap.depths()[4], Some(4));
        // Grandparents are maintained.
        assert_eq!(ov.peer(HostId(4)).grandparent, Some(HostId(2)));
        assert_eq!(ov.peer(HostId(1)).grandparent, None);
    }

    #[test]
    fn leave_reconnects_orphans_at_grandparent() {
        let mut ov = SyncOverlay::new(5, HostId(0), 2, line_dist);
        for h in 1..5 {
            ov.join(HostId(h), 2, &Greedy);
        }
        // Chain 0-1-2-3-4; remove 2: orphan 3 starts at grandparent 1.
        let traces = ov.leave(HostId(2), &Greedy);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].0, HostId(3));
        assert_eq!(traces[0].1.parent, HostId(1));
        let snap = ov.snapshot();
        assert!(snap.validate(&ov.limits()).is_empty());
        assert_eq!(snap.connected_members().len(), 3);
        // 4's grandparent updated to 1 through the re-parenting of 3.
        assert_eq!(ov.peer(HostId(4)).grandparent, Some(HostId(1)));
    }

    #[test]
    fn recovery_anchor_skips_dead_grandparent() {
        // Chain 0-1-2-3-4. Drop 1 first: 2 re-attaches (greedy walk on
        // the line lands it back under 0), but 3's recorded grandparent
        // can still point at the departed 1 until the ParentChange
        // propagates. The anchor must never target a host that is not
        // in the tree.
        let mut ov = SyncOverlay::new(6, HostId(0), 2, line_dist);
        for h in 1..5 {
            ov.join(HostId(h), 2, &Greedy);
        }
        ov.leave(HostId(1), &Greedy);
        // Force the stale-hint shape explicitly: point 4's grandparent
        // at the long-gone 1, then drop 4's parent.
        ov.peer_mut(HostId(4)).grandparent = Some(HostId(1));
        let parent_of_4 = ov.peer(HostId(4)).parent.unwrap();
        assert!(!ov.in_tree(HostId(1)));
        assert_eq!(ov.recovery_anchor(HostId(4), parent_of_4), HostId(0));
        let traces = ov.leave(parent_of_4, &Greedy);
        // 4 still reconnects (walk anchored at the source), tree stays
        // valid.
        assert!(traces.iter().any(|(h, _)| *h == HostId(4)));
        let snap = ov.snapshot();
        assert!(snap.validate(&ov.limits()).is_empty());
        assert!(ov.peer(HostId(4)).parent.is_some());
    }

    #[test]
    fn recovery_anchor_skips_leaver_as_grandparent() {
        // If re-parenting collapsed parent and grandparent onto the
        // same host, an orphan of that host must not anchor its walk at
        // the leaver itself.
        let mut ov = SyncOverlay::new(4, HostId(0), 3, line_dist);
        for h in 1..4 {
            ov.join(HostId(h), 3, &Greedy);
        }
        ov.peer_mut(HostId(3)).grandparent = Some(HostId(2));
        assert_eq!(ov.peer(HostId(3)).parent, Some(HostId(2)));
        assert_eq!(ov.recovery_anchor(HostId(3), HostId(2)), HostId(0));
        let traces = ov.leave(HostId(2), &Greedy);
        assert_eq!(traces.len(), 1);
        assert!(ov.peer(HostId(3)).parent.is_some());
        assert!(ov.snapshot().validate(&ov.limits()).is_empty());
    }

    #[test]
    fn full_nodes_redirect_to_closest_child() {
        // Degree limit 1 everywhere: a pure chain regardless of policy.
        struct Root;
        impl WalkPolicy for Root {
            fn vdist(&self, r: f64, _l: f64) -> VDist {
                r
            }
            fn decide(&self, _p: &ProbeResult, _purpose: crate::walk::WalkPurpose) -> WalkStep {
                WalkStep::Attach { splice: vec![] }
            }
        }
        let mut ov = SyncOverlay::new(4, HostId(0), 1, line_dist);
        for h in 1..4 {
            ov.join(HostId(h), 1, &Root);
        }
        let snap = ov.snapshot();
        assert_eq!(snap.depths()[3], Some(3));
        assert!(snap.validate(&ov.limits()).is_empty());
    }

    #[test]
    fn contacted_counts_include_probes() {
        let mut ov = SyncOverlay::new(3, HostId(0), 4, line_dist);
        let t1 = ov.join(HostId(1), 4, &Greedy);
        // Source had no children: 1 contact, 1 iteration.
        assert_eq!(t1.contacted, 2); // info + the connection hop
        let t2 = ov.join(HostId(2), 4, &Greedy);
        // Probes source (1) + child h1 (1), descends, probes h1 (1),
        // connects (1).
        assert!(t2.contacted >= 4);
        assert_eq!(t2.parent, HostId(1));
    }

    #[test]
    #[should_panic(expected = "already joined")]
    fn double_join_panics() {
        let mut ov = SyncOverlay::new(3, HostId(0), 4, line_dist);
        ov.join(HostId(1), 4, &Greedy);
        ov.join(HostId(1), 4, &Greedy);
    }
}
