//! Run statistics and measurement records.

use std::fmt;

/// Mean/min/max summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Summary {
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Summarize an iterator of samples.
    ///
    /// Non-finite samples (NaN, ±inf) are **skipped** and do not count:
    /// a NaN would otherwise poison the mean silently (and min/max
    /// depending on position), turning one degenerate measurement into
    /// a corrupted aggregate. Sources that can legitimately produce
    /// NaN (e.g. a 0/0 ratio over an empty slot) therefore simply
    /// contribute nothing, and `count` reports the samples actually
    /// summarized.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut count = 0usize;
        for v in values {
            if !v.is_finite() {
                continue;
            }
            sum += v;
            min = min.min(v);
            max = max.max(v);
            count += 1;
        }
        if count == 0 {
            Self::default()
        } else {
            Self {
                mean: sum / count as f64,
                min,
                max,
                count,
            }
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.3} (min {:.3}, max {:.3}, n={})",
            self.mean, self.min, self.max, self.count
        )
    }
}

/// One measurement slot's worth of metrics (a point on the paper's
/// figures).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlotMeasurement {
    /// Simulated time of the measurement, seconds.
    pub time_s: f64,
    /// Members in session.
    pub members: usize,
    /// Members with a parent (the rest are mid-join).
    pub connected: usize,
    /// Per-used-physical-link stress (routed underlays only; Eq. 3.4).
    pub stress: Option<Summary>,
    /// Per-receiver stretch (Eq. 3.5).
    pub stretch: Summary,
    /// Mean stretch over leaf members only (§5.4.3 shows this series).
    pub stretch_leaf_mean: f64,
    /// Per-receiver overlay hop count to the source (§5.3).
    pub hopcount: Summary,
    /// Mean hop count over leaf members only.
    pub hopcount_leaf_mean: f64,
    /// Sum of one-way latencies of the overlay links in use, ms (§5.3
    /// "network usage").
    pub usage_ms: f64,
    /// `usage_ms` normalized by the unicast star's usage.
    pub usage_normalized: f64,
    /// Slot loss rate: 1 - received/expected over the slot (Eq. 3.7),
    /// clamped at 0 (repair surplus is reported as `duplicates`).
    pub loss_rate: f64,
    /// Chunks delivered beyond the slot's expectation (NACK
    /// retransmits landing in this slot).
    pub duplicates: u64,
    /// Slot overhead: control messages / data messages sent (Eq. 3.6).
    pub overhead: f64,
    /// Slot overhead with the source's emitted chunk count as the
    /// denominator (the §5.4.2 PlanetLab variant of the metric).
    pub overhead_per_chunk: f64,
    /// Tree cost / MST cost over the same peers (§5.4.6), when computed.
    pub mst_ratio: Option<f64>,
    /// Structural errors found at this measurement (should be 0).
    pub tree_errors: usize,
}

/// Recovery observability under fault injection: how the control plane
/// rode out orphanings, partitions and message faults. Collected by the
/// agents during every run; only chaos runs read it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Times a connected peer lost its parent (graceful leave, watchdog
    /// firing, or heartbeat prune fallout).
    pub orphan_events: u64,
    /// Completed reconnections as `(completed_at_s, took_s)`: when the
    /// peer re-attached and how long it had been orphaned.
    pub reconnections: Vec<(f64, f64)>,
    /// Stream delivery gaps as `(resumed_at_s, gap_s)`, recorded when
    /// the spacing between two accepted chunks exceeded the agent's
    /// `gap_threshold` (measures per-fault outage as receivers see it).
    pub delivery_gaps: Vec<(f64, f64)>,
    /// Measurement slots that found structural tree errors, as
    /// `(time_s, error_count)` — tree-invariant violations over time.
    pub invariant_violations: Vec<(f64, usize)>,
    /// Direct failover attempts at pre-validated backup candidates
    /// (proactive-resilience extension; 0 when the mechanism is off).
    pub failover_attempts: u64,
    /// Failover attempts that re-attached without a walk.
    pub failover_successes: u64,
    /// NACK messages sent for stream gap repair.
    pub nacks_sent: u64,
    /// Stream chunks recovered through NACK repair.
    pub chunks_repaired: u64,
    /// Stream chunks declared unrecoverable after repair gave up
    /// (post-repair loss numerator).
    pub chunks_lost: u64,
    /// Join/rejoin requests delayed by token-bucket admission control.
    pub joins_throttled: u64,
    /// Join/rejoin requests shed to a sibling (or rejected) because the
    /// admission queue was full.
    pub joins_shed: u64,
    /// Cross-tree NACK messages sent (multi-tree extension: an orphaned
    /// stripe receiver pulling from a sibling-tree parent).
    pub cross_nacks_sent: u64,
    /// Stream chunks recovered through cross-tree repair.
    pub cross_repaired: u64,
    /// Cross-tree retransmissions whose sequence number did not belong
    /// to the receiver's stripe (must stay 0; counted rather than
    /// dropped silently so tests can assert the invariant).
    pub cross_stripe_violations: u64,
    /// Bootstrap-discovery probes sent (`PeerReq`; discovery extension,
    /// 0 when the mechanism is off).
    pub bootstrap_contacts: u64,
    /// Discovery episodes that found a live walk anchor, as
    /// `(found_at_s, took_s)`: when the anchor was chosen and how long
    /// after the first probe round (time-to-first-anchor).
    pub discovery_anchors: Vec<(f64, f64)>,
    /// Probes that timed out against a stale/dead view entry (the entry
    /// is retired on the spot).
    pub stale_peer_hits: u64,
    /// Discovery episodes that exhausted their view or round budget and
    /// fell back to the plain source-anchored walk.
    pub discovery_fallbacks: u64,
    /// `PeerReq` probes answered out of the serving budget.
    pub peer_reqs_served: u64,
    /// `PeerReq` probes shed (responder unattached or budget dry).
    pub peer_reqs_dropped: u64,
    /// Vivaldi spring-relaxation steps applied (coordinate-embedding
    /// extension; 0 when the embedding is off).
    pub coord_updates: u64,
    /// Joins that entered the walk at a coordinate-ranked anchor
    /// instead of the default entry point.
    pub guided_entries: u64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        // NaN, not 0: per the aggregation policy, empty-sample medians
        // must be *skipped* by `Summary::of`/CI aggregation. Reporting 0
        // would conflate "no failovers happened" with "failover was
        // instant" in downstream CSV columns.
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

impl RecoveryStats {
    /// Summary of time-to-reconnect durations.
    pub fn reconnect_summary(&self) -> Summary {
        Summary::of(self.reconnections.iter().map(|&(_, d)| d))
    }

    /// Median time-to-reconnect (NaN when no reconnections happened —
    /// NaN-skipping aggregation drops the sample instead of reading an
    /// empty counter as an instant reconnect).
    pub fn reconnect_median(&self) -> f64 {
        median(self.reconnections.iter().map(|&(_, d)| d).collect())
    }

    /// Summary of delivery-gap durations.
    pub fn gap_summary(&self) -> Summary {
        Summary::of(self.delivery_gaps.iter().map(|&(_, d)| d))
    }

    /// Median delivery-gap duration (NaN when no gaps were recorded;
    /// see [`RecoveryStats::reconnect_median`]).
    pub fn gap_median(&self) -> f64 {
        median(self.delivery_gaps.iter().map(|&(_, d)| d).collect())
    }

    /// Summary of time-to-first-anchor durations (discovery extension).
    pub fn anchor_summary(&self) -> Summary {
        Summary::of(self.discovery_anchors.iter().map(|&(_, d)| d))
    }

    /// Median time-to-first-anchor (NaN when discovery never chose an
    /// anchor; see [`RecoveryStats::reconnect_median`]).
    pub fn anchor_median(&self) -> f64 {
        median(self.discovery_anchors.iter().map(|&(_, d)| d).collect())
    }

    /// Total structural errors observed across all measurement slots.
    pub fn total_violations(&self) -> usize {
        self.invariant_violations.iter().map(|&(_, n)| n).sum()
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Seconds from each join command to the established connection
    /// (§5.3 startup time).
    pub startup_s: Vec<f64>,
    /// Seconds from each orphaning to re-established connection (§5.3
    /// reconnection time).
    pub reconnection_s: Vec<f64>,
    /// Stream chunks emitted by the source.
    pub source_chunks: u64,
    /// Per-host chunks that should have been received (lifetime-based,
    /// Eq. 3.7 denominator).
    pub expected: Vec<u64>,
    /// Per-host chunks actually received (watermark-accepted).
    pub received: Vec<u64>,
    /// Join walks that had to restart (timeouts, rejections, departures
    /// mid-walk).
    pub walk_restarts: u64,
    /// Completed (re)connections.
    pub join_completions: u64,
    /// Connection requests rejected by targets.
    pub rejected_conns: u64,
    /// Measurements taken during the run.
    pub measurements: Vec<SlotMeasurement>,
    /// Fault-recovery observability (chaos runs).
    pub recovery: RecoveryStats,
}

impl RunStats {
    /// New stats block for `num_hosts` hosts.
    pub fn new(num_hosts: usize) -> Self {
        Self {
            expected: vec![0; num_hosts],
            received: vec![0; num_hosts],
            ..Self::default()
        }
    }

    /// Whole-run loss rate, Eq. 3.7, clamped at 0.
    ///
    /// NACK retransmits can push `received` above the lifetime-based
    /// `expected` denominator (a repaired chunk still counts as
    /// received even when the orphaned interval shrank `expected`);
    /// without the clamp the metric goes *negative*. The excess is
    /// reported separately by [`RunStats::duplicates_delivered`].
    pub fn overall_loss(&self) -> f64 {
        let exp: u64 = self.expected.iter().sum();
        let rcv: u64 = self.received.iter().sum();
        if exp == 0 {
            0.0
        } else {
            (1.0 - rcv as f64 / exp as f64).max(0.0)
        }
    }

    /// Chunks delivered beyond each host's lifetime-based expectation
    /// (summed per-host excess): the surplus that would otherwise
    /// drive [`RunStats::overall_loss`] negative, typically NACK
    /// retransmits landing after `expected` stopped accruing.
    pub fn duplicates_delivered(&self) -> u64 {
        self.received
            .iter()
            .zip(&self.expected)
            .map(|(&r, &e)| r.saturating_sub(e))
            .sum()
    }

    /// Mean of a per-slot metric over the last `n` measurements (the
    /// paper reports steady-state values).
    pub fn tail_mean(&self, n: usize, metric: impl Fn(&SlotMeasurement) -> f64) -> f64 {
        let slots = &self.measurements;
        let take = n.min(slots.len());
        if take == 0 {
            return 0.0;
        }
        slots[slots.len() - take..].iter().map(metric).sum::<f64>() / take as f64
    }

    /// Export this run's counters into the unified registry under the
    /// `run.*` / `recovery.*` namespaces (the single snapshot path for
    /// what used to live only in scattered struct fields).
    pub fn export_metrics(&self, m: &mut vdm_trace::MetricsRegistry) {
        m.counter_add("run.source_chunks", self.source_chunks);
        m.counter_add("run.walk_restarts", self.walk_restarts);
        m.counter_add("run.join_completions", self.join_completions);
        m.counter_add("run.rejected_conns", self.rejected_conns);
        m.counter_add("run.expected_chunks", self.expected.iter().sum());
        m.counter_add("run.received_chunks", self.received.iter().sum());
        m.counter_add("run.duplicates_delivered", self.duplicates_delivered());
        m.gauge_set("run.overall_loss", self.overall_loss());
        m.gauge_set("run.measurements", self.measurements.len() as f64);

        let r = &self.recovery;
        m.counter_add("recovery.orphan_events", r.orphan_events);
        m.counter_add("recovery.reconnections", r.reconnections.len() as u64);
        m.counter_add("recovery.delivery_gaps", r.delivery_gaps.len() as u64);
        m.counter_add("recovery.invariant_violations", r.total_violations() as u64);
        m.counter_add("recovery.failover_attempts", r.failover_attempts);
        m.counter_add("recovery.failover_successes", r.failover_successes);
        m.counter_add("recovery.nacks_sent", r.nacks_sent);
        m.counter_add("recovery.chunks_repaired", r.chunks_repaired);
        m.counter_add("recovery.chunks_lost", r.chunks_lost);
        m.counter_add("recovery.joins_throttled", r.joins_throttled);
        m.counter_add("recovery.joins_shed", r.joins_shed);
        m.counter_add("recovery.cross_nacks_sent", r.cross_nacks_sent);
        m.counter_add("recovery.cross_repaired", r.cross_repaired);
        m.counter_add(
            "recovery.cross_stripe_violations",
            r.cross_stripe_violations,
        );
        m.counter_add("discovery.bootstrap_contacts", r.bootstrap_contacts);
        m.counter_add("discovery.anchors", r.discovery_anchors.len() as u64);
        m.counter_add("discovery.stale_peer_hits", r.stale_peer_hits);
        m.counter_add("discovery.fallbacks", r.discovery_fallbacks);
        m.counter_add("discovery.peer_reqs_served", r.peer_reqs_served);
        m.counter_add("discovery.peer_reqs_dropped", r.peer_reqs_dropped);
        m.counter_add("coords.updates", r.coord_updates);
        m.counter_add("coords.guided_entries", r.guided_entries);
        // Fixed buckets in seconds: sub-second failover through
        // walk-scale (tens of seconds) recovery.
        const SECS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0];
        let h = m.histogram("recovery.reconnect_s", SECS);
        for &(_, d) in &r.reconnections {
            h.observe(d);
        }
        let h = m.histogram("recovery.gap_s", SECS);
        for &(_, d) in &r.delivery_gaps {
            h.observe(d);
        }
        let h = m.histogram("discovery.first_anchor_s", SECS);
        for &(_, d) in &r.discovery_anchors {
            h.observe(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
        let e = Summary::of(std::iter::empty());
        assert_eq!(e, Summary::default());
        assert!(format!("{s}").contains("mean 2.000"));
    }

    #[test]
    fn overall_loss() {
        let mut rs = RunStats::new(3);
        rs.expected = vec![100, 50, 0];
        rs.received = vec![90, 45, 0];
        assert!((rs.overall_loss() - 0.1).abs() < 1e-9);
        let empty = RunStats::new(2);
        assert_eq!(empty.overall_loss(), 0.0);
    }

    #[test]
    fn summary_skips_non_finite_samples() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 2);
        // All-NaN degenerates to the empty summary, not a NaN one.
        assert_eq!(Summary::of([f64::NAN, f64::NAN]), Summary::default());
    }

    #[test]
    fn overall_loss_clamps_and_counts_duplicates() {
        // NACK retransmits pushed host 0 above its lifetime-based
        // expectation; loss must clamp at 0, not go negative, and the
        // excess surfaces as duplicates.
        let mut rs = RunStats::new(3);
        rs.expected = vec![100, 50, 10];
        rs.received = vec![120, 48, 10];
        assert_eq!(rs.overall_loss(), 0.0);
        assert_eq!(rs.duplicates_delivered(), 20);
        // Per-host excess does not cancel against another host's loss
        // in the duplicates metric.
        rs.received = vec![120, 30, 10];
        assert_eq!(rs.duplicates_delivered(), 20);
        assert_eq!(rs.overall_loss(), 0.0);
        // Genuine loss is unaffected by the clamp.
        rs.received = vec![90, 45, 10];
        assert!(rs.overall_loss() > 0.0);
        assert_eq!(rs.duplicates_delivered(), 0);
    }

    #[test]
    fn export_metrics_absorbs_recovery_counters() {
        let mut rs = RunStats::new(2);
        rs.expected = vec![10, 10];
        rs.received = vec![12, 9];
        rs.walk_restarts = 4;
        rs.recovery.orphan_events = 3;
        rs.recovery.reconnections = vec![(10.0, 0.7), (20.0, 12.0)];
        rs.recovery.nacks_sent = 5;
        rs.recovery.bootstrap_contacts = 7;
        rs.recovery.discovery_anchors = vec![(5.0, 0.4)];
        rs.recovery.stale_peer_hits = 2;
        rs.recovery.discovery_fallbacks = 1;
        rs.recovery.peer_reqs_served = 6;
        rs.recovery.peer_reqs_dropped = 3;
        rs.recovery.coord_updates = 9;
        rs.recovery.guided_entries = 4;
        let mut m = vdm_trace::MetricsRegistry::new();
        rs.export_metrics(&mut m);
        assert_eq!(m.counter("recovery.orphan_events"), 3);
        assert_eq!(m.counter("recovery.nacks_sent"), 5);
        assert_eq!(m.counter("run.walk_restarts"), 4);
        assert_eq!(m.counter("run.duplicates_delivered"), 2);
        assert_eq!(m.gauge("run.overall_loss"), Some(0.0));
        let h = m.get_histogram("recovery.reconnect_s").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(m.counter("discovery.bootstrap_contacts"), 7);
        assert_eq!(m.counter("discovery.anchors"), 1);
        assert_eq!(m.counter("discovery.stale_peer_hits"), 2);
        assert_eq!(m.counter("discovery.fallbacks"), 1);
        assert_eq!(m.counter("discovery.peer_reqs_served"), 6);
        assert_eq!(m.counter("discovery.peer_reqs_dropped"), 3);
        assert_eq!(m.counter("coords.updates"), 9);
        assert_eq!(m.counter("coords.guided_entries"), 4);
        let h = m.get_histogram("discovery.first_anchor_s").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn recovery_summaries() {
        let r = RecoveryStats {
            orphan_events: 3,
            reconnections: vec![(100.0, 2.0), (150.0, 4.0)],
            delivery_gaps: vec![(101.0, 6.0)],
            invariant_violations: vec![(60.0, 1), (120.0, 2)],
            discovery_anchors: vec![(10.0, 1.0), (11.0, 3.0)],
            ..RecoveryStats::default()
        };
        assert_eq!(r.anchor_summary().mean, 2.0);
        assert_eq!(r.anchor_median(), 2.0);
        assert_eq!(r.reconnect_summary().mean, 3.0);
        assert_eq!(r.reconnect_summary().count, 2);
        assert_eq!(r.reconnect_median(), 3.0);
        assert_eq!(r.gap_summary().count, 1);
        assert_eq!(r.gap_median(), 6.0);
        assert_eq!(r.total_violations(), 3);
        assert_eq!(RecoveryStats::default().total_violations(), 0);
    }

    /// Zero-sample medians must be NaN (skipped by `Summary::of` and CI
    /// aggregation), never 0: "no failovers" is not "instant failover".
    #[test]
    fn empty_medians_are_nan_and_skipped_by_aggregation() {
        let empty = RecoveryStats::default();
        assert!(empty.reconnect_median().is_nan());
        assert!(empty.gap_median().is_nan());
        assert!(empty.anchor_median().is_nan());
        let s = Summary::of([empty.reconnect_median(), 2.0, 4.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn median_handles_odd_counts() {
        let r = RecoveryStats {
            reconnections: vec![(1.0, 9.0), (2.0, 1.0), (3.0, 5.0)],
            ..RecoveryStats::default()
        };
        assert_eq!(r.reconnect_median(), 5.0);
    }

    #[test]
    fn tail_mean() {
        let mut rs = RunStats::new(1);
        for i in 0..5 {
            rs.measurements.push(SlotMeasurement {
                loss_rate: i as f64,
                ..SlotMeasurement::default()
            });
        }
        assert_eq!(rs.tail_mean(2, |m| m.loss_rate), 3.5);
        assert_eq!(rs.tail_mean(100, |m| m.loss_rate), 2.0);
        assert_eq!(RunStats::new(1).tail_mean(3, |m| m.loss_rate), 0.0);
    }
}
