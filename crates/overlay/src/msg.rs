//! Control and data messages exchanged between overlay peers.
//!
//! The set mirrors §5.2.2 of the paper ("Control Messages between
//! Nodes"): information request/response, connection request/response,
//! parent change, grandparent change, plus the leave notifications of
//! §3.3 and the stream itself. Ping/pong probes carry the RTT
//! measurements (the paper piggybacks a timestamp on the information
//! request; we keep probing explicit so that a joiner can probe many
//! children in parallel, which is what both VDM and HMTP do).

use crate::coords::CoordSample;
use crate::VDist;
use vdm_netsim::HostId;

/// A child entry as reported by a queried node: the paper's information
/// response "attaches children list with distances to them".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChildEntry {
    /// The child peer.
    pub child: HostId,
    /// The queried node's stored virtual distance to that child.
    pub vdist: VDist,
}

/// One gossiped membership entry in a [`Msg::PeerList`]: a peer the
/// sender knows of, with how long ago the sender last heard of it.
/// Receivers back-date the entry by `age_s` before inserting it into
/// their own partial view, so staleness survives multi-hop gossip.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerEntry {
    /// The gossiped peer.
    pub host: HostId,
    /// Seconds since the sender last heard of that peer (0 for the
    /// sender's own live tree neighbours).
    pub age_s: f64,
    /// The peer's last gossiped virtual coordinate, when the sender
    /// knows one (coordinate embedding extension; always `None` when
    /// the embedding is off, keeping gossip byte-identical).
    pub coord: Option<CoordSample>,
}

/// How a joiner wants to connect.
#[derive(Clone, Debug, PartialEq)]
pub enum ConnKind {
    /// Plain Case-I/HMTP connection: become a child of the target
    /// (requires a free degree slot at the target).
    Child,
    /// VDM Case-II splice: become a child of the target *and* adopt the
    /// listed current children of the target (the joiner sits between
    /// them on the virtual line). Always admissible at the target, since
    /// it swaps children rather than adding one.
    Splice {
        /// Children of the target the joiner wants to adopt,
        /// closest-first.
        displace: Vec<HostId>,
    },
}

/// Outcome of a connection request.
#[derive(Clone, Debug, PartialEq)]
pub enum ConnResult {
    /// Connection established.
    Accepted {
        /// The new parent's own parent — the joiner's grandparent
        /// (recovery anchor, §3.3).
        grandparent: Option<HostId>,
        /// Children actually handed over for a splice (a subset of the
        /// requested `displace` — some may have left meanwhile).
        adopted: Vec<HostId>,
        /// The acceptor's root path (source..acceptor), only populated
        /// by protocols that maintain root paths (HMTP refinement
        /// needs it; VDM keeps this empty and cheap).
        root_path: Vec<HostId>,
    },
    /// Target is full; try this (closest, free) child of the target.
    Redirect {
        /// Suggested next target.
        next: HostId,
    },
    /// Target cannot help (e.g. it is leaving, or the request would
    /// create a loop).
    Rejected,
}

/// Messages between peers. `nonce` fields tie responses to requests and
/// make stale replies from earlier walk generations harmless.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// "Which children do you have, and who is your parent?" Also doubles
    /// as an RTT probe of the queried node (timed by the requester).
    InfoReq {
        /// Request id.
        nonce: u64,
    },
    /// Reply to [`Msg::InfoReq`].
    InfoResp {
        /// Echoed request id.
        nonce: u64,
        /// Children with stored virtual distances.
        children: Vec<ChildEntry>,
        /// The queried node's parent (used by diagnostics and BTP).
        parent: Option<HostId>,
        /// The responder's virtual coordinate + error (coordinate
        /// embedding extension; `None` when the embedding is off).
        coord: Option<CoordSample>,
    },
    /// RTT probe.
    Ping {
        /// Probe id.
        nonce: u64,
    },
    /// RTT probe reply.
    Pong {
        /// Echoed probe id.
        nonce: u64,
        /// The responder's virtual coordinate + error (coordinate
        /// embedding extension; `None` when the embedding is off).
        coord: Option<CoordSample>,
    },
    /// Ask to connect.
    ConnReq {
        /// Request id.
        nonce: u64,
        /// Connection type.
        kind: ConnKind,
        /// The joiner's measured virtual distance to the target, which
        /// the target stores as its distance to the new child.
        vdist: VDist,
        /// The joiner's virtual coordinate + error (coordinate
        /// embedding extension; `None` when the embedding is off).
        coord: Option<CoordSample>,
    },
    /// Reply to [`Msg::ConnReq`].
    ConnResp {
        /// Echoed request id.
        nonce: u64,
        /// Outcome.
        result: ConnResult,
    },
    /// Splice notification from a new parent to an adopted child: "your
    /// parent is now me". Carries the child's new grandparent for the
    /// child to validate against (it must equal the child's old parent,
    /// which guards against stale splices).
    ParentChange {
        /// The child's new grandparent (the new parent's parent).
        new_grandparent: Option<HostId>,
        /// Sender-side generation stamp, monotone per sender
        /// incarnation. Receivers drop duplicated copies and stale
        /// reordered splices by comparing against the highest stamp
        /// seen from that sender, so the fault layer's duplication and
        /// reordering cannot corrupt parent/child state.
        gen: u64,
    },
    /// A node's parent changed; it tells its children their grandparent.
    GrandparentChange {
        /// The children's new grandparent.
        new_grandparent: HostId,
    },
    /// Root-path maintenance (only sent by protocols that keep root
    /// paths): the sender's path `source..=sender`.
    RootPath {
        /// Path from the source down to and including the sender.
        path: Vec<HostId>,
    },
    /// Liveness beacon from a child to its parent (ungraceful-failure
    /// extension): parents prune children that fall silent, so crashed
    /// peers do not leak degree slots.
    Heartbeat,
    /// Parent is leaving; receivers are orphaned and must reconnect
    /// (starting at their grandparent, §3.3).
    Leave,
    /// Child is leaving (or switching away); parent frees the slot.
    ChildLeave,
    /// Ancestor gossip (proactive-resilience extension): a parent tells
    /// its children its own current ancestor list, nearest-first and
    /// *excluding itself* (each child prepends the sender). Orphans use
    /// the list as pre-validated walk anchors when their grandparent is
    /// dead too.
    AncestorList {
        /// The sender's ancestors, nearest-first (parent, grandparent,
        /// ...), truncated to the configured depth.
        ancestors: Vec<HostId>,
    },
    /// Negative acknowledgement (gap-repair extension): a child asks its
    /// parent to retransmit the listed stream chunks out of its
    /// retransmit ring.
    Nack {
        /// Missing chunk sequence numbers, ascending.
        seqs: Vec<u64>,
    },
    /// One stream chunk.
    Data {
        /// Monotonically increasing sequence number assigned by the
        /// source.
        seq: u64,
    },
    /// Cross-tree NACK (multi-tree extension): a receiver cut off from
    /// one stripe tree asks a parent of the *sibling* tree that owns
    /// the stripe to retransmit the listed chunks out of its ring.
    CrossNack {
        /// Missing chunk sequence numbers, ascending; every one must
        /// satisfy the receiver's stripe residue.
        seqs: Vec<u64>,
    },
    /// Retransmission answering a [`Msg::CrossNack`] (token-bucket
    /// bounded at the server). Distinct from [`Msg::Data`] so the
    /// receiver does not mistake a sibling-tree server for its parent.
    CrossData {
        /// Retransmitted chunk sequence number.
        seq: u64,
    },
    /// Bootstrap-discovery probe: "who do you know?" Doubles as a
    /// liveness check of the target — an answered `PeerReq` proves the
    /// responder is alive and makes it a usable walk anchor.
    PeerReq {
        /// Request id.
        nonce: u64,
    },
    /// Reply to [`Msg::PeerReq`]: a bounded sample of the responder's
    /// membership knowledge (live tree neighbours first, then its
    /// gossiped partial view with ages). Responders shed these under a
    /// token-bucket serving budget, so a flash crowd cannot amplify
    /// through a cold seed.
    PeerList {
        /// Echoed request id.
        nonce: u64,
        /// Gossiped peers, most trustworthy first.
        peers: Vec<PeerEntry>,
    },
}

impl Msg {
    /// True for stream payload, false for maintenance traffic (the
    /// paper's overhead metric, Eq. 3.6, is the ratio of the two).
    pub fn is_data(&self) -> bool {
        matches!(self, Msg::Data { .. } | Msg::CrossData { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_classification() {
        assert!(Msg::Data { seq: 0 }.is_data());
        assert!(Msg::CrossData { seq: 0 }.is_data());
        assert!(!Msg::CrossNack { seqs: vec![1] }.is_data());
        assert!(!Msg::Ping { nonce: 1 }.is_data());
        assert!(!Msg::PeerReq { nonce: 1 }.is_data());
        assert!(!Msg::PeerList {
            nonce: 1,
            peers: vec![PeerEntry {
                host: HostId(2),
                age_s: 0.0,
                coord: None
            }]
        }
        .is_data());
        assert!(!Msg::Leave.is_data());
        assert!(!Msg::ConnReq {
            nonce: 0,
            kind: ConnKind::Child,
            vdist: 1.0,
            coord: None
        }
        .is_data());
    }

    #[test]
    fn splice_carries_displaced_children() {
        let k = ConnKind::Splice {
            displace: vec![HostId(3), HostId(5)],
        };
        match k {
            ConnKind::Splice { displace } => assert_eq!(displace.len(), 2),
            _ => unreachable!(),
        }
    }
}
