//! Pulling figure metrics out of run outputs.

use vdm_overlay::driver::RunOutput;
use vdm_overlay::stats::SlotMeasurement;

/// Steady-state metrics of one run (tail-averaged over the last
/// measurements, since the paper reports converged values).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunMetrics {
    /// Mean per-link stress (Eq. 3.4).
    pub stress: f64,
    /// Mean stretch (Eq. 3.5).
    pub stretch: f64,
    /// Max stretch.
    pub stretch_max: f64,
    /// Min stretch.
    pub stretch_min: f64,
    /// Leaf-only mean stretch.
    pub stretch_leaf: f64,
    /// Mean hop count.
    pub hopcount: f64,
    /// Leaf-only mean hop count.
    pub hopcount_leaf: f64,
    /// Max hop count.
    pub hopcount_max: f64,
    /// Normalized resource usage (star = 1).
    pub usage: f64,
    /// Loss rate over the measured slots (Eq. 3.7).
    pub loss: f64,
    /// Overhead: control / data messages (Eq. 3.6).
    pub overhead: f64,
    /// Overhead per source chunk (§5.4.2 variant).
    pub overhead_per_chunk: f64,
    /// Mean startup time, seconds.
    pub startup: f64,
    /// Max startup time, seconds.
    pub startup_max: f64,
    /// Mean reconnection time, seconds.
    pub reconnection: f64,
    /// Max reconnection time, seconds.
    pub reconnection_max: f64,
    /// Tree cost / MST cost (§5.4.6), when computed.
    pub mst_ratio: f64,
    /// Structural errors seen across measured slots (should be 0).
    pub tree_errors: usize,
}

fn mean_of(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn max_of(v: &[f64]) -> f64 {
    v.iter().copied().fold(0.0, f64::max)
}

/// Extract tail-averaged metrics from a run; `tail` = number of final
/// measurements to average (1 = the last snapshot only).
pub fn run_metrics(out: &RunOutput, tail: usize) -> RunMetrics {
    let ms = &out.stats.measurements;
    let take = tail.clamp(1, ms.len().max(1));
    let slice: &[SlotMeasurement] = if ms.is_empty() {
        &[]
    } else {
        &ms[ms.len() - take..]
    };
    let avg = |f: &dyn Fn(&SlotMeasurement) -> f64| -> f64 {
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().map(f).sum::<f64>() / slice.len() as f64
        }
    };
    RunMetrics {
        stress: avg(&|m| m.stress.map_or(0.0, |s| s.mean)),
        stretch: avg(&|m| m.stretch.mean),
        stretch_max: avg(&|m| m.stretch.max),
        stretch_min: avg(&|m| m.stretch.min),
        stretch_leaf: avg(&|m| m.stretch_leaf_mean),
        hopcount: avg(&|m| m.hopcount.mean),
        hopcount_leaf: avg(&|m| m.hopcount_leaf_mean),
        hopcount_max: avg(&|m| m.hopcount.max),
        usage: avg(&|m| m.usage_normalized),
        loss: avg(&|m| m.loss_rate),
        overhead: avg(&|m| m.overhead),
        overhead_per_chunk: avg(&|m| m.overhead_per_chunk),
        startup: mean_of(&out.stats.startup_s),
        startup_max: max_of(&out.stats.startup_s),
        reconnection: mean_of(&out.stats.reconnection_s),
        reconnection_max: max_of(&out.stats.reconnection_s),
        mst_ratio: avg(&|m| m.mst_ratio.unwrap_or(0.0)),
        tree_errors: slice.iter().map(|m| m.tree_errors).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_netsim::HostId;
    use vdm_overlay::stats::{RunStats, Summary};
    use vdm_overlay::tree::TreeSnapshot;

    fn fake_run() -> RunOutput {
        let mut stats = RunStats::new(2);
        for i in 0..4 {
            stats.measurements.push(SlotMeasurement {
                loss_rate: i as f64 * 0.01,
                stretch: Summary {
                    mean: 2.0 + i as f64,
                    min: 1.0,
                    max: 5.0,
                    count: 3,
                },
                ..SlotMeasurement::default()
            });
        }
        stats.startup_s = vec![0.2, 0.4];
        stats.reconnection_s = vec![0.1];
        RunOutput {
            stats,
            final_snapshot: TreeSnapshot {
                source: HostId(0),
                members: vec![],
                parent: vec![None, None],
            },
            events: 0,
            counters: Default::default(),
        }
    }

    #[test]
    fn tail_averaging() {
        let out = fake_run();
        let m1 = run_metrics(&out, 1);
        assert!((m1.loss - 0.03).abs() < 1e-12);
        assert!((m1.stretch - 5.0).abs() < 1e-12);
        let m2 = run_metrics(&out, 2);
        assert!((m2.loss - 0.025).abs() < 1e-12);
        assert!((m2.stretch - 4.5).abs() < 1e-12);
        assert!((m2.startup - 0.3).abs() < 1e-12);
        assert!((m2.startup_max - 0.4).abs() < 1e-12);
        assert!((m2.reconnection - 0.1).abs() < 1e-12);
        // Oversized tail clamps.
        let m9 = run_metrics(&out, 9);
        assert!((m9.stretch - 3.5).abs() < 1e-12);
    }
}
