//! `vdm-repro` — regenerate every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! vdm-repro <family> [--quick|--paper] [--seed N] [--csv DIR]
//!                    [--cache DIR|--no-cache] [--sequential]
//! vdm-repro bench [--quick] [--smoke] [--seed N] [--csv DIR]
//! vdm-repro scale [--quick|--paper] [--smoke] [--shards N] [--seed N] [--csv DIR]
//! vdm-repro trace <family> [--quick|--paper] [--seed N] [--out DIR]
//!                          [--csv DIR] [--cache DIR|--no-cache]
//! vdm-repro trace filter    --input FILE [--host N] [--kind K]
//!                           [--t0 SECS] [--t1 SECS]
//! vdm-repro trace summarize --input FILE
//! vdm-repro trace dump      --input FILE [--limit N]
//!
//! families:
//!   fig3-churn    Figs 3.25–3.28  stress/stretch/loss/overhead vs churn (VDM vs HMTP)
//!   fig3-nodes    Figs 3.29–3.32  the same vs number of nodes
//!   fig3-degree   Figs 3.33–3.36  the same vs average node degree
//!   fig4-metric   Figs 4.6–4.9    VDM-D vs VDM-L over time
//!   fig5-tree     Figs 5.5/5.6    sample trees (ASCII + DOT)
//!   fig5-churn    Figs 5.7–5.13   PlanetLab metrics vs churn (VDM vs HMTP)
//!   fig5-nodes    Figs 5.14–5.20  PlanetLab metrics vs number of nodes
//!   fig5-degree   Figs 5.21–5.27  PlanetLab metrics vs node degree
//!   fig5-refine   Figs 5.28–5.30  refinement component (VDM vs VDM-R)
//!   fig5-mst      Fig 5.31        ratio to the MST
//!   complexity    Eq 3.3          contacted peers per join vs N
//!   ablation      extra           slack sweep, reconnection anchor
//!   chaos         extra (A7)      seeded fault injection: recovery, VDM vs HMTP
//!   soak          extra (A8)      sustained churn: proactive resilience on/off
//!   all           everything above
//!
//! `scale` (A9) is separate from `all` like `bench`: it joins N members
//! (up to 20k with --paper) under VDM and HMTP over power-law underlays
//! routed by the memory-bounded on-demand router — no O(n^2) matrix —
//! and writes `BENCH_scale.json` (per-N wall-clock, walk contacts vs
//! the n·log N prediction, resident-row peak). `--smoke` runs tiny
//! sizes sequentially for CI gating. `--shards N` (A12) additionally
//! sweeps the sharded engine from 1 to N shards over one shard-aware
//! power-law underlay — up to 100k members with `--paper` — and writes
//! `BENCH_shard.json`; the run fails unless the S = 1 run is
//! byte-identical to the plain engine and delivery fingerprints agree
//! across shard counts.
//!
//! `multitree` (A10) is likewise separate: it stripes the stream over
//! k ∈ {1..4} decorrelated trees, crashes interior nodes and replays
//! the A7 combined fault cocktail, and writes `BENCH_multitree.json`.
//! The run fails if the k = 1 session is not byte-identical to the
//! single-tree driver; `--smoke` runs a tiny grid sequentially for CI.
//!
//! `bootstrap` (A11) is likewise separate: joiners start from a
//! k-entry bootstrap set (gossip discovery instead of a known source
//! address) and a flash crowd lands on it under staleness and seed
//! churn; writes `BENCH_bootstrap.json`. The run fails on any
//! structural invariant violation; `--smoke` runs the k = 3 / 30 %
//! stale / 50 % seed-churn acceptance cell sequentially for CI.
//! ```
//!
//! Runs fan their simulation cells across a thread pool
//! (`RAYON_NUM_THREADS` controls the width; `--sequential` or
//! `VDM_SEQUENTIAL=1` forces the reference in-order path) and merge
//! results in cell-key order, so output is byte-identical either way.
//! Expensive pure inputs — generated topologies with their routing
//! tables, PlanetLab session extracts — are memoized in a
//! content-addressed artifact cache (default `results/cache`, `--cache
//! DIR` to move it, `--no-cache` to disable); identical seeds produce
//! byte-identical output whether artifacts hit or miss.
//!
//! `bench` times the runner itself: the A7 chaos grid sequential vs
//! parallel (asserting the CSVs match byte-for-byte) and a topology
//! build cold vs warm through a throwaway cache, then writes
//! `BENCH_runner.json` next to the CSVs.
//!
//! `trace <family>` re-runs a family with the structured tracer and
//! wall-clock profiler on (sequentially, so the event log is in
//! deterministic order), writing `trace_<family>.jsonl`,
//! `profile_<family>.json` (load in chrome://tracing or Perfetto) and
//! `metrics_<family>.json` under `--out` (default `results/trace`).
//! `trace filter/summarize/dump` then query the event log — e.g. every
//! event touching host 17 between t=100s and t=130s:
//! `vdm-repro trace filter --input F --host 17 --t0 100 --t1 130`.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vdm_experiments::figures::{
    ablation, bootstrap, chaos, compare, complexity, fig3, fig4, fig5, multitree, scale, shard,
    soak,
};
use vdm_experiments::{runner, setup, Effort, Table};
use vdm_topology::cache;
use vdm_trace::json::Value;
use vdm_trace::{EventSink, JsonlSink, Tracer};

struct Opts {
    effort: Effort,
    seed: u64,
    csv_dir: Option<String>,
}

/// Wrap an I/O error with enough context ("what file, doing what") that
/// a read-only `results/` fails with an actionable message instead of a
/// panic backtrace.
fn io_ctx(what: impl std::fmt::Display) -> impl FnOnce(io::Error) -> io::Error {
    move |e| io::Error::new(e.kind(), format!("{what}: {e}"))
}

fn emit(tables: &[Table], opts: &Opts) -> io::Result<()> {
    let mut stdout = io::stdout().lock();
    for t in tables {
        writeln!(stdout, "{}", t.render()).map_err(io_ctx("writing to stdout"))?;
        if let Some(dir) = &opts.csv_dir {
            std::fs::create_dir_all(dir)
                .map_err(io_ctx(format!("creating CSV directory `{dir}`")))?;
            let path = format!("{dir}/{}.csv", t.slug());
            std::fs::write(&path, t.to_csv()).map_err(io_ctx(format!("writing CSV `{path}`")))?;
            writeln!(stdout, "  [csv] {path}").map_err(io_ctx("writing to stdout"))?;
        }
    }
    Ok(())
}

/// Print the runner/cache counter deltas accumulated since `r0`/`c0`.
fn print_counters(r0: runner::RunnerStats, c0: cache::CacheStats) {
    let r = runner::stats();
    let c = cache::stats();
    println!(
        "[runner] cells={} batches={} busy={:.1?}  [cache] hits={} misses={} write_errors={}",
        r.cells - r0.cells,
        r.batches - r0.batches,
        r.busy.saturating_sub(r0.busy),
        c.hits - c0.hits,
        c.misses - c0.misses,
        c.write_errors - c0.write_errors,
    );
}

fn run_family(name: &str, opts: &Opts) -> io::Result<bool> {
    let t0 = Instant::now();
    let (r0, c0) = (runner::stats(), cache::stats());
    let (e, s) = (opts.effort, opts.seed);
    let tables: Vec<Table> = match name {
        "fig3-churn" => fig3::churn_family(e, s),
        "fig3-nodes" => fig3::nodes_family(e, s),
        "fig3-degree" => fig3::degree_family(e, s),
        "fig4-metric" => fig4::metric_family(e, s),
        "fig5-churn" => fig5::churn_family(e, s),
        "fig5-nodes" => fig5::nodes_family(e, s),
        "fig5-degree" => fig5::degree_family(e, s),
        "fig5-refine" => fig5::refine_family(e, s),
        "fig5-mst" => fig5::mst_family(e, s),
        "complexity" => complexity::join_complexity(e, s),
        "compare" => compare::ch3_compare(e, 5.0, s),
        "chaos" => chaos::chaos_recovery(e, s),
        "soak" => soak::soak_resilience(e, s),
        // Reachable from `trace bootstrap` only: the `bootstrap`
        // subcommand proper goes through `run_bootstrap` for the JSON
        // report and its invariant gate.
        "bootstrap" => bootstrap::bootstrap_family(e, s).tables,
        "ablation" => {
            let mut t = ablation::slack_sweep(e, s);
            t.extend(ablation::reconnect_anchor(e, s));
            t.extend(ablation::crash_churn(e, s));
            t.extend(ablation::topology_sensitivity(e, s));
            t.extend(ablation::heterogeneity(e, s));
            t.extend(ablation::congestion(e, s));
            t
        }
        "fig5-tree" => {
            println!("{}", fig5::sample_trees(s));
            println!("[done fig5-tree in {:.1?}]", t0.elapsed());
            return Ok(true);
        }
        _ => return Ok(false),
    };
    emit(&tables, opts)?;
    print_counters(r0, c0);
    println!("[done {name} in {:.1?}]", t0.elapsed());
    Ok(true)
}

/// All tables of a family as one CSV blob, for byte-equality checks.
fn csv_blob(tables: &[Table]) -> String {
    tables
        .iter()
        .map(Table::to_csv)
        .collect::<Vec<_>>()
        .join("\n")
}

/// `vdm-repro bench`: time the chaos grid sequential vs parallel and a
/// topology build cold vs warm, emit `BENCH_runner.json`.
fn run_bench(opts: &Opts, smoke: bool) -> io::Result<()> {
    let effort = if smoke { Effort::Quick } else { opts.effort };
    let seed = opts.seed;
    let threads = rayon::current_num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Sequential vs parallel on the same grid. No artifact cache here:
    // a warm cache on the second run would skew the comparison.
    cache::set_global(None);
    let r0 = runner::stats();
    let t0 = Instant::now();
    let seq = runner::with_mode(runner::ExecMode::Sequential, || {
        chaos::chaos_recovery(effort, seed)
    });
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cells = runner::stats().cells - r0.cells;
    let t1 = Instant::now();
    let par = runner::with_mode(runner::ExecMode::Parallel, || {
        chaos::chaos_recovery(effort, seed)
    });
    let par_ms = t1.elapsed().as_secs_f64() * 1e3;
    let csv_identical = csv_blob(&seq) == csv_blob(&par);

    // Cold vs warm topology build through a throwaway cache directory.
    let bench_dir = std::env::temp_dir().join(format!("vdm-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_dir);
    cache::set_global(Some(cache::CacheStore::at(&bench_dir)));
    let c0 = cache::stats();
    let members = if smoke { 25 } else { effort.ch3_members() };
    let topo_seed = seed ^ 0xbe;
    let t2 = Instant::now();
    let cold = setup::ch3_setup(members, 0.0, topo_seed);
    let topo_cold_ms = t2.elapsed().as_secs_f64() * 1e3;
    let t3 = Instant::now();
    let warm = setup::ch3_setup(members, 0.0, topo_seed);
    let topo_warm_ms = t3.elapsed().as_secs_f64() * 1e3;
    let cache_delta = {
        let c = cache::stats();
        (c.hits - c0.hits, c.misses - c0.misses)
    };
    let artifacts_identical = warm.underlay.graph().to_bytes() == cold.underlay.graph().to_bytes();
    cache::set_global(None);
    let _ = std::fs::remove_dir_all(&bench_dir);

    let speedup = |slow: f64, fast: f64| if fast > 0.0 { slow / fast } else { 0.0 };
    let json = format!(
        "{{\n  \"bench\": \"runner\",\n  \"smoke\": {smoke},\n  \"effort\": \"{effort:?}\",\n  \
         \"seed\": {seed},\n  \"threads\": {threads},\n  \"cores\": {cores},\n  \
         \"workload\": \"chaos_recovery\",\n  \"cells\": {cells},\n  \
         \"seq_ms\": {seq_ms:.2},\n  \"par_ms\": {par_ms:.2},\n  \
         \"parallel_speedup\": {:.3},\n  \"csv_identical\": {csv_identical},\n  \
         \"topo_members\": {members},\n  \"topo_cold_ms\": {topo_cold_ms:.2},\n  \
         \"topo_warm_ms\": {topo_warm_ms:.2},\n  \"cache_speedup\": {:.3},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"artifacts_identical\": {artifacts_identical}\n}}\n",
        speedup(seq_ms, par_ms),
        speedup(topo_cold_ms, topo_warm_ms),
        cache_delta.0,
        cache_delta.1,
    );
    let dir = opts.csv_dir.clone().unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&dir).map_err(io_ctx(format!("creating bench directory `{dir}`")))?;
    let path = format!("{dir}/BENCH_runner.json");
    std::fs::write(&path, &json).map_err(io_ctx(format!("writing bench report `{path}`")))?;
    print!("{json}");
    println!("  [json] {path}");
    if !csv_identical {
        return Err(io::Error::other(
            "parallel chaos CSVs differ from sequential — runner determinism broken",
        ));
    }
    Ok(())
}

/// `vdm-repro scale` (A9): join up to 20k members under VDM and HMTP
/// over on-demand-routed power-law underlays, emit `BENCH_scale.json`.
/// With `--shards N` (A12), also sweep the sharded engine up to `N`
/// shards over one shard-aware underlay and emit `BENCH_shard.json`;
/// outside smoke mode `--shards` runs *only* the sharded bench (the
/// plain A9 sweep at 100k would take hours on the single heap — the
/// point of A12 is not paying that).
fn run_scale(opts: &Opts, smoke: bool, shards: Option<usize>) -> io::Result<()> {
    if smoke {
        // Tiny and sequential: the CI gate only checks that the report
        // is produced, parses, and has the right shape.
        std::env::set_var("VDM_SEQUENTIAL", "1");
    }
    let seed = opts.seed;
    if smoke || shards.is_none() {
        let t0 = Instant::now();
        let report = if smoke {
            scale::scale_family_with_sizes(&[64, 128], seed)
        } else {
            scale::scale_family(opts.effort, seed)
        };
        emit(&report.tables, opts)?;
        let json = report.to_json(smoke, seed);
        let dir = opts.csv_dir.clone().unwrap_or_else(|| "results".into());
        std::fs::create_dir_all(&dir)
            .map_err(io_ctx(format!("creating scale directory `{dir}`")))?;
        let path = format!("{dir}/BENCH_scale.json");
        std::fs::write(&path, &json).map_err(io_ctx(format!("writing scale report `{path}`")))?;
        println!("  [json] {path}");
        // Coordinate-guided joins must cut contacts without degrading the
        // tree where the knee lives: fail the run when the guided series
        // costs more than 2% stretch over plain VDM at the largest
        // population in the sweep (at toy sizes guided deliberately trades
        // a small stretch premium for its contact savings — you would not
        // enable guidance there, and the async stack ships it default-off).
        if let [.., vdm, guided, _] = report.points.as_slice() {
            assert_eq!((vdm.protocol, guided.protocol), ("vdm", "vdm_guided"));
            if vdm.n >= 5000 && guided.stretch_mean > vdm.stretch_mean * 1.02 {
                return Err(io::Error::other(format!(
                    "guided stretch regression at N={}: {:.4} vs plain {:.4}",
                    vdm.n, guided.stretch_mean, vdm.stretch_mean
                )));
            }
        }
        println!("[done scale in {:.1?}]", t0.elapsed());
    }
    let Some(max_shards) = shards else {
        return Ok(());
    };
    let t0 = Instant::now();
    let report = if smoke {
        shard::shard_family_smoke(max_shards, seed)
    } else {
        shard::shard_family(
            shard::shard_size(opts.effort),
            max_shards,
            shard::shard_chunks(opts.effort),
            seed,
        )
    };
    emit(&report.tables, opts)?;
    let json = report.to_json(smoke, seed);
    let dir = opts.csv_dir.clone().unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&dir).map_err(io_ctx(format!("creating shard directory `{dir}`")))?;
    let path = format!("{dir}/BENCH_shard.json");
    std::fs::write(&path, &json).map_err(io_ctx(format!("writing shard report `{path}`")))?;
    println!("  [json] {path}");
    println!("[done shard in {:.1?}]", t0.elapsed());
    if !report.s1_identical {
        return Err(io::Error::other(
            "S=1 sharded run diverged from the plain engine — delegation broken",
        ));
    }
    if !report.fingerprints_match {
        return Err(io::Error::other(
            "delivery fingerprints diverged across shard counts — barrier merge broken",
        ));
    }
    Ok(())
}

/// `vdm-repro multitree` (A10): stripe the stream over `k` decorrelated
/// trees, crash interiors and run the combined fault cocktail, emit
/// `BENCH_multitree.json`. Fails when the `k = 1` session diverges from
/// the single-tree driver.
fn run_multitree(opts: &Opts, smoke: bool) -> io::Result<()> {
    if smoke {
        // Tiny and sequential: the CI gate checks that the report is
        // produced, parses, and that k = 1 stayed byte-identical.
        std::env::set_var("VDM_SEQUENTIAL", "1");
    }
    let seed = opts.seed;
    let t0 = Instant::now();
    let report = if smoke {
        multitree::multitree_family_smoke(seed)
    } else {
        multitree::multitree_family(opts.effort, seed)
    };
    emit(&report.tables, opts)?;
    let json = report.to_json(smoke, seed);
    let dir = opts.csv_dir.clone().unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&dir)
        .map_err(io_ctx(format!("creating multitree directory `{dir}`")))?;
    let path = format!("{dir}/BENCH_multitree.json");
    std::fs::write(&path, &json).map_err(io_ctx(format!("writing multitree report `{path}`")))?;
    println!("  [json] {path}");
    println!("[done multitree in {:.1?}]", t0.elapsed());
    if !report.k1_identical {
        return Err(io::Error::other(
            "k=1 multitree session diverged from the single-tree driver — delegation broken",
        ));
    }
    Ok(())
}

/// `vdm-repro bootstrap` (A11): flash-crowd joins from a k-entry
/// bootstrap set under staleness and seed churn, VDM vs HMTP, emit
/// `BENCH_bootstrap.json`. Fails on any structural invariant violation
/// and, in smoke mode, when no joiner ever anchored via discovery.
fn run_bootstrap(opts: &Opts, smoke: bool) -> io::Result<()> {
    if smoke {
        // Tiny and sequential: the CI gate checks that the report is
        // produced, parses, and carries zero invariant violations.
        std::env::set_var("VDM_SEQUENTIAL", "1");
    }
    let seed = opts.seed;
    let t0 = Instant::now();
    let report = if smoke {
        bootstrap::bootstrap_family_smoke(seed)
    } else {
        bootstrap::bootstrap_family(opts.effort, seed)
    };
    emit(&report.tables, opts)?;
    let json = report.to_json(smoke, seed);
    let dir = opts.csv_dir.clone().unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&dir)
        .map_err(io_ctx(format!("creating bootstrap directory `{dir}`")))?;
    let path = format!("{dir}/BENCH_bootstrap.json");
    std::fs::write(&path, &json).map_err(io_ctx(format!("writing bootstrap report `{path}`")))?;
    println!("  [json] {path}");
    println!("[done bootstrap in {:.1?}]", t0.elapsed());
    if report.total_violations > 0 {
        return Err(io::Error::other(format!(
            "{} structural invariant violations under the flash crowd — discovery broke the tree",
            report.total_violations
        )));
    }
    if smoke && !report.anchor_median_s.is_finite() {
        return Err(io::Error::other(
            "no joiner anchored via discovery in the smoke cell — bootstrap path dead",
        ));
    }
    Ok(())
}

/// `vdm-repro trace <family>`: run a family with the structured tracer
/// and profiler on, then write the event log, chrome trace and metrics
/// snapshot. Exits the process (non-zero on any failure).
fn trace_run(family: &str, args: &[String]) -> ! {
    let mut opts = Opts {
        effort: Effort::Default,
        seed: 42,
        csv_dir: None,
    };
    let mut out_dir = String::from("results/trace");
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.effort = Effort::Quick,
            "--paper" => opts.effort = Effort::Paper,
            "--no-cache" => no_cache = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => {
                    eprintln!("error: --seed needs an integer");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = dir.clone(),
                None => {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(2);
                }
            },
            "--csv" => match it.next() {
                Some(dir) => opts.csv_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --csv needs a directory");
                    std::process::exit(2);
                }
            },
            "--cache" => match it.next() {
                Some(dir) => cache_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --cache needs a directory");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    if (!ALL.contains(&family) && family != "bootstrap") || family == "fig5-tree" {
        eprintln!("unknown or untraceable family: {family}");
        print_usage();
        std::process::exit(2);
    }
    if no_cache {
        if cache_dir.is_some() {
            eprintln!("error: --cache and --no-cache are mutually exclusive");
            std::process::exit(2);
        }
    } else {
        let dir = cache_dir.unwrap_or_else(|| "results/cache".into());
        cache::set_global(Some(cache::CacheStore::at(dir)));
    }
    // Sequential execution: with parallel cells the shared JSONL sink
    // would interleave events in completion order, making the log
    // nondeterministic. The *results* are order-independent either
    // way; the event log is not.
    std::env::set_var("VDM_SEQUENTIAL", "1");

    let fail = |e: io::Error| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    if let Err(e) =
        std::fs::create_dir_all(&out_dir).map_err(io_ctx(format!("creating `{out_dir}`")))
    {
        fail(e);
    }
    let trace_path = format!("{out_dir}/trace_{family}.jsonl");
    let file = match std::fs::File::create(&trace_path)
        .map_err(io_ctx(format!("creating trace log `{trace_path}`")))
    {
        Ok(f) => f,
        Err(e) => fail(e),
    };
    // Keep a typed handle on the sink so we can read the line count
    // after the run; the global tracer only sees `dyn EventSink`.
    let sink = Arc::new(Mutex::new(JsonlSink::new(io::BufWriter::new(file))));
    vdm_trace::set_global(Tracer::with_sink(sink.clone() as Arc<Mutex<dyn EventSink>>));
    vdm_trace::start_profiling();

    match run_family(family, &opts) {
        Ok(true) => {}
        Ok(false) => unreachable!("family validated against ALL above"),
        Err(e) => fail(e),
    }

    vdm_trace::set_global(Tracer::disabled());
    let events = {
        let mut s = sink.lock().expect("trace sink lock");
        s.flush();
        s.lines
    };
    if events == 0 {
        eprintln!("error: traced run of `{family}` emitted no events — tracer not wired?");
        std::process::exit(1);
    }
    let spans = vdm_trace::stop_profiling();
    let prof_path = format!("{out_dir}/profile_{family}.json");
    let write_profile = || -> io::Result<()> {
        let mut f = std::fs::File::create(&prof_path)
            .map_err(io_ctx(format!("creating profile `{prof_path}`")))?;
        vdm_trace::write_chrome_trace(&mut f, &spans)
            .map_err(io_ctx(format!("writing profile `{prof_path}`")))
    };
    if let Err(e) = write_profile() {
        fail(e);
    }
    let mut m = vdm_trace::MetricsRegistry::new();
    runner::export_metrics(&mut m);
    cache::export_metrics(&mut m);
    vdm_topology::router::export_metrics(&mut m);
    // Per-run overlay counters (discovery probes, anchors, fallbacks)
    // accumulated by the A11 cells; empty for other families.
    bootstrap::export_metrics(&mut m);
    let metrics_path = format!("{out_dir}/metrics_{family}.json");
    if let Err(e) = std::fs::write(&metrics_path, m.to_json())
        .map_err(io_ctx(format!("writing metrics `{metrics_path}`")))
    {
        fail(e);
    }
    println!("[trace] {events} events -> {trace_path}");
    println!("[profile] {} spans -> {prof_path}", spans.len());
    println!("[metrics] -> {metrics_path}");
    std::process::exit(0);
}

/// Parsed `(raw line, flat record)` pairs from a trace log; any
/// malformed line is a hard error.
fn load_trace(path: &str) -> io::Result<Vec<(String, BTreeMap<String, Value>)>> {
    let text =
        std::fs::read_to_string(path).map_err(io_ctx(format!("reading trace log `{path}`")))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match vdm_trace::json::parse_flat_object(line) {
            Some(rec) => out.push((line.to_string(), rec)),
            None => {
                return Err(io::Error::other(format!(
                    "{path}:{}: malformed trace record",
                    i + 1
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(io::Error::other(format!("{path}: no trace events")));
    }
    Ok(out)
}

/// Timestamp of a parsed record, in seconds.
fn rec_t_s(rec: &BTreeMap<String, Value>) -> f64 {
    rec.get("t_us").and_then(Value::as_num).unwrap_or(0.0) / 1e6
}

/// `vdm-repro trace filter|summarize|dump`: query an event log written
/// by `trace <family>`. Exits the process (non-zero on any failure).
fn trace_inspect(mode: &str, args: &[String]) -> ! {
    let mut input: Option<String> = None;
    let mut host: Option<u32> = None;
    let mut kind: Option<String> = None;
    let mut t0: Option<f64> = None;
    let mut t1: Option<f64> = None;
    let mut limit: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next_parsed = |flag: &str, what: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("error: {flag} needs {what}");
                    std::process::exit(2);
                }
            }
        };
        match a.as_str() {
            "--input" => input = Some(next_parsed("--input", "a file")),
            "--host" => match next_parsed("--host", "a host id").parse() {
                Ok(v) => host = Some(v),
                Err(_) => {
                    eprintln!("error: --host needs an integer host id");
                    std::process::exit(2);
                }
            },
            "--kind" => kind = Some(next_parsed("--kind", "an event kind")),
            "--t0" => match next_parsed("--t0", "seconds").parse() {
                Ok(v) => t0 = Some(v),
                Err(_) => {
                    eprintln!("error: --t0 needs seconds");
                    std::process::exit(2);
                }
            },
            "--t1" => match next_parsed("--t1", "seconds").parse() {
                Ok(v) => t1 = Some(v),
                Err(_) => {
                    eprintln!("error: --t1 needs seconds");
                    std::process::exit(2);
                }
            },
            "--limit" => match next_parsed("--limit", "a count").parse() {
                Ok(v) => limit = Some(v),
                Err(_) => {
                    eprintln!("error: --limit needs a count");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("error: trace {mode} needs --input FILE");
        std::process::exit(2);
    };
    let recs = match load_trace(&input) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let total = recs.len();
    let keep = |rec: &BTreeMap<String, Value>| -> bool {
        let t = rec_t_s(rec);
        host.is_none_or(|h| vdm_trace::record_touches_host(rec, h))
            && kind
                .as_deref()
                .is_none_or(|k| rec.get("kind").and_then(Value::as_str) == Some(k))
            && t0.is_none_or(|lo| t >= lo)
            && t1.is_none_or(|hi| t <= hi)
    };
    let mut stdout = io::stdout().lock();
    match mode {
        "filter" => {
            let mut matched = 0usize;
            for (line, rec) in &recs {
                if keep(rec) {
                    matched += 1;
                    let _ = writeln!(stdout, "{line}");
                }
            }
            // Stats go to stderr so stdout stays pure JSONL.
            eprintln!("[filter] matched {matched} of {total} events");
        }
        "dump" => {
            let mut shown = 0usize;
            for (_, rec) in &recs {
                if !keep(rec) {
                    continue;
                }
                if limit.is_some_and(|l| shown >= l) {
                    eprintln!("[dump] truncated at {shown} of {total} events (--limit)");
                    break;
                }
                shown += 1;
                let kind = rec.get("kind").and_then(Value::as_str).unwrap_or("?");
                let mut line = format!("t={:>10.6}s  {kind:<20}", rec_t_s(rec));
                for (k, v) in rec {
                    if k == "t_us" || k == "kind" {
                        continue;
                    }
                    match v {
                        Value::Str(s) => line.push_str(&format!(" {k}={s}")),
                        Value::Bool(b) => line.push_str(&format!(" {k}={b}")),
                        Value::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                            line.push_str(&format!(" {k}={n:.0}"));
                        }
                        Value::Num(n) => line.push_str(&format!(" {k}={n}")),
                    }
                }
                let _ = writeln!(stdout, "{line}");
            }
        }
        "summarize" => {
            let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
            let mut hosts = std::collections::BTreeSet::new();
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            let mut kept = 0usize;
            for (_, rec) in &recs {
                if !keep(rec) {
                    continue;
                }
                kept += 1;
                *by_kind
                    .entry(rec.get("kind").and_then(Value::as_str).unwrap_or("?"))
                    .or_default() += 1;
                let t = rec_t_s(rec);
                (lo, hi) = (lo.min(t), hi.max(t));
                for f in vdm_trace::HOST_FIELDS {
                    if let Some(h) = rec.get(*f).and_then(Value::as_num) {
                        hosts.insert(h as u64);
                    }
                }
            }
            let span = if kept == 0 {
                "t=-".to_string()
            } else {
                format!("t={lo:.3}s..{hi:.3}s")
            };
            let _ = writeln!(
                stdout,
                "{input}: {kept} events ({total} total), {span}, {} hosts",
                hosts.len()
            );
            for (k, n) in &by_kind {
                let _ = writeln!(stdout, "  {k:<22} {n:>8}");
            }
        }
        _ => unreachable!("mode validated by caller"),
    }
    std::process::exit(0);
}

const ALL: &[&str] = &[
    "fig3-churn",
    "fig3-nodes",
    "fig3-degree",
    "fig4-metric",
    "fig5-tree",
    "fig5-churn",
    "fig5-nodes",
    "fig5-degree",
    "fig5-refine",
    "fig5-mst",
    "complexity",
    "ablation",
    "chaos",
    "soak",
    "compare",
];

/// `vdm-repro loopback`: spawn a fleet of real `vdm-node` daemons on
/// 127.0.0.1, stream a session through the UDP overlay, and gate the
/// aggregated stats against an in-process simulator run of the same
/// scenario (see `vdm_experiments::loopback`). Emits
/// `BENCH_loopback.json`; any gate failure exits non-zero.
fn run_loopback(args: &[String]) -> io::Result<()> {
    use vdm_experiments::loopback;
    let mut cfg = loopback::LoopbackConfig::full();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                smoke = true;
                let keep = (cfg.node_bin.clone(), cfg.out_dir.clone(), cfg.seed);
                cfg = loopback::LoopbackConfig::smoke();
                (cfg.node_bin, cfg.out_dir, cfg.seed) = keep;
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 2)
                    .ok_or_else(|| io::Error::other("--nodes needs an integer >= 2"))?;
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| io::Error::other("--seed needs an integer"))?;
            }
            "--node-bin" => {
                cfg.node_bin = Some(
                    it.next()
                        .ok_or_else(|| io::Error::other("--node-bin needs a path"))?
                        .clone(),
                );
            }
            "--csv" => {
                cfg.out_dir = it
                    .next()
                    .ok_or_else(|| io::Error::other("--csv needs a directory"))?
                    .clone();
            }
            other => {
                return Err(io::Error::other(format!(
                    "unknown loopback argument: {other}"
                )));
            }
        }
    }
    let t0 = Instant::now();
    let report = loopback::run(&cfg)?;
    let json = report.to_json(smoke, cfg.seed);
    std::fs::create_dir_all(&cfg.out_dir).map_err(io_ctx(format!(
        "creating loopback directory `{}`",
        cfg.out_dir
    )))?;
    let path = format!("{}/BENCH_loopback.json", cfg.out_dir);
    std::fs::write(&path, &json).map_err(io_ctx(format!("writing loopback report `{path}`")))?;
    println!("  [json] {path}");
    println!(
        "  [loopback] {} nodes: delivery daemon {:.4} vs sim {:.4}, joins {}/{}, \
         reconnects {} (sim {}), violations {}",
        report.nodes,
        report.daemon_delivery,
        report.sim_delivery,
        report.daemon_joins,
        report.nodes - 1,
        report.daemon_reconnects,
        report.sim_reconnects,
        report.daemon_violations,
    );
    println!("[done loopback in {:.1?}]", t0.elapsed());
    if !report.failures.is_empty() {
        return Err(io::Error::other(format!(
            "loopback gates failed: {}",
            report.failures.join("; ")
        )));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `loopback` owns its own argument grammar (fleet controls).
    if args.first().is_some_and(|a| a == "loopback") {
        if let Err(e) = run_loopback(&args[1..]) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    // `trace` owns its own argument grammar (run vs inspect modes).
    if args.first().is_some_and(|a| a == "trace") {
        match args.get(1).map(String::as_str) {
            Some(mode @ ("filter" | "summarize" | "dump")) => trace_inspect(mode, &args[2..]),
            Some(family) if !family.starts_with('-') => trace_run(family, &args[2..]),
            _ => {
                eprintln!("error: `trace` needs a family or filter|summarize|dump");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let mut family: Option<String> = None;
    let mut opts = Opts {
        effort: Effort::Default,
        seed: 42,
        csv_dir: None,
    };
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut sequential = false;
    let mut smoke = false;
    let mut shards: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.effort = Effort::Quick,
            "--paper" => opts.effort = Effort::Paper,
            "--sequential" => sequential = true,
            "--no-cache" => no_cache = true,
            "--smoke" => smoke = true,
            "--seed" => {
                opts.seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --seed needs an integer");
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => {
                shards = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v >= 1 => Some(v),
                    _ => {
                        eprintln!("error: --shards needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("error: --csv needs a directory");
                    std::process::exit(2);
                };
                opts.csv_dir = Some(dir.clone());
            }
            "--cache" => {
                let Some(dir) = it.next() else {
                    eprintln!("error: --cache needs a directory");
                    std::process::exit(2);
                };
                cache_dir = Some(dir.clone());
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if family.is_none() && !other.starts_with('-') => {
                family = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let Some(family) = family else {
        eprintln!("error: missing <family>");
        print_usage();
        std::process::exit(2);
    };
    if sequential {
        // The thread-local override only covers this (main) thread, so
        // use the process-wide env hook instead; it is read per fan-out.
        std::env::set_var("VDM_SEQUENTIAL", "1");
    }
    if family == "bench" {
        // `bench` manages its own cache stores (cold/warm comparisons).
        if let Err(e) = run_bench(&opts, smoke) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if smoke && family != "scale" && family != "multitree" && family != "bootstrap" {
        eprintln!("error: --smoke only applies to `bench`, `scale`, `multitree` and `bootstrap`");
        std::process::exit(2);
    }
    if shards.is_some() && family != "scale" {
        eprintln!("error: --shards only applies to `scale`");
        std::process::exit(2);
    }
    // The chaos and soak families always leave a CSV audit trail (their
    // whole point is reproducible recovery numbers).
    if (family == "chaos" || family == "soak") && opts.csv_dir.is_none() {
        opts.csv_dir = Some("results".into());
    }
    if !no_cache {
        let dir = cache_dir.unwrap_or_else(|| "results/cache".into());
        cache::set_global(Some(cache::CacheStore::at(dir)));
    } else if cache_dir.is_some() {
        eprintln!("error: --cache and --no-cache are mutually exclusive");
        std::process::exit(2);
    }
    if family == "scale" {
        // A9 sizes its own underlays; small ones persist routing rows
        // through the cache installed above, large ones stay in-memory.
        if let Err(e) = run_scale(&opts, smoke, shards) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if family == "multitree" {
        if let Err(e) = run_multitree(&opts, smoke) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if family == "bootstrap" {
        if let Err(e) = run_bootstrap(&opts, smoke) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let run = |name: &str| -> bool {
        match run_family(name, &opts) {
            Ok(known) => known,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    if family == "all" {
        for f in ALL {
            assert!(run(f));
        }
        return;
    }
    if !run(&family) {
        eprintln!("unknown family: {family}");
        print_usage();
        std::process::exit(2);
    }
}

fn print_usage() {
    println!(
        "usage: vdm-repro <family> [--quick|--paper] [--seed N] [--csv DIR]\n\
         \x20                  [--cache DIR|--no-cache] [--sequential]\n\
         \x20      vdm-repro bench [--quick] [--smoke] [--seed N] [--csv DIR]\n\
         \x20      vdm-repro scale [--quick|--paper] [--smoke] [--shards N] [--seed N] [--csv DIR]\n\
         \x20      vdm-repro multitree [--quick|--paper] [--smoke] [--seed N] [--csv DIR]\n\
         \x20      vdm-repro bootstrap [--quick|--paper] [--smoke] [--seed N] [--csv DIR]\n\
         \x20      vdm-repro loopback [--smoke] [--nodes N] [--seed N] [--node-bin PATH] [--csv DIR]\n\
         \x20      vdm-repro trace <family> [--quick|--paper] [--seed N] [--out DIR]\n\
         \x20                  [--csv DIR] [--cache DIR|--no-cache]\n\
         \x20      vdm-repro trace filter|summarize|dump --input FILE\n\
         \x20                  [--host N] [--kind K] [--t0 S] [--t1 S] [--limit N]\n\n\
         families: {}  all",
        ALL.join("  ")
    );
}
