//! `vdm-repro` — regenerate every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! vdm-repro <family> [--quick|--paper] [--seed N] [--csv DIR]
//!
//! families:
//!   fig3-churn    Figs 3.25–3.28  stress/stretch/loss/overhead vs churn (VDM vs HMTP)
//!   fig3-nodes    Figs 3.29–3.32  the same vs number of nodes
//!   fig3-degree   Figs 3.33–3.36  the same vs average node degree
//!   fig4-metric   Figs 4.6–4.9    VDM-D vs VDM-L over time
//!   fig5-tree     Figs 5.5/5.6    sample trees (ASCII + DOT)
//!   fig5-churn    Figs 5.7–5.13   PlanetLab metrics vs churn (VDM vs HMTP)
//!   fig5-nodes    Figs 5.14–5.20  PlanetLab metrics vs number of nodes
//!   fig5-degree   Figs 5.21–5.27  PlanetLab metrics vs node degree
//!   fig5-refine   Figs 5.28–5.30  refinement component (VDM vs VDM-R)
//!   fig5-mst      Fig 5.31        ratio to the MST
//!   complexity    Eq 3.3          contacted peers per join vs N
//!   ablation      extra           slack sweep, reconnection anchor
//!   chaos         extra (A7)      seeded fault injection: recovery, VDM vs HMTP
//!   soak          extra (A8)      sustained churn: proactive resilience on/off
//!   all           everything above
//! ```
//!
//! `chaos` runs a deterministic fault schedule (link flaps, a
//! partition, message duplication/reordering, all combined) against
//! both protocols and reports recovery times, orphan counts, delivery
//! gaps and invariant violations with 90 % CIs. `soak` runs sustained
//! Poisson churn with correlated crash bursts and sweeps the
//! proactive-resilience mechanisms (backup-parent failover, rejoin
//! admission control, NACK gap repair) on and off. Both write CSVs to
//! `results/` unless `--csv` overrides the directory; identical seeds
//! produce byte-identical output.

use std::io::Write;
use std::time::Instant;
use vdm_experiments::figures::{ablation, chaos, compare, complexity, fig3, fig4, fig5, soak};
use vdm_experiments::{Effort, Table};

struct Opts {
    effort: Effort,
    seed: u64,
    csv_dir: Option<String>,
}

fn emit(tables: &[Table], opts: &Opts) {
    let mut stdout = std::io::stdout().lock();
    for t in tables {
        writeln!(stdout, "{}", t.render()).expect("stdout");
        if let Some(dir) = &opts.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", t.slug());
            std::fs::write(&path, t.to_csv()).expect("write csv");
            writeln!(stdout, "  [csv] {path}").expect("stdout");
        }
    }
}

fn run_family(name: &str, opts: &Opts) -> bool {
    let t0 = Instant::now();
    let (e, s) = (opts.effort, opts.seed);
    let tables: Vec<Table> = match name {
        "fig3-churn" => fig3::churn_family(e, s),
        "fig3-nodes" => fig3::nodes_family(e, s),
        "fig3-degree" => fig3::degree_family(e, s),
        "fig4-metric" => fig4::metric_family(e, s),
        "fig5-churn" => fig5::churn_family(e, s),
        "fig5-nodes" => fig5::nodes_family(e, s),
        "fig5-degree" => fig5::degree_family(e, s),
        "fig5-refine" => fig5::refine_family(e, s),
        "fig5-mst" => fig5::mst_family(e, s),
        "complexity" => complexity::join_complexity(e, s),
        "compare" => compare::ch3_compare(e, 5.0, s),
        "chaos" => chaos::chaos_recovery(e, s),
        "soak" => soak::soak_resilience(e, s),
        "ablation" => {
            let mut t = ablation::slack_sweep(e, s);
            t.extend(ablation::reconnect_anchor(e, s));
            t.extend(ablation::crash_churn(e, s));
            t.extend(ablation::topology_sensitivity(e, s));
            t.extend(ablation::heterogeneity(e, s));
            t.extend(ablation::congestion(e, s));
            t
        }
        "fig5-tree" => {
            println!("{}", fig5::sample_trees(s));
            println!("[done fig5-tree in {:.1?}]", t0.elapsed());
            return true;
        }
        _ => return false,
    };
    emit(&tables, opts);
    println!("[done {name} in {:.1?}]", t0.elapsed());
    true
}

const ALL: &[&str] = &[
    "fig3-churn",
    "fig3-nodes",
    "fig3-degree",
    "fig4-metric",
    "fig5-tree",
    "fig5-churn",
    "fig5-nodes",
    "fig5-degree",
    "fig5-refine",
    "fig5-mst",
    "complexity",
    "ablation",
    "chaos",
    "soak",
    "compare",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut family: Option<String> = None;
    let mut opts = Opts {
        effort: Effort::Default,
        seed: 42,
        csv_dir: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.effort = Effort::Quick,
            "--paper" => opts.effort = Effort::Paper,
            "--seed" => {
                opts.seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --seed needs an integer");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("error: --csv needs a directory");
                    std::process::exit(2);
                };
                opts.csv_dir = Some(dir.clone());
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if family.is_none() && !other.starts_with('-') => {
                family = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let Some(family) = family else {
        print_usage();
        std::process::exit(2);
    };
    // The chaos and soak families always leave a CSV audit trail (their
    // whole point is reproducible recovery numbers).
    if (family == "chaos" || family == "soak") && opts.csv_dir.is_none() {
        opts.csv_dir = Some("results".into());
    }
    if family == "all" {
        for f in ALL {
            assert!(run_family(f, &opts));
        }
        return;
    }
    if !run_family(&family, &opts) {
        eprintln!("unknown family: {family}");
        print_usage();
        std::process::exit(2);
    }
}

fn print_usage() {
    println!(
        "usage: vdm-repro <family> [--quick|--paper] [--seed N] [--csv DIR]\n\nfamilies: {}  all",
        ALL.join("  ")
    );
}
