//! Result tables: aligned text for the terminal, CSV for plotting.

use crate::ci::CiStat;

/// One reproduced figure: an x-axis sweep with one or more series.
#[derive(Clone, Debug)]
pub struct Table {
    /// Which figure this regenerates ("Fig 3.25").
    pub figure: String,
    /// Human title ("Stress vs. Churn").
    pub title: String,
    /// x-axis label ("churn (%)").
    pub x_label: String,
    /// Series names ("VDM", "HMTP").
    pub series: Vec<String>,
    /// Rows: x value plus one stat per series.
    pub rows: Vec<(f64, Vec<CiStat>)>,
}

impl Table {
    /// New empty table.
    pub fn new(
        figure: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        series: Vec<String>,
    ) -> Self {
        Self {
            figure: figure.into(),
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, x: f64, stats: Vec<CiStat>) {
        assert_eq!(stats.len(), self.series.len());
        self.rows.push((x, stats));
    }

    /// Aligned text rendering.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.figure, self.title);
        let width = 16usize;
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{s:>width$}"));
        }
        out.push('\n');
        for (x, stats) in &self.rows {
            out.push_str(&format!("{x:>12.3}"));
            for s in stats {
                out.push_str(&format!("{:>width$}", s.to_string()));
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (mean and ci90 per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push_str(&format!(",{s}_mean,{s}_ci90"));
        }
        out.push('\n');
        for (x, stats) in &self.rows {
            out.push_str(&format!("{x}"));
            for s in stats {
                out.push_str(&format!(",{},{}", s.mean, s.ci90));
            }
            out.push('\n');
        }
        out
    }

    /// File-name-friendly identifier ("fig3_25").
    pub fn slug(&self) -> String {
        self.figure
            .to_lowercase()
            .replace(['.', ' ', '-'], "_")
            .replace("__", "_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Fig 3.25",
            "Stress vs. Churn",
            "churn (%)",
            vec!["VDM".into(), "HMTP".into()],
        );
        t.push(1.0, vec![CiStat::of(&[1.5, 1.6]), CiStat::of(&[1.7, 1.8])]);
        t.push(5.0, vec![CiStat::of(&[1.55]), CiStat::of(&[1.75])]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("Fig 3.25"));
        assert!(r.contains("VDM"));
        assert!(r.contains("HMTP"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "churn (%),VDM_mean,VDM_ci90,HMTP_mean,HMTP_ci90"
        );
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn slug() {
        assert_eq!(sample().slug(), "fig_3_25");
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = sample();
        t.push(2.0, vec![CiStat::default()]);
    }
}
