//! Experiment setup builders: Chapter 3 underlays and degree limits.
//!
//! Underlay construction is the expensive pure input of every cell —
//! topology synthesis plus the all-pairs shortest-path build — so the
//! builders here route through the content-addressed artifact cache
//! (`vdm_topology::cache`) when the process has one installed. Cache
//! keys cover every generator parameter plus the seed, so a hit is
//! bit-identical to a fresh build and CSV output does not depend on
//! cache state.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use vdm_netsim::{HostId, RoutedUnderlay};
use vdm_topology::cache::{self, codec, KeyHasher};
use vdm_topology::powerlaw::{self, PowerLawConfig};
use vdm_topology::transit_stub::{attach_hosts, generate, randomize_losses, TransitStubConfig};
use vdm_topology::waxman::{self, WaxmanConfig};
use vdm_topology::{Apsp, Graph, NodeId};

/// Serialize a routed underlay as one cache artifact: graph, routing
/// table, host attachment points.
fn encode_underlay(u: &RoutedUnderlay) -> Vec<u8> {
    let graph = u.graph().to_bytes();
    let apsp = u.apsp().to_bytes();
    let mut w = codec::ByteWriter::with_capacity(graph.len() + apsp.len() + 64);
    w.put_blob(&graph);
    w.put_blob(&apsp);
    w.put_u32s(&u.host_nodes().iter().map(|n| n.0).collect::<Vec<_>>());
    w.into_bytes()
}

/// Decode [`encode_underlay`] output; `None` (a cache miss) on any
/// corruption, so a bad artifact falls back to a fresh build.
fn decode_underlay(bytes: &[u8]) -> Option<RoutedUnderlay> {
    let mut r = codec::ByteReader::new(bytes);
    let graph = Graph::from_bytes(r.get_blob()?)?;
    let apsp = Apsp::from_bytes(r.get_blob()?)?;
    let hosts = r.get_u32s()?;
    if !r.at_end()
        || apsp.num_nodes() != graph.num_nodes()
        || hosts.is_empty()
        || hosts.iter().any(|&h| h as usize >= graph.num_nodes())
    {
        return None;
    }
    Some(RoutedUnderlay::from_parts(
        graph,
        apsp,
        hosts.into_iter().map(NodeId).collect(),
    ))
}

/// Build (or load) a routed underlay through the global artifact cache.
fn cached_underlay(
    domain: &'static str,
    feed_key: impl FnOnce(&mut KeyHasher),
    build: impl FnOnce() -> RoutedUnderlay,
) -> Arc<RoutedUnderlay> {
    let mut h = KeyHasher::new();
    feed_key(&mut h);
    Arc::new(cache::get_or_compute_global(
        &h.key(domain),
        build,
        encode_underlay,
        decode_underlay,
    ))
}

/// A ready Chapter 3 testbed: transit-stub routers with attached hosts,
/// host 0 being the source.
pub struct Ch3Setup {
    /// Routed underlay (shared across replicated runs — the APSP build
    /// is the expensive part).
    pub underlay: Arc<RoutedUnderlay>,
    /// The streaming source.
    pub source: HostId,
    /// Overlay candidates (everyone but the source).
    pub candidates: Vec<HostId>,
}

/// Build the §3.6.2 testbed for `members` overlay nodes.
///
/// Uses the paper's 792-router transit-stub topology whenever it has
/// enough stub routers; larger populations scale the topology up with
/// the same shape. `link_loss` (e.g. 0.02 for Chapter 4) assigns each
/// physical link an independent uniform error rate in `[0, link_loss)`.
pub fn ch3_setup(members: usize, link_loss: f64, topo_seed: u64) -> Ch3Setup {
    let needed = members + 1;
    let mut cfg = TransitStubConfig::paper_792();
    if needed > 768 {
        // Grow the topology, keeping the transit/stub shape, until the
        // stub routers can host everyone.
        let mut target = needed + needed / 8 + 24;
        loop {
            cfg = TransitStubConfig::sized(target);
            let stubs = cfg.total_routers() - cfg.transit_domains * cfg.transit_nodes;
            if stubs >= needed {
                break;
            }
            target += target / 5;
        }
    }
    let underlay = cached_underlay(
        "ch3-underlay",
        |h| {
            h.feed_str("transit-stub")
                .feed_usize(needed)
                .feed_f64(link_loss)
                .feed_u64(topo_seed)
                .feed_usize(cfg.total_routers());
        },
        || {
            let mut g = generate(&cfg, topo_seed);
            if link_loss > 0.0 {
                randomize_losses(&mut g, link_loss, topo_seed);
            }
            let hosts = attach_hosts(&mut g, needed, topo_seed, 0.0);
            RoutedUnderlay::new(g, hosts)
        },
    );
    Ch3Setup {
        underlay,
        source: HostId(0),
        candidates: (1..needed as u32).map(HostId).collect(),
    }
}

/// A flat Waxman underlay with attached hosts (topology-sensitivity
/// studies: the transit-stub hierarchy is one modelling choice; Waxman
/// graphs have no domain structure at all).
pub fn waxman_setup(members: usize, routers: usize, seed: u64) -> Ch3Setup {
    assert!(routers > members);
    let underlay = cached_underlay(
        "waxman-underlay",
        |h| {
            h.feed_str("waxman")
                .feed_usize(members)
                .feed_usize(routers)
                .feed_u64(seed);
        },
        || {
            let wg = waxman::generate(
                &WaxmanConfig {
                    nodes: routers,
                    ..WaxmanConfig::default()
                },
                seed,
            );
            let mut g = wg.graph;
            let hosts = attach_hosts(&mut g, members + 1, seed, 0.0);
            RoutedUnderlay::new(g, hosts)
        },
    );
    Ch3Setup {
        underlay,
        source: HostId(0),
        candidates: (1..=members as u32).map(HostId).collect(),
    }
}

/// A power-law (Barabási–Albert) underlay with attached hosts: a few
/// router hubs, many leaves — the AS-level-Internet-like third topology
/// for sensitivity studies.
pub fn powerlaw_setup(members: usize, routers: usize, seed: u64) -> Ch3Setup {
    assert!(routers > members);
    let underlay = cached_underlay(
        "powerlaw-underlay",
        |h| {
            h.feed_str("powerlaw")
                .feed_usize(members)
                .feed_usize(routers)
                .feed_u64(seed);
        },
        || {
            let mut g = powerlaw::generate(
                &PowerLawConfig {
                    nodes: routers,
                    ..PowerLawConfig::default()
                },
                seed,
            );
            let hosts = attach_hosts(&mut g, members + 1, seed, 0.0);
            RoutedUnderlay::new(g, hosts)
        },
    );
    Ch3Setup {
        underlay,
        source: HostId(0),
        candidates: (1..=members as u32).map(HostId).collect(),
    }
}

/// Degree limits drawn uniformly from `lo..=hi` (the paper's §3.6.2:
/// "Degree limits of nodes ranges from 2 to 5").
pub fn degree_limits_range(n: usize, lo: u32, hi: u32, seed: u64) -> Vec<u32> {
    assert!(lo >= 1 && hi >= lo);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0064_6567);
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Degree limits with a target *average* (the §3.6.4 node-degree sweep
/// uses fractional averages like 1.25): each node gets `floor(avg)` or
/// `ceil(avg)` with probabilities matching the mean, floored at 1.
pub fn degree_limits_avg(n: usize, avg: f64, seed: u64) -> Vec<u32> {
    assert!(avg >= 1.0);
    let lo = avg.floor() as u32;
    let hi = avg.ceil() as u32;
    let p_hi = avg - lo as f64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0061_7667);
    (0..n)
        .map(|_| {
            if hi > lo && rng.gen::<f64>() < p_hi {
                hi
            } else {
                lo.max(1)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_netsim::Underlay;

    #[test]
    fn paper_scale_setup() {
        let s = ch3_setup(50, 0.0, 1);
        assert_eq!(s.underlay.num_hosts(), 51);
        assert_eq!(s.candidates.len(), 50);
        assert_eq!(s.underlay.graph().num_nodes(), 792 + 51);
        // Host-to-host RTTs are underlay routes, strictly positive.
        let r = s.underlay.rtt_ms(HostId(0), HostId(1));
        assert!(r > 0.0 && r.is_finite());
    }

    #[test]
    fn grows_for_large_populations() {
        let s = ch3_setup(1000, 0.0, 2);
        assert_eq!(s.underlay.num_hosts(), 1001);
        assert!(s.underlay.graph().num_nodes() > 1001);
    }

    #[test]
    fn link_loss_shows_up_on_paths() {
        let s = ch3_setup(30, 0.02, 3);
        let mut lossy = 0;
        for i in 1..31u32 {
            if s.underlay.path_loss(HostId(0), HostId(i)) > 0.0 {
                lossy += 1;
            }
        }
        assert!(lossy > 25, "most multi-hop paths must be lossy: {lossy}");
    }

    #[test]
    fn waxman_setup_is_usable() {
        let s = waxman_setup(20, 60, 5);
        assert_eq!(s.underlay.num_hosts(), 21);
        assert!(s.underlay.rtt_ms(HostId(0), HostId(20)) > 0.0);
    }

    #[test]
    fn powerlaw_setup_is_usable() {
        let s = powerlaw_setup(20, 60, 5);
        assert_eq!(s.underlay.num_hosts(), 21);
        assert!(s.underlay.rtt_ms(HostId(0), HostId(20)) > 0.0);
        assert!(s.underlay.graph().is_connected());
    }

    #[test]
    fn degree_limit_helpers() {
        let r = degree_limits_range(1000, 2, 5, 4);
        assert!(r.iter().all(|&d| (2..=5).contains(&d)));
        let avg = degree_limits_avg(4000, 1.25, 5);
        assert!(avg.iter().all(|&d| d == 1 || d == 2));
        let mean = avg.iter().sum::<u32>() as f64 / avg.len() as f64;
        assert!((mean - 1.25).abs() < 0.05, "mean {mean}");
        let whole = degree_limits_avg(100, 3.0, 6);
        assert!(whole.iter().all(|&d| d == 3));
    }
}
